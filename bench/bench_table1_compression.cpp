// E1 — Table I: typical approaches for deep compression, quantified.
//
// Paper claims reproduced as numbers (EXPERIMENTS.md E1):
//  - parameter sharing/pruning is robust but REQUIRES fine-tuning;
//    k-means sharing reaches ~24x weight compression with ~1% loss [21];
//  - low-rank factorization is straightforward and shrinks FLOPs, but the
//    decomposition itself is computationally expensive [25];
//  - knowledge transfer makes models much thinner but only applies to
//    softmax classification [29].
#include "bench_common.h"

#include "common/clock.h"
#include "common/rng.h"
#include "compress/compressed_model.h"
#include "compress/distill.h"
#include "compress/lowrank.h"
#include "compress/pruning.h"
#include "compress/quantize_model.h"
#include "compress/weight_sharing.h"
#include "data/synthetic.h"
#include "nn/train.h"
#include "nn/zoo.h"
// (conv factorization section uses the image zoo + factor_convs option)

using namespace openei;

namespace {

struct Workbench {
  data::Dataset train;
  data::Dataset test;
  nn::Model teacher;
};

Workbench make_workbench() {
  common::Rng rng(101);
  auto dataset = data::make_blobs(900, 24, 5, rng, /*separation=*/1.3F,
                                  /*stddev=*/1.5F);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  // AlexNet-like parameter distribution: heavy dense layers.
  nn::Model teacher = nn::zoo::make_mlp("teacher", 24, 5, {128, 64}, rng);
  nn::TrainOptions topt;
  topt.epochs = 30;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::fit(teacher, train, topt);
  return Workbench{std::move(train), std::move(test), std::move(teacher)};
}

void print_row(const compress::CompressionReport& report, const char* note) {
  std::printf("%-26s %9.1fx  acc %.3f -> %.3f (%+.3f)  FLOPs %7zu -> %7zu  %s\n",
              report.method.c_str(), report.compression_ratio,
              report.accuracy_before, report.accuracy_after,
              report.accuracy_delta, report.flops_before, report.flops_after,
              note);
}

void run_table1() {
  bench::banner("E1 / Table I: deep-compression approaches, quantified");
  Workbench wb = make_workbench();
  std::printf("teacher: %zu params, %s, test accuracy %.3f\n\n",
              wb.teacher.param_count(),
              bench::format_bytes(
                  static_cast<double>(wb.teacher.storage_bytes()))
                  .c_str(),
              nn::evaluate_accuracy(wb.teacher, wb.test));

  bench::section("parameter sharing & pruning");
  {
    compress::PruneOptions no_ft;
    no_ft.sparsity = 0.9F;
    no_ft.finetune_epochs = 0;
    auto pruned = compress::magnitude_prune(wb.teacher, no_ft, nullptr);
    print_row(compress::make_report(wb.teacher, pruned, wb.test),
              "(90% sparsity, NO fine-tune)");

    compress::PruneOptions with_ft = no_ft;
    with_ft.finetune_epochs = 5;
    with_ft.train.sgd.learning_rate = 0.02F;
    with_ft.train.sgd.momentum = 0.9F;
    auto finetuned = compress::magnitude_prune(wb.teacher, with_ft, &wb.train);
    print_row(compress::make_report(wb.teacher, finetuned, wb.test),
              "(90% sparsity, fine-tuned — Table I: pruning needs retraining)");

    common::Rng rng(103);
    compress::WeightShareOptions share;
    share.clusters = 16;
    auto shared = compress::kmeans_share_weights(wb.teacher, share, rng);
    print_row(compress::make_report(wb.teacher, shared, wb.test),
              "(16-centroid k-means codebook, Gong et al. [21])");

    auto binary = compress::binarize_weights(wb.teacher);
    print_row(compress::make_report(wb.teacher, binary, wb.test),
              "(binary +-alpha weights, Courbariaux et al. [20])");

    auto quantized = compress::quantize_int8(wb.teacher);
    print_row(compress::make_report(wb.teacher, quantized, wb.test),
              "(int8 post-training quantization)");
  }

  bench::section("low-rank factorization");
  {
    for (float fraction : {0.5F, 0.25F, 0.125F}) {
      compress::LowRankOptions options;
      options.rank_fraction = fraction;
      common::Stopwatch factorization_timer;
      auto factored = compress::lowrank_factorize(wb.teacher, options);
      double factor_ms = factorization_timer.elapsed_ms();
      auto report = compress::make_report(wb.teacher, factored, wb.test);
      char note[128];
      std::snprintf(note, sizeof(note),
                    "(rank %.0f%%, SVD took %.1f ms — Table I: decomposition is "
                    "compute-expensive)",
                    static_cast<double>(fraction) * 100.0, factor_ms);
      print_row(report, note);
    }
  }

  bench::section("low-rank factorization of CONV layers (Denton et al. do both)");
  {
    common::Rng cnn_rng(105);
    nn::zoo::ImageSpec ispec;
    ispec.channels = 3;
    ispec.size = 12;
    ispec.classes = 4;
    auto frames = data::make_images(240, 3, 12, 4, cnn_rng, 0.3F);
    auto [img_train, img_test] = data::train_test_split(frames, 0.8, cnn_rng);
    nn::Model cnn = nn::zoo::make_mini_vgg(ispec, cnn_rng);
    nn::TrainOptions cnn_opt;
    cnn_opt.epochs = 5;
    cnn_opt.batch_size = 24;
    cnn_opt.sgd.learning_rate = 0.03F;
    cnn_opt.sgd.momentum = 0.9F;
    nn::fit(cnn, img_train, cnn_opt);

    for (float fraction : {0.75F, 0.5F}) {
      compress::LowRankOptions options;
      options.rank_fraction = fraction;
      options.factor_convs = true;
      common::Stopwatch timer;
      auto factored = compress::lowrank_factorize(cnn, options);
      double factor_ms = timer.elapsed_ms();
      auto report = compress::make_report(cnn, factored, img_test);
      char note[128];
      std::snprintf(note, sizeof(note),
                    "(mini_vgg convs at rank %.0f%%, SVD %.0f ms)",
                    static_cast<double>(fraction) * 100.0, factor_ms);
      print_row(report, note);
    }
  }

  bench::section("knowledge transfer (distillation)");
  {
    common::Rng rng(104);
    nn::Model student = nn::zoo::make_mlp("student", 24, 5, {16}, rng);
    compress::DistillOptions options;
    options.temperature = 3.0F;
    options.train.epochs = 40;
    options.train.sgd.learning_rate = 0.1F;
    options.train.sgd.momentum = 0.9F;
    auto distilled =
        compress::distill(wb.teacher, std::move(student), wb.train, options);
    print_row(compress::make_report(wb.teacher, distilled, wb.test),
              "(T=3 teacher-student; classification-only per Table I)");

    // Baseline: same student trained on hard labels only.
    nn::Model hard_student = nn::zoo::make_mlp("student_hard", 24, 5, {16}, rng);
    nn::TrainOptions hard;
    hard.epochs = 40;
    hard.sgd.learning_rate = 0.1F;
    hard.sgd.momentum = 0.9F;
    nn::fit(hard_student, wb.train, hard);
    std::printf("%-26s (same 16-wide student on hard labels: accuracy %.3f)\n",
                "hard-label baseline", nn::evaluate_accuracy(hard_student, wb.test));
  }
}

// Microbenchmarks: wall-clock inference of the original vs compressed forms.
void BM_InferenceOriginal(benchmark::State& state) {
  static Workbench wb = make_workbench();
  nn::Tensor batch = wb.test.slice(0, 16).features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wb.teacher.forward(batch, false));
  }
}
BENCHMARK(BM_InferenceOriginal);

void BM_InferencePruned90(benchmark::State& state) {
  static Workbench wb = make_workbench();
  compress::PruneOptions options;
  options.sparsity = 0.9F;
  options.finetune_epochs = 0;
  static auto pruned = compress::magnitude_prune(wb.teacher, options, nullptr);
  nn::Tensor batch = wb.test.slice(0, 16).features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruned.model.forward(batch, false));
  }
}
BENCHMARK(BM_InferencePruned90);

void BM_InferenceLowRank25(benchmark::State& state) {
  static Workbench wb = make_workbench();
  compress::LowRankOptions options;
  options.rank_fraction = 0.25F;
  static auto factored = compress::lowrank_factorize(wb.teacher, options);
  nn::Tensor batch = wb.test.slice(0, 16).features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(factored.model.forward(batch, false));
  }
}
BENCHMARK(BM_InferenceLowRank25);

void BM_InferenceInt8(benchmark::State& state) {
  static Workbench wb = make_workbench();
  static auto quantized = compress::quantize_int8(wb.teacher);
  nn::Tensor batch = wb.test.slice(0, 16).features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantized.model.forward(batch, false));
  }
}
BENCHMARK(BM_InferenceInt8);

}  // namespace

OPENEI_BENCH_MAIN(run_table1)
