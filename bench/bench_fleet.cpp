// Fleet routing bench: aggregate throughput of the consistent-hash router
// as the fleet scales (N = 1/2/4/8 nodes), and tail latency across a
// mid-run node kill + revive with replication 2 — the availability claim
// ("a node kill costs failover hops, never failed requests") measured, not
// asserted.  Writes BENCH_fleet.json so CI can archive the trajectory.
//
// Throughput here is bounded by loopback HTTP round-trips and host cores
// (every member node is an in-process HTTP server), hence host_cpus in the
// report; the interesting signal is the *shape* — scaling with N, and the
// p99-vs-p50 gap across the kill window.
//
// Usage: bench_fleet [--quick] [--out PATH]
//   --quick  fewer requests (CI smoke job)
//   --out    output JSON path (default BENCH_fleet.json in the CWD)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/rng.h"
#include "fleet/fleet.h"
#include "net/http.h"
#include "nn/zoo.h"

namespace openei::bench {
namespace {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using common::Rng;

struct Config {
  bool quick = false;
  std::string out_path = "BENCH_fleet.json";
};

constexpr std::size_t kFeatures = 8;
constexpr std::size_t kClasses = 3;
constexpr std::size_t kKeys = 8;       // distinct placement keys
constexpr std::size_t kThreads = 4;    // client threads
constexpr const char* kInput =
    "?input=[[1,2,3,4,5,6,7,8],[8,7,6,5,4,3,2,1]]";

nn::Model make_model(const std::string& name) {
  Rng rng(7);
  nn::Model model = nn::zoo::make_mlp(name, kFeatures, kClasses, {4}, rng);
  for (nn::Tensor* param : model.parameters()) *param *= 0.0F;
  model.parameters().back()->data()[1] = 1.0F;
  return model;
}

/// Spreads `kKeys` models across the ring so aggregate throughput can
/// actually scale with the member count (one key would pin all traffic to a
/// single owner set).
void deploy_keys(fleet::Fleet& fleet) {
  for (std::size_t k = 0; k < kKeys; ++k) {
    fleet.deploy("scenario" + std::to_string(k), "detect",
                 make_model("det" + std::to_string(k)), 0.9);
  }
}

std::string target_for(std::size_t key, std::size_t thread, std::size_t i) {
  return "/ei_algorithms/scenario" + std::to_string(key % kKeys) + "/detect" +
         kInput + "&session=t" + std::to_string(thread) + "r" +
         std::to_string(i % 16);
}

struct RunResult {
  double wall_s = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t requests = 0;
  std::size_t failed = 0;
};

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[index];
}

/// `per_thread` requests from each of kThreads client threads through the
/// router; `mid_run` (optional) executes on the main thread once ~40% of
/// the total has been served.
RunResult hammer(fleet::Fleet& fleet, std::size_t per_thread,
                 const std::function<void()>& mid_run = {}) {
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failed{0};
  std::vector<std::vector<double>> latencies(kThreads);
  common::Stopwatch wall;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      latencies[t].reserve(per_thread);
      for (std::size_t i = 0; i < per_thread; ++i) {
        common::Stopwatch timer;
        net::HttpResponse response =
            fleet.router().route("GET", target_for(t + i, t, i));
        latencies[t].push_back(timer.elapsed_seconds() * 1e3);
        if (response.status != 200) ++failed;
        ++done;
      }
    });
  }
  if (mid_run) {
    std::size_t total = per_thread * kThreads;
    while (done.load() < total * 2 / 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    mid_run();
  }
  for (std::thread& worker : workers) worker.join();

  RunResult result;
  result.wall_s = wall.elapsed_seconds();
  result.requests = per_thread * kThreads;
  result.failed = failed.load();
  result.requests_per_sec =
      result.wall_s > 0.0 ? static_cast<double>(result.requests) / result.wall_s
                          : 0.0;
  std::vector<double> merged;
  merged.reserve(result.requests);
  for (const std::vector<double>& rows : latencies) {
    merged.insert(merged.end(), rows.begin(), rows.end());
  }
  std::sort(merged.begin(), merged.end());
  result.p50_ms = percentile(merged, 0.50);
  result.p99_ms = percentile(merged, 0.99);
  return result;
}

Json result_to_json(const RunResult& result) {
  return Json(JsonObject{{"requests", Json(result.requests)},
                         {"failed_requests", Json(result.failed)},
                         {"wall_s", Json(result.wall_s)},
                         {"requests_per_sec", Json(result.requests_per_sec)},
                         {"p50_ms", Json(result.p50_ms)},
                         {"p99_ms", Json(result.p99_ms)}});
}

int run(const Config& config) {
  banner("OpenEI fleet routing: throughput scaling + node-kill failover");
  std::size_t host_cpus = std::thread::hardware_concurrency();
  std::printf("host CPUs: %zu  (loopback HTTP bounds everything below)%s\n",
              host_cpus, config.quick ? "  [quick]" : "");

  const std::size_t scale_per_thread = config.quick ? 50 : 400;
  const std::size_t kill_per_thread = config.quick ? 100 : 800;

  Json report{JsonObject{}};
  report.set("bench", "fleet");
  report.set("quick", config.quick);
  report.set("host_cpus", host_cpus);
  report.set("keys", kKeys);
  report.set("client_threads", kThreads);

  section("aggregate throughput vs fleet size (replication 2)");
  std::printf("%6s %12s %10s %10s %8s\n", "nodes", "req/s", "p50", "p99",
              "failed");
  JsonArray scaling;
  for (std::size_t nodes : {1U, 2U, 4U, 8U}) {
    fleet::FleetOptions options;
    options.nodes = nodes;
    options.router.replication = std::min<std::size_t>(2, nodes);
    fleet::Fleet fleet(options);
    deploy_keys(fleet);
    hammer(fleet, scale_per_thread / 5);  // warm every node's session cache
    RunResult result = hammer(fleet, scale_per_thread);
    std::printf("%6zu %12.0f %10s %10s %8zu\n", nodes, result.requests_per_sec,
                format_seconds(result.p50_ms / 1e3).c_str(),
                format_seconds(result.p99_ms / 1e3).c_str(), result.failed);
    Json row = result_to_json(result);
    row.set("nodes", nodes);
    scaling.push_back(std::move(row));
  }
  report.set("scaling", Json(std::move(scaling)));

  section("mid-run node kill + revive (4 nodes, replication 2)");
  fleet::FleetOptions options;
  options.nodes = 4;
  options.router.replication = 2;
  options.router.probe_every = 32;
  fleet::Fleet fleet(options);
  deploy_keys(fleet);
  hammer(fleet, kill_per_thread / 10);  // warm
  RunResult baseline = hammer(fleet, kill_per_thread);

  // Kill the primary owner of the first key mid-run; revive it shortly
  // after, while traffic keeps flowing.  Routed traffic itself drives the
  // probe path that fails the node back in.
  std::size_t victim = fleet.index_of(
      fleet.router().owners_of("scenario0/detect").front());
  RunResult killed = hammer(fleet, kill_per_thread, [&] {
    fleet.kill(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(config.quick ? 20 : 60));
    fleet.revive(victim);
  });
  double failovers =
      fleet.router().meter().counter("ei_fleet_failovers_total").value();
  std::printf("%10s %12s %10s %10s %8s\n", "phase", "req/s", "p50", "p99",
              "failed");
  std::printf("%10s %12.0f %10s %10s %8zu\n", "steady",
              baseline.requests_per_sec,
              format_seconds(baseline.p50_ms / 1e3).c_str(),
              format_seconds(baseline.p99_ms / 1e3).c_str(), baseline.failed);
  std::printf("%10s %12.0f %10s %10s %8zu\n", "kill+revive",
              killed.requests_per_sec,
              format_seconds(killed.p50_ms / 1e3).c_str(),
              format_seconds(killed.p99_ms / 1e3).c_str(), killed.failed);
  std::printf("failover hops: %.0f;  up nodes at end: %zu/4\n", failovers,
              fleet.router().up_nodes().size());

  section("summary");
  if (killed.failed == 0) {
    std::printf("node kill with replication 2: 0 failed requests "
                "(p99 %s vs steady %s)\n",
                format_seconds(killed.p99_ms / 1e3).c_str(),
                format_seconds(baseline.p99_ms / 1e3).c_str());
  } else {
    std::printf("WARNING: %zu requests failed across the kill window\n",
                killed.failed);
  }

  Json kill_block{JsonObject{}};
  kill_block.set("nodes", 4);
  kill_block.set("replication", 2);
  kill_block.set("steady", result_to_json(baseline));
  kill_block.set("kill_revive", result_to_json(killed));
  kill_block.set("failover_hops", failovers);
  kill_block.set("up_nodes_at_end", fleet.router().up_nodes().size());
  report.set("node_kill", std::move(kill_block));
  // Fleet scaling needs real parallelism between client threads and nodes.
  set_host_info(report, host_cpus >= 2 && !config.quick);

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << report.pretty() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  return killed.failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace openei::bench

int main(int argc, char** argv) {
  openei::common::set_log_level(openei::common::LogLevel::kError);
  openei::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_fleet [--quick] [--out PATH]\n");
      return 2;
    }
  }
  return openei::bench::run(config);
}
