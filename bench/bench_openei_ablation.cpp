// E10 — Sec. III goal: "the EI attributes ... will have an order of
// magnitude improvement comparing to the current AI algorithms running on
// the deep learning package."
//
// Ablation: starting from a naive deployment (full cloud framework + the
// most accurate model), stack OpenEI's mechanisms one at a time on a
// Raspberry Pi 3 and track the ALEM attributes:
//   baseline -> +lite openei package -> +int8 quantization -> +pruning
//   -> +model selector (latency objective, accuracy floor).
// Plus kernel microbenchmarks for the substrate (matmul, conv paths,
// quantized matmul).
#include "bench_common.h"

#include "common/rng.h"
#include "compress/pruning.h"
#include "compress/quantize_model.h"
#include "data/synthetic.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "selector/capability_db.h"
#include "selector/selecting_algorithm.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"

using namespace openei;

namespace {

void print_stage(const char* stage, double accuracy,
                 const hwsim::InferenceCost& cost,
                 const hwsim::InferenceCost& baseline) {
  std::printf("%-34s acc %.3f  %10s (%5.1fx)  %9s (%5.1fx)  %8.2e J (%5.1fx)\n",
              stage, accuracy, bench::format_seconds(cost.latency_s).c_str(),
              baseline.latency_s / cost.latency_s,
              bench::format_bytes(static_cast<double>(cost.memory_bytes)).c_str(),
              static_cast<double>(baseline.memory_bytes) /
                  static_cast<double>(cost.memory_bytes),
              cost.energy_j, baseline.energy_j / cost.energy_j);
}

void run_ablation() {
  bench::banner("E10: stacked OpenEI optimizations on raspberry-pi-3");
  common::Rng rng(191);
  auto dataset = data::make_blobs(800, 24, 5, rng, 2.5F);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);

  nn::TrainOptions topt;
  topt.epochs = 25;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::Model big = nn::zoo::make_mlp("big", 24, 5, {256, 128}, rng);
  nn::fit(big, train, topt);
  nn::Model small = nn::zoo::make_mlp("small", 24, 5, {16}, rng);
  nn::fit(small, train, topt);

  auto pi = hwsim::raspberry_pi_3();
  auto baseline_cost = hwsim::estimate_inference(big, hwsim::full_framework(), pi);
  std::printf("%-34s %9s %21s %19s %20s\n", "stage", "", "latency", "memory",
              "energy");
  print_stage("baseline: big model, full fw", nn::evaluate_accuracy(big, test),
              baseline_cost, baseline_cost);

  auto lite_cost = hwsim::estimate_inference(big, hwsim::openei_package(), pi);
  print_stage("+ openei lite package", nn::evaluate_accuracy(big, test),
              lite_cost, baseline_cost);

  auto quantized = compress::quantize_int8(big);
  auto quant_cost =
      hwsim::estimate_inference(quantized.model, hwsim::openei_package(), pi);
  print_stage("+ int8 quantization",
              nn::evaluate_accuracy(quantized.model, test), quant_cost,
              baseline_cost);

  compress::PruneOptions prune;
  prune.sparsity = 0.8F;
  prune.finetune_epochs = 4;
  prune.train.sgd.learning_rate = 0.02F;
  prune.train.sgd.momentum = 0.9F;
  auto pruned = compress::magnitude_prune(big, prune, &train);
  auto pruned_quantized = compress::quantize_int8(pruned.model);
  auto pruned_cost = hwsim::estimate_inference(pruned_quantized.model,
                                               hwsim::openei_package(), pi);
  print_stage("+ 80% pruning (fine-tuned)",
              nn::evaluate_accuracy(pruned_quantized.model, test), pruned_cost,
              baseline_cost);

  // Model selector: allow the small model when it still meets the accuracy
  // floor (A_req = 95% of the big model's accuracy).
  std::vector<nn::Model> candidates;
  candidates.push_back(big.clone());
  candidates.push_back(small.clone());
  candidates.push_back(pruned_quantized.model.clone());
  auto db = selector::CapabilityDatabase::build(
      candidates, {hwsim::openei_package()}, {pi}, test);
  selector::SelectionRequest request;
  request.objective = selector::Objective::kMinLatency;
  request.device_name = pi.name;
  request.requirements.min_accuracy = 0.95 * nn::evaluate_accuracy(big, test);
  auto pick = selector::select(db, request);
  if (pick) {
    hwsim::InferenceCost pick_cost{pick->alem.latency_s, pick->alem.energy_j,
                                   pick->alem.memory_bytes};
    print_stage(("+ model selector -> " + pick->model_name).c_str(),
                pick->alem.accuracy, pick_cost, baseline_cost);
  }
  std::printf("\n(goal check: 'an order of magnitude improvement' — see the "
              "x-factors above)\n");
}

// --- Substrate kernel microbenchmarks -------------------------------------

void BM_Matmul(benchmark::State& state) {
  common::Rng rng(192);
  auto n = static_cast<std::size_t>(state.range(0));
  tensor::Tensor a = tensor::Tensor::random_uniform(tensor::Shape{n, n}, rng);
  tensor::Tensor b = tensor::Tensor::random_uniform(tensor::Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_QuantizedMatmul(benchmark::State& state) {
  common::Rng rng(193);
  auto n = static_cast<std::size_t>(state.range(0));
  auto a = tensor::QuantizedTensor::quantize(
      tensor::Tensor::random_uniform(tensor::Shape{n, n}, rng));
  auto b = tensor::QuantizedTensor::quantize(
      tensor::Tensor::random_uniform(tensor::Shape{n, n}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::quantized_matmul(a, b));
  }
}
BENCHMARK(BM_QuantizedMatmul)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvDirect(benchmark::State& state) {
  common::Rng rng(194);
  tensor::Conv2dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  spec.kernel = 3;
  spec.padding = 1;
  tensor::Tensor input =
      tensor::Tensor::random_uniform(tensor::Shape{1, 8, 16, 16}, rng);
  tensor::Tensor w =
      tensor::Tensor::random_uniform(tensor::Shape{16, 8, 3, 3}, rng);
  tensor::Tensor b = tensor::Tensor::zeros(tensor::Shape{16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::conv2d(input, w, b, spec));
  }
}
BENCHMARK(BM_ConvDirect);

void BM_ConvIm2col(benchmark::State& state) {
  common::Rng rng(195);
  tensor::Conv2dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  spec.kernel = 3;
  spec.padding = 1;
  tensor::Tensor input =
      tensor::Tensor::random_uniform(tensor::Shape{1, 8, 16, 16}, rng);
  tensor::Tensor w =
      tensor::Tensor::random_uniform(tensor::Shape{16, 8, 3, 3}, rng);
  tensor::Tensor b = tensor::Tensor::zeros(tensor::Shape{16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::conv2d_im2col(input, w, b, spec));
  }
}
BENCHMARK(BM_ConvIm2col);

void BM_PrunedSparseMatmul(benchmark::State& state) {
  // matmul's zero-skip fast path: 90%-sparse A.
  common::Rng rng(196);
  std::size_t n = 128;
  tensor::Tensor a = tensor::Tensor::random_uniform(tensor::Shape{n, n}, rng);
  for (std::size_t i = 0; i < a.elements(); ++i) {
    if (rng.uniform() < 0.9) a[i] = 0.0F;
  }
  tensor::Tensor b = tensor::Tensor::random_uniform(tensor::Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
}
BENCHMARK(BM_PrunedSparseMatmul);

}  // namespace

OPENEI_BENCH_MAIN(run_ablation)
