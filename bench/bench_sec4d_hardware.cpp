// E12 — Sec. IV-D: heterogeneous hardware for EI.
//
// Reproduces the section's cited orderings on the simulated substrate:
//  - EIE [56] "exploits DNN sparsity ... 60x more energy efficient":
//    a sparse accelerator's advantage appears only on pruned models;
//  - ESE [59] on FPGA "achieved higher energy efficiency compared with the
//    CPU and GPU": the int8 datapath pays off on quantized models;
//  - Biookaghazadeh et al. [60]: "the FPGA is more suitable for EI
//    application scenarios" (throughput-per-watt), while the GPU keeps the
//    raw-latency crown on dense float models.
#include "bench_common.h"

#include "common/rng.h"
#include "compress/pruning.h"
#include "compress/quantize_model.h"
#include "data/synthetic.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"

using namespace openei;

namespace {

void print_device_row(const char* label, const nn::Model& model,
                      const hwsim::DeviceProfile& device) {
  auto cost = hwsim::estimate_inference(model, hwsim::openei_package(), device);
  double inferences_per_joule = cost.energy_j > 0.0 ? 1.0 / cost.energy_j : 0.0;
  std::printf("  %-24s %12s %10.2e J %14.0f inf/J\n", label,
              bench::format_seconds(cost.latency_s).c_str(), cost.energy_j,
              inferences_per_joule);
}

void run_sec4d() {
  bench::banner("E12 / Sec. IV-D: heterogeneous hardware for EI");
  // A speech/LSTM-scale dense workload (ESE's regime): big enough that
  // compute and weight traffic — not per-op dispatch — dominate, which is
  // where accelerator datapaths differentiate.  Accuracy is not at issue
  // here (E1 covers compression-vs-accuracy), so no training is needed.
  common::Rng rng(211);
  nn::Model dense_model = nn::zoo::make_mlp("dnn", 32, 4, {2048, 1024}, rng);

  compress::PruneOptions prune;
  prune.sparsity = 0.9F;
  prune.finetune_epochs = 0;
  auto pruned = compress::magnitude_prune(dense_model, prune, nullptr);
  auto quantized = compress::quantize_int8(dense_model);

  std::vector<std::pair<const char*, hwsim::DeviceProfile>> devices = {
      {"raspberry-pi-4 (CPU)", hwsim::raspberry_pi_4()},
      {"edge-gpu", hwsim::edge_gpu()},
      {"edge-fpga", hwsim::edge_fpga()},
      {"eie-sparse-accelerator", hwsim::eie_sparse_accelerator()},
  };

  bench::section("dense float model (what GPUs like)");
  for (const auto& [label, device] : devices) {
    print_device_row(label, dense_model, device);
  }

  bench::section("90%-pruned model (what EIE was built for)");
  for (const auto& [label, device] : devices) {
    print_device_row(label, pruned.model, device);
  }

  bench::section("int8-quantized model (what the FPGA datapath likes)");
  for (const auto& [label, device] : devices) {
    print_device_row(label, quantized.model, device);
  }

  std::printf("\npaper shape checks:\n");
  auto eff = [&](const nn::Model& model, const hwsim::DeviceProfile& device) {
    return 1.0 /
           hwsim::estimate_inference(model, hwsim::openei_package(), device)
               .energy_j;
  };
  std::printf("  EIE inf/J gain from pruning: %.1fx (dense) -> %.1fx (pruned) "
              "vs edge-gpu\n",
              eff(dense_model, hwsim::eie_sparse_accelerator()) /
                  eff(dense_model, hwsim::edge_gpu()),
              eff(pruned.model, hwsim::eie_sparse_accelerator()) /
                  eff(pruned.model, hwsim::edge_gpu()));
  std::printf("  FPGA-vs-GPU inf/J on quantized model: %.1fx\n",
              eff(quantized.model, hwsim::edge_fpga()) /
                  eff(quantized.model, hwsim::edge_gpu()));
  double gpu_latency =
      hwsim::estimate_inference(dense_model, hwsim::openei_package(),
                                hwsim::edge_gpu())
          .latency_s;
  double fpga_latency =
      hwsim::estimate_inference(dense_model, hwsim::openei_package(),
                                hwsim::edge_fpga())
          .latency_s;
  std::printf("  GPU keeps the raw-latency crown on dense floats: %.1fx "
              "faster than FPGA\n",
              fpga_latency / gpu_latency);

  bench::section("open problem IV-D #1: max speed under a power cap "
                 "(jetson-tx2, DVFS f^3 law)");
  auto jetson = hwsim::jetson_tx2();
  std::printf("%-12s %12s %14s %12s\n", "cap (W)", "GFLOPS", "latency",
              "energy/inf");
  for (double cap : {15.0, 12.0, 10.0, 8.0, 6.5, 5.5}) {
    auto capped = jetson.with_power_cap(cap);
    auto cost =
        hwsim::estimate_inference(dense_model, hwsim::openei_package(), capped);
    std::printf("%-12.1f %12.1f %14s %10.2e J\n", cap, capped.effective_gflops,
                bench::format_seconds(cost.latency_s).c_str(), cost.energy_j);
  }
  std::printf("(the f^3 dynamic-power law answers 'the maximum speed the "
              "hardware reaches' at each budget)\n");
}

void BM_CostEstimateDense(benchmark::State& state) {
  common::Rng rng(212);
  nn::Model model = nn::zoo::make_mlp("m", 32, 4, {256, 128}, rng);
  auto device = hwsim::eie_sparse_accelerator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hwsim::estimate_inference(model, hwsim::openei_package(), device));
  }
}
BENCHMARK(BM_CostEstimateDense);

}  // namespace

OPENEI_BENCH_MAIN(run_sec4d)
