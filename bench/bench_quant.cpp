// Int8 engine bench: float vs quantized execution on the zoo MLP and the
// mini-VGG CNN.  For each workload it trains a float model briefly, runs
// post-training calibrated int8 quantization, then reports single-sample
// p50/p95 latency (served through InferenceSession, i.e. the zero-alloc
// forward arena), ops/sec, weight storage bytes, and float-vs-int8 top-1
// agreement.  Writes BENCH_quant.json so CI can archive the trajectory.
//
// Usage: bench_quant [--quick] [--out PATH]
//   --quick  fewer reps / smaller training budget (CI smoke job)
//   --out    output JSON path (default BENCH_quant.json in the CWD)
//
// The top-level p50_speedup / weight_ratio / top1_agreement fields are the
// *minimum* across workloads, so a single threshold check covers both.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "compress/quantize_model.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/inference.h"
#include "tensor/ops.h"

namespace openei::bench {
namespace {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using tensor::Shape;
using tensor::Tensor;

struct Config {
  bool quick = false;
  std::string out_path = "BENCH_quant.json";
};

struct LatencyStats {
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

template <typename Work>
LatencyStats measure(std::size_t reps, const Work& work) {
  std::vector<double> latencies_ms;
  latencies_ms.reserve(reps);
  double total_s = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    common::Stopwatch watch;
    work();
    double elapsed = watch.elapsed_seconds();
    total_s += elapsed;
    latencies_ms.push_back(elapsed * 1e3);
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double p) {
    std::size_t index = static_cast<std::size_t>(
        p * static_cast<double>(latencies_ms.size() - 1) + 0.5);
    return latencies_ms[index];
  };
  LatencyStats stats;
  stats.ops_per_sec = total_s > 0.0 ? static_cast<double>(reps) / total_s : 0.0;
  stats.p50_ms = percentile(0.50);
  stats.p95_ms = percentile(0.95);
  return stats;
}

/// Single-sample serving latency through an InferenceSession, cycling over
/// pre-sliced probe rows so every rep pays only the forward pass.
LatencyStats measure_single_sample(runtime::InferenceSession& session,
                                   const std::vector<Tensor>& singles,
                                   std::size_t reps) {
  std::size_t index = 0;
  // Warm-up: page in weights, let the arena reach steady state.
  for (std::size_t i = 0; i < std::min<std::size_t>(singles.size(), 8); ++i) {
    session.run(singles[i]);
  }
  return measure(reps, [&] {
    benchmark::DoNotOptimize(session.run(singles[index]));
    index = (index + 1) % singles.size();
  });
}

std::vector<Tensor> slice_singles(const Tensor& batch, std::size_t count) {
  std::size_t rows = batch.shape().dim(0);
  std::size_t sample = batch.elements() / rows;
  std::vector<std::size_t> dims = batch.shape().dims();
  dims[0] = 1;
  Shape single_shape(dims);
  std::vector<Tensor> singles;
  for (std::size_t r = 0; r < std::min(rows, count); ++r) {
    Tensor row(single_shape);
    const float* src = batch.data().data() + r * sample;
    std::copy(src, src + sample, row.data().data());
    singles.push_back(std::move(row));
  }
  return singles;
}

double top1_agreement(nn::Model& a, nn::Model& b, const Tensor& probes) {
  auto pa = a.predict(probes);
  auto pb = b.predict(probes);
  std::size_t same = 0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i] == pb[i]) ++same;
  }
  return pa.empty() ? 0.0
                    : static_cast<double>(same) / static_cast<double>(pa.size());
}

Json stats_to_json(const LatencyStats& stats, std::size_t weight_bytes,
                   bool arena) {
  return Json(JsonObject{{"p50_ms", Json(stats.p50_ms)},
                         {"p95_ms", Json(stats.p95_ms)},
                         {"ops_per_sec", Json(stats.ops_per_sec)},
                         {"weight_bytes", Json(weight_bytes)},
                         {"arena", Json(arena)}});
}

struct WorkloadResult {
  Json json;
  double p50_speedup = 0.0;
  double weight_ratio = 0.0;
  double agreement = 0.0;
};

/// Shared measurement tail once a trained float model + probe/calibration
/// tensors exist: quantize, compare storage, agreement, then serve both
/// models single-sample through sessions and compare p50.
WorkloadResult run_workload(const std::string& name, nn::Model model,
                            const Tensor& calibration, const Tensor& probes,
                            std::size_t reps) {
  section(name);
  compress::CompressedModel quantized =
      compress::quantize_int8(model, calibration);
  std::size_t float_bytes = model.storage_bytes();
  std::size_t int8_bytes = quantized.storage_bytes;
  double weight_ratio = int8_bytes > 0
                            ? static_cast<double>(float_bytes) /
                                  static_cast<double>(int8_bytes)
                            : 0.0;
  double agreement = top1_agreement(model, quantized.model, probes);

  std::vector<Tensor> singles = slice_singles(probes, 64);
  runtime::InferenceSession float_session(
      std::move(model), hwsim::openei_package(), hwsim::raspberry_pi_4());
  runtime::InferenceSession int8_session(std::move(quantized.model),
                                         hwsim::openei_package(),
                                         hwsim::raspberry_pi_4());
  LatencyStats float_stats = measure_single_sample(float_session, singles, reps);
  LatencyStats int8_stats = measure_single_sample(int8_session, singles, reps);
  double p50_speedup =
      int8_stats.p50_ms > 0.0 ? float_stats.p50_ms / int8_stats.p50_ms : 0.0;

  std::printf("%8s %10s %10s %14s %12s %7s\n", "engine", "p50", "p95",
              "ops/sec", "weights", "arena");
  std::printf("%8s %10s %10s %14.1f %12s %7s\n", "float",
              format_seconds(float_stats.p50_ms * 1e-3).c_str(),
              format_seconds(float_stats.p95_ms * 1e-3).c_str(),
              float_stats.ops_per_sec, format_bytes(float_bytes).c_str(),
              float_session.arena_active() ? "yes" : "no");
  std::printf("%8s %10s %10s %14.1f %12s %7s\n", "int8",
              format_seconds(int8_stats.p50_ms * 1e-3).c_str(),
              format_seconds(int8_stats.p95_ms * 1e-3).c_str(),
              int8_stats.ops_per_sec, format_bytes(int8_bytes).c_str(),
              int8_session.arena_active() ? "yes" : "no");
  std::printf("p50 speedup %.2fx   weight ratio %.2fx   top-1 agreement "
              "%.1f%% (%zu probes)\n",
              p50_speedup, weight_ratio, agreement * 100.0,
              probes.shape().dim(0));

  WorkloadResult result;
  result.p50_speedup = p50_speedup;
  result.weight_ratio = weight_ratio;
  result.agreement = agreement;
  result.json = Json(JsonObject{
      {"name", Json(name)},
      {"reps", Json(reps)},
      {"float", stats_to_json(float_stats, float_bytes,
                              float_session.arena_active())},
      {"int8", stats_to_json(int8_stats, int8_bytes,
                             int8_session.arena_active())},
      {"p50_speedup", Json(p50_speedup)},
      {"weight_ratio", Json(weight_ratio)},
      {"top1_agreement", Json(agreement)},
      {"agreement_samples", Json(probes.shape().dim(0))},
  });
  return result;
}

WorkloadResult run_mlp(const Config& config) {
  common::Rng rng(41);
  auto dataset = data::make_blobs(config.quick ? 300 : 900, 128, 10, rng,
                                  /*separation=*/1.4F, /*stddev=*/1.2F);
  // Edge-typical MLP scale (HAR / keyword-spotting sized hidden layers).
  nn::Model model = nn::zoo::make_mlp("mlp_int8", 128, 10, {256, 256}, rng);
  nn::TrainOptions options;
  options.epochs = config.quick ? 4 : 20;
  options.sgd.learning_rate = 0.05F;
  options.sgd.momentum = 0.9F;
  nn::fit(model, dataset, options);

  Tensor calibration = dataset.slice(0, 128).features;
  common::Rng probe_rng(42);
  Tensor probes =
      data::make_blobs(256, 128, 10, probe_rng, 1.4F, 1.2F).features;
  return run_workload("MLP 128->{256,256}->10", std::move(model), calibration,
                      probes, config.quick ? 50 : 400);
}

WorkloadResult run_cnn(const Config& config) {
  common::Rng rng(43);
  nn::zoo::ImageSpec spec{3, 16, 4};
  auto dataset = data::make_images(config.quick ? 96 : 320, spec.channels,
                                   spec.size, spec.classes, rng);
  nn::Model model = nn::zoo::make_mini_vgg(spec, rng);
  nn::TrainOptions options;
  options.epochs = config.quick ? 1 : 6;
  options.batch_size = 16;
  options.sgd.learning_rate = 0.02F;
  options.sgd.momentum = 0.9F;
  nn::fit(model, dataset, options);

  Tensor calibration = dataset.slice(0, std::min<std::size_t>(
                                            dataset.size(), 128)).features;
  common::Rng probe_rng(44);
  Tensor probes = data::make_images(256, spec.channels, spec.size,
                                    spec.classes, probe_rng)
                      .features;
  return run_workload("mini-VGG 3x16x16->4", std::move(model), calibration,
                      probes, config.quick ? 30 : 200);
}

int run(const Config& config) {
  banner(std::string("Int8 engine: float vs quantized execution") +
         (config.quick ? " (quick)" : ""));
  std::printf("threads: %zu\n", common::thread_count());

  WorkloadResult mlp = run_mlp(config);
  WorkloadResult cnn = run_cnn(config);

  JsonArray workloads;
  workloads.push_back(std::move(mlp.json));
  workloads.push_back(std::move(cnn.json));

  Json report(JsonObject{
      {"bench", Json("quant")},
      {"quick", Json(config.quick)},
      {"threads", Json(common::thread_count())},
      {"workloads", Json(std::move(workloads))},
      // Worst case across workloads: one threshold check covers both.
      {"p50_speedup", Json(std::min(mlp.p50_speedup, cnn.p50_speedup))},
      {"weight_ratio", Json(std::min(mlp.weight_ratio, cnn.weight_ratio))},
      {"top1_agreement", Json(std::min(mlp.agreement, cnn.agreement))},
  });
  // int8-vs-float on the same host is a fair comparison whenever the run
  // used full rep counts.
  set_host_info(report, !config.quick);

  section("summary (min across workloads)");
  std::printf("p50_speedup %.2fx   weight_ratio %.2fx   top1_agreement "
              "%.1f%%\n",
              std::min(mlp.p50_speedup, cnn.p50_speedup),
              std::min(mlp.weight_ratio, cnn.weight_ratio),
              std::min(mlp.agreement, cnn.agreement) * 100.0);

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << report.pretty() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace openei::bench

int main(int argc, char** argv) {
  openei::common::set_log_level(openei::common::LogLevel::kError);
  openei::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_quant [--quick] [--out PATH]\n");
      return 2;
    }
  }
  return openei::bench::run(config);
}
