// fp32 GEMM kernel bench: dispatched SIMD microkernels (tensor::gemm_packed
// / tensor::gemm) vs the exact scalar reference (tensor::gemm_ref), single
// threaded so the number is kernel quality, not core count.  Writes
// BENCH_gemm.json so CI can archive per-host GFLOP/s and gate the speedup.
//
// Usage: bench_gemm [--quick] [--out PATH] [--min-speedup X] [--min-gflops X]
//   --quick        fewer reps / smaller sweep (CI smoke job)
//   --out          output JSON path (default BENCH_gemm.json in the CWD)
//   --min-speedup  fail (exit 1) if prepacked speedup vs gemm_ref at 256^3
//                  falls below X (checked only when a SIMD level is detected)
//   --min-gflops   fail if single-thread prepacked GFLOP/s at 256^3 is lower
//
// The speedup gate is only meaningful where the dispatcher found AVX2+FMA or
// better; on a scalar-dispatch host the packed path legitimately runs near
// 1x and speedup_valid records that.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/linalg.h"
#include "tensor/pack.h"
#include "tensor/tensor.h"

namespace openei::bench {
namespace {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using tensor::PackedMatrix;
using tensor::Shape;
using tensor::Tensor;

struct Config {
  bool quick = false;
  std::string out_path = "BENCH_gemm.json";
  double min_speedup = 0.0;
  double min_gflops = 0.0;
};

struct GemmCase {
  std::size_t m, k, n;
};

/// Best-of-reps wall time for `work` (min filters scheduler noise, which is
/// the right statistic for a throughput kernel).
template <typename Work>
double best_seconds(std::size_t reps, const Work& work) {
  double best = 0.0;
  work();  // warm-up: page in buffers, settle turbo
  for (std::size_t r = 0; r < reps; ++r) {
    common::Stopwatch timer;
    work();
    double s = timer.elapsed_seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

Json run_case(const GemmCase& c, std::size_t reps, double* speedup_out,
              double* prepacked_gflops_out) {
  common::Rng rng(0x5eed0000 + c.m + c.k * 7 + c.n * 131);
  Tensor a = Tensor::random_uniform(Shape{c.m, c.k}, rng);
  Tensor b = Tensor::random_uniform(Shape{c.k, c.n}, rng);
  Tensor out(Shape{c.m, c.n});
  PackedMatrix bp = PackedMatrix::pack(b);
  const double flops = 2.0 * static_cast<double>(c.m) *
                       static_cast<double>(c.k) * static_cast<double>(c.n);

  double ref_s = best_seconds(reps, [&] {
    std::fill(out.data().begin(), out.data().end(), 0.0F);
    tensor::gemm_ref(a.data().data(), b.data().data(), out.data().data(), c.m,
                     c.k, c.n);
  });
  // Dispatched path as tensor::matmul sees it: pack-per-call included.
  double packed_s = best_seconds(reps, [&] {
    std::fill(out.data().begin(), out.data().end(), 0.0F);
    tensor::gemm(a.data().data(), b.data().data(), out.data().data(), c.m,
                 c.k, c.n);
  });
  // Steady-state arena path: weights prepacked at plan time.
  double prepacked_s = best_seconds(reps, [&] {
    tensor::gemm_packed(a.data().data(), c.m, bp, nullptr, false,
                        /*accumulate=*/false, out.data().data());
  });

  double speedup = prepacked_s > 0.0 ? ref_s / prepacked_s : 0.0;
  if (speedup_out != nullptr) *speedup_out = speedup;
  if (prepacked_gflops_out != nullptr) {
    *prepacked_gflops_out = flops / prepacked_s * 1e-9;
  }
  std::printf("%5zu x %5zu x %5zu  ref %7.2f GF/s  packed %7.2f GF/s  "
              "prepacked %7.2f GF/s  speedup %5.2fx\n",
              c.m, c.k, c.n, flops / ref_s * 1e-9, flops / packed_s * 1e-9,
              flops / prepacked_s * 1e-9, speedup);
  return Json(JsonObject{
      {"m", Json(c.m)},
      {"k", Json(c.k)},
      {"n", Json(c.n)},
      {"ref_gflops", Json(flops / ref_s * 1e-9)},
      {"packed_gflops", Json(flops / packed_s * 1e-9)},
      {"prepacked_gflops", Json(flops / prepacked_s * 1e-9)},
      {"speedup_vs_ref", Json(speedup)},
  });
}

int run_main(const Config& config) {
  banner("fp32 SIMD GEMM vs scalar reference (single thread)");
  common::set_thread_count(1);
  std::printf("dispatch: fp32=%s int8=%s\n", tensor::fp32_isa_name(),
              tensor::int8_isa_name());

  std::vector<GemmCase> cases = {{64, 64, 64}, {128, 128, 128},
                                 {256, 256, 256}};
  if (!config.quick) {
    cases.push_back({384, 384, 384});
    cases.push_back({512, 512, 512});
  }
  cases.push_back({173, 211, 97});  // ragged: exercises all tail kernels
  const std::size_t reps = config.quick ? 5 : 12;

  section("throughput");
  JsonArray sizes;
  double speedup_256 = 0.0;
  double gflops_256 = 0.0;
  for (const GemmCase& c : cases) {
    double speedup = 0.0;
    double gflops = 0.0;
    sizes.push_back(run_case(c, reps, &speedup, &gflops));
    if (c.m == 256 && c.k == 256 && c.n == 256) {
      speedup_256 = speedup;
      gflops_256 = gflops;
    }
  }

  const bool simd_detected = tensor::fp32_isa_level_detected() >= 1;
  section("summary");
  std::printf("256^3 prepacked: %.2f GFLOP/s, %.2fx vs scalar reference%s\n",
              gflops_256, speedup_256,
              simd_detected ? "" : "  (informational: scalar dispatch)");

  Json report{JsonObject{}};
  report.set("bench", "gemm");
  report.set("quick", config.quick);
  report.set("threads", std::size_t{1});
  report.set("sizes", Json(std::move(sizes)));
  report.set("speedup_256", speedup_256);
  report.set("prepacked_gflops_256", gflops_256);
  report.set("min_speedup_gate", config.min_speedup);
  report.set("min_gflops_gate", config.min_gflops);
  // The speedup claim only holds where a SIMD kernel actually dispatched.
  set_host_info(report, simd_detected);

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << report.pretty() << "\n";
  std::printf("wrote %s\n", config.out_path.c_str());

  if (simd_detected && config.min_speedup > 0.0 &&
      speedup_256 < config.min_speedup) {
    std::fprintf(stderr,
                 "FAIL: 256^3 speedup %.2fx below the %.2fx floor\n",
                 speedup_256, config.min_speedup);
    return 1;
  }
  if (simd_detected && config.min_gflops > 0.0 &&
      gflops_256 < config.min_gflops) {
    std::fprintf(stderr,
                 "FAIL: 256^3 throughput %.2f GFLOP/s below the %.2f floor\n",
                 gflops_256, config.min_gflops);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace openei::bench

int main(int argc, char** argv) {
  openei::common::set_log_level(openei::common::LogLevel::kError);
  openei::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      config.min_speedup = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-gflops") == 0 && i + 1 < argc) {
      config.min_gflops = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  return openei::bench::run_main(config);
}
