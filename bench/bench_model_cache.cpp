// Model-lifecycle bench: the cost of the memory-governed session cache.
// Reports warm-hit vs cold-miss acquire latency (p50/p95), hot-swap install
// latency through the copy-on-write registry, and LRU eviction throughput
// when the working set exceeds the budget.  Writes BENCH_cache.json so CI
// can archive the trajectory.
//
// Usage: bench_model_cache [--quick] [--out PATH]
//   --quick  fewer reps (CI smoke job)
//   --out    output JSON path (default BENCH_cache.json in the CWD)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/rng.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"
#include "runtime/model_registry.h"
#include "runtime/session_cache.h"

namespace openei::bench {
namespace {

using common::Json;
using common::JsonObject;
using common::Rng;

struct Config {
  bool quick = false;
  std::string out_path = "BENCH_cache.json";
};

struct LatencyStats {
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

/// Times `work` `reps` times; `setup` runs before each rep outside the
/// timed window (cold-miss measurement needs an untimed clear()).
template <typename Setup, typename Work>
LatencyStats measure(std::size_t reps, const Setup& setup, const Work& work) {
  std::vector<double> latencies_ms;
  latencies_ms.reserve(reps);
  double total_s = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    setup();
    common::Stopwatch watch;
    work();
    double elapsed = watch.elapsed_seconds();
    total_s += elapsed;
    latencies_ms.push_back(elapsed * 1e3);
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double p) {
    std::size_t index = static_cast<std::size_t>(
        p * static_cast<double>(latencies_ms.size() - 1) + 0.5);
    return latencies_ms[index];
  };
  LatencyStats stats;
  stats.ops_per_sec = total_s > 0.0 ? static_cast<double>(reps) / total_s : 0.0;
  stats.p50_ms = percentile(0.50);
  stats.p95_ms = percentile(0.95);
  return stats;
}

Json stats_to_json(const LatencyStats& stats) {
  return Json(JsonObject{{"p50_ms", Json(stats.p50_ms)},
                         {"p95_ms", Json(stats.p95_ms)},
                         {"ops_per_sec", Json(stats.ops_per_sec)}});
}

int run(const Config& config) {
  banner(std::string("Model lifecycle: session-cache acquire, hot-swap, "
                     "eviction") +
         (config.quick ? "  [quick]" : ""));

  hwsim::DeviceProfile device = hwsim::raspberry_pi_4();
  hwsim::PackageSpec package = hwsim::openei_package();
  Rng rng(42);

  const std::size_t warm_reps = config.quick ? 200 : 5000;
  const std::size_t cold_reps = config.quick ? 30 : 300;
  const std::size_t swap_reps = config.quick ? 30 : 300;
  const std::size_t evict_acquires = config.quick ? 60 : 600;

  runtime::ModelRegistry registry;
  registry.put({"bench", "serve",
                nn::zoo::make_mlp("det", 16, 4, {64, 32}, rng), 0.9});
  std::size_t session_bytes =
      hwsim::estimate_inference(registry.get("det")->model, package, device)
          .memory_bytes;

  runtime::SessionCache::Options options;
  options.budget_bytes = 8 * session_bytes;
  runtime::SessionCache cache(registry, package, device, options);

  // --- Warm hit: the steady-state serving path (shared snapshot, no clone).
  cache.acquire("det");  // materialize once
  LatencyStats warm = measure(
      warm_reps, [] {}, [&] { benchmark::DoNotOptimize(cache.acquire("det")); });
  section("warm hit");
  std::printf("p50 %s   p95 %s   %.0f acquires/s\n",
              format_seconds(warm.p50_ms * 1e-3).c_str(),
              format_seconds(warm.p95_ms * 1e-3).c_str(), warm.ops_per_sec);

  // --- Cold miss: clear() untimed, then one full materialization (model
  // clone + arena plan + admission accounting).
  LatencyStats cold = measure(
      cold_reps, [&] { cache.clear(); },
      [&] { benchmark::DoNotOptimize(cache.acquire("det")); });
  section("cold miss");
  std::printf("p50 %s   p95 %s   %.0f materializations/s\n",
              format_seconds(cold.p50_ms * 1e-3).c_str(),
              format_seconds(cold.p95_ms * 1e-3).c_str(), cold.ops_per_sec);

  // --- Hot-swap: installing a new version through the copy-on-write
  // registry (entries prepared untimed; put is the measured step).
  std::vector<runtime::ModelEntry> versions;
  versions.reserve(swap_reps);
  for (std::size_t i = 0; i < swap_reps; ++i) {
    versions.push_back({"bench", "serve",
                        nn::zoo::make_mlp("det", 16, 4, {64, 32}, rng), 0.9});
  }
  std::size_t next_version = 0;
  LatencyStats swap = measure(
      swap_reps, [] {},
      [&] { registry.put(std::move(versions[next_version++])); });
  section("hot swap (registry install)");
  std::printf("p50 %s   p95 %s\n", format_seconds(swap.p50_ms * 1e-3).c_str(),
              format_seconds(swap.p95_ms * 1e-3).c_str());

  // --- Eviction throughput: a working set of 4 equal-size models against a
  // 2-session budget; every acquire in the cycle is a miss + an eviction.
  runtime::ModelRegistry fleet_registry;
  std::vector<std::string> fleet;
  for (int m = 0; m < 4; ++m) {
    std::string name = "evict_m" + std::to_string(m);
    fleet_registry.put({"bench", "serve",
                        nn::zoo::make_mlp(name, 16, 4, {64, 32}, rng), 0.9});
    fleet.push_back(std::move(name));
  }
  runtime::SessionCache::Options tight;
  tight.budget_bytes = 2 * session_bytes + session_bytes / 2;
  runtime::SessionCache tight_cache(fleet_registry, package, device, tight);
  common::Stopwatch evict_watch;
  for (std::size_t i = 0; i < evict_acquires; ++i) {
    benchmark::DoNotOptimize(tight_cache.acquire(fleet[i % fleet.size()]));
  }
  double evict_elapsed = evict_watch.elapsed_seconds();
  runtime::SessionCache::Stats tight_stats = tight_cache.stats();
  double evictions_per_sec =
      evict_elapsed > 0.0
          ? static_cast<double>(tight_stats.evictions) / evict_elapsed
          : 0.0;
  section("eviction throughput (4 models, 2-session budget)");
  std::printf("%llu evictions in %s  ->  %.0f evictions/s\n",
              static_cast<unsigned long long>(tight_stats.evictions),
              format_seconds(evict_elapsed).c_str(), evictions_per_sec);

  double speedup = warm.p50_ms > 0.0 ? cold.p50_ms / warm.p50_ms : 0.0;
  section("summary");
  std::printf("warm p50 / cold p50: %.0fx cheaper to hit than to "
              "materialize\n", speedup);

  Json report{JsonObject{}};
  report.set("bench", "model_cache");
  report.set("quick", config.quick);
  report.set("session_bytes", session_bytes);
  report.set("budget_bytes", options.budget_bytes);
  report.set("warm_hit", stats_to_json(warm));
  report.set("cold_miss", stats_to_json(cold));
  report.set("warm_vs_cold_p50_speedup", speedup);
  report.set("hot_swap", stats_to_json(swap));
  Json eviction{JsonObject{}};
  eviction.set("acquires", evict_acquires);
  eviction.set("evictions", tight_stats.evictions);
  eviction.set("evictions_per_sec", evictions_per_sec);
  report.set("eviction", std::move(eviction));
  // Warm-vs-cold compares latencies on one host; only quick runs demote the
  // speedup to informational.
  set_host_info(report, !config.quick);

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << report.pretty() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace openei::bench

int main(int argc, char** argv) {
  openei::common::set_log_level(openei::common::LogLevel::kError);
  openei::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_model_cache [--quick] [--out PATH]\n");
      return 2;
    }
  }
  return openei::bench::run(config);
}
