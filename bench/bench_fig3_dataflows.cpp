// E4 — Figure 3: the three EI dataflows, compared head-to-head.
//
//   dataflow 1 (cloud inference)      — "traditional machine intelligence"
//   dataflow 2 (edge inference)       — "the current EI dataflow"
//   dataflow 3 (edge personalization) — "the future dataflow of EI"
//
// The edge's local data is drifted relative to the cloud training set, so
// the experiment shows exactly the paper's story: dataflows 1/2 share the
// general model's degraded accuracy; dataflow 3 pays a one-time local
// retraining cost and wins accuracy while keeping edge-inference latency.
#include "bench_common.h"

#include "collab/cloud_edge.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "runtime/inference.h"

using namespace openei;

namespace {

void print_metrics(const collab::DataflowMetrics& m) {
  std::printf("%-22s %9.3f %14s %14s %14s %12.2e\n", m.dataflow.c_str(),
              m.accuracy,
              bench::format_seconds(m.latency_per_inference_s).c_str(),
              bench::format_bytes(m.bytes_per_inference).c_str(),
              bench::format_seconds(m.setup_latency_s).c_str(),
              m.energy_per_inference_j);
}

void run_fig3() {
  bench::banner("E4 / Fig. 3: the three EI dataflows");

  // Cloud-side training data vs drifted edge-local data.
  common::Rng rng(131);
  auto cloud_data = data::make_blobs(800, 16, 4, rng, 2.0F, 1.2F);
  auto [cloud_train, cloud_test] = data::train_test_split(cloud_data, 0.8, rng);

  nn::Model general = nn::zoo::make_mlp("general", 16, 4, {32}, rng);
  nn::TrainOptions topt;
  topt.epochs = 25;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::fit(general, cloud_train, topt);
  std::printf("cloud-trained general model: accuracy %.3f on cloud test data\n",
              nn::evaluate_accuracy(general, cloud_test));

  common::Rng drift_rng(132);
  auto local = data::apply_drift(cloud_data, drift_rng, 0.8F);
  common::Rng split_rng(133);
  auto [local_train, local_test] = data::train_test_split(local, 0.7, split_rng);
  std::printf("edge-local data is drifted: general model drops to %.3f\n\n",
              nn::evaluate_accuracy(general, local_test));

  auto edge = hwsim::raspberry_pi_4();
  auto link = hwsim::cellular_lte();
  nn::TrainOptions retrain;
  retrain.epochs = 15;
  retrain.sgd.learning_rate = 0.05F;
  retrain.sgd.momentum = 0.9F;

  std::printf("%-22s %9s %14s %14s %14s %12s\n", "dataflow", "accuracy",
              "latency/inf", "bytes/inf", "setup", "energy/inf J");
  print_metrics(collab::dataflow_cloud_inference(
      general, local_test, hwsim::cloud_gpu(), hwsim::full_framework(), link));
  print_metrics(collab::dataflow_edge_inference(general, local_test, edge,
                                                hwsim::openei_package(), link));
  print_metrics(collab::dataflow_edge_personalized(
      general, local_train, local_test, edge, hwsim::openei_package(), link,
      retrain));

  std::printf("\npaper shape check: dataflow 2 beats 1 on latency+bandwidth; "
              "dataflow 3 adds accuracy for a one-time setup cost\n");

  // Sweep drift magnitude: when is personalization worth it?
  bench::section("personalization gain vs drift magnitude");
  std::printf("%-10s %18s %22s\n", "drift", "general accuracy",
              "personalized accuracy");
  for (float magnitude : {0.0F, 0.25F, 0.5F, 0.75F, 1.0F}) {
    common::Rng d_rng(134);
    auto drifted = data::apply_drift(cloud_data, d_rng, magnitude);
    common::Rng s_rng(135);
    auto [d_train, d_test] = data::train_test_split(drifted, 0.7, s_rng);
    auto personalized = collab::dataflow_edge_personalized(
        general, d_train, d_test, edge, hwsim::openei_package(), link, retrain);
    nn::Model general_copy = general.clone();
    std::printf("%-10.2f %18.3f %22.3f\n", magnitude,
                nn::evaluate_accuracy(general_copy, d_test),
                personalized.accuracy);
  }
}

void BM_LocalHeadRetraining(benchmark::State& state) {
  common::Rng rng(136);
  auto dataset = data::make_blobs(200, 16, 4, rng);
  nn::Model model = nn::zoo::make_mlp("m", 16, 4, {32}, rng);
  nn::TrainOptions retrain;
  retrain.epochs = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::retrain_head_locally(
        model, dataset, hwsim::openei_package(), hwsim::raspberry_pi_4(),
        retrain));
  }
}
BENCHMARK(BM_LocalHeadRetraining);

}  // namespace

OPENEI_BENCH_MAIN(run_fig3)
