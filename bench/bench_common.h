// Shared helpers for the experiment benches.
//
// Each bench binary regenerates one paper artifact (EXPERIMENTS.md index):
// it prints the experiment's table(s) from main(), then runs any registered
// google-benchmark microbenchmarks.  Everything is seeded, so output is
// reproducible run-to-run.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "common/json.h"
#include "common/logging.h"
#include "tensor/pack.h"
#include "tensor/quantize.h"

namespace openei::bench {

inline void banner(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Human-readable engineering formats.
inline std::string format_seconds(double seconds) {
  char buffer[32];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", seconds);
  }
  return buffer;
}

inline std::string format_bytes(double bytes) {
  char buffer[32];
  if (bytes < 1024.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f B", bytes);
  } else if (bytes < 1024.0 * 1024.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f kB", bytes / 1024.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f MB", bytes / (1024.0 * 1024.0));
  }
  return buffer;
}

/// Host CPU model string from /proc/cpuinfo ("unknown" off Linux) — recorded
/// in every BENCH_*.json so archived numbers say what silicon produced them.
inline std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos) return line.substr(start);
      }
    }
  }
  return "unknown";
}

/// Uniform host/provenance fields every bench report carries: cpu_model,
/// host_cpus, the detected fp32/int8 SIMD dispatch levels, whether this
/// run's speedup numbers are gate-worthy (each bench supplies its own
/// predicate — quick runs and starved hosts report informational numbers),
/// and which energy accounting the numbers were produced under:
/// "none" (no device joule ledger in the loop — latency/throughput benches)
/// or "ledger" (every simulated inference charged the hwsim EnergyLedger,
/// so joule columns are conserved quantities, not cost-model estimates).
inline void set_host_info(common::Json& report, bool speedup_valid,
                          const std::string& energy_model = "none") {
  report.set("cpu_model", cpu_model());
  report.set("host_cpus",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  report.set("fp32_isa", tensor::fp32_isa_name(tensor::fp32_isa_level_detected()));
  report.set("fp32_isa_level", tensor::fp32_isa_level_detected());
  report.set("int8_isa", tensor::int8_isa_name());
  report.set("int8_isa_level", tensor::int8_isa_level());
  report.set("speedup_valid", speedup_valid);
  report.set("energy_model", energy_model);
}

/// Standard bench main body: quiet logs, print the experiment, then run the
/// registered microbenchmarks.
#define OPENEI_BENCH_MAIN(print_experiment_fn)                       \
  int main(int argc, char** argv) {                                  \
    ::openei::common::set_log_level(::openei::common::LogLevel::kError); \
    print_experiment_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                            \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    return 0;                                                        \
  }

}  // namespace openei::bench
