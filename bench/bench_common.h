// Shared helpers for the experiment benches.
//
// Each bench binary regenerates one paper artifact (EXPERIMENTS.md index):
// it prints the experiment's table(s) from main(), then runs any registered
// google-benchmark microbenchmarks.  Everything is seeded, so output is
// reproducible run-to-run.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/logging.h"

namespace openei::bench {

inline void banner(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Human-readable engineering formats.
inline std::string format_seconds(double seconds) {
  char buffer[32];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", seconds);
  }
  return buffer;
}

inline std::string format_bytes(double bytes) {
  char buffer[32];
  if (bytes < 1024.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f B", bytes);
  } else if (bytes < 1024.0 * 1024.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f kB", bytes / 1024.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f MB", bytes / (1024.0 * 1024.0));
  }
  return buffer;
}

/// Standard bench main body: quiet logs, print the experiment, then run the
/// registered microbenchmarks.
#define OPENEI_BENCH_MAIN(print_experiment_fn)                       \
  int main(int argc, char** argv) {                                  \
    ::openei::common::set_log_level(::openei::common::LogLevel::kError); \
    print_experiment_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                            \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    return 0;                                                        \
  }

}  // namespace openei::bench
