// E3 — Figure 2: cloud-edge and edge-edge collaboration.
//
// Reproduces the two collaboration modes of Sec. II-C:
//   (a) edge-edge: a compute-intensive batch partitioned across
//       heterogeneous edges "according to the computing power" — speedup
//       over the best single edge;
//   (b) edge-edge split inference (DDNN [17] flavour): optimal split layer
//       between a weak front device and a strong back device per link;
//   (c) cloud-edge: federated training rounds (retrain locally, upload,
//       average into a global model).
#include "bench_common.h"

#include "collab/cloud_edge.h"
#include "collab/edge_edge.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"

using namespace openei;

namespace {

void run_fig2() {
  bench::banner("E3 / Fig. 2: collaboration modes");
  common::Rng rng(121);

  bench::section("(a) edge-edge collaborative batch (1000 inferences)");
  nn::Model job = nn::zoo::make_mlp("batch_job", 32, 4, {256, 128}, rng);
  std::vector<hwsim::DeviceProfile> fleet = {
      hwsim::raspberry_pi_3(), hwsim::raspberry_pi_4(), hwsim::mobile_phone(),
      hwsim::jetson_tx2()};
  std::printf("%-28s %14s %12s %10s\n", "edges", "makespan", "best single",
              "speedup");
  for (std::size_t count = 1; count <= fleet.size(); ++count) {
    std::vector<hwsim::DeviceProfile> subset(fleet.begin(),
                                             fleet.begin() + count);
    auto result =
        collab::collaborative_batch(job, hwsim::openei_package(), subset, 1000);
    std::string names;
    for (const auto& device : subset) {
      names += names.empty() ? device.name : "+" + device.name;
    }
    std::printf("%-28s %14s %12s %9.2fx\n",
                count == 1 ? subset[0].name.c_str() : (std::to_string(count) + " edges").c_str(),
                bench::format_seconds(result.makespan_s).c_str(),
                bench::format_seconds(result.best_single_s).c_str(),
                result.speedup());
    if (count == fleet.size()) {
      std::printf("  power-proportional allocation:");
      for (std::size_t i = 0; i < subset.size(); ++i) {
        std::printf(" %s=%zu", subset[i].name.c_str(), result.allocation[i]);
      }
      std::printf("\n");
    }
  }

  bench::section("(b) split inference: vehicle front + edge-server back");
  nn::zoo::ImageSpec spec;
  nn::Model cnn = nn::zoo::make_mini_vgg(spec, rng);
  std::printf("%-14s %12s %14s %14s\n", "link", "best split", "split latency",
              "all-on-front");
  for (const auto& link : hwsim::default_links()) {
    auto split = collab::best_split(cnn, hwsim::openei_package(),
                                    hwsim::raspberry_pi_3(),
                                    hwsim::edge_server(), link);
    auto local = collab::evaluate_split(cnn, cnn.layer_count(),
                                        hwsim::openei_package(),
                                        hwsim::raspberry_pi_3(),
                                        hwsim::edge_server(), link);
    std::printf("%-14s %9zu/%-2zu %14s %14s\n", link.name.c_str(), split.layer,
                cnn.layer_count(),
                bench::format_seconds(split.latency_s).c_str(),
                bench::format_seconds(local.latency_s).c_str());
  }
  std::printf("(poor links push the split late — compute locally, ship less)\n");

  bench::section("(c) cloud-edge federated rounds (3 edges, disjoint shards)");
  auto pooled = data::make_blobs(900, 12, 3, rng, 2.2F);
  auto held_out = data::make_blobs(300, 12, 3, rng, 2.2F);
  // Shards must share class geometry with `pooled`: use slices.
  std::vector<data::Dataset> shards;
  for (int s = 0; s < 3; ++s) shards.push_back(pooled.slice(s * 300, (s + 1) * 300));
  std::vector<hwsim::DeviceProfile> edges(3, hwsim::raspberry_pi_4());

  nn::Model global = nn::zoo::make_mlp("global", 12, 3, {16}, rng);
  nn::TrainOptions retrain;
  retrain.epochs = 5;
  retrain.sgd.learning_rate = 0.05F;
  retrain.sgd.momentum = 0.9F;
  std::printf("%-8s %18s %14s %16s\n", "round", "global accuracy",
              "bytes moved", "round latency");
  std::printf("%-8s %17.3f\n", "init", nn::evaluate_accuracy(global, pooled));
  for (int round = 1; round <= 4; ++round) {
    auto result = collab::federated_round(global, shards, edges,
                                          hwsim::openei_package(), hwsim::wifi(),
                                          retrain);
    global = std::move(result.global_model);
    std::printf("%-8d %17.3f %14s %16s\n", round,
                nn::evaluate_accuracy(global, pooled),
                bench::format_bytes(
                    static_cast<double>(result.bytes_transferred))
                    .c_str(),
                bench::format_seconds(result.round_latency_s).c_str());
  }
  (void)held_out;
}

void BM_FederatedAverage(benchmark::State& state) {
  common::Rng rng(122);
  std::vector<nn::Model> models;
  for (int i = 0; i < 4; ++i) {
    models.push_back(nn::zoo::make_mlp("m", 32, 4, {64, 32}, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(collab::federated_average(models));
  }
}
BENCHMARK(BM_FederatedAverage);

void BM_BestSplitSearch(benchmark::State& state) {
  common::Rng rng(123);
  nn::zoo::ImageSpec spec;
  nn::Model cnn = nn::zoo::make_mini_vgg(spec, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collab::best_split(cnn, hwsim::openei_package(),
                                                hwsim::raspberry_pi_3(),
                                                hwsim::edge_server(),
                                                hwsim::wifi()));
  }
}
BENCHMARK(BM_BestSplitSearch);

}  // namespace

OPENEI_BENCH_MAIN(run_fig2)
