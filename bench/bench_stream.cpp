// Streaming pipeline bench: frames/sec vs deadline-miss rate, block vs
// latest-wins, across hwsim device profiles (E17).
//
// Each cell runs one StreamSession whose worker is paced by the device's
// simulated inference latency (pace_sim_latency_scale maps sim seconds to
// wall seconds), so the hwsim profile sets the real service rate.  A
// producer offers frames at a fixed rate chosen to overload the reference
// device (~2x its service rate); every frame carries the same absolute
// deadline budget.  Under that load the two policies diverge:
//
//   block        the producer is paced to the consumer, the queue sits full,
//                and every frame ages ~capacity x service_time before the
//                worker reaches it — once that exceeds the deadline, frames
//                expire in bulk and delivered fps collapses (saturation)
//   latest_wins  stale frames are shed at both ends, the worker always
//                infers the freshest frame, and the miss rate stays near
//                zero at the same offered rate
//
// Per cell: offered/delivered fps, deadline-miss and policy-drop rates,
// mean/p95 queue wait, and the full conservation counter set (asserted
// exactly — a violation exits 1).  Writes BENCH_stream.json; --min-fps
// and --max-miss-rate turn the reference device's latest-wins cell into
// regression gates.
//
// Usage: bench_stream [--quick] [--out PATH] [--duration-s S]
//                     [--min-fps F] [--max-miss-rate R]
//   --quick          short cells + the 3-device fleet subset (CI smoke)
//   --duration-s S   measured seconds per cell (default 4)
//   --min-fps F      fail when the reference latest-wins cell delivers
//                    fewer than F frames/sec (0 = no gate)
//   --max-miss-rate R fail when the reference latest-wins cell's deadline
//                    miss rate exceeds R in [0,1] (default 1 = no gate)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"
#include "stream/frame_queue.h"
#include "stream/stream_session.h"
#include "tensor/tensor.h"

namespace openei::bench {
namespace {

using common::Json;
using common::JsonObject;

constexpr std::size_t kFeatures = 16;
constexpr std::size_t kClasses = 4;
constexpr std::size_t kQueueCapacity = 4;

struct Config {
  bool quick = false;
  std::string out_path = "BENCH_stream.json";
  double duration_s = 4.0;
  double min_fps = 0.0;
  double max_miss_rate = 1.0;
};

struct CellResult {
  std::string device;
  std::string policy;
  double offered_fps = 0.0;
  double delivered_fps = 0.0;
  double miss_rate = 0.0;         // dropped_deadline / admitted
  double policy_drop_rate = 0.0;  // dropped_policy / admitted
  double mean_wait_ms = 0.0;
  double p95_wait_ms = 0.0;
  std::uint64_t blocked_pushes = 0;
  stream::QueueCounters counters;
  bool conservation_ok = false;
};

/// One (device, policy) cell: paced worker, fixed-rate producer, fixed
/// per-frame deadline.  `scale` maps simulated seconds to wall seconds.
CellResult run_cell(const hwsim::DeviceProfile& device,
                    stream::AdmitPolicy policy, double scale,
                    double offer_interval_s, double deadline_s,
                    double duration_s) {
  core::EdgeNodeConfig config{device, hwsim::openei_package(), 16};
  core::EdgeNode node(config);
  common::Rng rng(42);
  node.deploy_model("stream", "classify",
                    nn::zoo::make_mlp("streamer", kFeatures, kClasses, {32},
                                      rng),
                    0.9);

  stream::StreamSession::Options options;
  options.queue.capacity = kQueueCapacity;
  options.queue.policy = policy;
  options.queue.deadline_s = deadline_s;
  options.result_capacity = 1 << 16;  // hold every delivery for wait stats
  options.pace_sim_latency_scale = scale;
  stream::StreamSession session("bench", "stream", "classify", "streamer",
                                node.service().lifecycle(), options);

  nn::Tensor sample(tensor::Shape{kFeatures});
  for (float& v : sample.data()) v = 0.25F;

  std::vector<double> waits_s;
  common::Stopwatch wall;
  double next_offer_s = 0.0;
  while (wall.elapsed_seconds() < duration_s) {
    double now_s = wall.elapsed_seconds();
    if (now_s < next_offer_s) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(next_offer_s - now_s, 0.0005)));
      continue;
    }
    next_offer_s += offer_interval_s;
    // block: unbounded wait — the producer is paced to the consumer, which
    // is exactly the saturation the bench measures.  Eviction policies
    // return immediately.
    session.submit(sample, -1.0);
    for (stream::DeliveredResult& result : session.poll()) {
      waits_s.push_back(result.queue_wait_s);
    }
  }
  session.close();  // drains the queue; every admitted frame resolves
  for (stream::DeliveredResult& result : session.poll()) {
    waits_s.push_back(result.queue_wait_s);
  }
  double wall_s = wall.elapsed_seconds();

  stream::SessionStats stats = session.stats();
  CellResult cell;
  cell.device = device.name;
  cell.policy = stream::to_string(policy);
  cell.offered_fps = 1.0 / offer_interval_s;
  cell.delivered_fps =
      wall_s > 0.0 ? static_cast<double>(stats.queue.delivered) / wall_s : 0.0;
  if (stats.queue.admitted > 0) {
    cell.miss_rate = static_cast<double>(stats.queue.dropped_deadline) /
                     static_cast<double>(stats.queue.admitted);
    cell.policy_drop_rate = static_cast<double>(stats.queue.dropped_policy) /
                            static_cast<double>(stats.queue.admitted);
  }
  std::sort(waits_s.begin(), waits_s.end());
  if (!waits_s.empty()) {
    double sum = 0.0;
    for (double w : waits_s) sum += w;
    cell.mean_wait_ms = sum / static_cast<double>(waits_s.size()) * 1e3;
    cell.p95_wait_ms =
        waits_s[static_cast<std::size_t>(
            0.95 * static_cast<double>(waits_s.size() - 1))] *
        1e3;
  }
  cell.blocked_pushes = stats.queue.blocked_pushes;
  cell.counters = stats.queue;
  const stream::QueueCounters& c = stats.queue;
  cell.conservation_ok =
      c.produced == c.admitted + c.rejected_backpressure + c.rejected_closed &&
      c.admitted == c.delivered + c.dropped_deadline + c.dropped_policy +
                        c.dropped_closed + c.depth;
  return cell;
}

Json cell_to_json(const CellResult& cell) {
  const stream::QueueCounters& c = cell.counters;
  return Json(JsonObject{
      {"device", Json(cell.device)},
      {"policy", Json(cell.policy)},
      {"offered_fps", Json(cell.offered_fps)},
      {"delivered_fps", Json(cell.delivered_fps)},
      {"deadline_miss_rate", Json(cell.miss_rate)},
      {"policy_drop_rate", Json(cell.policy_drop_rate)},
      {"mean_wait_ms", Json(cell.mean_wait_ms)},
      {"p95_wait_ms", Json(cell.p95_wait_ms)},
      {"blocked_pushes", Json(cell.blocked_pushes)},
      {"conservation_ok", Json(cell.conservation_ok)},
      {"counters",
       Json(JsonObject{{"produced", Json(c.produced)},
                       {"admitted", Json(c.admitted)},
                       {"delivered", Json(c.delivered)},
                       {"dropped_deadline", Json(c.dropped_deadline)},
                       {"dropped_policy", Json(c.dropped_policy)},
                       {"dropped_closed", Json(c.dropped_closed)},
                       {"rejected_backpressure",
                        Json(c.rejected_backpressure)},
                       {"rejected_closed", Json(c.rejected_closed)}})}});
}

int run(const Config& config) {
  banner("OpenEI streaming: policy vs deadline-miss rate across the fleet");
  double duration_s = config.quick ? std::min(config.duration_s, 1.5)
                                   : config.duration_s;

  std::vector<hwsim::DeviceProfile> fleet{
      hwsim::raspberry_pi_3(), hwsim::raspberry_pi_4(), hwsim::jetson_tx2()};
  const hwsim::DeviceProfile reference = hwsim::raspberry_pi_4();

  // Calibrate the wall-clock service time off the reference device: its
  // simulated latency maps to target_service_s, and every other profile's
  // service time scales with its own simulated latency — faster silicon
  // really serves faster.
  common::Rng rng(42);
  nn::Model probe =
      nn::zoo::make_mlp("streamer", kFeatures, kClasses, {32}, rng);
  double reference_latency_s =
      hwsim::estimate_inference(probe, hwsim::openei_package(), reference)
          .latency_s;
  double target_service_s = config.quick ? 0.004 : 0.008;
  double scale = target_service_s / reference_latency_s;
  // Overload the reference ~2x; deadline of 2 service times, far below the
  // full-queue wait (~capacity x service), so a saturated block queue must
  // expire frames while latest-wins stays fresh.
  double offer_interval_s = target_service_s / 2.0;
  double deadline_s = 2.0 * target_service_s;

  std::printf("reference sim latency: %s   service: %s   offered: %.0f fps   "
              "deadline: %s   cell: %.1fs%s\n",
              format_seconds(reference_latency_s).c_str(),
              format_seconds(target_service_s).c_str(),
              1.0 / offer_interval_s, format_seconds(deadline_s).c_str(),
              duration_s, config.quick ? "  [quick]" : "");
  std::printf("\n%16s %12s %9s %10s %8s %8s %10s\n", "device", "policy",
              "off.fps", "del.fps", "miss", "shed", "p95 wait");

  Json cells{common::JsonArray{}};
  CellResult gate_cell;
  CellResult gate_block_cell;
  bool conservation_ok = true;
  for (const hwsim::DeviceProfile& device : fleet) {
    for (stream::AdmitPolicy policy :
         {stream::AdmitPolicy::kBlock, stream::AdmitPolicy::kLatestWins}) {
      CellResult cell = run_cell(device, policy, scale, offer_interval_s,
                                 deadline_s, duration_s);
      std::printf("%16s %12s %9.0f %10.1f %7.1f%% %7.1f%% %10s\n",
                  cell.device.c_str(), cell.policy.c_str(), cell.offered_fps,
                  cell.delivered_fps, cell.miss_rate * 100.0,
                  cell.policy_drop_rate * 100.0,
                  format_seconds(cell.p95_wait_ms / 1e3).c_str());
      conservation_ok = conservation_ok && cell.conservation_ok;
      if (device.name == reference.name) {
        if (policy == stream::AdmitPolicy::kLatestWins) gate_cell = cell;
        if (policy == stream::AdmitPolicy::kBlock) gate_block_cell = cell;
      }
      cells.as_array().push_back(cell_to_json(cell));
    }
  }

  section("summary");
  std::printf("reference (%s) under ~2x overload:\n", reference.name.c_str());
  std::printf("  block       : %.1f fps delivered, %.1f%% deadline misses\n",
              gate_block_cell.delivered_fps,
              gate_block_cell.miss_rate * 100.0);
  std::printf("  latest_wins : %.1f fps delivered, %.1f%% deadline misses\n",
              gate_cell.delivered_fps, gate_cell.miss_rate * 100.0);

  Json report{JsonObject{}};
  report.set("bench", "stream");
  report.set("quick", config.quick);
  report.set("duration_s", duration_s);
  report.set("queue_capacity", kQueueCapacity);
  report.set("target_service_s", target_service_s);
  report.set("offered_fps", 1.0 / offer_interval_s);
  report.set("deadline_s", deadline_s);
  report.set("reference_device", reference.name);
  report.set("cells", std::move(cells));
  report.set("min_fps_gate", config.min_fps);
  report.set("max_miss_rate_gate", config.max_miss_rate);
  // Producer and consumer must overlap for throughput numbers to mean
  // anything.
  set_host_info(report,
                std::thread::hardware_concurrency() >= 2 && !config.quick);

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << report.pretty() << "\n";
  std::printf("wrote %s\n", config.out_path.c_str());

  if (!conservation_ok) {
    std::fprintf(stderr, "FAIL: queue counter conservation violated\n");
    return 1;
  }
  if (config.min_fps > 0.0 && gate_cell.delivered_fps < config.min_fps) {
    std::fprintf(stderr,
                 "FAIL: latest-wins delivered %.1f fps on %s, below the %.1f "
                 "fps floor\n",
                 gate_cell.delivered_fps, reference.name.c_str(),
                 config.min_fps);
    return 1;
  }
  if (gate_cell.miss_rate > config.max_miss_rate) {
    std::fprintf(stderr,
                 "FAIL: latest-wins deadline-miss rate %.3f on %s exceeds "
                 "the %.3f ceiling\n",
                 gate_cell.miss_rate, reference.name.c_str(),
                 config.max_miss_rate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace openei::bench

int main(int argc, char** argv) {
  openei::common::set_log_level(openei::common::LogLevel::kError);
  openei::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--duration-s") == 0 && i + 1 < argc) {
      config.duration_s = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-fps") == 0 && i + 1 < argc) {
      config.min_fps = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-miss-rate") == 0 && i + 1 < argc) {
      config.max_miss_rate = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_stream [--quick] [--out PATH] "
                   "[--duration-s S] [--min-fps F] [--max-miss-rate R]\n");
      return 2;
    }
  }
  return openei::bench::run(config);
}
