// E5 — Figure 4 / Sec. III-B: the package manager.
//
//   (a) package comparison across devices — the pCAMP [48] observation the
//       paper leans on: "no framework achieves the best performance in all
//       dimensions".  The full framework has the best kernels, the lite
//       packages win latency/memory on small edges, only training-capable
//       packages can personalize.
//   (b) the real-time ML module: urgent-task tail latency with and without
//       priority preemption under increasing background load.
#include "bench_common.h"

#include "common/rng.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "nn/zoo.h"
#include "runtime/migration.h"
#include "runtime/realtime.h"

using namespace openei;

namespace {

void run_fig4() {
  bench::banner("E5 / Fig. 4: package manager");
  common::Rng rng(141);
  nn::zoo::ImageSpec spec;
  nn::Model model = nn::zoo::make_mini_mobilenet(spec, rng);

  bench::section("(a) packages x devices for mini_mobilenet (pCAMP-style)");
  std::printf("%-18s %-26s %12s %12s %12s %9s\n", "device", "package", "latency",
              "memory", "energy", "trains?");
  for (const auto& device :
       {hwsim::raspberry_pi_3(), hwsim::raspberry_pi_4(), hwsim::jetson_tx2()}) {
    for (const auto& package : hwsim::default_packages()) {
      auto cost = hwsim::estimate_inference(model, package, device);
      std::printf("%-18s %-26s %12s %12s %10.2e J %9s\n", device.name.c_str(),
                  package.name.c_str(),
                  bench::format_seconds(cost.latency_s).c_str(),
                  bench::format_bytes(static_cast<double>(cost.memory_bytes))
                      .c_str(),
                  cost.energy_j, package.supports_training ? "yes" : "no");
    }
  }
  std::printf("(full framework: best kernels, fat runtime; openei package: "
              "lean AND trains locally)\n");

  bench::section("(b) real-time ML module: urgent p99 under background load");
  auto pi = hwsim::raspberry_pi_3();
  double frame_latency =
      hwsim::estimate_inference(model, hwsim::openei_package(), pi).latency_s;
  std::printf("%-22s %16s %20s %10s\n", "background tasks", "FIFO p99",
              "real-time module p99", "gain");
  for (int background : {5, 20, 50, 100}) {
    std::vector<runtime::MlTask> tasks;
    for (int i = 0; i < background; ++i) {
      tasks.push_back({"bg" + std::to_string(i), i * frame_latency * 4,
                       frame_latency * 32, runtime::TaskPriority::kBestEffort});
    }
    for (int i = 0; i < 10; ++i) {
      tasks.push_back({"urgent" + std::to_string(i),
                       i * frame_latency * background,
                       frame_latency, runtime::TaskPriority::kUrgent});
    }
    auto fifo =
        runtime::simulate_schedule(tasks, runtime::SchedulingPolicy::kFifo);
    auto preemptive = runtime::simulate_schedule(
        tasks, runtime::SchedulingPolicy::kPriorityPreemptive);
    double fifo_p99 =
        runtime::response_percentile(fifo, 99, runtime::TaskPriority::kUrgent);
    double rt_p99 = runtime::response_percentile(
        preemptive, 99, runtime::TaskPriority::kUrgent);
    std::printf("%-22d %16s %20s %9.0fx\n", background,
                bench::format_seconds(fifo_p99).c_str(),
                bench::format_seconds(rt_p99).c_str(), fifo_p99 / rt_p99);
  }

  bench::section("(c) computation migration (Sec. IV-C): overloaded Pi-3 + "
                 "edge-server helper");
  std::vector<runtime::MigratableTask> queue;
  for (int i = 0; i < 12; ++i) {
    queue.push_back({"frame_batch_" + std::to_string(i), /*flops=*/4e8,
                     /*payload_bytes=*/64'000});
  }
  std::printf("%-14s %10s %14s %14s %9s\n", "link", "migrated", "local only",
              "with helper", "speedup");
  for (const auto& link : hwsim::default_links()) {
    auto plan = runtime::plan_migration(queue, hwsim::raspberry_pi_3(),
                                        hwsim::edge_server(), link);
    std::printf("%-14s %7zu/12 %14s %14s %8.2fx\n", link.name.c_str(),
                plan.migrate.size(),
                bench::format_seconds(plan.local_only_s).c_str(),
                bench::format_seconds(plan.makespan_s).c_str(), plan.speedup());
  }
  std::printf("(the planner refuses to migrate over links that cannot pay for "
              "the payload transfer)\n");
}

void BM_ScheduleFifo(benchmark::State& state) {
  std::vector<runtime::MlTask> tasks;
  for (int i = 0; i < 200; ++i) {
    tasks.push_back({"t" + std::to_string(i), i * 0.001, 0.01,
                     i % 10 == 0 ? runtime::TaskPriority::kUrgent
                                 : runtime::TaskPriority::kBestEffort});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::simulate_schedule(tasks, runtime::SchedulingPolicy::kFifo));
  }
}
BENCHMARK(BM_ScheduleFifo);

void BM_SchedulePreemptive(benchmark::State& state) {
  std::vector<runtime::MlTask> tasks;
  for (int i = 0; i < 200; ++i) {
    tasks.push_back({"t" + std::to_string(i), i * 0.001, 0.01,
                     i % 10 == 0 ? runtime::TaskPriority::kUrgent
                                 : runtime::TaskPriority::kBestEffort});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::simulate_schedule(
        tasks, runtime::SchedulingPolicy::kPriorityPreemptive));
  }
}
BENCHMARK(BM_SchedulePreemptive);

}  // namespace

OPENEI_BENCH_MAIN(run_fig4)
