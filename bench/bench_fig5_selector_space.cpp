// E6 — Figure 5: the model-selector cube (models x packages x devices).
//
// Materializes the full capability cube for the six zoo image models, three
// packages, and six edge devices, then shows who wins each device under
// each objective — the multi-dimensional selection problem of Sec. III-C.
#include "bench_common.h"

#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "selector/capability_db.h"
#include "selector/selecting_algorithm.h"

using namespace openei;

namespace {

selector::CapabilityDatabase build_cube(std::vector<nn::Model>& models_out) {
  common::Rng rng(151);
  nn::zoo::ImageSpec spec;
  spec.channels = 3;
  spec.size = 12;
  spec.classes = 4;
  auto frames = data::make_images(300, spec.channels, spec.size, spec.classes,
                                  rng, 0.3F);
  auto [train, test] = data::train_test_split(frames, 0.8, rng);

  nn::TrainOptions topt;
  topt.epochs = 4;
  topt.batch_size = 24;
  topt.sgd.learning_rate = 0.03F;
  topt.sgd.momentum = 0.9F;
  for (const auto& entry : nn::zoo::image_catalog()) {
    nn::Model model = entry.build(spec, rng);
    nn::fit(model, train, topt);
    models_out.push_back(std::move(model));
  }
  return selector::CapabilityDatabase::build(
      models_out, hwsim::default_packages(), hwsim::edge_fleet(), test);
}

void run_fig5() {
  bench::banner("E6 / Fig. 5: the (model x package x device) selection cube");

  std::vector<nn::Model> models;
  selector::CapabilityDatabase db = build_cube(models);
  std::printf("cube size: %zu models x 3 packages x 6 devices = %zu entries\n",
              models.size(), db.entries().size());

  bench::section("one slice: openei package on raspberry-pi-4");
  std::printf("%-20s %9s %12s %12s %12s\n", "model", "accuracy", "latency",
              "energy", "memory");
  for (const auto& entry : db.on_device("raspberry-pi-4")) {
    if (entry.package_name != "openei-package-manager") continue;
    std::printf("%-20s %9.3f %12s %10.2e J %12s\n", entry.model_name.c_str(),
                entry.alem.accuracy,
                bench::format_seconds(entry.alem.latency_s).c_str(),
                entry.alem.energy_j,
                bench::format_bytes(
                    static_cast<double>(entry.alem.memory_bytes))
                    .c_str());
  }

  bench::section("winner per device per objective (openei package slice)");
  std::printf("%-20s %-22s %-22s\n", "device", "min-latency winner",
              "max-accuracy winner");
  for (const auto& device : hwsim::edge_fleet()) {
    selector::SelectionRequest fast;
    fast.objective = selector::Objective::kMinLatency;
    fast.device_name = device.name;
    selector::SelectionRequest accurate;
    accurate.objective = selector::Objective::kMaxAccuracy;
    accurate.device_name = device.name;
    auto fast_pick = selector::select(db, fast);
    auto accurate_pick = selector::select(db, accurate);
    std::printf("%-20s %-22s %-22s\n", device.name.c_str(),
                fast_pick ? fast_pick->model_name.c_str() : "(none fits)",
                accurate_pick ? accurate_pick->model_name.c_str()
                              : "(none fits)");
  }
  std::printf("(the MCU row is the paper's mismatch problem: nothing deploys "
              "-> Sec. IV-A2 EI algorithms exist for that regime)\n");

  bench::section("deployability: fraction of cube cells that fit each device");
  for (const auto& device : hwsim::edge_fleet()) {
    std::size_t total = 0;
    std::size_t fits = 0;
    for (const auto& entry : db.on_device(device.name)) {
      ++total;
      if (entry.deployable) ++fits;
    }
    std::printf("%-20s %zu/%zu\n", device.name.c_str(), fits, total);
  }
}

void BM_BuildCapabilityCube(benchmark::State& state) {
  common::Rng rng(152);
  auto dataset = data::make_blobs(100, 8, 2, rng);
  std::vector<nn::Model> models;
  models.push_back(nn::zoo::make_mlp("a", 8, 2, {16}, rng));
  models.push_back(nn::zoo::make_mlp("b", 8, 2, {64}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector::CapabilityDatabase::build(
        models, hwsim::default_packages(), hwsim::edge_fleet(), dataset));
  }
}
BENCHMARK(BM_BuildCapabilityCube);

}  // namespace

OPENEI_BENCH_MAIN(run_fig5)
