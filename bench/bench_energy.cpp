// Energy-governed scheduling bench: joules per 1k requests and Eq.1
// constraint-violation rate, governed vs static selection, under a seeded
// drifting arrival-rate trace (E19).
//
// The whole experiment runs on simulated time (an injected nanosecond clock
// drives two hwsim::EnergyLedger accounts), so it is deterministic, instant,
// and bit-identical run-to-run:
//
//   static    the paper's default accuracy-oriented selector picks the most
//             accurate eligible variant once; the device sits in the active
//             state at nominal clock for the whole trace (no governor), and
//             every served request charges the heavy model's busy energy
//   governed  selector::plan_energy_schedule re-plans each epoch against the
//             drifted arrival rate: it picks (variant, batch, DVFS rung)
//             meeting Eq.1 at minimum energy, the ledger idles once the
//             epoch's work is done, and infeasible peaks run boost to drain
//             backlog fastest
//
// A request violates Eq.1 when it cannot be served inside max_latency_s at
// the offered load (capacity shortfall) — the planner's feasible flag and
// the static policy's capacity bound count the same way, so the comparison
// is apples-to-apples.  Joules come from the ledgers, not the cost model:
// BENCH_energy.json carries energy_model: "ledger".
//
// Gates (CI runs --quick with --max-joules-per-1k):
//   - always on: governed must beat static on joules/1k at an equal-or-lower
//     violation rate — the whole point of the subsystem
//   - --max-joules-per-1k X: regression floor for the governed account
//
// Usage: bench_energy [--quick] [--out PATH] [--epochs N]
//                     [--max-joules-per-1k X]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/rng.h"
#include "hwsim/cost_model.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "hwsim/power.h"
#include "nn/zoo.h"
#include "selector/capability_db.h"
#include "selector/energy_schedule.h"
#include "selector/selecting_algorithm.h"

namespace openei::bench {
namespace {

using common::Json;
using common::JsonObject;

struct Config {
  bool quick = false;
  std::string out_path = "BENCH_energy.json";
  int epochs = 240;
  double max_joules_per_1k = 0.0;  // 0 = no regression gate
};

struct Variant {
  std::string name;
  double accuracy = 0.0;
  hwsim::InferenceCost cost;
};

struct PolicyResult {
  std::string policy;
  double total_joules = 0.0;
  double busy_joules = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t violations = 0;
  double idle_seconds = 0.0;
  double active_seconds = 0.0;
  double boost_seconds = 0.0;
  double sim_seconds = 0.0;

  double joules_per_1k() const {
    return requests == 0
               ? 0.0
               : total_joules / static_cast<double>(requests) * 1000.0;
  }
  double violation_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(violations) /
                               static_cast<double>(requests);
  }
};

/// Walk the single-step ladder to `target` (legal transitions only).
void step_to(hwsim::EnergyLedger& ledger, hwsim::PowerState target) {
  while (ledger.state() != target) {
    int current = static_cast<int>(ledger.state());
    int next = current + (static_cast<int>(target) > current ? 1 : -1);
    ledger.set_state(static_cast<hwsim::PowerState>(next));
  }
}

/// The drifting offered load: a seeded multiplicative random walk around the
/// heavy variant's nominal capacity, so the static policy sees both easy
/// valleys (where governed idles cheaply) and overload peaks (where governed
/// switches variant/rung and static sheds).
std::vector<double> arrival_trace(int epochs, double heavy_capacity_hz,
                                  std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> trace;
  double rate = 0.6 * heavy_capacity_hz;
  for (int e = 0; e < epochs; ++e) {
    // Peaks push past the lite variant's *nominal* capacity (~3.1x the
    // heavy variant's), so the governed plan must climb to boost to stay
    // feasible there — the bench exercises the whole rung ladder.
    rate *= rng.uniform(0.75, 1.35);
    rate = std::min(std::max(rate, 0.05 * heavy_capacity_hz),
                    3.4 * heavy_capacity_hz);
    trace.push_back(rate);
  }
  return trace;
}

/// Static policy: heavy variant, nominal clock, device pinned active.
PolicyResult run_static(const hwsim::DeviceProfile& device,
                        const Variant& chosen,
                        const std::vector<double>& trace, double epoch_s,
                        double max_latency_s) {
  std::int64_t now_ns = 0;
  hwsim::EnergyLedger ledger(device, [&now_ns] { return now_ns; });
  PolicyResult result;
  result.policy = "static";
  step_to(ledger, hwsim::PowerState::kActive);

  double capacity_hz = 1.0 / chosen.cost.latency_s;
  for (double rate : trace) {
    auto offered = static_cast<std::uint64_t>(rate * epoch_s);
    auto serveable = static_cast<std::uint64_t>(capacity_hz * epoch_s);
    std::uint64_t served = std::min(offered, serveable);
    std::uint64_t late =
        chosen.cost.latency_s > max_latency_s ? served : 0;
    result.requests += offered;
    result.served += served;
    result.violations += (offered - served) + late;
    now_ns += static_cast<std::int64_t>(epoch_s * 1e9);
    if (served > 0) {
      ledger.charge_busy(static_cast<double>(served) *
                         chosen.cost.latency_s);
    }
  }

  hwsim::EnergyLedger::Snapshot snap = ledger.snapshot();
  result.total_joules = snap.total_j;
  result.busy_joules = snap.busy_j;
  result.idle_seconds = snap.state_seconds[0];
  result.active_seconds = snap.state_seconds[1];
  result.boost_seconds = snap.state_seconds[2];
  result.sim_seconds = snap.elapsed_seconds;
  return result;
}

/// Governed policy: re-plan every epoch, idle when the epoch's work is done,
/// boost only when the planner says nothing else clears the load.
PolicyResult run_governed(const hwsim::DeviceProfile& device,
                          const selector::CapabilityDatabase& db,
                          const std::vector<Variant>& variants,
                          const std::vector<double>& trace, double epoch_s,
                          const selector::Requirements& requirements) {
  std::int64_t now_ns = 0;
  hwsim::EnergyLedger ledger(device, [&now_ns] { return now_ns; });
  PolicyResult result;
  result.policy = "governed";

  for (double rate : trace) {
    selector::EnergyScheduleRequest request;
    request.requirements = requirements;
    request.arrival_rate_hz = rate;
    selector::EnergyScheduleChoice choice =
        selector::plan_energy_schedule(db, device, request);

    double model_latency_s = 0.0;
    for (const Variant& v : variants) {
      if (v.name == choice.model_name) model_latency_s = v.cost.latency_s;
    }

    auto offered = static_cast<std::uint64_t>(rate * epoch_s);
    auto serveable =
        static_cast<std::uint64_t>(choice.capacity_hz * epoch_s);
    std::uint64_t served = choice.feasible ? offered
                                           : std::min(offered, serveable);
    result.requests += offered;
    result.served += served;
    result.violations += offered - served;

    // Busy wall time at this rung; the rest of the epoch the device idles —
    // that slack is where the governed account wins its baseline joules.
    double busy_wall_s = std::min(
        epoch_s, static_cast<double>(served) * model_latency_s /
                     choice.freq_scale);
    ledger.set_freq_level(choice.freq_level);
    step_to(ledger, choice.boost ? hwsim::PowerState::kBoost
                                 : hwsim::PowerState::kActive);
    now_ns += static_cast<std::int64_t>(busy_wall_s * 1e9);
    if (served > 0) {
      ledger.charge_busy(static_cast<double>(served) * model_latency_s);
    }
    step_to(ledger, hwsim::PowerState::kIdle);
    now_ns += static_cast<std::int64_t>((epoch_s - busy_wall_s) * 1e9);
  }

  hwsim::EnergyLedger::Snapshot snap = ledger.snapshot();
  result.total_joules = snap.total_j;
  result.busy_joules = snap.busy_j;
  result.idle_seconds = snap.state_seconds[0];
  result.active_seconds = snap.state_seconds[1];
  result.boost_seconds = snap.state_seconds[2];
  result.sim_seconds = snap.elapsed_seconds;
  return result;
}

Json policy_to_json(const PolicyResult& r) {
  return Json(JsonObject{{"policy", Json(r.policy)},
                         {"requests", Json(r.requests)},
                         {"served", Json(r.served)},
                         {"violations", Json(r.violations)},
                         {"violation_rate", Json(r.violation_rate())},
                         {"total_joules", Json(r.total_joules)},
                         {"busy_joules", Json(r.busy_joules)},
                         {"joules_per_1k", Json(r.joules_per_1k())},
                         {"idle_seconds", Json(r.idle_seconds)},
                         {"active_seconds", Json(r.active_seconds)},
                         {"boost_seconds", Json(r.boost_seconds)},
                         {"sim_seconds", Json(r.sim_seconds)}});
}

int run(const Config& config) {
  banner("OpenEI energy scheduling: governed vs static under drifting load");
  int epochs = config.quick ? std::min(config.epochs, 80) : config.epochs;
  double epoch_s = 0.25;  // simulated seconds per scheduling epoch

  hwsim::DeviceProfile device = hwsim::raspberry_pi_4();
  hwsim::PackageSpec package = hwsim::openei_package();

  // Two real zoo variants of the same task; ALEM rows come from the hwsim
  // cost model, exactly as libei's capability database would build them.
  common::Rng rng(42);
  std::vector<Variant> variants;
  {
    Variant heavy;
    heavy.name = "edge-mlp-heavy";
    heavy.accuracy = 0.95;
    heavy.cost = hwsim::estimate_inference(
        nn::zoo::make_mlp(heavy.name, 64, 8, {256, 128}, rng), package,
        device);
    variants.push_back(heavy);
    Variant lite;
    lite.name = "edge-mlp-lite";
    lite.accuracy = 0.85;
    lite.cost = hwsim::estimate_inference(
        nn::zoo::make_mlp(lite.name, 64, 8, {48}, rng), package, device);
    variants.push_back(lite);
  }

  selector::CapabilityDatabase db;
  for (const Variant& v : variants) {
    selector::CapabilityEntry entry;
    entry.model_name = v.name;
    entry.package_name = package.name;
    entry.device_name = device.name;
    entry.alem = {v.accuracy, v.cost.latency_s, v.cost.energy_j,
                  v.cost.memory_bytes};
    db.add(entry);
  }

  // Eq.1 requirements: both variants eligible on accuracy, latency bound
  // comfortably above the heavy variant's nominal service time.
  selector::Requirements requirements;
  requirements.min_accuracy = 0.8;
  requirements.max_latency_s = 4.0 * variants[0].cost.latency_s;

  // Static selection = the paper's accuracy-oriented default.
  selector::SelectionRequest static_selection;
  static_selection.requirements = requirements;
  static_selection.objective = selector::Objective::kMaxAccuracy;
  auto static_choice = selector::select(db, static_selection, nullptr);
  if (!static_choice.has_value()) {
    std::fprintf(stderr, "FAIL: static selector found no eligible variant\n");
    return 1;
  }
  const Variant& static_variant =
      variants[static_choice->model_name == variants[0].name ? 0 : 1];

  double heavy_capacity_hz = 1.0 / variants[0].cost.latency_s;
  std::vector<double> trace = arrival_trace(epochs, heavy_capacity_hz, 2026);

  std::printf("device: %s   heavy: %s/req (cap %.0f Hz)   lite: %s/req   "
              "epochs: %d x %.2fs%s\n",
              device.name.c_str(),
              format_seconds(variants[0].cost.latency_s).c_str(),
              heavy_capacity_hz,
              format_seconds(variants[1].cost.latency_s).c_str(), epochs,
              epoch_s, config.quick ? "  [quick]" : "");

  PolicyResult stat = run_static(device, static_variant, trace, epoch_s,
                                 requirements.max_latency_s);
  PolicyResult gov =
      run_governed(device, db, variants, trace, epoch_s, requirements);

  section("results");
  std::printf("%10s %10s %10s %12s %10s %9s %9s %9s\n", "policy", "requests",
              "violations", "viol.rate", "J/1k req", "idle s", "active s",
              "boost s");
  for (const PolicyResult* r : {&stat, &gov}) {
    std::printf("%10s %10llu %10llu %11.2f%% %10.2f %9.2f %9.2f %9.2f\n",
                r->policy.c_str(),
                static_cast<unsigned long long>(r->requests),
                static_cast<unsigned long long>(r->violations),
                r->violation_rate() * 100.0, r->joules_per_1k(),
                r->idle_seconds, r->active_seconds, r->boost_seconds);
  }
  double savings =
      stat.joules_per_1k() > 0.0
          ? (1.0 - gov.joules_per_1k() / stat.joules_per_1k()) * 100.0
          : 0.0;
  std::printf("\ngoverned saves %.1f%% joules/1k at %+.2f pp violation "
              "delta\n",
              savings,
              (gov.violation_rate() - stat.violation_rate()) * 100.0);

  Json report{JsonObject{}};
  report.set("bench", "energy");
  report.set("quick", config.quick);
  report.set("epochs", static_cast<std::uint64_t>(epochs));
  report.set("epoch_s", epoch_s);
  report.set("device", device.name);
  report.set("max_latency_s", requirements.max_latency_s);
  report.set("min_accuracy", requirements.min_accuracy);
  Json variants_json{common::JsonArray{}};
  for (const Variant& v : variants) {
    variants_json.as_array().push_back(
        Json(JsonObject{{"model", Json(v.name)},
                        {"accuracy", Json(v.accuracy)},
                        {"latency_s", Json(v.cost.latency_s)},
                        {"energy_j", Json(v.cost.energy_j)}}));
  }
  report.set("variants", std::move(variants_json));
  report.set("static", policy_to_json(stat));
  report.set("governed", policy_to_json(gov));
  report.set("joules_savings_pct", savings);
  report.set("max_joules_per_1k_gate", config.max_joules_per_1k);
  // Pure simulated time: numbers are host-independent and always gate-worthy.
  set_host_info(report, true, /*energy_model=*/"ledger");

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << report.pretty() << "\n";
  std::printf("wrote %s\n", config.out_path.c_str());

  if (gov.joules_per_1k() >= stat.joules_per_1k()) {
    std::fprintf(stderr,
                 "FAIL: governed joules/1k (%.2f) did not beat static "
                 "(%.2f)\n",
                 gov.joules_per_1k(), stat.joules_per_1k());
    return 1;
  }
  if (gov.violation_rate() > stat.violation_rate()) {
    std::fprintf(stderr,
                 "FAIL: governed violation rate (%.4f) exceeds static "
                 "(%.4f)\n",
                 gov.violation_rate(), stat.violation_rate());
    return 1;
  }
  if (config.max_joules_per_1k > 0.0 &&
      gov.joules_per_1k() > config.max_joules_per_1k) {
    std::fprintf(stderr,
                 "FAIL: governed joules/1k (%.2f) exceeds the %.2f "
                 "regression ceiling\n",
                 gov.joules_per_1k(), config.max_joules_per_1k);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace openei::bench

int main(int argc, char** argv) {
  openei::common::set_log_level(openei::common::LogLevel::kError);
  openei::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      config.epochs = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-joules-per-1k") == 0 &&
               i + 1 < argc) {
      config.max_joules_per_1k = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_energy [--quick] [--out PATH] [--epochs N] "
                   "[--max-joules-per-1k X]\n");
      return 2;
    }
  }
  return openei::bench::run(config);
}
