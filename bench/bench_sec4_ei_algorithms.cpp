// E9 — Sec. IV-A2: EI algorithms for resource-constrained edges.
//
// Bonsai-style tree, ProtoNN, and FastGRNN against a small MLP on the same
// workloads: accuracy vs model size vs FLOPs, plus which candidates fit the
// paper's flagship constraint — "an Arduino UNO with 2kB RAM" (ProtoNN) —
// and what they cost on MCU-class vs Pi-class hardware.
#include "bench_common.h"

#include "common/rng.h"
#include "data/synthetic.h"
#include "eialg/bonsai.h"
#include "eialg/fastgrnn.h"
#include "eialg/protonn.h"
#include "hwsim/device.h"
#include "nn/train.h"
#include "nn/zoo.h"

using namespace openei;

namespace {

struct Row {
  std::string name;
  double accuracy;
  std::size_t size_bytes;
  std::size_t flops;
};

void print_rows(const std::vector<Row>& rows) {
  auto mcu = hwsim::arduino_class();
  auto pi = hwsim::raspberry_pi_3();
  std::printf("%-14s %9s %10s %10s %7s %14s %14s\n", "model", "accuracy",
              "size", "FLOPs", "2kB?", "MCU latency", "Pi latency");
  for (const Row& row : rows) {
    // MCU latency ~ flops / device rate (these models are compute-bound).
    double mcu_latency =
        static_cast<double>(row.flops) / (mcu.effective_gflops * 1e9);
    double pi_latency =
        static_cast<double>(row.flops) / (pi.effective_gflops * 1e9);
    std::printf("%-14s %9.3f %10s %10zu %7s %14s %14s\n", row.name.c_str(),
                row.accuracy,
                bench::format_bytes(static_cast<double>(row.size_bytes)).c_str(),
                row.flops, row.size_bytes <= 2048 ? "yes" : "no",
                bench::format_seconds(mcu_latency).c_str(),
                bench::format_seconds(pi_latency).c_str());
  }
}

void run_sec4() {
  bench::banner("E9 / Sec. IV-A2: EI algorithms on tiny edges");

  bench::section("tabular workload (20 features, 4 classes)");
  common::Rng rng(181);
  auto tabular = data::make_blobs(800, 20, 4, rng, 2.5F);
  auto [train, test] = data::train_test_split(tabular, 0.8, rng);

  std::vector<Row> rows;
  {
    eialg::BonsaiTree bonsai{eialg::BonsaiOptions{.projection_dim = 8,
                                                  .max_depth = 5}};
    bonsai.fit(train);
    rows.push_back({"bonsai", eialg::evaluate(bonsai, test),
                    bonsai.model_size_bytes(), bonsai.flops_per_sample()});
  }
  {
    eialg::ProtoNn protonn{eialg::ProtoNnOptions{.projection_dim = 8,
                                                 .prototypes_per_class = 3}};
    protonn.fit(train);
    rows.push_back({"protonn", eialg::evaluate(protonn, test),
                    protonn.model_size_bytes(), protonn.flops_per_sample()});
  }
  {
    nn::Model mlp = nn::zoo::make_mlp("mlp32", 20, 4, {32}, rng);
    nn::TrainOptions topt;
    topt.epochs = 25;
    topt.sgd.learning_rate = 0.05F;
    topt.sgd.momentum = 0.9F;
    nn::fit(mlp, train, topt);
    rows.push_back({"mlp32", nn::evaluate_accuracy(mlp, test),
                    mlp.storage_bytes(), mlp.flops_per_sample()});
  }
  print_rows(rows);

  bench::section("sequence workload (16 steps x 3 dims, 4 activities)");
  eialg::FastGrnnOptions grnn_options;
  grnn_options.steps = 16;
  grnn_options.input_dims = 3;
  grnn_options.hidden = 16;
  grnn_options.epochs = 12;
  grnn_options.learning_rate = 0.08F;
  auto sequences =
      data::make_sequences(600, grnn_options.steps, grnn_options.input_dims, 4, rng);
  auto [seq_train, seq_test] = data::train_test_split(sequences, 0.8, rng);

  std::vector<Row> seq_rows;
  {
    eialg::FastGrnn grnn(grnn_options);
    grnn.fit(seq_train);
    seq_rows.push_back({"fastgrnn", eialg::evaluate(grnn, seq_test),
                        grnn.model_size_bytes(), grnn.flops_per_sample()});
  }
  {
    nn::Model mlp = nn::zoo::make_mlp("mlp_seq", 48, 4, {64}, rng);
    nn::TrainOptions topt;
    topt.epochs = 25;
    topt.sgd.learning_rate = 0.05F;
    topt.sgd.momentum = 0.9F;
    nn::fit(mlp, seq_train, topt);
    seq_rows.push_back({"mlp_seq", nn::evaluate_accuracy(mlp, seq_test),
                        mlp.storage_bytes(), mlp.flops_per_sample()});
  }
  print_rows(seq_rows);

  bench::section("model-size budget sweep (bonsai depth / protonn prototypes)");
  std::printf("%-26s %10s %9s\n", "configuration", "size", "accuracy");
  for (std::size_t depth : {2UL, 4UL, 6UL}) {
    eialg::BonsaiTree tree{eialg::BonsaiOptions{.projection_dim = 6,
                                                .max_depth = depth}};
    tree.fit(train);
    std::printf("bonsai depth=%-13zu %10s %9.3f\n", depth,
                bench::format_bytes(
                    static_cast<double>(tree.model_size_bytes()))
                    .c_str(),
                eialg::evaluate(tree, test));
  }
  for (std::size_t prototypes : {1UL, 3UL, 6UL}) {
    eialg::ProtoNn model{eialg::ProtoNnOptions{
        .projection_dim = 6, .prototypes_per_class = prototypes}};
    model.fit(train);
    std::printf("protonn m/class=%-10zu %10s %9.3f\n", prototypes,
                bench::format_bytes(
                    static_cast<double>(model.model_size_bytes()))
                    .c_str(),
                eialg::evaluate(model, test));
  }
}

void BM_BonsaiPredict(benchmark::State& state) {
  common::Rng rng(182);
  auto dataset = data::make_blobs(400, 20, 4, rng);
  eialg::BonsaiTree tree{eialg::BonsaiOptions{}};
  tree.fit(dataset);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.predict(dataset.features));
  }
}
BENCHMARK(BM_BonsaiPredict);

void BM_ProtoNnPredict(benchmark::State& state) {
  common::Rng rng(183);
  auto dataset = data::make_blobs(400, 20, 4, rng);
  eialg::ProtoNn model{eialg::ProtoNnOptions{}};
  model.fit(dataset);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(dataset.features));
  }
}
BENCHMARK(BM_ProtoNnPredict);

void BM_FastGrnnPredict(benchmark::State& state) {
  common::Rng rng(184);
  eialg::FastGrnnOptions options;
  options.epochs = 2;
  auto dataset = data::make_sequences(200, options.steps, options.input_dims, 3, rng);
  eialg::FastGrnn model(options);
  model.fit(dataset);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(dataset.features));
  }
}
BENCHMARK(BM_FastGrnnPredict);

}  // namespace

OPENEI_BENCH_MAIN(run_sec4)
