// E7 — Equation 1: the selecting algorithm.
//
//   argmin L  s.t.  A >= A_req, E <= E_pro, M <= M_pro
//
//   (a) constraint sweeps: how the chosen model changes as A_req tightens
//       and as the device's memory budget M_pro shrinks;
//   (b) objective swap ("if users pay more attention to Accuracy...");
//   (c) the deep-RL direction (Sec. III-C): tabular Q-learning convergence
//       to the exact optimizer across episode budgets.
#include "bench_common.h"

#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"
#include "selector/capability_db.h"
#include "selector/rl_selector.h"
#include "selector/selecting_algorithm.h"

using namespace openei;

namespace {

selector::CapabilityDatabase build_db() {
  common::Rng rng(161);
  auto dataset = data::make_blobs(700, 16, 5, rng, /*separation=*/1.6F,
                                  /*stddev=*/1.4F);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  nn::TrainOptions topt;
  topt.epochs = 35;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;

  std::vector<nn::Model> models;
  for (auto [name, hidden] : std::vector<std::pair<const char*, std::vector<std::size_t>>>{
           {"tiny", {2}}, {"small", {8}}, {"medium", {64}}, {"large", {256, 128}}}) {
    nn::Model model = nn::zoo::make_mlp(name, 16, 5, hidden, rng);
    nn::fit(model, train, topt);
    models.push_back(std::move(model));
  }
  return selector::CapabilityDatabase::build(
      models, hwsim::default_packages(), hwsim::edge_fleet(), test);
}

void run_eq1() {
  bench::banner("E7 / Eq. 1: the selecting algorithm (SA)");
  selector::CapabilityDatabase db = build_db();

  bench::section("(a) sweep A_req on raspberry-pi-3 (objective: min latency)");
  std::printf("%-10s %-26s %12s %9s\n", "A_req", "picked (model, package)",
              "latency", "accuracy");
  for (double a_req : {0.0, 0.90, 0.93, 0.95, 0.97, 0.99, 1.01}) {
    selector::SelectionRequest request;
    request.objective = selector::Objective::kMinLatency;
    request.device_name = "raspberry-pi-3";
    request.requirements.min_accuracy = a_req;
    auto pick = selector::select(db, request);
    if (pick) {
      std::printf("%-10.2f %-26s %12s %9.3f\n", a_req,
                  (pick->model_name + ", " + pick->package_name).c_str(),
                  bench::format_seconds(pick->alem.latency_s).c_str(),
                  pick->alem.accuracy);
    } else {
      std::printf("%-10.2f %-26s\n", a_req, "INFEASIBLE");
    }
  }

  bench::section("(b) objective swap on raspberry-pi-3 (A_req=0.7)");
  for (auto [objective, label] :
       std::vector<std::pair<selector::Objective, const char*>>{
           {selector::Objective::kMinLatency, "min latency"},
           {selector::Objective::kMaxAccuracy, "max accuracy"},
           {selector::Objective::kMinEnergy, "min energy"},
           {selector::Objective::kMinMemory, "min memory"}}) {
    selector::SelectionRequest request;
    request.objective = objective;
    request.device_name = "raspberry-pi-3";
    request.requirements.min_accuracy = 0.7;
    auto pick = selector::select(db, request);
    std::printf("%-14s -> %-24s (acc %.3f, %s, %.2e J, %s)\n", label,
                pick ? (pick->model_name + ", " + pick->package_name).c_str()
                     : "INFEASIBLE",
                pick ? pick->alem.accuracy : 0.0,
                pick ? bench::format_seconds(pick->alem.latency_s).c_str() : "-",
                pick ? pick->alem.energy_j : 0.0,
                pick ? bench::format_bytes(
                           static_cast<double>(pick->alem.memory_bytes))
                           .c_str()
                     : "-");
  }

  bench::section("(c) Q-learning selector convergence to the exact optimum");
  selector::SelectionRequest request;
  request.objective = selector::Objective::kMinLatency;
  request.device_name = "raspberry-pi-4";
  request.requirements.min_accuracy = 0.7;
  auto exact = selector::select(db, request);
  std::printf("exact optimum: %s / %s\n",
              exact ? exact->model_name.c_str() : "none",
              exact ? exact->package_name.c_str() : "-");
  std::printf("%-12s %-26s %8s\n", "episodes", "greedy pick", "matches?");
  for (std::size_t episodes : {50UL, 200UL, 1000UL, 4000UL}) {
    selector::QLearningOptions options;
    options.episodes = episodes;
    // Rewards are deterministic in this bandit, so full-step updates are
    // exact; smaller alphas only slow convergence between near-tied arms.
    options.learning_rate = 1.0;
    selector::QLearningSelector rl(db, options);
    rl.train(request);
    auto pick = rl.select(request);
    bool match = pick && exact && pick->model_name == exact->model_name &&
                 pick->package_name == exact->package_name;
    std::printf("%-12zu %-26s %8s\n", episodes,
                pick ? (pick->model_name + ", " + pick->package_name).c_str()
                     : "(infeasible)",
                match ? "yes" : "no");
  }
}

void BM_ExactSelect(benchmark::State& state) {
  static selector::CapabilityDatabase db = build_db();
  selector::SelectionRequest request;
  request.objective = selector::Objective::kMinLatency;
  request.device_name = "raspberry-pi-4";
  request.requirements.min_accuracy = 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector::select(db, request));
  }
}
BENCHMARK(BM_ExactSelect);

void BM_QLearningTrain1000(benchmark::State& state) {
  static selector::CapabilityDatabase db = build_db();
  selector::SelectionRequest request;
  request.objective = selector::Objective::kMinLatency;
  request.device_name = "raspberry-pi-4";
  for (auto _ : state) {
    selector::QLearningSelector rl(db, {.episodes = 1000});
    rl.train(request);
    benchmark::DoNotOptimize(rl.select(request));
  }
}
BENCHMARK(BM_QLearningTrain1000);

}  // namespace

OPENEI_BENCH_MAIN(run_eq1)
