// Parallel scaling bench: sweeps OPENEI_THREADS over the compute substrate
// (blocked GEMM, im2col convolution) and batch size over the batched
// inference path, reporting ops/sec, speedup vs 1 thread, and p50/p95
// latency.  Writes BENCH_parallel.json so CI can archive the trajectory.
//
// Usage: bench_parallel_scaling [--quick] [--out PATH]
//   --quick  smaller problem sizes / fewer reps (CI smoke job)
//   --out    output JSON path (default BENCH_parallel.json in the CWD)
//
// Speedups depend on the host: on a single-core container every sweep
// legitimately reports ~1.0x (the pool runs chunks on one core), which is
// why the file records host_cpus alongside the numbers.  The multi-core CI
// runner is where the >= 2.5x GEMM/conv target at 4 threads is checked.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/zoo.h"
#include "runtime/inference.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace openei::bench {
namespace {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using tensor::Shape;
using tensor::Tensor;

struct Config {
  bool quick = false;
  std::string out_path = "BENCH_parallel.json";
};

struct LatencyStats {
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

/// Runs `work` `reps` times and summarizes the per-rep wall latencies.
template <typename Work>
LatencyStats measure(std::size_t reps, const Work& work) {
  std::vector<double> latencies_ms;
  latencies_ms.reserve(reps);
  double total_s = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    common::Stopwatch watch;
    work();
    double elapsed = watch.elapsed_seconds();
    total_s += elapsed;
    latencies_ms.push_back(elapsed * 1e3);
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double p) {
    std::size_t index = static_cast<std::size_t>(
        p * static_cast<double>(latencies_ms.size() - 1) + 0.5);
    return latencies_ms[index];
  };
  LatencyStats stats;
  stats.ops_per_sec = total_s > 0.0 ? static_cast<double>(reps) / total_s : 0.0;
  stats.p50_ms = percentile(0.50);
  stats.p95_ms = percentile(0.95);
  return stats;
}

Json stats_to_json(std::size_t threads, const LatencyStats& stats,
                   double speedup) {
  return Json(JsonObject{{"threads", Json(threads)},
                         {"ops_per_sec", Json(stats.ops_per_sec)},
                         {"speedup_vs_1_thread", Json(speedup)},
                         {"p50_ms", Json(stats.p50_ms)},
                         {"p95_ms", Json(stats.p95_ms)}});
}

const std::vector<std::size_t> kThreadSweep = {1, 2, 4, 8};

/// Sweeps the thread knob over `work`, printing a table row per setting and
/// returning the JSON sweep (speedup measured against the 1-thread row).
template <typename Work>
Json sweep_threads(const std::string& label, std::size_t reps,
                   const Work& work) {
  section(label);
  std::printf("%8s %14s %14s %10s %10s\n", "threads", "ops/sec", "speedup",
              "p50", "p95");
  JsonArray sweep;
  double baseline_ops = 0.0;
  for (std::size_t threads : kThreadSweep) {
    common::set_thread_count(threads);
    work();  // warm-up: page in buffers, spin up pool workers
    LatencyStats stats = measure(reps, work);
    if (threads == 1) baseline_ops = stats.ops_per_sec;
    double speedup =
        baseline_ops > 0.0 ? stats.ops_per_sec / baseline_ops : 0.0;
    std::printf("%8zu %14.1f %13.2fx %10s %10s\n", threads, stats.ops_per_sec,
                speedup, format_seconds(stats.p50_ms * 1e-3).c_str(),
                format_seconds(stats.p95_ms * 1e-3).c_str());
    sweep.push_back(stats_to_json(threads, stats, speedup));
  }
  common::set_thread_count(1);
  return Json(std::move(sweep));
}

Json run_gemm_sweep(const Config& config) {
  std::size_t dim = config.quick ? 128 : 256;
  std::size_t reps = config.quick ? 5 : 20;
  common::Rng rng(1);
  Tensor a = Tensor::random_normal(Shape{dim, dim}, rng);
  Tensor b = Tensor::random_normal(Shape{dim, dim}, rng);
  Json sweep = sweep_threads(
      "GEMM " + std::to_string(dim) + "x" + std::to_string(dim), reps,
      [&] { benchmark::DoNotOptimize(tensor::matmul(a, b)); });
  return Json(JsonObject{{"m", Json(dim)},
                         {"k", Json(dim)},
                         {"n", Json(dim)},
                         {"reps", Json(reps)},
                         {"sweep", std::move(sweep)}});
}

Json run_conv_sweep(const Config& config) {
  std::size_t batch = config.quick ? 4 : 16;
  std::size_t size = config.quick ? 16 : 32;
  std::size_t reps = config.quick ? 5 : 20;
  tensor::Conv2dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  spec.kernel = 3;
  spec.padding = 1;
  common::Rng rng(2);
  Tensor input = Tensor::random_normal(
      Shape{batch, spec.in_channels, size, size}, rng);
  Tensor weights = Tensor::random_normal(
      Shape{spec.out_channels, spec.in_channels, spec.kernel, spec.kernel},
      rng);
  Tensor bias = Tensor::random_normal(Shape{spec.out_channels}, rng);
  Json sweep = sweep_threads(
      "conv2d (im2col) batch=" + std::to_string(batch) + " " +
          std::to_string(size) + "x" + std::to_string(size),
      reps,
      [&] {
        benchmark::DoNotOptimize(
            tensor::conv2d_im2col(input, weights, bias, spec));
      });
  return Json(JsonObject{{"batch", Json(batch)},
                         {"image_size", Json(size)},
                         {"in_channels", Json(spec.in_channels)},
                         {"out_channels", Json(spec.out_channels)},
                         {"reps", Json(reps)},
                         {"sweep", std::move(sweep)}});
}

/// Batched-inference sweep: fixed total rows served either one request at a
/// time or fused through predict_batch at increasing batch sizes.
Json run_batch_sweep(const Config& config) {
  std::size_t features = 32;
  std::size_t total_rows = config.quick ? 64 : 256;
  std::size_t reps = config.quick ? 5 : 20;
  common::Rng rng(3);
  nn::Model model =
      nn::zoo::make_mlp("scaling", features, 4, {64, 64}, rng);
  runtime::InferenceSession session(std::move(model), hwsim::openei_package(),
                                    hwsim::raspberry_pi_4());

  section("batched inference (" + std::to_string(total_rows) +
          " rows total, MLP " + std::to_string(features) + "->4)");
  std::printf("%12s %14s %14s %10s %10s\n", "batch_rows", "rows/sec",
              "speedup", "p50", "p95");

  JsonArray sweep;
  double baseline_rows_per_sec = 0.0;
  for (std::size_t batch_rows : {std::size_t{1}, std::size_t{4},
                                 std::size_t{16}, std::size_t{64}}) {
    std::vector<Tensor> requests;
    for (std::size_t row = 0; row < total_rows; row += batch_rows) {
      std::size_t rows = std::min(batch_rows, total_rows - row);
      requests.push_back(Tensor::random_normal(Shape{rows, features}, rng));
    }
    LatencyStats stats = measure(reps, [&] {
      benchmark::DoNotOptimize(session.predict_batch(requests));
    });
    double rows_per_sec = stats.ops_per_sec * static_cast<double>(total_rows);
    if (batch_rows == 1) baseline_rows_per_sec = rows_per_sec;
    double speedup = baseline_rows_per_sec > 0.0
                         ? rows_per_sec / baseline_rows_per_sec
                         : 0.0;
    std::printf("%12zu %14.1f %13.2fx %10s %10s\n", batch_rows, rows_per_sec,
                speedup, format_seconds(stats.p50_ms * 1e-3).c_str(),
                format_seconds(stats.p95_ms * 1e-3).c_str());
    sweep.push_back(
        Json(JsonObject{{"batch_rows", Json(batch_rows)},
                        {"rows_per_sec", Json(rows_per_sec)},
                        {"speedup_vs_unbatched", Json(speedup)},
                        {"p50_ms", Json(stats.p50_ms)},
                        {"p95_ms", Json(stats.p95_ms)}}));
  }
  return Json(JsonObject{{"total_rows", Json(total_rows)},
                         {"reps", Json(reps)},
                         {"sweep", std::move(sweep)}});
}

int run(const Config& config) {
  banner(std::string("Parallel scaling sweep") +
         (config.quick ? " (quick)" : ""));
  std::size_t host_cpus = std::thread::hardware_concurrency();
  std::printf("host CPUs: %zu  (speedups are bounded by this)\n", host_cpus);

  if (host_cpus <= 1) {
    std::printf("WARNING: single-core host — speedup columns are not "
                "meaningful (every sweep legitimately reports ~1.0x).\n");
  }

  Json report(JsonObject{
      {"bench", Json("parallel_scaling")},
      {"quick", Json(config.quick)},
      {"host_cpus", Json(host_cpus)},
      // Downstream tooling must not grade speedup_vs_1_thread on a
      // single-core host; the flag makes that machine-checkable instead of
      // a comment in the header.
      {"speedup_valid", Json(host_cpus > 1)},
      {"gemm", run_gemm_sweep(config)},
      {"conv2d", run_conv_sweep(config)},
      {"batched_inference", run_batch_sweep(config)},
  });
  set_host_info(report, host_cpus > 1);

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << report.pretty() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench

int main(int argc, char** argv) {
  openei::common::set_log_level(openei::common::LogLevel::kError);
  openei::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel_scaling [--quick] [--out PATH]\n");
      return 2;
    }
  }
  return openei::bench::run(config);
}
