// E2 — Figure 1 / Sec. I motivation: why push intelligence to the edge.
//
// The paper's headline argument: sensors generate data faster than uplinks
// can carry it ("an autonomous vehicle generates about 1 GB of data per
// second"), so cloud offload breaks on bandwidth and latency.  This bench
// quantifies the claim on the simulated substrate:
//   (a) uplink utilization of cloud offload across sensor rates and links;
//   (b) end-to-end per-frame latency: offload vs on-edge inference;
//   (c) edge radio energy per inference.
#include "bench_common.h"

#include "collab/cloud_edge.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"

using namespace openei;

namespace {

void run_fig1() {
  bench::banner("E2 / Fig. 1: cloud offload vs edge intelligence");

  bench::section("(a) can the uplink even carry the sensor stream?");
  std::printf("%-14s", "frame size");
  for (const auto& link : hwsim::default_links()) {
    std::printf(" %16s", link.name.c_str());
  }
  std::printf("\n");
  for (std::size_t frame_bytes : {10UL << 10, 100UL << 10, 1UL << 20, 10UL << 20}) {
    std::printf("%-14s", bench::format_bytes(static_cast<double>(frame_bytes)).c_str());
    for (const auto& link : hwsim::default_links()) {
      // Frames per second the link sustains vs a 30 fps camera.
      double fps = 1.0 / link.transfer_time_s(frame_bytes);
      std::printf(" %9.2f fps%s", fps, fps >= 30.0 ? " ok" : "  X");
    }
    std::printf("\n");
  }
  std::printf("(X = cannot sustain a single 30 fps camera; the 1 GB/s vehicle "
              "needs ~250x a LAN)\n");

  bench::section("(b) end-to-end latency & (c) edge energy per inference");
  common::Rng rng(111);
  auto dataset = data::make_blobs(400, 64, 4, rng);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  nn::Model model = nn::zoo::make_mlp("perception", 64, 4, {128, 64}, rng);
  nn::TrainOptions topt;
  topt.epochs = 15;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::fit(model, train, topt);

  std::printf("%-14s %22s %22s %14s\n", "link", "cloud offload (ms)",
              "edge on-device (ms)", "edge wins?");
  for (const auto& link : hwsim::default_links()) {
    auto cloud = collab::dataflow_cloud_inference(
        model, test, hwsim::cloud_gpu(), hwsim::full_framework(), link);
    auto edge = collab::dataflow_edge_inference(
        model, test, hwsim::raspberry_pi_4(), hwsim::openei_package(), link);
    std::printf("%-14s %19.3f ms %19.3f ms %14s\n", link.name.c_str(),
                cloud.latency_per_inference_s * 1e3,
                edge.latency_per_inference_s * 1e3,
                edge.latency_per_inference_s < cloud.latency_per_inference_s
                    ? "edge"
                    : "cloud");
  }

  std::printf("\nper-inference bandwidth: cloud offload %s vs edge %s "
              "(amortized model download over %zu inferences)\n",
              bench::format_bytes(
                  collab::dataflow_cloud_inference(model, test, hwsim::cloud_gpu(),
                                                   hwsim::full_framework(),
                                                   hwsim::wifi())
                      .bytes_per_inference)
                  .c_str(),
              bench::format_bytes(
                  collab::dataflow_edge_inference(model, test,
                                                  hwsim::raspberry_pi_4(),
                                                  hwsim::openei_package(),
                                                  hwsim::wifi())
                      .bytes_per_inference)
                  .c_str(),
              test.size());

  std::printf("edge radio energy saved per inference on LTE: %.2e J -> %.2e J\n",
              collab::dataflow_cloud_inference(model, test, hwsim::cloud_gpu(),
                                               hwsim::full_framework(),
                                               hwsim::cellular_lte())
                  .energy_per_inference_j,
              collab::dataflow_edge_inference(model, test, hwsim::raspberry_pi_4(),
                                              hwsim::openei_package(),
                                              hwsim::cellular_lte())
                  .energy_per_inference_j);
}

void BM_EdgeInferenceWallClock(benchmark::State& state) {
  common::Rng rng(112);
  nn::Model model = nn::zoo::make_mlp("perception", 64, 4, {128, 64}, rng);
  nn::Tensor frame = nn::Tensor::random_uniform(tensor::Shape{1, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(frame, false));
  }
}
BENCHMARK(BM_EdgeInferenceWallClock);

}  // namespace

OPENEI_BENCH_MAIN(run_fig1)
