// E8 — Figure 6 / Sec. III-D/E: libei's RESTful API over real loopback HTTP.
//
//   (a) the Sec. III-E walkthrough timed end-to-end: data API then
//       algorithm API;
//   (b) wall-clock latency microbenchmarks for each route class;
//   (c) concurrent-client throughput of the edge node's HTTP server.
#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "data/synthetic.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "net/faults.h"
#include "net/resilient_client.h"
#include "nn/train.h"
#include "nn/zoo.h"

using namespace openei;

namespace {

/// One shared live node for the whole binary.
core::EdgeNode& node() {
  static auto instance = [] {
    auto n = std::make_unique<core::EdgeNode>(core::EdgeNodeConfig{
        hwsim::raspberry_pi_4(), hwsim::openei_package(), 4096, {}});
    common::Rng rng(171);
    auto dataset = data::make_blobs(400, 8, 3, rng);
    auto [train, test] = data::train_test_split(dataset, 0.8, rng);
    nn::TrainOptions topt;
    topt.epochs = 15;
    topt.sgd.learning_rate = 0.05F;
    topt.sgd.momentum = 0.9F;
    nn::Model model = nn::zoo::make_mlp("detector", 8, 3, {16}, rng);
    nn::fit(model, train, topt);
    double accuracy = nn::evaluate_accuracy(model, test);
    n->deploy_model("safety", "detection", std::move(model), accuracy);
    for (std::size_t i = 0; i < 100; ++i) {
      common::JsonArray features;
      for (std::size_t f = 0; f < 8; ++f) {
        features.emplace_back(static_cast<double>(test.features.at2(i % test.size(), f)));
      }
      n->ingest("camera1", static_cast<double>(i),
                common::Json(std::move(features)));
    }
    n->start_server(0);
    return n;
  }();
  return *instance;
}

void run_fig6() {
  bench::banner("E8 / Fig. 6: the libei RESTful API over loopback HTTP");
  core::EdgeNode& edge = node();
  net::HttpClient client(edge.port());
  std::printf("edge node '%s' serving at http://127.0.0.1:%u\n",
              edge.device().name.c_str(), edge.port());

  bench::section("(a) Sec. III-E walkthrough, timed");
  common::Stopwatch data_timer;
  auto frame = client.get("/ei_data/realtime/camera1?timestamp=50");
  double data_ms = data_timer.elapsed_ms();
  common::Stopwatch algo_timer;
  auto detection = client.get(
      "/ei_algorithms/safety/detection?sensor=camera1&timestamp=50");
  double algo_ms = algo_timer.elapsed_ms();
  std::printf("GET /ei_data/realtime/camera1?timestamp=50     -> %d in %.2f ms\n",
              frame.status, data_ms);
  std::printf("GET /ei_algorithms/safety/detection            -> %d in %.2f ms\n",
              detection.status, algo_ms);
  std::printf("  %s\n", detection.body.substr(0, 140).c_str());

  bench::section("(c) concurrent-client throughput (4 clients x 50 requests)");
  std::atomic<int> completed{0};
  common::Stopwatch throughput_timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&completed, port = edge.port()] {
      net::HttpClient worker(port);
      for (int i = 0; i < 50; ++i) {
        if (worker.get("/ei_data/realtime/camera1?timestamp=10").status == 200) {
          ++completed;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double elapsed = throughput_timer.elapsed_seconds();
  std::printf("%d/200 requests ok in %.2f s -> %.0f req/s\n", completed.load(),
              elapsed, 200.0 / elapsed);

  bench::section("(d) availability under a fixed fault schedule");
  // Two passes over an identical seeded fault schedule: a bare HttpClient
  // vs the resilient transport (retries + breaker).  Same seed, same rules,
  // same request stream -> the schedules are bit-identical, so the delta is
  // purely what the resilience layer absorbs.
  auto make_faulted_node = [] {
    auto n = std::make_unique<core::EdgeNode>(core::EdgeNodeConfig{
        hwsim::raspberry_pi_4(), hwsim::openei_package(), 128, {}});
    for (std::size_t i = 0; i < 10; ++i) {
      n->ingest("cam", static_cast<double>(i),
                common::Json(common::JsonArray{common::Json(1.0)}));
    }
    auto plan = std::make_shared<net::FaultPlan>(2026);
    plan->add({.path_prefix = "/ei_data",
               .kind = net::FaultKind::kErrorBurst,
               .probability = 0.25})
        .add({.path_prefix = "/ei_data",
              .kind = net::FaultKind::kRefuseConnection,
              .probability = 0.15});
    net::HttpServer::Options opts;
    opts.faults = plan;
    std::uint16_t port = n->start_server(0, opts);
    return std::make_pair(std::move(n), port);
  };
  constexpr int kFaultedRequests = 100;
  const std::string route = "/ei_data/realtime/cam?timestamp=5";

  auto [naive_node, naive_port] = make_faulted_node();
  int naive_ok = 0;
  for (int i = 0; i < kFaultedRequests; ++i) {
    try {
      net::HttpClient bare(naive_port);
      if (bare.get(route).status == 200) ++naive_ok;
    } catch (const openei::IoError&) {
    }
  }
  naive_node->stop_server();

  auto [res_node, res_port] = make_faulted_node();
  net::ResilientClient::Options ropts;
  ropts.deadline_s = 1.0;
  ropts.retry.initial_backoff_s = 0.001;
  ropts.retry.max_backoff_s = 0.01;
  ropts.breaker.failure_threshold = 10;  // keep probing through the bursts
  net::ResilientClient resilient(res_port, ropts);
  int resilient_ok = 0;
  for (int i = 0; i < kFaultedRequests; ++i) {
    try {
      if (resilient.get(route).status == 200) ++resilient_ok;
    } catch (const openei::IoError&) {
    }
  }
  auto stats = resilient.stats();
  res_node->stop_server();

  std::printf("bare HttpClient:  %d/%d ok (%.0f%% availability)\n", naive_ok,
              kFaultedRequests, 100.0 * naive_ok / kFaultedRequests);
  std::printf("ResilientClient:  %d/%d ok (%.0f%% availability), "
              "%llu retries across %llu attempts\n",
              resilient_ok, kFaultedRequests,
              100.0 * resilient_ok / kFaultedRequests,
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.attempts));

  bench::section("(e) observability overhead: tracing off vs on");
  // Two identical nodes serving the same algorithm route, timed two ways:
  // over loopback HTTP (the REST API as clients reach it — this is where the
  // <5% budget applies) and in-process (no HTTP, a microscope on the raw
  // instrumentation cost; held to a looser regression bound since a full
  // 6-span/24-attribute trace costs ~1.1 us against a ~12 us handler).
  auto make_obs_node = [](bool tracing) {
    core::EdgeNodeConfig config{
        hwsim::raspberry_pi_4(), hwsim::openei_package(), 256, {}};
    config.service.tracing.enabled = tracing;
    config.service.tracing.ring_capacity = 64;
    auto n = std::make_unique<core::EdgeNode>(std::move(config));
    common::Rng rng(171);
    nn::Model model = nn::zoo::make_mlp("detector", 8, 3, {16}, rng);
    n->deploy_model("safety", "detection", std::move(model), 0.9);
    common::JsonArray features;
    for (std::size_t f = 0; f < 8; ++f) {
      features.emplace_back(0.25 * static_cast<double>(f));
    }
    n->ingest("cam", 1.0, common::Json(std::move(features)));
    return n;
  };
  constexpr int kObsWarmup = 50;
  constexpr int kObsRequests = 400;
  const std::string obs_route =
      "/ei_algorithms/safety/detection?sensor=cam&timestamp=1";
  auto time_node = [&obs_route](core::EdgeNode& n) {
    for (int i = 0; i < kObsWarmup; ++i) n.call("GET", obs_route);
    common::Stopwatch timer;
    for (int i = 0; i < kObsRequests; ++i) n.call("GET", obs_route);
    return timer.elapsed_seconds() / kObsRequests;
  };
  auto plain_node = make_obs_node(false);
  auto traced_node = make_obs_node(true);
  // Loopback HTTP latency is noisy (scheduler + accept jitter dwarfs the
  // ~1 us instrumentation delta), so measure alternating off/on rounds and
  // take the median of the per-pair deltas: adjacent rounds see the same
  // background load, so drift cancels pairwise, and the median discards
  // rounds that caught a scheduling spike.
  constexpr int kObsHttpRounds = 9;
  constexpr int kObsHttpRequests = 150;
  std::uint16_t plain_port = plain_node->start_server(0);
  std::uint16_t traced_port = traced_node->start_server(0);
  auto time_http_round = [&obs_route](std::uint16_t port) {
    net::HttpClient client(port);
    for (int i = 0; i < kObsWarmup; ++i) client.get(obs_route);
    common::Stopwatch timer;
    for (int i = 0; i < kObsHttpRequests; ++i) client.get(obs_route);
    return timer.elapsed_seconds() / kObsHttpRequests;
  };
  std::vector<double> plain_rounds, traced_rounds;
  for (int round = 0; round < kObsHttpRounds; ++round) {
    plain_rounds.push_back(time_http_round(plain_port));
    traced_rounds.push_back(time_http_round(traced_port));
  }
  std::vector<double> deltas;
  for (int round = 0; round < kObsHttpRounds; ++round) {
    deltas.push_back(traced_rounds[round] - plain_rounds[round]);
  }
  std::sort(deltas.begin(), deltas.end());
  double delta_http_s = deltas[deltas.size() / 2];
  double plain_http_s = *std::min_element(plain_rounds.begin(), plain_rounds.end());
  plain_node->stop_server();
  traced_node->stop_server();
  std::printf("REST over HTTP, tracing off: %.2f us/call (best of %d rounds)\n",
              plain_http_s * 1e6, kObsHttpRounds);
  std::printf("REST over HTTP, tracing on:  %+.2f us/call delta = %+.1f%% (median of paired rounds, budget <5%%)\n",
              delta_http_s * 1e6, 100.0 * delta_http_s / plain_http_s);
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("(1-core host: loopback HTTP is scheduler-bound and the delta is "
                "noise-dominated; the budget line is meaningful on a multi-core "
                "runner)\n");
  }
  double plain_s = time_node(*plain_node);
  double traced_s = time_node(*traced_node);
  std::printf("in-process,     tracing off: %.2f us/call\n", plain_s * 1e6);
  std::printf("in-process,     tracing on:  %.2f us/call (%+.1f%% vs off; raw instrumentation microscope)\n",
              traced_s * 1e6, 100.0 * (traced_s - plain_s) / plain_s);
  auto metrics_page = traced_node->call("GET", "/ei_metrics");
  std::printf("GET /ei_metrics -> %d, %zu bytes of Prometheus text\n",
              metrics_page.status, metrics_page.body.size());
  auto trace_list = traced_node->call("GET", "/ei_trace");
  auto doc = common::Json::parse(trace_list.body);
  const auto& ids = doc.at("traces").as_array();
  if (!ids.empty()) {
    auto trace = traced_node->call(
        "GET", "/ei_trace/" + ids.back().as_string());
    std::printf("GET /ei_trace/%s -> %d, %zu retained traces\n",
                ids.back().as_string().c_str(), trace.status, ids.size());
  }
}

void BM_RestDataRealtime(benchmark::State& state) {
  net::HttpClient client(node().port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.get("/ei_data/realtime/camera1?timestamp=10"));
  }
}
BENCHMARK(BM_RestDataRealtime);

void BM_RestDataHistory(benchmark::State& state) {
  net::HttpClient client(node().port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.get("/ei_data/history/camera1?start=0&end=50"));
  }
}
BENCHMARK(BM_RestDataHistory);

void BM_RestAlgorithmCall(benchmark::State& state) {
  net::HttpClient client(node().port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.get(
        "/ei_algorithms/safety/detection?sensor=camera1&timestamp=10"));
  }
}
BENCHMARK(BM_RestAlgorithmCall);

void BM_InProcessAlgorithmCall(benchmark::State& state) {
  // Same route without HTTP: isolates the transport cost.
  for (auto _ : state) {
    benchmark::DoNotOptimize(node().call(
        "GET", "/ei_algorithms/safety/detection?sensor=camera1&timestamp=10"));
  }
}
BENCHMARK(BM_InProcessAlgorithmCall);

}  // namespace

OPENEI_BENCH_MAIN(run_fig6)
