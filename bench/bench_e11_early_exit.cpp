// E11 (extension) — distributed early-exit inference.
//
// The paper cites DDNN [17] ("distributed deep neural networks over the
// cloud, the edge and end devices", Sec. II-C) and EMI-RNN [42] ("72x less
// computation", Sec. IV-A2) as the collaboration/efficiency directions for
// EI.  This bench quantifies both on the OpenEI substrate:
//   (a) DDNN-style: exit-head confidence threshold sweep — local-exit
//       fraction vs accuracy vs mean latency against full offload;
//   (b) EMI-style: FastGRNN per-step early exit — computation saved vs
//       accuracy across thresholds.
#include "bench_common.h"

#include "collab/early_exit.h"
#include "common/rng.h"
#include "data/metrics.h"
#include "data/synthetic.h"
#include "eialg/fastgrnn.h"
#include "hwsim/device.h"
#include "hwsim/network.h"
#include "hwsim/package.h"
#include "nn/train.h"
#include "nn/zoo.h"

using namespace openei;

namespace {

void run_e11() {
  bench::banner("E11 (extension): early-exit inference (DDNN / EMI-RNN)");

  bench::section("(a) DDNN-style exit head: Pi-3 front, edge-server back, LTE");
  common::Rng rng(201);
  auto dataset = data::make_blobs(800, 12, 4, rng, /*separation=*/1.1F,
                                  /*stddev=*/1.5F);
  auto [train, test] = data::train_test_split(dataset, 0.8, rng);
  nn::Model backbone = nn::zoo::make_mlp("backbone", 12, 4, {48, 24}, rng);
  nn::TrainOptions topt;
  topt.epochs = 25;
  topt.sgd.learning_rate = 0.05F;
  topt.sgd.momentum = 0.9F;
  nn::fit(backbone, train, topt);
  double full_accuracy = nn::evaluate_accuracy(backbone, test);

  collab::EarlyExitModel exit_model(backbone, /*exit_layer=*/2, 4, rng);
  nn::TrainOptions head_opt = topt;
  head_opt.epochs = 20;
  exit_model.fit_exit(train, head_opt);

  std::printf("backbone accuracy %.3f; exit after layer %zu ships %zu B per "
              "escalation\n",
              full_accuracy, exit_model.exit_layer(),
              exit_model.escalation_bytes());
  std::printf("%-11s %12s %10s %14s %16s %14s\n", "threshold", "local frac",
              "accuracy", "mean latency", "offload latency", "bytes/inf");
  for (float threshold : {0.0F, 0.6F, 0.8F, 0.9F, 0.95F, 0.99F, 1.0F}) {
    auto metrics = collab::evaluate_early_exit(
        exit_model, test, threshold, hwsim::openei_package(),
        hwsim::raspberry_pi_3(), hwsim::edge_server(), hwsim::cellular_lte());
    std::printf("%-11.2f %12.2f %10.3f %14s %16s %14s\n", threshold,
                metrics.local_fraction, metrics.accuracy,
                bench::format_seconds(metrics.mean_latency_s).c_str(),
                bench::format_seconds(metrics.offload_latency_s).c_str(),
                bench::format_bytes(metrics.mean_bytes_per_inference).c_str());
  }
  std::printf("(DDNN shape: confident samples exit on-edge; only hard ones "
              "pay the network)\n");

  bench::section("(b) EMI-style FastGRNN early exit (16-step HAR)");
  eialg::FastGrnnOptions options;
  options.steps = 16;
  options.input_dims = 3;
  options.hidden = 16;
  options.epochs = 15;
  options.learning_rate = 0.08F;
  options.early_exit_supervision = 0.5F;
  auto sequences = data::make_sequences(700, options.steps, options.input_dims,
                                        4, rng, /*noise=*/0.8F);
  auto [seq_train, seq_test] = data::train_test_split(sequences, 0.8, rng);
  eialg::FastGrnn grnn(options);
  grnn.fit(seq_train);
  double grnn_full = eialg::evaluate(grnn, seq_test);
  std::printf("full-sequence accuracy %.3f (16/16 steps)\n", grnn_full);
  std::printf("%-11s %14s %12s %16s\n", "threshold", "steps used", "accuracy",
              "compute saved");
  for (float threshold : {0.6F, 0.8F, 0.9F, 0.95F, 0.99F}) {
    auto result = grnn.predict_early(seq_test.features, threshold);
    std::printf("%-11.2f %13.1f%% %12.3f %15.1f%%\n", threshold,
                result.mean_steps_fraction * 100.0,
                data::accuracy(result.predictions, seq_test.labels),
                (1.0 - result.mean_steps_fraction) * 100.0);
  }
  std::printf("(EMI shape: large compute savings at small accuracy cost)\n");
}

void BM_EarlyExitRun(benchmark::State& state) {
  common::Rng rng(202);
  auto dataset = data::make_blobs(200, 12, 3, rng);
  nn::Model backbone = nn::zoo::make_mlp("b", 12, 3, {48, 24}, rng);
  collab::EarlyExitModel exit_model(backbone, 2, 3, rng);
  nn::TrainOptions opt;
  opt.epochs = 3;
  exit_model.fit_exit(dataset, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exit_model.run(dataset.features, 0.9F));
  }
}
BENCHMARK(BM_EarlyExitRun);

}  // namespace

OPENEI_BENCH_MAIN(run_e11)
