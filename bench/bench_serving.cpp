// HTTP serving bench: event-loop engine vs the legacy thread-per-connection
// baseline under thousands of concurrent keep-alive connections.
//
// The load generator is itself a non-blocking event loop (net::Poller): one
// driver thread multiplexes all of its client connections, so the harness
// can hold 1k+ sockets open without 1k client threads.  Three phases run
// against a fully wired EdgeNode (deployed model, ingested sensor data):
//
//   thread_per_conn   legacy engine; one request per connection, so every
//                     request pays connect+teardown (its real-world cost)
//   event_loop        keep-alive reuse, one request in flight per conn
//   event_loop_pipe   keep-alive + pipelining (depth 8 per connection)
//
// Per phase: req/s and p50/p99/p999 latency, plus the server's own
// ServerStats (keep-alive reuses, peak connections) as cross-evidence.
// Writes BENCH_serving.json for CI to archive; --min-keepalive-rps turns
// the keep-alive phase's req/s into a regression gate (exit 1 below it).
//
// Usage: bench_serving [--quick] [--out PATH] [--connections N]
//                      [--duration-s S] [--min-keepalive-rps R] [--rate R]
//   --quick               small connection count + short phases (CI smoke)
//   --connections N       concurrent client connections (default 1024)
//   --duration-s S        measured seconds per phase (default 4)
//   --min-keepalive-rps R fail (exit 1) when the keep-alive phase serves
//                         fewer than R req/s (0 = no gate)
//   --rate R              open-loop aggregate arrival rate in req/s for the
//                         keep-alive phase (0 = closed loop)
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/edge_node.h"
#include "net/http.h"
#include "net/poller.h"
#include "net/socket.h"
#include "nn/zoo.h"

namespace openei::bench {
namespace {

using common::Json;
using common::JsonObject;

struct Config {
  bool quick = false;
  std::string out_path = "BENCH_serving.json";
  std::size_t connections = 1024;
  double duration_s = 4.0;
  double min_keepalive_rps = 0.0;
  double open_loop_rate = 0.0;
};

/// Lift RLIMIT_NOFILE to its hard cap so thousands of sockets (client +
/// server side live in this one process) do not hit EMFILE.
void raise_fd_limit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  limit.rlim_cur = limit.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

// ---------------------------------------------------------------------------
// Non-blocking load generator
// ---------------------------------------------------------------------------

struct LoadOptions {
  std::size_t connections = 256;
  std::size_t pipeline = 1;       // requests in flight per connection
  bool keep_alive = true;         // false: reconnect after every response
  double duration_s = 2.0;
  double open_loop_rate = 0.0;    // aggregate req/s target; 0 = closed loop
  std::size_t driver_threads = 2;
};

struct LoadResult {
  std::size_t completed = 0;
  std::size_t errors = 0;
  double wall_s = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[index];
}

/// One client connection driven by the poller: pending request bytes out,
/// incremental response scanning in, send-timestamps matched FIFO to
/// response completions for per-request latency.
struct ClientConn {
  net::TcpConnection socket;
  std::string out;
  std::size_t out_off = 0;
  std::string in;
  bool in_body = false;            // false = scanning for the next head
  std::size_t body_remaining = 0;
  std::deque<double> send_times;
  double next_send_s = 0.0;        // open-loop pacing

  explicit ClientConn(net::TcpConnection s) : socket(std::move(s)) {}
};

class LoadDriver {
 public:
  LoadDriver(std::uint16_t port, std::string wire_request, LoadOptions options)
      : port_(port),
        wire_request_(std::move(wire_request)),
        options_(options) {}

  LoadResult run() {
    std::size_t threads = std::max<std::size_t>(options_.driver_threads, 1);
    std::vector<std::thread> drivers;
    std::vector<LoadResult> partial(threads);
    std::vector<std::vector<double>> latencies(threads);
    std::size_t base = options_.connections / threads;
    std::size_t extra = options_.connections % threads;
    common::Stopwatch wall;
    for (std::size_t t = 0; t < threads; ++t) {
      std::size_t count = base + (t < extra ? 1 : 0);
      drivers.emplace_back([this, t, count, &partial, &latencies] {
        drive(count, partial[t], latencies[t]);
      });
    }
    for (std::thread& driver : drivers) driver.join();

    LoadResult total;
    total.wall_s = wall.elapsed_seconds();
    std::vector<double> merged;
    for (std::size_t t = 0; t < threads; ++t) {
      total.completed += partial[t].completed;
      total.errors += partial[t].errors;
      merged.insert(merged.end(), latencies[t].begin(), latencies[t].end());
    }
    std::sort(merged.begin(), merged.end());
    total.requests_per_sec =
        total.wall_s > 0.0
            ? static_cast<double>(total.completed) / total.wall_s
            : 0.0;
    total.p50_ms = percentile(merged, 0.50);
    total.p99_ms = percentile(merged, 0.99);
    total.p999_ms = percentile(merged, 0.999);
    return total;
  }

 private:
  std::unique_ptr<ClientConn> open_conn(double now_s) {
    net::TcpConnection socket = net::connect_local(port_, 5.0);
    socket.set_nonblocking(true);
    socket.set_nodelay(true);
    auto conn = std::make_unique<ClientConn>(std::move(socket));
    conn->next_send_s = now_s;
    return conn;
  }

  void queue_request(ClientConn& conn, double now_s) {
    conn.out.append(wire_request_);
    conn.send_times.push_back(now_s);
  }

  /// Returns false when the connection died (peer closed / error).
  bool flush(ClientConn& conn, net::Poller& poller) {
    while (conn.out_off < conn.out.size()) {
      std::ptrdiff_t n;
      try {
        n = conn.socket.write_nonblocking(conn.out.data() + conn.out_off,
                                          conn.out.size() - conn.out_off);
      } catch (const std::exception&) {
        return false;
      }
      if (n < 0) break;  // EAGAIN
      conn.out_off += static_cast<std::size_t>(n);
    }
    if (conn.out_off >= conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    }
    bool want_write = conn.out_off < conn.out.size();
    poller.modify(conn.socket.native_handle(), true, want_write);
    return true;
  }

  /// Scans the input buffer for complete responses; records latency per
  /// completion.  Returns the number completed this call.
  std::size_t consume_responses(ClientConn& conn, std::vector<double>& lat_ms,
                                double now_s) {
    std::size_t completed = 0;
    while (true) {
      if (!conn.in_body) {
        auto head_end = conn.in.find("\r\n\r\n");
        if (head_end == std::string::npos) break;
        std::size_t content_length = 0;
        // The server always sends Content-Length (bench-grade scan).
        auto pos = conn.in.find("Content-Length:");
        if (pos != std::string::npos && pos < head_end) {
          content_length = std::strtoull(conn.in.c_str() + pos + 15, nullptr, 10);
        }
        conn.in.erase(0, head_end + 4);
        conn.body_remaining = content_length;
        conn.in_body = true;
      }
      if (conn.in.size() < conn.body_remaining) break;
      conn.in.erase(0, conn.body_remaining);
      conn.in_body = false;
      ++completed;
      if (!conn.send_times.empty()) {
        lat_ms.push_back((now_s - conn.send_times.front()) * 1e3);
        conn.send_times.pop_front();
      }
    }
    return completed;
  }

  void drive(std::size_t connections, LoadResult& result,
             std::vector<double>& lat_ms) {
    if (connections == 0) return;
    net::Poller poller;
    std::unordered_map<int, std::unique_ptr<ClientConn>> conns;
    common::Stopwatch clock;
    double per_conn_interval =
        options_.open_loop_rate > 0.0
            ? static_cast<double>(options_.connections) / options_.open_loop_rate
            : 0.0;

    auto arm = [&](std::unique_ptr<ClientConn> conn) {
      double now_s = clock.elapsed_seconds();
      for (std::size_t i = 0; i < options_.pipeline; ++i) {
        if (per_conn_interval > 0.0 && i > 0) break;  // open loop: 1 at a time
        queue_request(*conn, now_s);
      }
      int fd = conn->socket.native_handle();
      poller.add(fd, true, true);
      ClientConn& ref = *conn;
      conns.emplace(fd, std::move(conn));
      flush(ref, poller);
    };

    try {
      for (std::size_t i = 0; i < connections; ++i) {
        arm(open_conn(clock.elapsed_seconds()));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "load driver: connect failed: %s\n", e.what());
      ++result.errors;
    }

    std::vector<net::Poller::Event> events;
    char chunk[16384];
    while (clock.elapsed_seconds() < options_.duration_s) {
      poller.wait(events, 10);
      double now_s = clock.elapsed_seconds();
      for (const net::Poller::Event& event : events) {
        auto it = conns.find(event.fd);
        if (it == conns.end()) continue;
        ClientConn& conn = *it->second;
        bool dead = event.error;
        if (!dead && event.writable && conn.out_off < conn.out.size()) {
          dead = !flush(conn, poller);
        }
        while (!dead && event.readable) {
          std::ptrdiff_t n;
          try {
            n = conn.socket.read_nonblocking(chunk, sizeof(chunk));
          } catch (const std::exception&) {
            dead = true;
            break;
          }
          if (n < 0) break;
          if (n == 0) {  // server closed (expected for keep_alive=false)
            dead = true;
            break;
          }
          conn.in.append(chunk, static_cast<std::size_t>(n));
          std::size_t completed = consume_responses(conn, lat_ms, now_s);
          result.completed += completed;
          if (completed > 0 && options_.keep_alive) {
            for (std::size_t i = 0; i < completed; ++i) {
              if (per_conn_interval > 0.0) {
                conn.next_send_s += per_conn_interval;
                if (conn.next_send_s > now_s) break;  // paced: not due yet
              }
              queue_request(conn, now_s);
            }
            if (!flush(conn, poller)) {
              dead = true;
              break;
            }
          }
        }
        if (dead) {
          bool mid_response = !conn.send_times.empty() && options_.keep_alive;
          if (mid_response) ++result.errors;
          poller.remove(event.fd);
          conns.erase(event.fd);
          // Reconnect-per-request baseline (or replacing a dropped conn).
          if (clock.elapsed_seconds() < options_.duration_s) {
            try {
              arm(open_conn(clock.elapsed_seconds()));
            } catch (const std::exception&) {
              ++result.errors;
            }
          }
        }
      }
      // Open-loop pacing: fire requests that have come due on idle conns.
      if (per_conn_interval > 0.0) {
        for (auto& [fd, conn] : conns) {
          if (!conn->send_times.empty()) continue;
          if (conn->next_send_s <= now_s) {
            queue_request(*conn, now_s);
            conn->next_send_s = now_s + per_conn_interval;
            flush(*conn, poller);
          }
        }
      }
    }
    for (auto& [fd, conn] : conns) poller.remove(fd);
    conns.clear();
  }

  std::uint16_t port_;
  std::string wire_request_;
  LoadOptions options_;
};

// ---------------------------------------------------------------------------
// Bench phases
// ---------------------------------------------------------------------------

core::EdgeNodeConfig make_node_config() {
  core::EdgeNodeConfig config;
  config.device = hwsim::DeviceProfile{};
  config.device.name = "bench-serving";
  return config;
}

void seed_node(core::EdgeNode& node) {
  common::Rng rng(7);
  node.deploy_model("bench", "detect",
                    nn::zoo::make_mlp("serving_mlp", 8, 3, {4}, rng), 0.9);
  for (int i = 0; i < 16; ++i) {
    node.ingest("cam1", static_cast<double>(i),
                Json(JsonObject{{"frame", Json(i)}}));
  }
}

std::string wire_request(bool keep_alive) {
  std::string out = "GET /ei_data/realtime/cam1?timestamp=15 HTTP/1.1\r\n"
                    "Host: 127.0.0.1\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  return out;
}

Json result_to_json(const LoadResult& result) {
  return Json(JsonObject{{"completed", Json(result.completed)},
                         {"errors", Json(result.errors)},
                         {"wall_s", Json(result.wall_s)},
                         {"requests_per_sec", Json(result.requests_per_sec)},
                         {"p50_ms", Json(result.p50_ms)},
                         {"p99_ms", Json(result.p99_ms)},
                         {"p999_ms", Json(result.p999_ms)}});
}

Json stats_to_json(const net::ServerStats& stats) {
  return Json(JsonObject{
      {"engine", Json(stats.engine)},
      {"connections_accepted", Json(stats.connections_accepted)},
      {"requests_served", Json(stats.requests_served)},
      {"keepalive_reuses", Json(stats.keepalive_reuses)},
      {"peak_connections", Json(stats.peak_connections)},
      {"parse_errors", Json(stats.parse_errors)}});
}

void print_row(const char* name, const LoadResult& result) {
  std::printf("%18s %10.0f %9s %9s %9s %7zu\n", name, result.requests_per_sec,
              format_seconds(result.p50_ms / 1e3).c_str(),
              format_seconds(result.p99_ms / 1e3).c_str(),
              format_seconds(result.p999_ms / 1e3).c_str(), result.errors);
}

int run(const Config& config) {
  raise_fd_limit();
  banner("OpenEI serving: event loop vs thread-per-connection");
  std::size_t host_cpus = std::thread::hardware_concurrency();
  std::size_t connections = config.quick
                                ? std::min<std::size_t>(config.connections, 64)
                                : config.connections;
  double duration_s = config.quick ? std::min(config.duration_s, 1.5)
                                   : config.duration_s;
  std::printf("host CPUs: %zu   connections: %zu   phase duration: %.1fs%s\n",
              host_cpus, connections, duration_s,
              config.quick ? "  [quick]" : "");

  Json report{JsonObject{}};
  report.set("bench", "serving");
  report.set("quick", config.quick);
  report.set("host_cpus", host_cpus);
  report.set("connections", connections);
  report.set("duration_s", duration_s);
  // One driver thread per ~512 connections, bounded by the host.
  std::size_t drivers = std::clamp<std::size_t>(connections / 512 + 1, 1,
                                                std::max<std::size_t>(
                                                    host_cpus / 2, 1));
  report.set("driver_threads", drivers);

  std::printf("\n%18s %10s %9s %9s %9s %7s\n", "phase", "req/s", "p50", "p99",
              "p999", "errors");

  // --- Phase 1: legacy thread-per-connection baseline -------------------
  LoadResult baseline;
  {
    core::EdgeNode node(make_node_config());
    seed_node(node);
    net::HttpServer::Options options;
    options.thread_per_connection = true;
    std::uint16_t port = node.start_server(0, options);
    LoadOptions load;
    load.connections = connections;
    load.pipeline = 1;
    load.keep_alive = false;  // the legacy engine closes after one response
    load.duration_s = duration_s;
    load.driver_threads = drivers;
    baseline = LoadDriver(port, wire_request(false), load).run();
    print_row("thread_per_conn", baseline);
    node.stop_server();
  }

  // --- Phases 2+3: event loop, keep-alive then pipelined ----------------
  LoadResult keepalive;
  LoadResult pipelined;
  Json server_stats;
  {
    core::EdgeNode node(make_node_config());
    seed_node(node);
    std::uint16_t port = node.start_server(0, net::HttpServer::Options{});
    LoadOptions load;
    load.connections = connections;
    load.pipeline = 1;
    load.keep_alive = true;
    load.duration_s = duration_s;
    load.open_loop_rate = config.open_loop_rate;
    load.driver_threads = drivers;
    keepalive = LoadDriver(port, wire_request(true), load).run();
    print_row("event_loop", keepalive);

    load.pipeline = 8;
    load.open_loop_rate = 0.0;
    pipelined = LoadDriver(port, wire_request(true), load).run();
    print_row("event_loop_pipe", pipelined);
    server_stats = stats_to_json(node.server_stats());
    node.stop_server();
  }

  double speedup = baseline.requests_per_sec > 0.0
                       ? keepalive.requests_per_sec / baseline.requests_per_sec
                       : 0.0;
  // On a 1-core CI runner both engines serialize behind the same CPU, so
  // the ≥5x claim is only asserted where parallelism exists.
  bool speedup_valid = host_cpus >= 4 && !config.quick;
  section("summary");
  std::printf("keep-alive vs thread-per-conn: %.1fx req/s%s\n", speedup,
              speedup_valid ? "" : "  (informational: quick run or <4 cores)");

  report.set("thread_per_connection", result_to_json(baseline));
  report.set("event_loop_keepalive", result_to_json(keepalive));
  report.set("event_loop_pipelined", result_to_json(pipelined));
  report.set("server_stats", std::move(server_stats));
  report.set("keepalive_speedup", speedup);
  report.set("min_keepalive_rps", config.min_keepalive_rps);
  set_host_info(report, speedup_valid);

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << report.pretty() << "\n";
  std::printf("wrote %s\n", config.out_path.c_str());

  if (config.min_keepalive_rps > 0.0 &&
      keepalive.requests_per_sec < config.min_keepalive_rps) {
    std::fprintf(stderr,
                 "FAIL: keep-alive phase served %.0f req/s, below the %.0f "
                 "req/s floor\n",
                 keepalive.requests_per_sec, config.min_keepalive_rps);
    return 1;
  }
  if (speedup_valid && speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: keep-alive speedup %.1fx below the 5x acceptance "
                 "threshold (multi-core, full run)\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace openei::bench

int main(int argc, char** argv) {
  openei::common::set_log_level(openei::common::LogLevel::kError);
  openei::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      config.connections = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--duration-s") == 0 && i + 1 < argc) {
      config.duration_s = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-keepalive-rps") == 0 && i + 1 < argc) {
      config.min_keepalive_rps = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      config.open_loop_rate = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serving [--quick] [--out PATH] "
                   "[--connections N] [--duration-s S] "
                   "[--min-keepalive-rps R] [--rate R]\n");
      return 2;
    }
  }
  return openei::bench::run(config);
}
