#include "nn/optimizer.h"

#include <cmath>

#include "common/error.h"

namespace openei::nn {

SgdOptimizer::SgdOptimizer(Options options) : options_(options) {
  OPENEI_CHECK(options.learning_rate > 0.0F, "non-positive learning rate");
  OPENEI_CHECK(options.momentum >= 0.0F && options.momentum < 1.0F,
               "momentum outside [0, 1)");
  OPENEI_CHECK(options.weight_decay >= 0.0F, "negative weight decay");
}

void SgdOptimizer::step(const std::vector<Tensor*>& parameters,
                        const std::vector<Tensor*>& gradients) {
  OPENEI_CHECK(parameters.size() == gradients.size(),
               "parameter/gradient count mismatch");
  if (velocity_.empty()) {
    velocity_.reserve(parameters.size());
    for (Tensor* p : parameters) velocity_.emplace_back(p->shape());
  }
  OPENEI_CHECK(velocity_.size() == parameters.size(),
               "optimizer bound to a different parameter list");

  for (std::size_t i = 0; i < parameters.size(); ++i) {
    Tensor& p = *parameters[i];
    Tensor& g = *gradients[i];
    Tensor& v = velocity_[i];
    OPENEI_CHECK(p.shape() == g.shape() && p.shape() == v.shape(),
                 "parameter ", i, " shape changed under the optimizer");
    auto pd = p.data();
    auto gd = g.data();
    auto vd = v.data();
    for (std::size_t j = 0; j < pd.size(); ++j) {
      float grad = gd[j] + options_.weight_decay * pd[j];
      vd[j] = options_.momentum * vd[j] + grad;
      pd[j] -= options_.learning_rate * vd[j];
    }
  }
}

AdamOptimizer::AdamOptimizer(Options options) : options_(options) {
  OPENEI_CHECK(options.learning_rate > 0.0F, "non-positive learning rate");
  OPENEI_CHECK(options.beta1 >= 0.0F && options.beta1 < 1.0F, "beta1 outside [0,1)");
  OPENEI_CHECK(options.beta2 >= 0.0F && options.beta2 < 1.0F, "beta2 outside [0,1)");
  OPENEI_CHECK(options.epsilon > 0.0F, "non-positive epsilon");
}

void AdamOptimizer::step(const std::vector<Tensor*>& parameters,
                         const std::vector<Tensor*>& gradients) {
  OPENEI_CHECK(parameters.size() == gradients.size(),
               "parameter/gradient count mismatch");
  if (first_moment_.empty()) {
    first_moment_.reserve(parameters.size());
    second_moment_.reserve(parameters.size());
    for (Tensor* p : parameters) {
      first_moment_.emplace_back(p->shape());
      second_moment_.emplace_back(p->shape());
    }
  }
  OPENEI_CHECK(first_moment_.size() == parameters.size(),
               "optimizer bound to a different parameter list");

  ++step_count_;
  float correction1 =
      1.0F - std::pow(options_.beta1, static_cast<float>(step_count_));
  float correction2 =
      1.0F - std::pow(options_.beta2, static_cast<float>(step_count_));

  for (std::size_t i = 0; i < parameters.size(); ++i) {
    auto pd = parameters[i]->data();
    auto gd = gradients[i]->data();
    auto md = first_moment_[i].data();
    auto vd = second_moment_[i].data();
    OPENEI_CHECK(pd.size() == md.size(), "parameter ", i,
                 " shape changed under the optimizer");
    for (std::size_t j = 0; j < pd.size(); ++j) {
      md[j] = options_.beta1 * md[j] + (1.0F - options_.beta1) * gd[j];
      vd[j] = options_.beta2 * vd[j] + (1.0F - options_.beta2) * gd[j] * gd[j];
      float m_hat = md[j] / correction1;
      float v_hat = vd[j] / correction2;
      pd[j] -= options_.learning_rate * m_hat /
               (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

}  // namespace openei::nn
