#include "nn/zoo.h"

#include <algorithm>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/residual.h"

namespace openei::nn::zoo {

using tensor::Conv2dSpec;

namespace {

Conv2dSpec conv_spec(std::size_t in_c, std::size_t out_c, std::size_t kernel,
                     std::size_t stride, std::size_t padding) {
  Conv2dSpec spec;
  spec.in_channels = in_c;
  spec.out_channels = out_c;
  spec.kernel = kernel;
  spec.stride = stride;
  spec.padding = padding;
  return spec;
}

std::size_t flat_features(const Model& model) {
  return model.output_shape().elements();
}

}  // namespace

Model make_mlp(const std::string& name, std::size_t inputs, std::size_t classes,
               const std::vector<std::size_t>& hidden, common::Rng& rng) {
  Model model(name, tensor::Shape{inputs});
  std::size_t width = inputs;
  for (std::size_t h : hidden) {
    model.add(std::make_unique<Dense>(width, h, rng));
    model.add(std::make_unique<Relu>());
    width = h;
  }
  model.add(std::make_unique<Dense>(width, classes, rng));
  return model;
}

Model make_mini_alexnet(const ImageSpec& spec, common::Rng& rng) {
  Model model("mini_alexnet",
              tensor::Shape{spec.channels, spec.size, spec.size});
  model.add(std::make_unique<Conv2d>(conv_spec(spec.channels, 12, 5, 1, 2), rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Conv2d>(conv_spec(12, 24, 3, 1, 1), rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Flatten>());
  // The AlexNet signature: a heavy dense head.
  model.add(std::make_unique<Dense>(flat_features(model), 128, rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<Dropout>(0.3F, 1234));
  model.add(std::make_unique<Dense>(128, spec.classes, rng));
  return model;
}

Model make_mini_vgg(const ImageSpec& spec, common::Rng& rng) {
  Model model("mini_vgg", tensor::Shape{spec.channels, spec.size, spec.size});
  // Block 1: conv-conv-pool at width 16.
  model.add(std::make_unique<Conv2d>(conv_spec(spec.channels, 16, 3, 1, 1), rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<Conv2d>(conv_spec(16, 16, 3, 1, 1), rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<MaxPool2d>(2));
  // Block 2: conv-conv-pool at width 32.
  model.add(std::make_unique<Conv2d>(conv_spec(16, 32, 3, 1, 1), rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<Conv2d>(conv_spec(32, 32, 3, 1, 1), rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(flat_features(model), 96, rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<Dense>(96, spec.classes, rng));
  return model;
}

Model make_mini_resnet(const ImageSpec& spec, common::Rng& rng) {
  Model model("mini_resnet", tensor::Shape{spec.channels, spec.size, spec.size});
  model.add(std::make_unique<Conv2d>(conv_spec(spec.channels, 16, 3, 1, 1), rng));
  model.add(std::make_unique<BatchNorm>(16));
  model.add(std::make_unique<Relu>());

  // Identity residual block at width 16.
  {
    std::vector<LayerPtr> body;
    body.push_back(std::make_unique<Conv2d>(conv_spec(16, 16, 3, 1, 1), rng));
    body.push_back(std::make_unique<BatchNorm>(16));
    body.push_back(std::make_unique<Relu>());
    body.push_back(std::make_unique<Conv2d>(conv_spec(16, 16, 3, 1, 1), rng));
    body.push_back(std::make_unique<BatchNorm>(16));
    model.add(std::make_unique<ResidualBlock>(std::move(body), nullptr));
    model.add(std::make_unique<Relu>());
  }

  // Downsampling residual block 16 -> 32 with 1x1 projection.
  {
    std::vector<LayerPtr> body;
    body.push_back(std::make_unique<Conv2d>(conv_spec(16, 32, 3, 2, 1), rng));
    body.push_back(std::make_unique<BatchNorm>(32));
    body.push_back(std::make_unique<Relu>());
    body.push_back(std::make_unique<Conv2d>(conv_spec(32, 32, 3, 1, 1), rng));
    body.push_back(std::make_unique<BatchNorm>(32));
    auto projection = std::make_unique<Conv2d>(conv_spec(16, 32, 1, 2, 0), rng);
    model.add(
        std::make_unique<ResidualBlock>(std::move(body), std::move(projection)));
    model.add(std::make_unique<Relu>());
  }

  model.add(std::make_unique<GlobalAvgPool>());
  model.add(std::make_unique<Dense>(32, spec.classes, rng));
  return model;
}

Model make_mini_mobilenet(const ImageSpec& spec, common::Rng& rng, float alpha) {
  OPENEI_CHECK(alpha > 0.0F && alpha <= 1.0F, "mobilenet alpha outside (0, 1]");
  auto width = [alpha](std::size_t w) {
    return std::max<std::size_t>(
        4, static_cast<std::size_t>(static_cast<float>(w) * alpha));
  };
  std::string name =
      alpha == 1.0F ? "mini_mobilenet"
                    : "mini_mobilenet_" + std::to_string(static_cast<int>(alpha * 100));
  Model model(name, tensor::Shape{spec.channels, spec.size, spec.size});
  std::size_t w0 = width(16);
  model.add(std::make_unique<Conv2d>(conv_spec(spec.channels, w0, 3, 1, 1), rng));
  model.add(std::make_unique<Relu>());

  // Three depthwise-separable blocks, second one downsampling.
  std::size_t widths[3] = {width(16), width(32), width(32)};
  std::size_t strides[3] = {1, 2, 1};
  std::size_t current = w0;
  for (int i = 0; i < 3; ++i) {
    Conv2dSpec dw = conv_spec(current, current, 3, strides[i], 1);
    model.add(std::make_unique<DepthwiseConv2d>(dw, rng));
    model.add(std::make_unique<Relu>());
    model.add(std::make_unique<Conv2d>(conv_spec(current, widths[i], 1, 1, 0), rng));
    model.add(std::make_unique<Relu>());
    current = widths[i];
  }

  model.add(std::make_unique<GlobalAvgPool>());
  model.add(std::make_unique<Dense>(current, spec.classes, rng));
  return model;
}

Model make_mini_squeezenet(const ImageSpec& spec, common::Rng& rng) {
  Model model("mini_squeezenet",
              tensor::Shape{spec.channels, spec.size, spec.size});
  model.add(std::make_unique<Conv2d>(conv_spec(spec.channels, 16, 3, 1, 1), rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<MaxPool2d>(2));

  // Two fire-style modules: 1x1 squeeze then 3x3 expand.
  std::size_t in_c = 16;
  for (std::size_t expand : {24UL, 32UL}) {
    std::size_t squeeze = expand / 4;
    model.add(std::make_unique<Conv2d>(conv_spec(in_c, squeeze, 1, 1, 0), rng));
    model.add(std::make_unique<Relu>());
    model.add(std::make_unique<Conv2d>(conv_spec(squeeze, expand, 3, 1, 1), rng));
    model.add(std::make_unique<Relu>());
    in_c = expand;
  }

  // No dense head: conv classifier + global pooling (the SqueezeNet trick
  // that removes AlexNet's parameter-heavy dense layers).
  model.add(std::make_unique<Conv2d>(conv_spec(in_c, spec.classes, 1, 1, 0), rng));
  model.add(std::make_unique<GlobalAvgPool>());
  return model;
}

Model make_mini_xception(const ImageSpec& spec, common::Rng& rng) {
  Model model("mini_xception", tensor::Shape{spec.channels, spec.size, spec.size});
  model.add(std::make_unique<Conv2d>(conv_spec(spec.channels, 16, 3, 1, 1), rng));
  model.add(std::make_unique<Relu>());

  // Two residual blocks whose bodies are depthwise-separable stacks — the
  // Xception signature: separable convs + residual connections.
  for (int block = 0; block < 2; ++block) {
    std::vector<LayerPtr> body;
    Conv2dSpec dw = conv_spec(16, 16, 3, 1, 1);
    body.push_back(std::make_unique<DepthwiseConv2d>(dw, rng));
    body.push_back(std::make_unique<Conv2d>(conv_spec(16, 16, 1, 1, 0), rng));
    body.push_back(std::make_unique<Relu>());
    body.push_back(std::make_unique<DepthwiseConv2d>(dw, rng));
    body.push_back(std::make_unique<Conv2d>(conv_spec(16, 16, 1, 1, 0), rng));
    model.add(std::make_unique<ResidualBlock>(std::move(body), nullptr));
    model.add(std::make_unique<Relu>());
  }

  model.add(std::make_unique<GlobalAvgPool>());
  model.add(std::make_unique<Dense>(16, spec.classes, rng));
  return model;
}

std::vector<CatalogEntry> image_catalog() {
  return {
      {"mini_alexnet",
       [](const ImageSpec& s, common::Rng& r) { return make_mini_alexnet(s, r); }},
      {"mini_vgg",
       [](const ImageSpec& s, common::Rng& r) { return make_mini_vgg(s, r); }},
      {"mini_resnet",
       [](const ImageSpec& s, common::Rng& r) { return make_mini_resnet(s, r); }},
      {"mini_mobilenet",
       [](const ImageSpec& s, common::Rng& r) {
         return make_mini_mobilenet(s, r, 1.0F);
       }},
      {"mini_mobilenet_50",
       [](const ImageSpec& s, common::Rng& r) {
         return make_mini_mobilenet(s, r, 0.5F);
       }},
      {"mini_squeezenet",
       [](const ImageSpec& s, common::Rng& r) { return make_mini_squeezenet(s, r); }},
      {"mini_xception",
       [](const ImageSpec& s, common::Rng& r) { return make_mini_xception(s, r); }},
  };
}

}  // namespace openei::nn::zoo
