// Stateless activation layers and shape utilities (flatten, dropout).
#pragma once

#include "nn/layer.h"

namespace openei::nn {

/// max(0, x).
class Relu : public Layer {
 public:
  std::string type() const override { return "relu"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override { return input; }
  std::size_t flops(const Shape& input) const override { return input.elements(); }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Relu>(); }
  common::Json config() const override { return common::Json(common::JsonObject{}); }

 private:
  Tensor cached_input_;
};

/// 1 / (1 + e^-x).
class Sigmoid : public Layer {
 public:
  std::string type() const override { return "sigmoid"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override { return input; }
  std::size_t flops(const Shape& input) const override {
    return 4 * input.elements();
  }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Sigmoid>(); }
  common::Json config() const override { return common::Json(common::JsonObject{}); }

 private:
  Tensor cached_output_;
};

/// tanh(x).
class Tanh : public Layer {
 public:
  std::string type() const override { return "tanh"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override { return input; }
  std::size_t flops(const Shape& input) const override {
    return 4 * input.elements();
  }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(); }
  common::Json config() const override { return common::Json(common::JsonObject{}); }

 private:
  Tensor cached_output_;
};

/// Collapses [N, C, H, W] (or any rank >= 2) to [N, features].
class Flatten : public Layer {
 public:
  std::string type() const override { return "flatten"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override {
    return Shape{input.elements()};
  }
  std::size_t flops(const Shape&) const override { return 0; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Flatten>(); }
  common::Json config() const override { return common::Json(common::JsonObject{}); }

 private:
  Shape cached_input_shape_;
};

/// Inverted dropout: active only in training mode; identity at inference.
class Dropout : public Layer {
 public:
  /// `rate` in [0, 1): probability of dropping a unit.
  Dropout(float rate, std::uint64_t seed);

  std::string type() const override { return "dropout"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override { return input; }
  std::size_t flops(const Shape& input) const override { return input.elements(); }
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  float rate() const { return rate_; }

 private:
  float rate_;
  std::uint64_t seed_;
  common::Rng rng_;
  Tensor mask_;
};

}  // namespace openei::nn
