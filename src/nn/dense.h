// Fully connected layer, plus variants produced by the compression suite:
// a low-rank factored pair and an int8 weight-quantized dense layer.
#pragma once

#include <optional>

#include "nn/layer.h"
#include "tensor/quantize.h"

namespace openei::nn {

/// y = x W + b with W: [in, out].
class Dense : public Layer {
 public:
  /// He/Glorot-style scaled uniform initialization.
  Dense(std::size_t in_features, std::size_t out_features, common::Rng& rng);
  /// Explicit weights (used by deserialization and the compressors).
  Dense(Tensor weights, Tensor bias);

  std::string type() const override { return "dense"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weights_, &grad_bias_}; }
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  std::size_t in_features() const { return weights_.shape().dim(0); }
  std::size_t out_features() const { return weights_.shape().dim(1); }
  const Tensor& weights() const { return weights_; }
  Tensor& weights() { return weights_; }
  const Tensor& bias() const { return bias_; }
  Tensor& bias() { return bias_; }

 private:
  Tensor weights_;  // [in, out]
  Tensor bias_;     // [out]
  Tensor grad_weights_;
  Tensor grad_bias_;
  Tensor cached_input_;  // [N, in], only valid after forward(training=true)
};

/// Dense layer whose weights are stored int8-quantized; inference-only.
/// Weights are packed once at construction (per-output-channel symmetric by
/// default) and forward runs the real int8 GEMM — the paper's "quantized
/// kernels" latency optimization, Sec. IV-B, not just the storage win.
/// Activation parameters are either calibrated (set_input_params from a
/// min/max observer pass) or chosen dynamically per call.
class QuantizedDense : public Layer {
 public:
  /// Packed per-channel weights + float bias (the build-time cached form).
  QuantizedDense(tensor::PackedQuantMatrix packed, Tensor bias);
  /// Legacy per-tensor affine weights stored [in, out]; the exact int8
  /// values are adopted (pre-per-channel serialized models).
  QuantizedDense(tensor::QuantizedTensor weights, Tensor bias);
  /// Quantizes an existing Dense layer's weights (per-channel).
  static std::unique_ptr<QuantizedDense> from_dense(const Dense& dense);

  std::string type() const override { return "quantized_dense"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  /// int8 weights + per-row scales + float bias storage footprint.
  std::size_t storage_bytes() const {
    return packed_.storage_bytes() + bias_.size_bytes();
  }
  std::size_t in_features() const { return packed_.cols(); }
  std::size_t out_features() const { return packed_.rows(); }
  std::size_t weight_count() const { return packed_.rows() * packed_.cols(); }
  const tensor::PackedQuantMatrix& packed_weights() const { return packed_; }
  const Tensor& bias() const { return bias_; }

  /// Calibrated input quantization parameters; unset means dynamic (per-call
  /// min/max) quantization.
  const std::optional<tensor::QuantParams>& input_params() const {
    return input_params_;
  }
  void set_input_params(tensor::QuantParams params) { input_params_ = params; }

  /// Parameters actually used to quantize `input` this call (calibrated when
  /// set, else fit to the batch range).
  tensor::QuantParams effective_input_params(const float* input,
                                             std::size_t n) const;

  /// Raw-buffer forward shared by forward() and the zero-alloc arena:
  /// quantizes `rows * in_features()` floats into `staging` (caller-provided,
  /// same element count) and runs the int8 GEMM (+bias, optional fused ReLU)
  /// into `out` ([rows, out_features()]).
  void forward_into(const float* input, std::size_t rows, std::int8_t* staging,
                    bool fuse_relu, float* out) const;

 private:
  tensor::PackedQuantMatrix packed_;  // [out, in] int8, row-major
  Tensor bias_;
  std::optional<tensor::QuantParams> input_params_;
};

/// Low-rank factored dense layer: y = (x U) V + b with U: [in, r], V: [r, out].
/// Produced by the SVD low-rank compressor (paper Table I, Denton et al. [25]);
/// trainable, so factored models can be fine-tuned on-device.
class FactoredDense : public Layer {
 public:
  FactoredDense(Tensor u, Tensor v, Tensor bias);

  std::string type() const override { return "factored_dense"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&u_, &v_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_u_, &grad_v_, &grad_bias_};
  }
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  std::size_t rank() const { return u_.shape().dim(1); }
  const Tensor& u() const { return u_; }
  const Tensor& v() const { return v_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor u_;     // [in, r]
  Tensor v_;     // [r, out]
  Tensor bias_;  // [out]
  Tensor grad_u_;
  Tensor grad_v_;
  Tensor grad_bias_;
  Tensor cached_input_;         // [N, in]
  Tensor cached_intermediate_;  // [N, r]
};

}  // namespace openei::nn
