#include "nn/residual.h"

namespace openei::nn {

ResidualBlock::ResidualBlock(std::vector<LayerPtr> body, LayerPtr projection)
    : body_(std::move(body)), projection_(std::move(projection)) {
  OPENEI_CHECK(!body_.empty(), "residual block with empty body");
  for (const auto& layer : body_) {
    OPENEI_CHECK(layer != nullptr, "null layer in residual body");
  }
}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
  Tensor out = input;
  for (auto& layer : body_) out = layer->forward(out, training);
  Tensor shortcut =
      projection_ ? projection_->forward(input, training) : input;
  OPENEI_CHECK(out.shape() == shortcut.shape(),
               "residual branch shapes differ: ", out.shape().to_string(), " vs ",
               shortcut.shape().to_string(),
               " (add a projection layer)");
  return out + shortcut;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  Tensor grad_body = grad_output;
  for (std::size_t i = body_.size(); i-- > 0;) {
    grad_body = body_[i]->backward(grad_body);
  }
  Tensor grad_shortcut =
      projection_ ? projection_->backward(grad_output) : grad_output;
  return grad_body + grad_shortcut;
}

std::vector<Tensor*> ResidualBlock::parameters() {
  std::vector<Tensor*> out;
  for (auto& layer : body_) {
    for (Tensor* p : layer->parameters()) out.push_back(p);
  }
  if (projection_) {
    for (Tensor* p : projection_->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> ResidualBlock::gradients() {
  std::vector<Tensor*> out;
  for (auto& layer : body_) {
    for (Tensor* g : layer->gradients()) out.push_back(g);
  }
  if (projection_) {
    for (Tensor* g : projection_->gradients()) out.push_back(g);
  }
  return out;
}

Shape ResidualBlock::output_shape(const Shape& input) const {
  Shape shape = input;
  for (const auto& layer : body_) shape = layer->output_shape(shape);
  Shape shortcut = projection_ ? projection_->output_shape(input) : input;
  OPENEI_CHECK(shape == shortcut, "residual output shapes differ: ",
               shape.to_string(), " vs ", shortcut.to_string());
  return shape;
}

std::size_t ResidualBlock::flops(const Shape& input) const {
  std::size_t total = 0;
  Shape shape = input;
  for (const auto& layer : body_) {
    total += layer->flops(shape);
    shape = layer->output_shape(shape);
  }
  if (projection_) total += projection_->flops(input);
  total += shape.elements();  // the elementwise add
  return total;
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  std::vector<LayerPtr> body_copy;
  body_copy.reserve(body_.size());
  for (const auto& layer : body_) body_copy.push_back(layer->clone());
  return std::make_unique<ResidualBlock>(
      std::move(body_copy), projection_ ? projection_->clone() : nullptr);
}

common::Json ResidualBlock::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("body_layers", body_.size());
  cfg.set("has_projection", projection_ != nullptr);
  return cfg;
}

}  // namespace openei::nn
