#include "nn/conv.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"

namespace openei::nn {

using tensor::Conv2dSpec;

namespace {

Tensor conv_weight_init(const Conv2dSpec& spec, std::size_t filters,
                        std::size_t in_per_filter, common::Rng& rng) {
  float fan_in =
      static_cast<float>(in_per_filter * spec.kernel * spec.kernel);
  float bound = std::sqrt(2.0F / fan_in);
  return Tensor::random_normal(
      Shape{filters, in_per_filter, spec.kernel, spec.kernel}, rng, 0.0F, bound);
}

}  // namespace

Conv2d::Conv2d(Conv2dSpec spec, common::Rng& rng)
    : spec_(spec),
      weights_(conv_weight_init(spec, spec.out_channels, spec.in_channels, rng)),
      bias_(Shape{spec.out_channels}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {}

Conv2d::Conv2d(Conv2dSpec spec, Tensor weights, Tensor bias)
    : spec_(spec),
      weights_(std::move(weights)),
      bias_(std::move(bias)),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  OPENEI_CHECK(weights_.shape() ==
                   Shape({spec.out_channels, spec.in_channels, spec.kernel,
                          spec.kernel}),
               "conv2d weight shape mismatch");
  OPENEI_CHECK(bias_.elements() == spec.out_channels, "conv2d bias size mismatch");
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  OPENEI_CHECK(input.shape().rank() == 4, "conv2d input must be NCHW");
  if (training) {
    cached_patches_ = tensor::im2col(input, spec_);
    cached_input_shape_ = input.shape();
  }
  return tensor::conv2d_im2col(input, weights_, bias_, spec_);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_input_shape_.rank() == 4, "conv2d backward before forward");
  std::size_t n = cached_input_shape_.dim(0);
  std::size_t in_h = cached_input_shape_.dim(2);
  std::size_t in_w = cached_input_shape_.dim(3);
  std::size_t out_h = spec_.out_size(in_h);
  std::size_t out_w = spec_.out_size(in_w);
  std::size_t patch = spec_.in_channels * spec_.kernel * spec_.kernel;
  OPENEI_CHECK(grad_output.shape() == Shape({n, spec_.out_channels, out_h, out_w}),
               "conv2d grad_output shape mismatch");

  // Gather grad_output NCHW into the [N*oh*ow, oc] layout used at forward;
  // each image fills a disjoint row block, so the gather is batch-parallel.
  Tensor grad_mat(Shape{n * out_h * out_w, spec_.out_channels});
  std::size_t rows_per_image = out_h * out_w;
  common::parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          std::size_t row = b * rows_per_image;
          for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow, ++row) {
              for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
                grad_mat.at2(row, oc) = grad_output.at4(b, oc, oh, ow);
              }
            }
          }
        }
      },
      /*grain=*/1);

  // dW = (patches^T grad_mat)^T reshaped to [oc, ic, k, k].
  Tensor grad_w_mat =
      tensor::transpose(tensor::matmul(tensor::transpose(cached_patches_), grad_mat));
  grad_weights_ += grad_w_mat.reshaped(weights_.shape());

  // db = column sums of grad_mat; per-column accumulation stays in ascending
  // row order, so parallelizing over columns is bit-identical.
  common::parallel_for(
      0, spec_.out_channels,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t oc = lo; oc < hi; ++oc) {
          for (std::size_t r = 0; r < grad_mat.shape().dim(0); ++r) {
            grad_bias_[oc] += grad_mat.at2(r, oc);
          }
        }
      },
      /*grain=*/4);

  // dX: grad_patches = grad_mat W2, then col2im scatter-add.  The scatter
  // only touches grad_input[b, ...], so it parallelizes over images.
  Tensor w2 = weights_.reshaped(Shape{spec_.out_channels, patch});
  Tensor grad_patches = tensor::matmul(grad_mat, w2);  // [N*oh*ow, patch]

  Tensor grad_input(cached_input_shape_);
  common::parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          std::size_t row = b * rows_per_image;
          for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow, ++row) {
              std::size_t col = 0;
              for (std::size_t ic = 0; ic < spec_.in_channels; ++ic) {
                for (std::size_t kh = 0; kh < spec_.kernel; ++kh) {
                  for (std::size_t kw = 0; kw < spec_.kernel; ++kw, ++col) {
                    long ih = static_cast<long>(oh * spec_.stride + kh) -
                              static_cast<long>(spec_.padding);
                    long iw = static_cast<long>(ow * spec_.stride + kw) -
                              static_cast<long>(spec_.padding);
                    if (ih < 0 || iw < 0) continue;
                    auto uh = static_cast<std::size_t>(ih);
                    auto uw = static_cast<std::size_t>(iw);
                    if (uh >= in_h || uw >= in_w) continue;
                    grad_input.at4(b, ic, uh, uw) += grad_patches.at2(row, col);
                  }
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
  return grad_input;
}

Shape Conv2d::output_shape(const Shape& input) const {
  OPENEI_CHECK(input.rank() == 3 && input.dim(0) == spec_.in_channels,
               "conv2d expects sample shape [C,H,W] with C=", spec_.in_channels,
               ", got ", input.to_string());
  return Shape{spec_.out_channels, spec_.out_size(input.dim(1)),
               spec_.out_size(input.dim(2))};
}

std::size_t Conv2d::flops(const Shape& input) const {
  Shape out = output_shape(input);
  // 2 * k^2 * ic MACs per output element.
  return 2 * out.elements() * spec_.kernel * spec_.kernel * spec_.in_channels;
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::make_unique<Conv2d>(spec_, weights_, bias_);
}

common::Json Conv2d::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("in_channels", spec_.in_channels);
  cfg.set("out_channels", spec_.out_channels);
  cfg.set("kernel", spec_.kernel);
  cfg.set("stride", spec_.stride);
  cfg.set("padding", spec_.padding);
  return cfg;
}

QuantizedConv2d::QuantizedConv2d(Conv2dSpec spec,
                                 tensor::PackedQuantMatrix packed, Tensor bias)
    : spec_(spec), packed_(std::move(packed)), bias_(std::move(bias)) {
  OPENEI_CHECK(packed_.rows() == spec_.out_channels &&
                   packed_.cols() ==
                       spec_.in_channels * spec_.kernel * spec_.kernel,
               "quantized conv packed weight shape mismatch");
  OPENEI_CHECK(bias_.elements() == spec_.out_channels,
               "quantized conv bias size mismatch");
}

std::unique_ptr<QuantizedConv2d> QuantizedConv2d::from_conv(const Conv2d& conv) {
  const Conv2dSpec& spec = conv.spec();
  std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  return std::make_unique<QuantizedConv2d>(
      spec,
      tensor::PackedQuantMatrix::pack_rows(
          conv.weights().reshaped(Shape{spec.out_channels, patch}),
          /*per_channel=*/true),
      conv.bias());
}

tensor::QuantParams QuantizedConv2d::effective_input_params(
    const float* input, std::size_t n) const {
  if (input_params_) return *input_params_;
  float min_v = 0.0F;
  float max_v = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    min_v = std::min(min_v, input[i]);
    max_v = std::max(max_v, input[i]);
  }
  return tensor::QuantParams::choose(min_v, max_v);
}

void QuantizedConv2d::forward_into(const float* input, std::size_t n,
                                   std::size_t in_h, std::size_t in_w,
                                   std::int8_t* input_staging,
                                   std::int8_t* patch_staging,
                                   float* gemm_scratch, bool fuse_relu,
                                   float* out) const {
  std::size_t out_h = spec_.out_size(in_h);
  std::size_t out_w = spec_.out_size(in_w);
  std::size_t patch = spec_.in_channels * spec_.kernel * spec_.kernel;
  std::size_t gemm_rows = n * out_h * out_w;
  std::size_t input_elems = n * spec_.in_channels * in_h * in_w;

  tensor::QuantParams params = effective_input_params(input, input_elems);
  // Quantize the NCHW input once (each pixel rounds once, not k^2 times),
  // then gather patches in int8 — transposed [patch, rows], so the gather is
  // contiguous memcpy/memset runs and the GEMM stages its lane tiles with
  // in-register byte transposes.  The zero point encodes 0.0 exactly, so
  // padding matches the float path.
  tensor::quantize_to_int8(input, input_elems, params, input_staging);
  tensor::im2col_q8t(input_staging, n, in_h, in_w, spec_,
                     static_cast<std::int8_t>(params.zero_point),
                     patch_staging);
  tensor::qgemm_t(patch_staging, gemm_rows, patch, params, packed_,
                  bias_.data().data(), fuse_relu, gemm_scratch);

  // Scatter [N*oh*ow, oc] back to NCHW; images write disjoint slices (same
  // decomposition as the float conv2d_im2col path).
  std::size_t rows_per_image = out_h * out_w;
  std::size_t image_out = spec_.out_channels * rows_per_image;
  common::parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          const float* src = gemm_scratch + b * rows_per_image * spec_.out_channels;
          float* dst = out + b * image_out;
          for (std::size_t pix = 0; pix < rows_per_image; ++pix) {
            for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
              dst[oc * rows_per_image + pix] = src[pix * spec_.out_channels + oc];
            }
          }
        }
      },
      /*grain=*/1);
}

Tensor QuantizedConv2d::forward(const Tensor& input, bool training) {
  OPENEI_CHECK(!training, "QuantizedConv2d is inference-only");
  OPENEI_CHECK(input.shape().rank() == 4 &&
                   input.shape().dim(1) == spec_.in_channels,
               "quantized conv input must be NCHW with C=", spec_.in_channels);
  std::size_t n = input.shape().dim(0);
  std::size_t in_h = input.shape().dim(2);
  std::size_t in_w = input.shape().dim(3);
  std::size_t out_h = spec_.out_size(in_h);
  std::size_t out_w = spec_.out_size(in_w);
  std::size_t patch = spec_.in_channels * spec_.kernel * spec_.kernel;

  std::vector<std::int8_t> input_staging(input.elements());
  std::vector<std::int8_t> patch_staging(n * out_h * out_w * patch);
  std::vector<float> gemm_scratch(n * out_h * out_w * spec_.out_channels);
  Tensor out(Shape{n, spec_.out_channels, out_h, out_w});
  forward_into(input.data().data(), n, in_h, in_w, input_staging.data(),
               patch_staging.data(), gemm_scratch.data(), /*fuse_relu=*/false,
               out.data().data());
  return out;
}

Tensor QuantizedConv2d::backward(const Tensor&) {
  throw openei::InvalidArgument("QuantizedConv2d does not support training");
}

Shape QuantizedConv2d::output_shape(const Shape& input) const {
  OPENEI_CHECK(input.rank() == 3 && input.dim(0) == spec_.in_channels,
               "quantized conv expects sample shape [C,H,W] with C=",
               spec_.in_channels, ", got ", input.to_string());
  return Shape{spec_.out_channels, spec_.out_size(input.dim(1)),
               spec_.out_size(input.dim(2))};
}

std::size_t QuantizedConv2d::flops(const Shape& input) const {
  Shape out = output_shape(input);
  return 2 * out.elements() * spec_.kernel * spec_.kernel * spec_.in_channels;
}

std::unique_ptr<Layer> QuantizedConv2d::clone() const {
  auto copy = std::make_unique<QuantizedConv2d>(spec_, packed_, bias_);
  copy->input_params_ = input_params_;
  return copy;
}

common::Json QuantizedConv2d::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("in_channels", spec_.in_channels);
  cfg.set("out_channels", spec_.out_channels);
  cfg.set("kernel", spec_.kernel);
  cfg.set("stride", spec_.stride);
  cfg.set("padding", spec_.padding);
  cfg.set("per_channel", packed_.per_channel());
  cfg.set("weight_zero_point", packed_.weight_zero_point());
  common::JsonArray scales;
  for (float s : packed_.scales()) scales.push_back(common::Json{static_cast<double>(s)});
  cfg.set("scales", common::Json{std::move(scales)});
  if (input_params_) {
    cfg.set("input_scale", static_cast<double>(input_params_->scale));
    cfg.set("input_zero_point", input_params_->zero_point);
  }
  return cfg;
}

DepthwiseConv2d::DepthwiseConv2d(Conv2dSpec spec, common::Rng& rng)
    : spec_(spec),
      weights_(conv_weight_init(spec, spec.in_channels, 1, rng)),
      bias_(Shape{spec.in_channels}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  OPENEI_CHECK(spec.out_channels == spec.in_channels || spec.out_channels == 1,
               "depthwise conv: out_channels is implied by in_channels");
  spec_.out_channels = spec_.in_channels;
}

DepthwiseConv2d::DepthwiseConv2d(Conv2dSpec spec, Tensor weights, Tensor bias)
    : spec_(spec),
      weights_(std::move(weights)),
      bias_(std::move(bias)),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  spec_.out_channels = spec_.in_channels;
  OPENEI_CHECK(weights_.shape() ==
                   Shape({spec_.in_channels, 1, spec_.kernel, spec_.kernel}),
               "depthwise weight shape mismatch");
  OPENEI_CHECK(bias_.elements() == spec_.in_channels, "depthwise bias size mismatch");
}

Tensor DepthwiseConv2d::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  return tensor::depthwise_conv2d(input, weights_, bias_, spec_);
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_input_.shape().rank() == 4,
               "depthwise backward before forward");
  std::size_t n = cached_input_.shape().dim(0);
  std::size_t channels = spec_.in_channels;
  std::size_t in_h = cached_input_.shape().dim(2);
  std::size_t in_w = cached_input_.shape().dim(3);
  std::size_t out_h = spec_.out_size(in_h);
  std::size_t out_w = spec_.out_size(in_w);
  OPENEI_CHECK(grad_output.shape() == Shape({n, channels, out_h, out_w}),
               "depthwise grad_output shape mismatch");

  // Channel-parallel: channel c only touches grad_bias_[c],
  // grad_weights_[c, ...], and grad_input[:, c, ...], and its per-channel
  // accumulation keeps the original ascending-(b, oh, ow) order.
  Tensor grad_input(cached_input_.shape());
  common::parallel_for(
      0, channels,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          for (std::size_t b = 0; b < n; ++b) {
            for (std::size_t oh = 0; oh < out_h; ++oh) {
              for (std::size_t ow = 0; ow < out_w; ++ow) {
                float g = grad_output.at4(b, c, oh, ow);
                grad_bias_[c] += g;
                for (std::size_t kh = 0; kh < spec_.kernel; ++kh) {
                  for (std::size_t kw = 0; kw < spec_.kernel; ++kw) {
                    long ih = static_cast<long>(oh * spec_.stride + kh) -
                              static_cast<long>(spec_.padding);
                    long iw = static_cast<long>(ow * spec_.stride + kw) -
                              static_cast<long>(spec_.padding);
                    if (ih < 0 || iw < 0) continue;
                    auto uh = static_cast<std::size_t>(ih);
                    auto uw = static_cast<std::size_t>(iw);
                    if (uh >= in_h || uw >= in_w) continue;
                    grad_weights_.at4(c, 0, kh, kw) +=
                        g * cached_input_.at4(b, c, uh, uw);
                    grad_input.at4(b, c, uh, uw) += g * weights_.at4(c, 0, kh, kw);
                  }
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
  return grad_input;
}

Shape DepthwiseConv2d::output_shape(const Shape& input) const {
  OPENEI_CHECK(input.rank() == 3 && input.dim(0) == spec_.in_channels,
               "depthwise conv expects [C,H,W] with C=", spec_.in_channels);
  return Shape{spec_.in_channels, spec_.out_size(input.dim(1)),
               spec_.out_size(input.dim(2))};
}

std::size_t DepthwiseConv2d::flops(const Shape& input) const {
  Shape out = output_shape(input);
  return 2 * out.elements() * spec_.kernel * spec_.kernel;
}

std::unique_ptr<Layer> DepthwiseConv2d::clone() const {
  return std::make_unique<DepthwiseConv2d>(spec_, weights_, bias_);
}

common::Json DepthwiseConv2d::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("channels", spec_.in_channels);
  cfg.set("kernel", spec_.kernel);
  cfg.set("stride", spec_.stride);
  cfg.set("padding", spec_.padding);
  return cfg;
}

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  OPENEI_CHECK(window > 0, "zero pooling window");
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  OPENEI_CHECK(input.shape().rank() == 4, "maxpool input must be NCHW");
  if (training) cached_input_shape_ = input.shape();
  std::size_t n = input.shape().dim(0);
  std::size_t c = input.shape().dim(1);
  std::size_t h = input.shape().dim(2);
  std::size_t w = input.shape().dim(3);
  OPENEI_CHECK(h >= window_ && w >= window_, "maxpool window too large");
  std::size_t out_h = h / window_;
  std::size_t out_w = w / window_;
  Tensor out(Shape{n, c, out_h, out_w});
  if (training) winner_flat_.assign(out.elements(), 0);
  std::size_t out_idx = 0;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          float best = input.at4(b, ch, oh * window_, ow * window_);
          std::size_t best_flat =
              ((b * c + ch) * h + oh * window_) * w + ow * window_;
          for (std::size_t kh = 0; kh < window_; ++kh) {
            for (std::size_t kw = 0; kw < window_; ++kw) {
              float v = input.at4(b, ch, oh * window_ + kh, ow * window_ + kw);
              if (v > best) {
                best = v;
                best_flat =
                    ((b * c + ch) * h + oh * window_ + kh) * w + ow * window_ + kw;
              }
            }
          }
          out.at4(b, ch, oh, ow) = best;
          if (training) winner_flat_[out_idx] = best_flat;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_input_shape_.rank() == 4, "maxpool backward before forward");
  OPENEI_CHECK(grad_output.elements() == winner_flat_.size(),
               "maxpool grad_output size mismatch");
  Tensor grad_input(cached_input_shape_);
  auto gi = grad_input.data();
  auto go = grad_output.data();
  for (std::size_t i = 0; i < winner_flat_.size(); ++i) {
    gi[winner_flat_[i]] += go[i];
  }
  return grad_input;
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  OPENEI_CHECK(input.rank() == 3, "maxpool expects sample shape [C,H,W]");
  OPENEI_CHECK(input.dim(1) >= window_ && input.dim(2) >= window_,
               "maxpool window too large for input");
  return Shape{input.dim(0), input.dim(1) / window_, input.dim(2) / window_};
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(window_);
}

common::Json MaxPool2d::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("window", window_);
  return cfg;
}

AvgPool2d::AvgPool2d(std::size_t window) : window_(window) {
  OPENEI_CHECK(window > 0, "zero pooling window");
}

Tensor AvgPool2d::forward(const Tensor& input, bool training) {
  if (training) cached_input_shape_ = input.shape();
  return tensor::avgpool2d(input, window_);
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_input_shape_.rank() == 4, "avgpool backward before forward");
  Tensor grad_input(cached_input_shape_);
  std::size_t n = cached_input_shape_.dim(0);
  std::size_t c = cached_input_shape_.dim(1);
  std::size_t out_h = cached_input_shape_.dim(2) / window_;
  std::size_t out_w = cached_input_shape_.dim(3) / window_;
  float inv = 1.0F / static_cast<float>(window_ * window_);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow) {
          float g = grad_output.at4(b, ch, oh, ow) * inv;
          for (std::size_t kh = 0; kh < window_; ++kh) {
            for (std::size_t kw = 0; kw < window_; ++kw) {
              grad_input.at4(b, ch, oh * window_ + kh, ow * window_ + kw) += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Shape AvgPool2d::output_shape(const Shape& input) const {
  OPENEI_CHECK(input.rank() == 3, "avgpool expects sample shape [C,H,W]");
  OPENEI_CHECK(input.dim(1) >= window_ && input.dim(2) >= window_,
               "avgpool window too large for input");
  return Shape{input.dim(0), input.dim(1) / window_, input.dim(2) / window_};
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(window_);
}

common::Json AvgPool2d::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("window", window_);
  return cfg;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  if (training) cached_input_shape_ = input.shape();
  return tensor::global_avgpool(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_input_shape_.rank() == 4,
               "global_avgpool backward before forward");
  Tensor grad_input(cached_input_shape_);
  std::size_t n = cached_input_shape_.dim(0);
  std::size_t c = cached_input_shape_.dim(1);
  std::size_t h = cached_input_shape_.dim(2);
  std::size_t w = cached_input_shape_.dim(3);
  float inv = 1.0F / static_cast<float>(h * w);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float g = grad_output.at2(b, ch) * inv;
      for (std::size_t hh = 0; hh < h; ++hh) {
        for (std::size_t ww = 0; ww < w; ++ww) {
          grad_input.at4(b, ch, hh, ww) = g;
        }
      }
    }
  }
  return grad_input;
}

Shape GlobalAvgPool::output_shape(const Shape& input) const {
  OPENEI_CHECK(input.rank() == 3, "global_avgpool expects sample shape [C,H,W]");
  return Shape{input.dim(0)};
}

}  // namespace openei::nn
