// Mini-batch training loop used for cloud-side training, on-device transfer
// learning (paper Fig. 3 dataflow 3), and distillation student training.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace openei::nn {

struct TrainOptions {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  SgdOptimizer::Options sgd;
  std::uint64_t shuffle_seed = 1;
  /// Parameter indices to freeze (transfer learning retrains only the head).
  std::vector<std::size_t> frozen_parameters;
  /// Global gradient-norm clip (0 = off).  Stabilizes recurrent/deep models
  /// trained on-device with aggressive learning rates.
  float clip_norm = 0.0F;
};

struct EpochStats {
  std::size_t epoch = 0;
  float mean_loss = 0.0F;
  double train_accuracy = 0.0;
};

/// Trains `model` with softmax cross-entropy on integer labels.
std::vector<EpochStats> fit(Model& model, const data::Dataset& train,
                            const TrainOptions& options);

/// Trains `model` against soft target rows (distillation); `targets` is
/// [N, classes] aligned with `features` rows.
std::vector<EpochStats> fit_soft(Model& model, const Tensor& features,
                                 const Tensor& targets, float temperature,
                                 const TrainOptions& options);

/// Test-set classification accuracy.
double evaluate_accuracy(Model& model, const data::Dataset& test);

}  // namespace openei::nn
