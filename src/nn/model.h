// Sequential model — the unit that OpenEI's package manager executes, the
// model selector ranks, and libei serves.
//
// A model owns its layers, knows its sample input shape, and exposes the
// introspection the ALEM cost models need: parameter count, FLOPs per sample,
// and storage bytes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace openei::nn {

class Model {
 public:
  /// `input_shape` is the per-sample shape (e.g. {3, 16, 16} or {64}).
  Model(std::string name, Shape input_shape);
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Deep copy.
  Model clone() const;

  /// Appends a layer; validates that it accepts the current output shape.
  Model& add(LayerPtr layer);

  /// Replaces layer `index` with `layer` (shape-checked against neighbours).
  /// Used by the compressors to swap dense layers for factored/quantized ones.
  void replace_layer(std::size_t index, LayerPtr layer);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Shape& input_shape() const { return input_shape_; }
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t index);
  const Layer& layer(std::size_t index) const;

  /// Full forward pass over a batch ([N, ...input_shape]).
  Tensor forward(const Tensor& batch, bool training = false);

  /// Backward pass (after forward(training=true)); returns input gradient.
  Tensor backward(const Tensor& grad_output);

  /// Forward through layers [0, k) only — the DDNN-style split point used by
  /// edge-edge distributed inference (src/collab).
  Tensor forward_prefix(const Tensor& batch, std::size_t k);
  /// Forward through layers [k, end).
  Tensor forward_suffix(const Tensor& intermediate, std::size_t k);

  /// Class predictions: argmax per row of the final (logit) output.
  std::vector<std::size_t> predict(const Tensor& batch);

  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();
  void zero_gradients();

  /// Per-sample output shape.
  Shape output_shape() const;
  /// Sample shape after layer `k` (k == layer_count() gives output_shape).
  Shape shape_after(std::size_t k) const;

  std::size_t param_count() const;
  /// FLOPs for one sample.
  std::size_t flops_per_sample() const;
  /// Serialized weight footprint in bytes (quantized layers report their
  /// compact size).
  std::size_t storage_bytes() const;

  /// Human-readable architecture table: one row per layer with output
  /// shape, parameter count, and FLOPs, plus totals.
  std::string summary() const;

 private:
  std::string name_;
  Shape input_shape_;
  std::vector<LayerPtr> layers_;
};

}  // namespace openei::nn
