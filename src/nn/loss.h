// Loss functions for on-device training.
//
// SoftmaxCrossEntropy covers classification (hard labels); SoftTargetLoss is
// the distillation loss (teacher soft targets, paper Sec. IV-A1 "knowledge
// transfer"); MeanSquaredError covers regression.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace openei::nn {

using tensor::Tensor;

/// Result of a loss evaluation: scalar loss plus the gradient w.r.t. the
/// model output (already averaged over the batch).
struct LossResult {
  float loss = 0.0F;
  Tensor grad;
};

/// Softmax + cross-entropy against integer class labels.
class SoftmaxCrossEntropy {
 public:
  /// `logits`: [N, classes]; `labels`: N entries < classes.
  LossResult evaluate(const Tensor& logits,
                      const std::vector<std::size_t>& labels) const;
};

/// Cross-entropy against a soft target distribution (rows sum to 1), with a
/// distillation temperature applied to the student logits.
class SoftTargetLoss {
 public:
  explicit SoftTargetLoss(float temperature = 1.0F);
  /// `logits`: [N, classes]; `targets`: [N, classes] probabilities.
  LossResult evaluate(const Tensor& logits, const Tensor& targets) const;

 private:
  float temperature_;
};

/// 0.5 * mean squared error.
class MeanSquaredError {
 public:
  LossResult evaluate(const Tensor& predictions, const Tensor& targets) const;
};

}  // namespace openei::nn
