// Optimizers for on-device training: SGD with momentum and weight decay,
// and Adam for the faster-converging local fine-tunes edge budgets want.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace openei::nn {

using tensor::Tensor;

/// Stochastic gradient descent with classical momentum and L2 weight decay.
/// Velocity buffers are keyed by parameter order, so the same optimizer
/// instance must be used with a stable parameter list (one model).
class SgdOptimizer {
 public:
  struct Options {
    float learning_rate = 0.01F;
    float momentum = 0.0F;
    float weight_decay = 0.0F;
  };

  explicit SgdOptimizer(Options options);

  /// Applies one update: p -= lr * (v <- mu*v + g + wd*p); gradients are left
  /// untouched (caller zeroes them per batch).
  void step(const std::vector<Tensor*>& parameters,
            const std::vector<Tensor*>& gradients);

  void set_learning_rate(float lr) { options_.learning_rate = lr; }
  float learning_rate() const { return options_.learning_rate; }

 private:
  Options options_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias-corrected first/second moments.
class AdamOptimizer {
 public:
  struct Options {
    float learning_rate = 0.001F;
    float beta1 = 0.9F;
    float beta2 = 0.999F;
    float epsilon = 1e-8F;
  };

  explicit AdamOptimizer(Options options);

  /// One update step; like SgdOptimizer, binds to a stable parameter list.
  void step(const std::vector<Tensor*>& parameters,
            const std::vector<Tensor*>& gradients);

 private:
  Options options_;
  std::int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace openei::nn
