// Batch normalization for rank-2 ([N, F], per feature) and rank-4 (NCHW, per
// channel) activations.  Training mode uses batch statistics and updates
// running estimates; inference uses the running estimates.
#pragma once

#include "nn/layer.h"

namespace openei::nn {

class BatchNorm : public Layer {
 public:
  /// `features` is the feature count (rank-2) or channel count (rank-4).
  explicit BatchNorm(std::size_t features, float momentum = 0.9F,
                     float epsilon = 1e-5F);

  std::string type() const override { return "batchnorm"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> gradients() override { return {&grad_gamma_, &grad_beta_}; }
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override {
    return 4 * input.elements();
  }
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  std::size_t features() const { return features_; }
  float epsilon() const { return epsilon_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }

 private:
  /// Maps a flat element index to its feature/channel index for the cached
  /// input shape.
  std::size_t feature_of(std::size_t flat, const Shape& shape) const;

  std::size_t features_;
  float momentum_;
  float epsilon_;
  Tensor gamma_;  // scale, [F]
  Tensor beta_;   // shift, [F]
  Tensor grad_gamma_;
  Tensor grad_beta_;
  Tensor running_mean_;  // [F]
  Tensor running_var_;   // [F]

  // Training caches.
  Tensor cached_normalized_;     // x_hat
  Tensor cached_batch_inv_std_;  // [F]
  Shape cached_shape_;
  std::size_t cached_per_feature_ = 0;  // elements averaged per feature
};

}  // namespace openei::nn
