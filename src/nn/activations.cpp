#include "nn/activations.h"

#include <cmath>

#include "common/parallel.h"

namespace openei::nn {

namespace {

/// Elementwise map over a tensor's flat storage, batch-parallel.  Each index
/// is written by exactly one chunk, so results are bit-identical at any
/// thread count.
template <typename Fn>
void parallel_elementwise(std::span<float> data, const Fn& fn) {
  common::parallel_for(0, data.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace

Tensor Relu::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor out = input;
  auto o = out.data();
  parallel_elementwise(o, [&](std::size_t i) { o[i] = o[i] > 0.0F ? o[i] : 0.0F; });
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_input_.shape() == grad_output.shape(),
               "relu backward shape mismatch");
  Tensor grad = grad_output;
  auto g = grad.data();
  auto x = cached_input_.data();
  parallel_elementwise(g, [&](std::size_t i) {
    if (x[i] <= 0.0F) g[i] = 0.0F;
  });
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, bool training) {
  Tensor out = input;
  auto o = out.data();
  parallel_elementwise(
      o, [&](std::size_t i) { o[i] = 1.0F / (1.0F + std::exp(-o[i])); });
  if (training) cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_output_.shape() == grad_output.shape(),
               "sigmoid backward shape mismatch");
  Tensor grad = grad_output;
  auto g = grad.data();
  auto y = cached_output_.data();
  parallel_elementwise(g, [&](std::size_t i) { g[i] *= y[i] * (1.0F - y[i]); });
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool training) {
  Tensor out = input;
  auto o = out.data();
  parallel_elementwise(o, [&](std::size_t i) { o[i] = std::tanh(o[i]); });
  if (training) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_output_.shape() == grad_output.shape(),
               "tanh backward shape mismatch");
  Tensor grad = grad_output;
  auto g = grad.data();
  auto y = cached_output_.data();
  parallel_elementwise(g, [&](std::size_t i) { g[i] *= 1.0F - y[i] * y[i]; });
  return grad;
}

Tensor Flatten::forward(const Tensor& input, bool training) {
  OPENEI_CHECK(input.shape().rank() >= 2, "flatten input must have a batch dim");
  if (training) cached_input_shape_ = input.shape();
  std::size_t n = input.shape().dim(0);
  return input.reshaped(Shape{n, input.elements() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_input_shape_.rank() >= 2, "flatten backward before forward");
  return grad_output.reshaped(cached_input_shape_);
}

Dropout::Dropout(float rate, std::uint64_t seed)
    : rate_(rate), seed_(seed), rng_(seed) {
  OPENEI_CHECK(rate >= 0.0F && rate < 1.0F, "dropout rate ", rate,
               " outside [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || rate_ == 0.0F) return input;
  mask_ = Tensor(input.shape());
  float keep = 1.0F - rate_;
  auto m = mask_.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng_.flip(rate_) ? 0.0F : 1.0F / keep;
  }
  return input * mask_;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (rate_ == 0.0F) return grad_output;
  OPENEI_CHECK(mask_.shape() == grad_output.shape(), "dropout backward shape mismatch");
  return grad_output * mask_;
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(rate_, seed_);
}

common::Json Dropout::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("rate", static_cast<double>(rate_));
  cfg.set("seed", static_cast<std::int64_t>(seed_));
  return cfg;
}

}  // namespace openei::nn
