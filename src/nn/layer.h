// Layer interface of the OpenEI deep-learning package.
//
// Layers support inference (`forward`) and on-device training (`backward` +
// parameter/gradient exposure), because the OpenEI package manager — unlike
// TensorFlow Lite — "also supports training the model locally" (paper
// Sec. III-B).  Shape/FLOP introspection feeds the ALEM cost models in
// src/hwsim and the model selector.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "tensor/tensor.h"

namespace openei::nn {

using tensor::Shape;
using tensor::Tensor;

/// Abstract NN layer.  Batch dimension is implicit: `forward` consumes
/// [N, ...sample_shape] tensors, while `output_shape`/`flops` reason about a
/// single sample's shape (no batch dim).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Stable type tag used by the serializer registry ("dense", "conv2d"...).
  virtual std::string type() const = 0;

  /// Runs the layer.  When `training` is true the layer caches whatever it
  /// needs for `backward` and applies train-only behaviour (dropout masks,
  /// batch statistics).
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backpropagates `grad_output` (shape of the forward output), accumulating
  /// parameter gradients and returning the gradient w.r.t. the input.
  /// Requires a preceding `forward(..., training=true)`.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameter tensors (empty for stateless layers).  Gradients are
  /// index-aligned with parameters.
  virtual std::vector<Tensor*> parameters() { return {}; }
  virtual std::vector<Tensor*> gradients() { return {}; }

  /// Zeroes accumulated gradients.
  void zero_gradients() {
    for (Tensor* g : gradients()) *g *= 0.0F;
  }

  /// Total learnable scalar count.
  std::size_t param_count() {
    std::size_t count = 0;
    for (Tensor* p : parameters()) count += p->elements();
    return count;
  }

  /// Sample output shape for a sample input shape; throws on mismatch.
  virtual Shape output_shape(const Shape& input) const = 0;

  /// Multiply-accumulate-dominated FLOP estimate for one sample.
  virtual std::size_t flops(const Shape& input) const = 0;

  /// Deep copy (used by the compressors, which transform copies).
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Serializable configuration (hyper-parameters, not weights).
  virtual common::Json config() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace openei::nn
