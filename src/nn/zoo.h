// Model zoo: scaled-down but architecturally faithful variants of the image
// models the paper's model selector considers ("AlexNet, Vgg, ResNet,
// MobileNet, to name a few" — Sec. III-C, Fig. 5), plus MLPs for tabular and
// sequence workloads.
//
// The scaled models preserve each architecture's *shape* (where parameters
// and FLOPs live), which is what drives compression and selection behaviour;
// absolute capacity is sized for the synthetic datasets (DESIGN.md).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/model.h"

namespace openei::nn::zoo {

/// Image model input geometry.
struct ImageSpec {
  std::size_t channels = 3;
  std::size_t size = 16;  // square side
  std::size_t classes = 4;
};

/// Plain MLP for flattened/tabular inputs: hidden layers of `hidden` width.
Model make_mlp(const std::string& name, std::size_t inputs, std::size_t classes,
               const std::vector<std::size_t>& hidden, common::Rng& rng);

/// AlexNet-style: big early kernels, conv-pool stacks, wide dense head
/// (parameters concentrated in the dense layers — the property that makes
/// AlexNet compress 24x with weight sharing, Table I context).
Model make_mini_alexnet(const ImageSpec& spec, common::Rng& rng);

/// VGG-style: uniform 3x3 conv-conv-pool blocks, then dense head.
Model make_mini_vgg(const ImageSpec& spec, common::Rng& rng);

/// ResNet-style: conv stem, two residual blocks (one with projection),
/// global average pooling, small dense head.
Model make_mini_resnet(const ImageSpec& spec, common::Rng& rng);

/// MobileNet-style: depthwise-separable conv blocks with width multiplier
/// `alpha` (the hyper-parameter Howard et al. expose; paper Sec. IV-A2).
Model make_mini_mobilenet(const ImageSpec& spec, common::Rng& rng,
                          float alpha = 1.0F);

/// SqueezeNet-style: fire-ish modules (1x1 squeeze then 3x3 expand), no big
/// dense head — "AlexNet accuracy with 50x fewer parameters".
Model make_mini_squeezenet(const ImageSpec& spec, common::Rng& rng);

/// Xception-style (Chollet [37], paper Sec. IV-A2): depthwise-separable
/// convolutions inside residual blocks — "Inception modules replaced with
/// depthwise separable convolutions".
Model make_mini_xception(const ImageSpec& spec, common::Rng& rng);

/// A catalog entry: a named builder so benches can sweep the model axis.
struct CatalogEntry {
  std::string name;
  std::function<Model(const ImageSpec&, common::Rng&)> build;
};

/// All image models above (mobilenet at alpha 1.0 and 0.5, plus xception).
std::vector<CatalogEntry> image_catalog();

}  // namespace openei::nn::zoo
