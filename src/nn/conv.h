// Convolutional layers: standard conv2d (im2col-backed, trainable) and the
// depthwise variant underlying MobileNet-style EI models (paper Sec. IV-A2).
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace openei::nn {

/// Trainable 2-D convolution over NCHW inputs.
class Conv2d : public Layer {
 public:
  Conv2d(tensor::Conv2dSpec spec, common::Rng& rng);
  Conv2d(tensor::Conv2dSpec spec, Tensor weights, Tensor bias);

  std::string type() const override { return "conv2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weights_, &grad_bias_}; }
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  const tensor::Conv2dSpec& spec() const { return spec_; }
  const Tensor& weights() const { return weights_; }
  Tensor& weights() { return weights_; }
  const Tensor& bias() const { return bias_; }
  Tensor& bias() { return bias_; }

 private:
  tensor::Conv2dSpec spec_;
  Tensor weights_;  // [oc, ic, k, k]
  Tensor bias_;     // [oc]
  Tensor grad_weights_;
  Tensor grad_bias_;
  Tensor cached_patches_;     // im2col of the last training input
  Shape cached_input_shape_;  // NCHW of the last training input
};

/// Trainable depthwise 2-D convolution (one filter per channel).
class DepthwiseConv2d : public Layer {
 public:
  DepthwiseConv2d(tensor::Conv2dSpec spec, common::Rng& rng);
  DepthwiseConv2d(tensor::Conv2dSpec spec, Tensor weights, Tensor bias);

  std::string type() const override { return "depthwise_conv2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weights_, &grad_bias_}; }
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  const tensor::Conv2dSpec& spec() const { return spec_; }
  const Tensor& weights() const { return weights_; }
  Tensor& weights() { return weights_; }
  const Tensor& bias() const { return bias_; }

 private:
  tensor::Conv2dSpec spec_;
  Tensor weights_;  // [C, 1, k, k]
  Tensor bias_;     // [C]
  Tensor grad_weights_;
  Tensor grad_bias_;
  Tensor cached_input_;
};

/// Max pooling (window == stride); caches winner indices for backward.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  std::string type() const override { return "maxpool2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override { return input.elements(); }
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

 private:
  std::size_t window_;
  Shape cached_input_shape_;
  std::vector<std::size_t> winner_flat_;  // flat input index per output element
};

/// Average pooling (window == stride).
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(std::size_t window);

  std::string type() const override { return "avgpool2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override { return input.elements(); }
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

 private:
  std::size_t window_;
  Shape cached_input_shape_;
};

/// Global average pooling: NCHW -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  std::string type() const override { return "global_avgpool"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override { return input.elements(); }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool>();
  }
  common::Json config() const override { return common::Json(common::JsonObject{}); }

 private:
  Shape cached_input_shape_;
};

}  // namespace openei::nn
