// Convolutional layers: standard conv2d (im2col-backed, trainable) and the
// depthwise variant underlying MobileNet-style EI models (paper Sec. IV-A2).
#pragma once

#include <optional>

#include "nn/layer.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"

namespace openei::nn {

/// Trainable 2-D convolution over NCHW inputs.
class Conv2d : public Layer {
 public:
  Conv2d(tensor::Conv2dSpec spec, common::Rng& rng);
  Conv2d(tensor::Conv2dSpec spec, Tensor weights, Tensor bias);

  std::string type() const override { return "conv2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weights_, &grad_bias_}; }
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  const tensor::Conv2dSpec& spec() const { return spec_; }
  const Tensor& weights() const { return weights_; }
  Tensor& weights() { return weights_; }
  const Tensor& bias() const { return bias_; }
  Tensor& bias() { return bias_; }

 private:
  tensor::Conv2dSpec spec_;
  Tensor weights_;  // [oc, ic, k, k]
  Tensor bias_;     // [oc]
  Tensor grad_weights_;
  Tensor grad_bias_;
  Tensor cached_patches_;     // im2col of the last training input
  Shape cached_input_shape_;  // NCHW of the last training input
};

/// Convolution whose weights are stored int8-packed; inference-only.  The
/// forward path is genuinely quantized (unlike the old fake-quantize
/// round-trip): the input is quantized to int8 NCHW once, patches are
/// gathered in int8 (padding gathers the activation zero point — the exact
/// encoding of 0.0), and the packed [oc, ic*k*k] weights run through the
/// int8 GEMM with a fused requantize(+bias)(+ReLU) epilogue.
class QuantizedConv2d : public Layer {
 public:
  QuantizedConv2d(tensor::Conv2dSpec spec, tensor::PackedQuantMatrix packed,
                  Tensor bias);
  /// Quantizes an existing Conv2d's weights per-output-channel.
  static std::unique_ptr<QuantizedConv2d> from_conv(const Conv2d& conv);

  std::string type() const override { return "quantized_conv2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  /// int8 weights + per-row scales + float bias storage footprint.
  std::size_t storage_bytes() const {
    return packed_.storage_bytes() + bias_.size_bytes();
  }
  std::size_t weight_count() const { return packed_.rows() * packed_.cols(); }
  const tensor::Conv2dSpec& spec() const { return spec_; }
  const tensor::PackedQuantMatrix& packed_weights() const { return packed_; }
  const Tensor& bias() const { return bias_; }

  /// Calibrated input quantization parameters; unset means dynamic.
  const std::optional<tensor::QuantParams>& input_params() const {
    return input_params_;
  }
  void set_input_params(tensor::QuantParams params) { input_params_ = params; }

  /// Raw-buffer forward shared by forward() and the zero-alloc arena.
  /// Caller provides int8 staging for the quantized input
  /// (n*in_c*in_h*in_w), int8 staging for the gathered patches
  /// (n*out_h*out_w * in_c*k*k), float scratch for the GEMM result
  /// ([n*out_h*out_w, out_c]), and the NCHW output buffer.
  void forward_into(const float* input, std::size_t n, std::size_t in_h,
                    std::size_t in_w, std::int8_t* input_staging,
                    std::int8_t* patch_staging, float* gemm_scratch,
                    bool fuse_relu, float* out) const;

 private:
  tensor::QuantParams effective_input_params(const float* input,
                                             std::size_t n) const;

  tensor::Conv2dSpec spec_;
  tensor::PackedQuantMatrix packed_;  // [oc, ic*k*k] int8, row-major
  Tensor bias_;                       // [oc]
  std::optional<tensor::QuantParams> input_params_;
};

/// Trainable depthwise 2-D convolution (one filter per channel).
class DepthwiseConv2d : public Layer {
 public:
  DepthwiseConv2d(tensor::Conv2dSpec spec, common::Rng& rng);
  DepthwiseConv2d(tensor::Conv2dSpec spec, Tensor weights, Tensor bias);

  std::string type() const override { return "depthwise_conv2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weights_, &grad_bias_}; }
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  const tensor::Conv2dSpec& spec() const { return spec_; }
  const Tensor& weights() const { return weights_; }
  Tensor& weights() { return weights_; }
  const Tensor& bias() const { return bias_; }

 private:
  tensor::Conv2dSpec spec_;
  Tensor weights_;  // [C, 1, k, k]
  Tensor bias_;     // [C]
  Tensor grad_weights_;
  Tensor grad_bias_;
  Tensor cached_input_;
};

/// Max pooling (window == stride); caches winner indices for backward.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  std::string type() const override { return "maxpool2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override { return input.elements(); }
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  Shape cached_input_shape_;
  std::vector<std::size_t> winner_flat_;  // flat input index per output element
};

/// Average pooling (window == stride).
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(std::size_t window);

  std::string type() const override { return "avgpool2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override { return input.elements(); }
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  Shape cached_input_shape_;
};

/// Global average pooling: NCHW -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  std::string type() const override { return "global_avgpool"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override { return input.elements(); }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool>();
  }
  common::Json config() const override { return common::Json(common::JsonObject{}); }

 private:
  Shape cached_input_shape_;
};

}  // namespace openei::nn
