// Low-rank factored convolution (Denton et al. [25] factor conv layers, not
// just dense ones — paper Table I "low-rank factorization").
//
// A conv W: [oc, ic, k, k] viewed as the matrix [oc, ic*k*k] admits an SVD
// truncation to rank r, which executes as two cheaper convolutions:
//   stage 1: [r, ic, k, k]  (the spatial basis)
//   stage 2: [oc, r, 1, 1]  (the channel mixer)
// FLOPs drop from 2*out*k²*ic to 2*out*(k²*ic*r/oc + r) per output element
// when r << min(oc, ic*k²).  Trainable, so factored CNNs fine-tune on-device.
#pragma once

#include "nn/conv.h"

namespace openei::nn {

class FactoredConv2d : public Layer {
 public:
  /// `basis`: [r, ic, k, k]; `mixer`: [oc, r, 1, 1]; bias: [oc].
  /// `spec` describes the equivalent full convolution (stride/padding apply
  /// to the basis stage; the mixer is always 1x1 stride 1).
  FactoredConv2d(tensor::Conv2dSpec spec, Tensor basis, Tensor mixer,
                 Tensor bias);

  std::string type() const override { return "factored_conv2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  std::size_t rank() const { return basis_.spec().out_channels; }
  const Conv2d& basis() const { return basis_; }
  const Conv2d& mixer() const { return mixer_; }

 private:
  tensor::Conv2dSpec spec_;  // the equivalent full conv
  Conv2d basis_;             // [r, ic, k, k] at spec stride/padding
  Conv2d mixer_;             // [oc, r, 1, 1]
};

/// SVD-factorizes a Conv2d into a FactoredConv2d of the given rank
/// (1 <= rank <= min(oc, ic*k*k)).  The factored layer reproduces the
/// original exactly at full rank.
std::unique_ptr<FactoredConv2d> factorize_conv(const Conv2d& conv,
                                               std::size_t rank);

}  // namespace openei::nn
