#include "nn/batchnorm.h"

#include <cmath>

#include "common/parallel.h"

namespace openei::nn {

namespace {

/// Per-feature reduction over a rank-2 [N, F] or rank-4 [N, C, H, W] input:
/// accumulate(f, x_i) for every element i belonging to feature f, visited in
/// ascending flat order.  Features own disjoint accumulators and keep the
/// serial visit order, so feature-parallel execution is bit-identical.
template <typename Accumulate>
void for_each_feature(const tensor::Shape& shape, std::size_t features,
                      std::span<const float> x, const Accumulate& accumulate) {
  std::size_t n = shape.dim(0);
  std::size_t hw = shape.rank() == 4 ? shape.dim(2) * shape.dim(3) : 1;
  common::parallel_for(
      0, features,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t f = lo; f < hi; ++f) {
          for (std::size_t b = 0; b < n; ++b) {
            const float* base = x.data() + (b * features + f) * hw;
            for (std::size_t i = 0; i < hw; ++i) accumulate(f, base[i]);
          }
        }
      },
      /*grain=*/1);
}

}  // namespace

BatchNorm::BatchNorm(std::size_t features, float momentum, float epsilon)
    : features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Tensor::ones(Shape{features})),
      beta_(Shape{features}),
      grad_gamma_(Shape{features}),
      grad_beta_(Shape{features}),
      running_mean_(Shape{features}),
      running_var_(Tensor::ones(Shape{features})) {
  OPENEI_CHECK(features > 0, "batchnorm with zero features");
  OPENEI_CHECK(momentum >= 0.0F && momentum < 1.0F, "bad batchnorm momentum");
}

std::size_t BatchNorm::feature_of(std::size_t flat, const Shape& shape) const {
  if (shape.rank() == 2) return flat % features_;
  // NCHW: feature index is the channel.
  std::size_t hw = shape.dim(2) * shape.dim(3);
  return (flat / hw) % features_;
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  const Shape& shape = input.shape();
  OPENEI_CHECK(shape.rank() == 2 || shape.rank() == 4,
               "batchnorm input must be rank 2 or 4");
  std::size_t feature_dim = shape.rank() == 2 ? shape.dim(1) : shape.dim(1);
  OPENEI_CHECK(feature_dim == features_, "batchnorm feature count ", feature_dim,
               " != ", features_);

  std::size_t per_feature = input.elements() / features_;
  auto x = input.data();

  Tensor mean(Shape{features_});
  Tensor var(Shape{features_});
  if (training) {
    for_each_feature(shape, features_, x,
                     [&](std::size_t f, float v) { mean[f] += v; });
    mean *= 1.0F / static_cast<float>(per_feature);
    for_each_feature(shape, features_, x, [&](std::size_t f, float v) {
      float d = v - mean[f];
      var[f] += d * d;
    });
    var *= 1.0F / static_cast<float>(per_feature);
    // Update running estimates.
    for (std::size_t f = 0; f < features_; ++f) {
      running_mean_[f] = momentum_ * running_mean_[f] + (1.0F - momentum_) * mean[f];
      running_var_[f] = momentum_ * running_var_[f] + (1.0F - momentum_) * var[f];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  Tensor inv_std(Shape{features_});
  for (std::size_t f = 0; f < features_; ++f) {
    inv_std[f] = 1.0F / std::sqrt(var[f] + epsilon_);
  }

  Tensor out(shape);
  Tensor normalized(shape);
  auto o = out.data();
  auto nh = normalized.data();
  common::parallel_for(0, x.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::size_t f = feature_of(i, shape);
      nh[i] = (x[i] - mean[f]) * inv_std[f];
      o[i] = gamma_[f] * nh[i] + beta_[f];
    }
  });

  if (training) {
    cached_normalized_ = std::move(normalized);
    cached_batch_inv_std_ = std::move(inv_std);
    cached_shape_ = shape;
    cached_per_feature_ = per_feature;
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_per_feature_ > 0, "batchnorm backward before training forward");
  OPENEI_CHECK(grad_output.shape() == cached_shape_,
               "batchnorm grad_output shape mismatch");
  const Shape& shape = cached_shape_;
  auto go = grad_output.data();
  auto xh = cached_normalized_.data();
  auto m = static_cast<float>(cached_per_feature_);

  // Standard BN backward:
  //   dgamma_f = sum(dy * x_hat), dbeta_f = sum(dy)
  //   dx = (gamma * inv_std / m) * (m*dy - dbeta - x_hat*dgamma)
  Tensor sum_dy(Shape{features_});
  Tensor sum_dy_xhat(Shape{features_});
  {
    std::size_t n = shape.dim(0);
    std::size_t hw = shape.rank() == 4 ? shape.dim(2) * shape.dim(3) : 1;
    common::parallel_for(
        0, features_,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t f = lo; f < hi; ++f) {
            for (std::size_t b = 0; b < n; ++b) {
              std::size_t base = (b * features_ + f) * hw;
              for (std::size_t i = 0; i < hw; ++i) {
                sum_dy[f] += go[base + i];
                sum_dy_xhat[f] += go[base + i] * xh[base + i];
              }
            }
          }
        },
        /*grain=*/1);
  }
  grad_gamma_ += sum_dy_xhat;
  grad_beta_ += sum_dy;

  Tensor grad_input(shape);
  auto gi = grad_input.data();
  common::parallel_for(0, go.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::size_t f = feature_of(i, shape);
      gi[i] = gamma_[f] * cached_batch_inv_std_[f] / m *
              (m * go[i] - sum_dy[f] - xh[i] * sum_dy_xhat[f]);
    }
  });
  return grad_input;
}

Shape BatchNorm::output_shape(const Shape& input) const {
  OPENEI_CHECK((input.rank() == 1 && input.dim(0) == features_) ||
                   (input.rank() == 3 && input.dim(0) == features_),
               "batchnorm sample shape mismatch for ", features_, " features");
  return input;
}

std::unique_ptr<Layer> BatchNorm::clone() const {
  auto copy = std::make_unique<BatchNorm>(features_, momentum_, epsilon_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  copy->running_mean_ = running_mean_;
  copy->running_var_ = running_var_;
  return copy;
}

common::Json BatchNorm::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("features", features_);
  cfg.set("momentum", static_cast<double>(momentum_));
  cfg.set("epsilon", static_cast<double>(epsilon_));
  return cfg;
}

}  // namespace openei::nn
