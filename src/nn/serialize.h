// Model (de)serialization.
//
// Models travel between the cloud and edges (paper Fig. 3: download trained
// models, upload retrained ones), so the wire format must be self-contained:
// a JSON document with layer configs and weights.  The byte size of dump()
// output is NOT the model's storage footprint — Model::storage_bytes()
// reports the compact binary size the ALEM memory estimate uses.
#pragma once

#include <string>

#include "common/json.h"
#include "nn/model.h"

namespace openei::nn {

/// Serializes a model (architecture + weights) to a JSON document.
common::Json model_to_json(const Model& model);

/// Rebuilds a model from model_to_json output; throws ParseError /
/// InvalidArgument on malformed documents.
Model model_from_json(const common::Json& doc);

/// Convenience string round-trip.
std::string save_model(const Model& model);
Model load_model(const std::string& text);

/// File persistence (models survive node restarts); throws IoError on
/// filesystem failure.
void save_model_file(const Model& model, const std::string& path);
Model load_model_file(const std::string& path);

}  // namespace openei::nn
