#include "nn/train.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "data/metrics.h"

namespace openei::nn {

namespace {

/// Masks frozen parameter gradients so the optimizer leaves them untouched.
void apply_freeze(Model& model, const std::vector<std::size_t>& frozen) {
  if (frozen.empty()) return;
  auto grads = model.gradients();
  for (std::size_t index : frozen) {
    OPENEI_CHECK(index < grads.size(), "frozen parameter index ", index,
                 " out of range ", grads.size());
    *grads[index] *= 0.0F;
  }
}

/// Scales all gradients so the global L2 norm is at most `clip_norm`.
void apply_clip(Model& model, float clip_norm) {
  if (clip_norm <= 0.0F) return;
  double total = 0.0;
  for (Tensor* g : model.gradients()) {
    double n = g->norm();
    total += n * n;
  }
  auto global_norm = static_cast<float>(std::sqrt(total));
  if (global_norm > clip_norm) {
    float scale = clip_norm / global_norm;
    for (Tensor* g : model.gradients()) *g *= scale;
  }
}

}  // namespace

std::vector<EpochStats> fit(Model& model, const data::Dataset& train,
                            const TrainOptions& options) {
  train.check();
  OPENEI_CHECK(options.epochs > 0, "zero epochs");
  common::Rng rng(options.shuffle_seed);
  SgdOptimizer optimizer(options.sgd);
  SoftmaxCrossEntropy loss_fn;

  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    data::Dataset shuffled = train.select(rng.permutation(train.size()));
    data::BatchIterator batches(shuffled, options.batch_size);

    double loss_sum = 0.0;
    std::size_t hits = 0;
    for (std::size_t b = 0; b < batches.batch_count(); ++b) {
      data::Dataset batch = batches.batch(b);
      model.zero_gradients();
      Tensor logits = model.forward(batch.features, /*training=*/true);
      LossResult loss = loss_fn.evaluate(logits, batch.labels);
      model.backward(loss.grad);
      apply_freeze(model, options.frozen_parameters);
      apply_clip(model, options.clip_norm);
      optimizer.step(model.parameters(), model.gradients());

      loss_sum += static_cast<double>(loss.loss) * static_cast<double>(batch.size());
      for (std::size_t r = 0; r < batch.size(); ++r) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < logits.shape().dim(1); ++c) {
          if (logits.at2(r, c) > logits.at2(r, best)) best = c;
        }
        if (best == batch.labels[r]) ++hits;
      }
    }
    history.push_back(
        {epoch, static_cast<float>(loss_sum / static_cast<double>(train.size())),
         static_cast<double>(hits) / static_cast<double>(train.size())});
  }
  return history;
}

std::vector<EpochStats> fit_soft(Model& model, const Tensor& features,
                                 const Tensor& targets, float temperature,
                                 const TrainOptions& options) {
  OPENEI_CHECK(features.shape().dim(0) == targets.shape().dim(0),
               "feature/target row mismatch");
  common::Rng rng(options.shuffle_seed);
  SgdOptimizer optimizer(options.sgd);
  SoftTargetLoss loss_fn(temperature);
  std::size_t n = features.shape().dim(0);

  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    auto perm = rng.permutation(n);
    double loss_sum = 0.0;
    for (std::size_t begin = 0; begin < n; begin += options.batch_size) {
      std::size_t end = std::min(begin + options.batch_size, n);
      // Gather the shuffled batch.
      std::size_t sample_elems = features.elements() / n;
      std::size_t target_cols = targets.shape().dim(1);
      std::vector<std::size_t> dims = features.shape().dims();
      dims[0] = end - begin;
      Tensor batch_x{Shape(dims)};
      Tensor batch_t{Shape{end - begin, target_cols}};
      for (std::size_t i = begin; i < end; ++i) {
        std::size_t row = perm[i];
        for (std::size_t j = 0; j < sample_elems; ++j) {
          batch_x[(i - begin) * sample_elems + j] = features[row * sample_elems + j];
        }
        for (std::size_t j = 0; j < target_cols; ++j) {
          batch_t.at2(i - begin, j) = targets.at2(row, j);
        }
      }

      model.zero_gradients();
      Tensor logits = model.forward(batch_x, /*training=*/true);
      LossResult loss = loss_fn.evaluate(logits, batch_t);
      model.backward(loss.grad);
      apply_freeze(model, options.frozen_parameters);
      apply_clip(model, options.clip_norm);
      optimizer.step(model.parameters(), model.gradients());
      loss_sum += static_cast<double>(loss.loss) * static_cast<double>(end - begin);
    }
    history.push_back(
        {epoch, static_cast<float>(loss_sum / static_cast<double>(n)), 0.0});
  }
  return history;
}

double evaluate_accuracy(Model& model, const data::Dataset& test) {
  test.check();
  return data::accuracy(model.predict(test.features), test.labels);
}

}  // namespace openei::nn
