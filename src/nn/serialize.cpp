#include "nn/serialize.h"

#include <fstream>
#include <iterator>
#include <optional>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/factored_conv.h"
#include "nn/residual.h"
#include "tensor/quantize.h"

namespace openei::nn {

namespace {

using common::Json;
using common::JsonArray;
using common::JsonObject;

Json tensor_to_json(const Tensor& t) {
  JsonArray shape;
  for (std::size_t d : t.shape().dims()) shape.emplace_back(d);
  JsonArray values;
  values.reserve(t.elements());
  for (float v : t.data()) values.emplace_back(static_cast<double>(v));
  Json out{JsonObject{}};
  out.set("shape", Json(std::move(shape)));
  out.set("values", Json(std::move(values)));
  return out;
}

Tensor tensor_from_json(const Json& doc) {
  std::vector<std::size_t> dims;
  for (const Json& d : doc.at("shape").as_array()) {
    dims.push_back(static_cast<std::size_t>(d.as_int()));
  }
  const JsonArray& values = doc.at("values").as_array();
  std::vector<float> data;
  data.reserve(values.size());
  for (const Json& v : values) data.push_back(static_cast<float>(v.as_number()));
  return Tensor(tensor::Shape(std::move(dims)), std::move(data));
}

/// int8 payload of a packed weight matrix; the per-row scales / zero point /
/// layout flag travel in the layer config.
Json packed_to_json(const tensor::PackedQuantMatrix& packed) {
  JsonArray shape;
  shape.emplace_back(packed.rows());
  shape.emplace_back(packed.cols());
  JsonArray values;
  values.reserve(packed.data().size());
  for (std::int8_t v : packed.data()) values.emplace_back(static_cast<int>(v));
  Json out{JsonObject{}};
  out.set("shape", Json(std::move(shape)));
  out.set("values", Json(std::move(values)));
  return out;
}

tensor::PackedQuantMatrix packed_from_json(const Json& weights, const Json& cfg) {
  const JsonArray& shape = weights.at("shape").as_array();
  OPENEI_CHECK(shape.size() == 2, "packed weights must be rank 2");
  auto rows = static_cast<std::size_t>(shape[0].as_int());
  auto cols = static_cast<std::size_t>(shape[1].as_int());
  std::vector<std::int8_t> values;
  values.reserve(rows * cols);
  for (const Json& v : weights.at("values").as_array()) {
    values.push_back(static_cast<std::int8_t>(v.as_int()));
  }
  std::vector<float> scales;
  for (const Json& s : cfg.at("scales").as_array()) {
    scales.push_back(static_cast<float>(s.as_number()));
  }
  auto weight_zero_point =
      cfg.contains("weight_zero_point")
          ? static_cast<std::int32_t>(cfg.at("weight_zero_point").as_int())
          : 0;
  bool per_channel =
      cfg.contains("per_channel") ? cfg.at("per_channel").as_bool() : true;
  return {rows, cols, std::move(values), std::move(scales), weight_zero_point,
          per_channel};
}

std::optional<tensor::QuantParams> input_params_from_config(const Json& cfg) {
  if (!cfg.contains("input_scale")) return std::nullopt;
  tensor::QuantParams params;
  params.scale = static_cast<float>(cfg.at("input_scale").as_number());
  params.zero_point =
      static_cast<std::int32_t>(cfg.at("input_zero_point").as_int());
  return params;
}

tensor::Conv2dSpec spec_from_config(const Json& cfg, bool depthwise) {
  tensor::Conv2dSpec spec;
  if (depthwise) {
    spec.in_channels = static_cast<std::size_t>(cfg.at("channels").as_int());
    spec.out_channels = spec.in_channels;
  } else {
    spec.in_channels = static_cast<std::size_t>(cfg.at("in_channels").as_int());
    spec.out_channels = static_cast<std::size_t>(cfg.at("out_channels").as_int());
  }
  spec.kernel = static_cast<std::size_t>(cfg.at("kernel").as_int());
  spec.stride = static_cast<std::size_t>(cfg.at("stride").as_int());
  spec.padding = static_cast<std::size_t>(cfg.at("padding").as_int());
  return spec;
}

Json layer_to_json(const Layer& layer);

Json layers_to_json(const std::vector<LayerPtr>& layers) {
  JsonArray out;
  out.reserve(layers.size());
  for (const auto& layer : layers) out.push_back(layer_to_json(*layer));
  return Json(std::move(out));
}

Json layer_to_json(const Layer& layer) {
  Json doc{JsonObject{}};
  doc.set("type", layer.type());
  doc.set("config", layer.config());

  const std::string& type = layer.type();
  if (type == "dense") {
    const auto& dense = dynamic_cast<const Dense&>(layer);
    doc.set("weights", tensor_to_json(dense.weights()));
    doc.set("bias", tensor_to_json(dense.bias()));
  } else if (type == "quantized_dense") {
    const auto& qd = dynamic_cast<const QuantizedDense&>(layer);
    doc.set("weights", packed_to_json(qd.packed_weights()));
    doc.set("bias", tensor_to_json(qd.bias()));
  } else if (type == "quantized_conv2d") {
    const auto& qc = dynamic_cast<const QuantizedConv2d&>(layer);
    doc.set("weights", packed_to_json(qc.packed_weights()));
    doc.set("bias", tensor_to_json(qc.bias()));
  } else if (type == "factored_dense") {
    const auto& fd = dynamic_cast<const FactoredDense&>(layer);
    doc.set("u", tensor_to_json(fd.u()));
    doc.set("v", tensor_to_json(fd.v()));
    doc.set("bias", tensor_to_json(fd.bias()));
  } else if (type == "conv2d") {
    const auto& conv = dynamic_cast<const Conv2d&>(layer);
    doc.set("weights", tensor_to_json(conv.weights()));
    doc.set("bias", tensor_to_json(conv.bias()));
  } else if (type == "depthwise_conv2d") {
    const auto& conv = dynamic_cast<const DepthwiseConv2d&>(layer);
    doc.set("weights", tensor_to_json(conv.weights()));
    doc.set("bias", tensor_to_json(conv.bias()));
  } else if (type == "factored_conv2d") {
    const auto& fc = dynamic_cast<const FactoredConv2d&>(layer);
    doc.set("basis", tensor_to_json(fc.basis().weights()));
    doc.set("mixer", tensor_to_json(fc.mixer().weights()));
    doc.set("bias", tensor_to_json(fc.mixer().bias()));
  } else if (type == "batchnorm") {
    auto& bn = const_cast<BatchNorm&>(dynamic_cast<const BatchNorm&>(layer));
    doc.set("gamma", tensor_to_json(*bn.parameters()[0]));
    doc.set("beta", tensor_to_json(*bn.parameters()[1]));
    doc.set("running_mean", tensor_to_json(bn.running_mean()));
    doc.set("running_var", tensor_to_json(bn.running_var()));
  } else if (type == "residual") {
    const auto& block = dynamic_cast<const ResidualBlock&>(layer);
    doc.set("body", layers_to_json(block.body()));
    doc.set("projection", block.projection() != nullptr
                              ? layer_to_json(*block.projection())
                              : Json(nullptr));
  }
  // Stateless layers (relu, flatten, pools, dropout) carry only config.
  return doc;
}

LayerPtr layer_from_json(const Json& doc);

std::vector<LayerPtr> layers_from_json(const Json& doc) {
  std::vector<LayerPtr> out;
  for (const Json& entry : doc.as_array()) out.push_back(layer_from_json(entry));
  return out;
}

LayerPtr layer_from_json(const Json& doc) {
  const std::string& type = doc.at("type").as_string();
  const Json& cfg = doc.at("config");

  if (type == "dense") {
    return std::make_unique<Dense>(tensor_from_json(doc.at("weights")),
                                   tensor_from_json(doc.at("bias")));
  }
  if (type == "quantized_dense") {
    const Json& weights = doc.at("weights");
    if (cfg.contains("scales")) {
      auto layer = std::make_unique<QuantizedDense>(
          packed_from_json(weights, cfg), tensor_from_json(doc.at("bias")));
      if (auto params = input_params_from_config(cfg)) {
        layer->set_input_params(*params);
      }
      return layer;
    }
    // Legacy per-tensor affine format: weights stored [in, out] with one
    // scale/zero_point pair in the config.
    std::vector<std::size_t> dims;
    for (const Json& d : weights.at("shape").as_array()) {
      dims.push_back(static_cast<std::size_t>(d.as_int()));
    }
    std::vector<std::int8_t> values;
    for (const Json& v : weights.at("values").as_array()) {
      values.push_back(static_cast<std::int8_t>(v.as_int()));
    }
    tensor::QuantParams params;
    params.scale = static_cast<float>(cfg.at("scale").as_number());
    params.zero_point = static_cast<std::int32_t>(cfg.at("zero_point").as_int());
    return std::make_unique<QuantizedDense>(
        tensor::QuantizedTensor(tensor::Shape(std::move(dims)), std::move(values),
                                params),
        tensor_from_json(doc.at("bias")));
  }
  if (type == "quantized_conv2d") {
    auto layer = std::make_unique<QuantizedConv2d>(
        spec_from_config(cfg, false), packed_from_json(doc.at("weights"), cfg),
        tensor_from_json(doc.at("bias")));
    if (auto params = input_params_from_config(cfg)) {
      layer->set_input_params(*params);
    }
    return layer;
  }
  if (type == "factored_dense") {
    return std::make_unique<FactoredDense>(tensor_from_json(doc.at("u")),
                                           tensor_from_json(doc.at("v")),
                                           tensor_from_json(doc.at("bias")));
  }
  if (type == "conv2d") {
    return std::make_unique<Conv2d>(spec_from_config(cfg, false),
                                    tensor_from_json(doc.at("weights")),
                                    tensor_from_json(doc.at("bias")));
  }
  if (type == "depthwise_conv2d") {
    return std::make_unique<DepthwiseConv2d>(spec_from_config(cfg, true),
                                             tensor_from_json(doc.at("weights")),
                                             tensor_from_json(doc.at("bias")));
  }
  if (type == "factored_conv2d") {
    return std::make_unique<FactoredConv2d>(spec_from_config(cfg, false),
                                            tensor_from_json(doc.at("basis")),
                                            tensor_from_json(doc.at("mixer")),
                                            tensor_from_json(doc.at("bias")));
  }
  if (type == "batchnorm") {
    auto bn = std::make_unique<BatchNorm>(
        static_cast<std::size_t>(cfg.at("features").as_int()),
        static_cast<float>(cfg.at("momentum").as_number()),
        static_cast<float>(cfg.at("epsilon").as_number()));
    *bn->parameters()[0] = tensor_from_json(doc.at("gamma"));
    *bn->parameters()[1] = tensor_from_json(doc.at("beta"));
    bn->running_mean() = tensor_from_json(doc.at("running_mean"));
    bn->running_var() = tensor_from_json(doc.at("running_var"));
    return bn;
  }
  if (type == "residual") {
    LayerPtr projection;
    if (!doc.at("projection").is_null()) {
      projection = layer_from_json(doc.at("projection"));
    }
    return std::make_unique<ResidualBlock>(layers_from_json(doc.at("body")),
                                           std::move(projection));
  }
  if (type == "relu") return std::make_unique<Relu>();
  if (type == "sigmoid") return std::make_unique<Sigmoid>();
  if (type == "tanh") return std::make_unique<Tanh>();
  if (type == "flatten") return std::make_unique<Flatten>();
  if (type == "dropout") {
    return std::make_unique<Dropout>(
        static_cast<float>(cfg.at("rate").as_number()),
        static_cast<std::uint64_t>(cfg.at("seed").as_int()));
  }
  if (type == "maxpool2d") {
    return std::make_unique<MaxPool2d>(
        static_cast<std::size_t>(cfg.at("window").as_int()));
  }
  if (type == "avgpool2d") {
    return std::make_unique<AvgPool2d>(
        static_cast<std::size_t>(cfg.at("window").as_int()));
  }
  if (type == "global_avgpool") return std::make_unique<GlobalAvgPool>();

  throw openei::ParseError("unknown layer type '" + type + "'");
}

}  // namespace

Json model_to_json(const Model& model) {
  Json doc{JsonObject{}};
  doc.set("format", "openei-model-v1");
  doc.set("name", model.name());
  JsonArray input_shape;
  for (std::size_t d : model.input_shape().dims()) input_shape.emplace_back(d);
  doc.set("input_shape", Json(std::move(input_shape)));
  JsonArray layers;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    layers.push_back(layer_to_json(model.layer(i)));
  }
  doc.set("layers", Json(std::move(layers)));
  return doc;
}

Model model_from_json(const Json& doc) {
  OPENEI_CHECK(doc.at("format").as_string() == "openei-model-v1",
               "unsupported model format");
  std::vector<std::size_t> dims;
  for (const Json& d : doc.at("input_shape").as_array()) {
    dims.push_back(static_cast<std::size_t>(d.as_int()));
  }
  Model model(doc.at("name").as_string(), tensor::Shape(std::move(dims)));
  for (const Json& layer : doc.at("layers").as_array()) {
    model.add(layer_from_json(layer));
  }
  return model;
}

std::string save_model(const Model& model) { return model_to_json(model).dump(); }

Model load_model(const std::string& text) {
  return model_from_json(Json::parse(text));
}

void save_model_file(const Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  out << save_model(model);
  if (!out) throw IoError("write to '" + path + "' failed");
}

Model load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return load_model(text);
}

}  // namespace openei::nn
