// Residual block (ResNet-style): out = body(x) + shortcut(x).
//
// The shortcut is identity when shapes match, or a caller-provided projection
// layer (1x1 conv / dense) otherwise.  Used by the zoo's mini-ResNet.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace openei::nn {

class ResidualBlock : public Layer {
 public:
  /// `body` must be non-empty.  `projection` may be null (identity shortcut).
  ResidualBlock(std::vector<LayerPtr> body, LayerPtr projection);

  std::string type() const override { return "residual"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;
  Shape output_shape(const Shape& input) const override;
  std::size_t flops(const Shape& input) const override;
  std::unique_ptr<Layer> clone() const override;
  common::Json config() const override;

  const std::vector<LayerPtr>& body() const { return body_; }
  const Layer* projection() const { return projection_.get(); }

 private:
  std::vector<LayerPtr> body_;
  LayerPtr projection_;  // may be null
};

}  // namespace openei::nn
