#include "nn/loss.h"

#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"

namespace openei::nn {

LossResult SoftmaxCrossEntropy::evaluate(
    const Tensor& logits, const std::vector<std::size_t>& labels) const {
  OPENEI_CHECK(logits.shape().rank() == 2, "logits must be [N, classes]");
  std::size_t n = logits.shape().dim(0);
  std::size_t classes = logits.shape().dim(1);
  OPENEI_CHECK(labels.size() == n, "label count ", labels.size(), " != batch ", n);

  Tensor probs = tensor::softmax_rows(logits);
  double loss = 0.0;
  Tensor grad = probs;
  float inv_n = 1.0F / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r) {
    OPENEI_CHECK(labels[r] < classes, "label ", labels[r], " out of range");
    float p = std::max(probs.at2(r, labels[r]), 1e-12F);
    loss -= std::log(p);
    grad.at2(r, labels[r]) -= 1.0F;
  }
  grad *= inv_n;
  return {static_cast<float>(loss / n), std::move(grad)};
}

SoftTargetLoss::SoftTargetLoss(float temperature) : temperature_(temperature) {
  OPENEI_CHECK(temperature > 0.0F, "non-positive distillation temperature");
}

LossResult SoftTargetLoss::evaluate(const Tensor& logits,
                                    const Tensor& targets) const {
  OPENEI_CHECK(logits.shape().rank() == 2 && logits.shape() == targets.shape(),
               "soft-target loss shape mismatch");
  std::size_t n = logits.shape().dim(0);
  std::size_t classes = logits.shape().dim(1);

  Tensor scaled = logits * (1.0F / temperature_);
  Tensor probs = tensor::softmax_rows(scaled);
  double loss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < classes; ++c) {
      float t = targets.at2(r, c);
      if (t > 0.0F) {
        loss -= t * std::log(std::max(probs.at2(r, c), 1e-12F));
      }
    }
  }
  // d/dlogits of CE(soft targets, softmax(logits/T)) = (p - t) / (T * N).
  Tensor grad = probs - targets;
  grad *= 1.0F / (temperature_ * static_cast<float>(n));
  return {static_cast<float>(loss / n), std::move(grad)};
}

LossResult MeanSquaredError::evaluate(const Tensor& predictions,
                                      const Tensor& targets) const {
  OPENEI_CHECK(predictions.shape() == targets.shape(), "MSE shape mismatch");
  Tensor diff = predictions - targets;
  double loss = 0.0;
  for (std::size_t i = 0; i < diff.elements(); ++i) {
    loss += 0.5 * static_cast<double>(diff[i]) * diff[i];
  }
  std::size_t n = diff.elements();
  Tensor grad = diff * (1.0F / static_cast<float>(n));
  return {static_cast<float>(loss / n), std::move(grad)};
}

}  // namespace openei::nn
