#include "nn/model.h"

#include <cstdio>
#include <sstream>

#include "nn/conv.h"
#include "nn/dense.h"

namespace openei::nn {

Model::Model(std::string name, Shape input_shape)
    : name_(std::move(name)), input_shape_(std::move(input_shape)) {
  OPENEI_CHECK(!name_.empty(), "model needs a name");
}

Model Model::clone() const {
  Model copy(name_, input_shape_);
  for (const auto& layer : layers_) copy.layers_.push_back(layer->clone());
  return copy;
}

Model& Model::add(LayerPtr layer) {
  OPENEI_CHECK(layer != nullptr, "cannot add null layer");
  // output_shape() throws if the layer rejects the current shape.
  Shape current = output_shape();
  (void)layer->output_shape(current);
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::replace_layer(std::size_t index, LayerPtr layer) {
  OPENEI_CHECK(index < layers_.size(), "layer index ", index, " out of range");
  OPENEI_CHECK(layer != nullptr, "cannot install null layer");
  Shape before = shape_after(index);
  Shape old_out = layers_[index]->output_shape(before);
  Shape new_out = layer->output_shape(before);
  OPENEI_CHECK(new_out == old_out, "replacement layer changes shape ",
               old_out.to_string(), " -> ", new_out.to_string());
  layers_[index] = std::move(layer);
}

Layer& Model::layer(std::size_t index) {
  OPENEI_CHECK(index < layers_.size(), "layer index ", index, " out of range");
  return *layers_[index];
}

const Layer& Model::layer(std::size_t index) const {
  OPENEI_CHECK(index < layers_.size(), "layer index ", index, " out of range");
  return *layers_[index];
}

Tensor Model::forward(const Tensor& batch, bool training) {
  Tensor out = batch;
  for (auto& layer : layers_) out = layer->forward(out, training);
  return out;
}

Tensor Model::forward_prefix(const Tensor& batch, std::size_t k) {
  OPENEI_CHECK(k <= layers_.size(), "prefix length ", k, " exceeds ",
               layers_.size(), " layers");
  Tensor out = batch;
  for (std::size_t i = 0; i < k; ++i) out = layers_[i]->forward(out, false);
  return out;
}

Tensor Model::forward_suffix(const Tensor& intermediate, std::size_t k) {
  OPENEI_CHECK(k <= layers_.size(), "suffix start ", k, " exceeds ",
               layers_.size(), " layers");
  Tensor out = intermediate;
  for (std::size_t i = k; i < layers_.size(); ++i) {
    out = layers_[i]->forward(out, false);
  }
  return out;
}

Tensor Model::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    grad = layers_[i]->backward(grad);
  }
  return grad;
}

std::vector<std::size_t> Model::predict(const Tensor& batch) {
  Tensor logits = forward(batch, false);
  OPENEI_CHECK(logits.shape().rank() == 2, "predict expects rank-2 model output");
  std::size_t rows = logits.shape().dim(0);
  std::size_t cols = logits.shape().dim(1);
  std::vector<std::size_t> out(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < cols; ++c) {
      if (logits.at2(r, c) > logits.at2(r, best)) best = c;
    }
    out[r] = best;
  }
  return out;
}

std::vector<Tensor*> Model::parameters() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Model::gradients() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

void Model::zero_gradients() {
  for (auto& layer : layers_) layer->zero_gradients();
}

Shape Model::output_shape() const { return shape_after(layers_.size()); }

Shape Model::shape_after(std::size_t k) const {
  OPENEI_CHECK(k <= layers_.size(), "shape_after(", k, ") exceeds ",
               layers_.size(), " layers");
  Shape shape = input_shape_;
  for (std::size_t i = 0; i < k; ++i) shape = layers_[i]->output_shape(shape);
  return shape;
}

std::size_t Model::param_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    // param_count() is non-const because parameters() hands out mutable
    // pointers; counting does not mutate, so the cast is safe.
    total += const_cast<Layer&>(*layer).param_count();
  }
  return total;
}

std::size_t Model::flops_per_sample() const {
  std::size_t total = 0;
  Shape shape = input_shape_;
  for (const auto& layer : layers_) {
    total += layer->flops(shape);
    shape = layer->output_shape(shape);
  }
  return total;
}

std::string Model::summary() const {
  std::ostringstream out;
  out << "Model '" << name_ << "'  input " << input_shape_.to_string() << "\n";
  char row[160];
  std::snprintf(row, sizeof(row), "%-4s %-20s %-16s %10s %12s\n", "#", "layer",
                "output", "params", "FLOPs");
  out << row;
  Shape shape = input_shape_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    std::size_t flops = layers_[i]->flops(shape);
    shape = layers_[i]->output_shape(shape);
    std::snprintf(row, sizeof(row), "%-4zu %-20s %-16s %10zu %12zu\n", i,
                  layers_[i]->type().c_str(), shape.to_string().c_str(),
                  layers_[i]->param_count(), flops);
    out << row;
  }
  std::snprintf(row, sizeof(row),
                "total: %zu params, %zu FLOPs/sample, %zu bytes\n",
                param_count(), flops_per_sample(), storage_bytes());
  out << row;
  return out.str();
}

std::size_t Model::storage_bytes() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    if (const auto* quantized = dynamic_cast<const QuantizedDense*>(layer.get())) {
      total += quantized->storage_bytes();
    } else if (const auto* qconv =
                   dynamic_cast<const QuantizedConv2d*>(layer.get())) {
      total += qconv->storage_bytes();
    } else {
      total += const_cast<Layer&>(*layer).param_count() * sizeof(float);
    }
  }
  return total;
}

}  // namespace openei::nn
