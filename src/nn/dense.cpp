#include "nn/dense.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "tensor/ops.h"

namespace openei::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, common::Rng& rng)
    : weights_(Tensor::random_uniform(
          Shape{in_features, out_features}, rng,
          -std::sqrt(6.0F / static_cast<float>(in_features + out_features)),
          std::sqrt(6.0F / static_cast<float>(in_features + out_features)))),
      bias_(Shape{out_features}),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {}

Dense::Dense(Tensor weights, Tensor bias)
    : weights_(std::move(weights)),
      bias_(std::move(bias)),
      grad_weights_(weights_.shape()),
      grad_bias_(bias_.shape()) {
  OPENEI_CHECK(weights_.shape().rank() == 2, "dense weights must be rank 2");
  OPENEI_CHECK(bias_.elements() == weights_.shape().dim(1),
               "dense bias size mismatch");
}

Tensor Dense::forward(const Tensor& input, bool training) {
  OPENEI_CHECK(input.shape().rank() == 2, "dense input must be [N, in]");
  OPENEI_CHECK(input.shape().dim(1) == in_features(), "dense input width ",
               input.shape().dim(1), " != ", in_features());
  if (training) cached_input_ = input;
  return tensor::add_row_bias(tensor::matmul(input, weights_), bias_);
}

Tensor Dense::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_input_.shape().rank() == 2,
               "backward without prior training forward");
  // dW = X^T dY; db = column sums of dY; dX = dY W^T.
  grad_weights_ += tensor::matmul(tensor::transpose(cached_input_), grad_output);
  std::size_t rows = grad_output.shape().dim(0);
  std::size_t cols = grad_output.shape().dim(1);
  // Column sums: each column accumulates rows in ascending order, so
  // column-parallel execution is bit-identical to the serial loop.
  common::parallel_for(
      0, cols,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          for (std::size_t r = 0; r < rows; ++r) {
            grad_bias_[c] += grad_output.at2(r, c);
          }
        }
      },
      /*grain=*/std::max<std::size_t>(4, 4096 / std::max<std::size_t>(1, rows)));
  return tensor::matmul(grad_output, tensor::transpose(weights_));
}

Shape Dense::output_shape(const Shape& input) const {
  OPENEI_CHECK(input.rank() == 1 && input.dim(0) == in_features(),
               "dense expects sample shape [", in_features(), "], got ",
               input.to_string());
  return Shape{out_features()};
}

std::size_t Dense::flops(const Shape& input) const {
  (void)output_shape(input);  // validates
  return 2 * in_features() * out_features();
}

std::unique_ptr<Layer> Dense::clone() const {
  return std::make_unique<Dense>(weights_, bias_);
}

common::Json Dense::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("in", in_features());
  cfg.set("out", out_features());
  return cfg;
}

QuantizedDense::QuantizedDense(tensor::PackedQuantMatrix packed, Tensor bias)
    : packed_(std::move(packed)), bias_(std::move(bias)) {
  OPENEI_CHECK(bias_.elements() == packed_.rows(),
               "quantized dense bias size mismatch");
}

QuantizedDense::QuantizedDense(tensor::QuantizedTensor weights, Tensor bias)
    : QuantizedDense(tensor::PackedQuantMatrix::from_per_tensor(weights),
                     std::move(bias)) {}

std::unique_ptr<QuantizedDense> QuantizedDense::from_dense(const Dense& dense) {
  return std::make_unique<QuantizedDense>(
      tensor::PackedQuantMatrix::pack_transposed(dense.weights(),
                                                 /*per_channel=*/true),
      dense.bias());
}

tensor::QuantParams QuantizedDense::effective_input_params(const float* input,
                                                           std::size_t n) const {
  if (input_params_) return *input_params_;
  float min_v = 0.0F;
  float max_v = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    min_v = std::min(min_v, input[i]);
    max_v = std::max(max_v, input[i]);
  }
  return tensor::QuantParams::choose(min_v, max_v);
}

void QuantizedDense::forward_into(const float* input, std::size_t rows,
                                  std::int8_t* staging, bool fuse_relu,
                                  float* out) const {
  std::size_t n = rows * in_features();
  tensor::QuantParams params = effective_input_params(input, n);
  tensor::quantize_to_int8(input, n, params, staging);
  tensor::qgemm(staging, rows, in_features(), params, packed_,
                bias_.data().data(), fuse_relu, out);
}

Tensor QuantizedDense::forward(const Tensor& input, bool training) {
  OPENEI_CHECK(!training, "QuantizedDense is inference-only");
  OPENEI_CHECK(input.shape().rank() == 2 &&
                   input.shape().dim(1) == in_features(),
               "quantized dense input shape mismatch");
  std::size_t rows = input.shape().dim(0);
  std::vector<std::int8_t> staging(rows * in_features());
  Tensor out(Shape{rows, out_features()});
  forward_into(input.data().data(), rows, staging.data(), /*fuse_relu=*/false,
               out.data().data());
  return out;
}

Tensor QuantizedDense::backward(const Tensor&) {
  throw openei::InvalidArgument("QuantizedDense does not support training");
}

Shape QuantizedDense::output_shape(const Shape& input) const {
  OPENEI_CHECK(input.rank() == 1 && input.dim(0) == in_features(),
               "quantized dense sample shape mismatch");
  return Shape{out_features()};
}

std::size_t QuantizedDense::flops(const Shape& input) const {
  (void)output_shape(input);
  return 2 * in_features() * out_features();
}

std::unique_ptr<Layer> QuantizedDense::clone() const {
  auto copy = std::make_unique<QuantizedDense>(packed_, bias_);
  copy->input_params_ = input_params_;
  return copy;
}

common::Json QuantizedDense::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("in", in_features());
  cfg.set("out", out_features());
  cfg.set("per_channel", packed_.per_channel());
  cfg.set("weight_zero_point", packed_.weight_zero_point());
  common::JsonArray scales;
  for (float s : packed_.scales()) scales.push_back(common::Json{static_cast<double>(s)});
  cfg.set("scales", common::Json{std::move(scales)});
  if (input_params_) {
    cfg.set("input_scale", static_cast<double>(input_params_->scale));
    cfg.set("input_zero_point", input_params_->zero_point);
  }
  return cfg;
}

FactoredDense::FactoredDense(Tensor u, Tensor v, Tensor bias)
    : u_(std::move(u)),
      v_(std::move(v)),
      bias_(std::move(bias)),
      grad_u_(u_.shape()),
      grad_v_(v_.shape()),
      grad_bias_(bias_.shape()) {
  OPENEI_CHECK(u_.shape().rank() == 2 && v_.shape().rank() == 2,
               "factored dense factors must be rank 2");
  OPENEI_CHECK(u_.shape().dim(1) == v_.shape().dim(0),
               "factored dense inner rank mismatch");
  OPENEI_CHECK(bias_.elements() == v_.shape().dim(1),
               "factored dense bias size mismatch");
}

Tensor FactoredDense::forward(const Tensor& input, bool training) {
  OPENEI_CHECK(input.shape().rank() == 2 &&
                   input.shape().dim(1) == u_.shape().dim(0),
               "factored dense input shape mismatch");
  Tensor intermediate = tensor::matmul(input, u_);
  if (training) {
    cached_input_ = input;
    cached_intermediate_ = intermediate;
  }
  return tensor::add_row_bias(tensor::matmul(intermediate, v_), bias_);
}

Tensor FactoredDense::backward(const Tensor& grad_output) {
  OPENEI_CHECK(cached_input_.shape().rank() == 2,
               "factored dense backward before training forward");
  // dV = (xU)^T dY; dU = x^T (dY V^T); db = col sums; dx = dY V^T U^T.
  grad_v_ += tensor::matmul(tensor::transpose(cached_intermediate_), grad_output);
  Tensor grad_intermediate = tensor::matmul(grad_output, tensor::transpose(v_));
  grad_u_ += tensor::matmul(tensor::transpose(cached_input_), grad_intermediate);
  std::size_t rows = grad_output.shape().dim(0);
  std::size_t cols = grad_output.shape().dim(1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) grad_bias_[c] += grad_output.at2(r, c);
  }
  return tensor::matmul(grad_intermediate, tensor::transpose(u_));
}

Shape FactoredDense::output_shape(const Shape& input) const {
  OPENEI_CHECK(input.rank() == 1 && input.dim(0) == u_.shape().dim(0),
               "factored dense sample shape mismatch");
  return Shape{v_.shape().dim(1)};
}

std::size_t FactoredDense::flops(const Shape& input) const {
  (void)output_shape(input);
  std::size_t r = rank();
  return 2 * u_.shape().dim(0) * r + 2 * r * v_.shape().dim(1);
}

std::unique_ptr<Layer> FactoredDense::clone() const {
  return std::make_unique<FactoredDense>(u_, v_, bias_);
}

common::Json FactoredDense::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("in", u_.shape().dim(0));
  cfg.set("rank", rank());
  cfg.set("out", v_.shape().dim(1));
  return cfg;
}

}  // namespace openei::nn
