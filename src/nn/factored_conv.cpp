#include "nn/factored_conv.h"

#include <algorithm>
#include <cmath>

#include "tensor/linalg.h"

namespace openei::nn {

namespace {

tensor::Conv2dSpec basis_spec(const tensor::Conv2dSpec& full, std::size_t rank) {
  tensor::Conv2dSpec spec = full;
  spec.out_channels = rank;
  return spec;
}

tensor::Conv2dSpec mixer_spec(const tensor::Conv2dSpec& full, std::size_t rank) {
  tensor::Conv2dSpec spec;
  spec.in_channels = rank;
  spec.out_channels = full.out_channels;
  spec.kernel = 1;
  spec.stride = 1;
  spec.padding = 0;
  return spec;
}

// Helpers that read the tensor's shape *before* moving it into the Conv2d,
// avoiding unspecified-evaluation-order hazards in a single call expression.
Conv2d make_basis_stage(const tensor::Conv2dSpec& full, Tensor basis) {
  OPENEI_CHECK(basis.shape().rank() == 4, "factored conv basis must be rank 4");
  std::size_t rank = basis.shape().dim(0);
  return Conv2d(basis_spec(full, rank), std::move(basis),
                Tensor(Shape{rank}));
}

Conv2d make_mixer_stage(const tensor::Conv2dSpec& full, Tensor mixer,
                        Tensor bias) {
  OPENEI_CHECK(mixer.shape().rank() == 4, "factored conv mixer must be rank 4");
  std::size_t rank = mixer.shape().dim(1);
  return Conv2d(mixer_spec(full, rank), std::move(mixer), std::move(bias));
}

}  // namespace

FactoredConv2d::FactoredConv2d(tensor::Conv2dSpec spec, Tensor basis,
                               Tensor mixer, Tensor bias)
    : spec_(spec),
      basis_(make_basis_stage(spec, std::move(basis))),
      mixer_(make_mixer_stage(spec, std::move(mixer), std::move(bias))) {
  OPENEI_CHECK(basis_.spec().out_channels == mixer_.spec().in_channels,
               "factored conv rank mismatch between basis and mixer");
}

Tensor FactoredConv2d::forward(const Tensor& input, bool training) {
  return mixer_.forward(basis_.forward(input, training), training);
}

Tensor FactoredConv2d::backward(const Tensor& grad_output) {
  return basis_.backward(mixer_.backward(grad_output));
}

std::vector<Tensor*> FactoredConv2d::parameters() {
  std::vector<Tensor*> out = basis_.parameters();
  for (Tensor* p : mixer_.parameters()) out.push_back(p);
  return out;
}

std::vector<Tensor*> FactoredConv2d::gradients() {
  std::vector<Tensor*> out = basis_.gradients();
  for (Tensor* g : mixer_.gradients()) out.push_back(g);
  return out;
}

Shape FactoredConv2d::output_shape(const Shape& input) const {
  return mixer_.output_shape(basis_.output_shape(input));
}

std::size_t FactoredConv2d::flops(const Shape& input) const {
  return basis_.flops(input) + mixer_.flops(basis_.output_shape(input));
}

std::unique_ptr<Layer> FactoredConv2d::clone() const {
  return std::make_unique<FactoredConv2d>(spec_, basis_.weights(),
                                          mixer_.weights(), mixer_.bias());
}

common::Json FactoredConv2d::config() const {
  common::Json cfg{common::JsonObject{}};
  cfg.set("in_channels", spec_.in_channels);
  cfg.set("out_channels", spec_.out_channels);
  cfg.set("kernel", spec_.kernel);
  cfg.set("stride", spec_.stride);
  cfg.set("padding", spec_.padding);
  cfg.set("rank", rank());
  return cfg;
}

std::unique_ptr<FactoredConv2d> factorize_conv(const Conv2d& conv,
                                               std::size_t rank) {
  const tensor::Conv2dSpec& spec = conv.spec();
  std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  std::size_t full_rank = std::min(spec.out_channels, patch);
  OPENEI_CHECK(rank >= 1 && rank <= full_rank, "conv factorization rank ", rank,
               " outside [1, ", full_rank, "]");

  // SVD of the [oc, ic*k*k] weight matrix.
  Tensor w2 = conv.weights().reshaped(Shape{spec.out_channels, patch});
  tensor::SvdResult svd = tensor::svd(w2);

  // basis row r = sqrt(S_r) * V[:, r]^T reshaped to [ic, k, k];
  // mixer column r = U[:, r] * sqrt(S_r).
  Tensor basis(Shape{rank, spec.in_channels, spec.kernel, spec.kernel});
  Tensor mixer(Shape{spec.out_channels, rank, 1, 1});
  auto basis_data = basis.data();
  for (std::size_t r = 0; r < rank; ++r) {
    float root = std::sqrt(std::max(svd.singular_values[r], 0.0F));
    for (std::size_t p = 0; p < patch; ++p) {
      basis_data[r * patch + p] = root * svd.v.at2(p, r);
    }
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      mixer.at4(oc, r, 0, 0) = root * svd.u.at2(oc, r);
    }
  }
  return std::make_unique<FactoredConv2d>(spec, std::move(basis),
                                          std::move(mixer), conv.bias());
}

}  // namespace openei::nn
