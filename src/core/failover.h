// Failover client — the availability story of paper Sec. IV-C: "the edge
// operating system calls for high availability related to ... failure
// avoidance."
//
// A caller addresses a replicated EI service (the same models deployed on a
// primary and one or more backups).  Requests go to the current primary;
// when it is unreachable the client fails over to the next replica and
// sticks with it.  Only transport failures (IoError) trigger failover —
// application errors (4xx/5xx) are the caller's business and would repeat
// identically on a replica.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/http.h"

namespace openei::core {

class FailoverClient {
 public:
  /// `ports` lists replica endpoints on 127.0.0.1, preference-ordered.
  explicit FailoverClient(std::vector<std::uint16_t> ports);

  /// GET with failover; throws IoError only when every replica is down.
  net::HttpResponse get(const std::string& target);
  /// POST with failover.
  net::HttpResponse post(const std::string& target, const std::string& body);

  /// Index of the replica currently serving (0 = most preferred).
  std::size_t active_replica() const { return active_; }
  /// Count of failovers performed so far.
  std::size_t failover_count() const { return failovers_; }

 private:
  template <typename Call>
  net::HttpResponse with_failover(Call&& call);

  std::vector<std::uint16_t> ports_;
  std::size_t active_ = 0;
  std::size_t failovers_ = 0;
};

}  // namespace openei::core
