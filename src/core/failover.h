// Failover client — the availability story of paper Sec. IV-C: "the edge
// operating system calls for high availability related to ... failure
// avoidance."
//
// A caller addresses a replicated EI service (the same models deployed on a
// primary and one or more backups), preference-ordered.  Requests go to the
// current active replica through a per-replica net::ResilientClient
// (deadline + retry budget + circuit breaker); when it is unreachable the
// client fails over to the next replica.  Unlike the first-generation
// client, it does not stick with a backup forever: while serving off a
// less-preferred replica it periodically health-probes the more-preferred
// ones and *fails back* as soon as one recovers.  Only transport failures
// (IoError, including timeouts and open breakers) trigger failover —
// application errors (4xx) are the caller's business and would repeat
// identically on a replica.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/resilient_client.h"

namespace openei::core {

struct FailoverOptions {
  /// Per-replica transport options.  Failover wants fast detection, so the
  /// defaults keep the per-replica retry budget small; the replica set is
  /// the real redundancy.
  net::ResilientClient::Options client{
      /*deadline_s=*/2.0,
      net::RetryPolicy{/*max_attempts=*/2, /*initial_backoff_s=*/0.005,
                       /*backoff_multiplier=*/2.0, /*max_backoff_s=*/0.05,
                       /*jitter_fraction=*/0.2},
      net::CircuitBreakerPolicy{},
      /*retry_server_errors=*/true,
      /*seed=*/42,
      /*metrics=*/nullptr};
  /// While on a non-preferred replica, probe more-preferred replicas every
  /// this many requests (count-based, so tests are deterministic).
  std::size_t probe_every = 4;
  /// Cheap health-check target used for failback probes.
  std::string probe_target = "/ei_status";
};

class FailoverClient {
 public:
  /// `ports` lists replica endpoints on 127.0.0.1, preference-ordered.
  explicit FailoverClient(std::vector<std::uint16_t> ports,
                          FailoverOptions options = {});

  /// GET with failover; throws IoError only when every replica is down.
  net::HttpResponse get(const std::string& target);
  /// POST with failover.
  net::HttpResponse post(const std::string& target, const std::string& body);

  /// Index of the replica currently serving (0 = most preferred).
  std::size_t active_replica() const { return active_; }
  /// Count of failovers performed so far.
  std::size_t failover_count() const { return failovers_; }
  /// Count of failbacks (returns to a more-preferred replica) so far.
  std::size_t failback_count() const { return failbacks_; }

  /// The transport client bound to replica `i` (breaker state, stats).
  const net::ResilientClient& replica_client(std::size_t i) const;

 private:
  template <typename Call>
  net::HttpResponse with_failover(Call&& call);
  /// Probes more-preferred replicas (rate-limited by probe_every) and moves
  /// `active_` back when one of them answers.
  void maybe_fail_back();

  FailoverOptions options_;
  std::vector<std::unique_ptr<net::ResilientClient>> replicas_;
  std::size_t active_ = 0;
  std::size_t failovers_ = 0;
  std::size_t failbacks_ = 0;
  std::size_t requests_since_probe_ = 0;
};

}  // namespace openei::core
