#include "core/edge_node.h"

#include "common/error.h"
#include "nn/serialize.h"

namespace openei::core {

EdgeNode::EdgeNode(EdgeNodeConfig config)
    : config_(std::move(config)),
      store_(config_.sensor_capacity),
      service_(registry_, store_, config_.device, config_.package,
               config_.service) {}

EdgeNode::~EdgeNode() { stop_server(); }

void EdgeNode::deploy_model(const std::string& scenario,
                            const std::string& algorithm, nn::Model model,
                            double accuracy) {
  registry_.put(runtime::ModelEntry{scenario, algorithm, std::move(model),
                                    accuracy});
}

bool EdgeNode::undeploy_model(const std::string& name) {
  return registry_.erase(name);
}

bool EdgeNode::rollback_model(const std::string& name) {
  return registry_.rollback(name);
}

void EdgeNode::ingest(const std::string& sensor_id, double timestamp,
                      common::Json payload) {
  store_.append(sensor_id, datastore::Record{timestamp, std::move(payload)});
}

net::HttpResponse EdgeNode::call(const std::string& method,
                                 const std::string& target,
                                 const std::string& body) {
  net::HttpRequest request;
  request.method = method;
  net::parse_target(target, request.path, request.query);
  request.body = body;
  // Mirror the HTTP server's exception-to-status mapping so in-process and
  // over-the-wire callers observe identical semantics.
  try {
    return service_.handle(request);
  } catch (const ParseError& e) {
    return net::HttpResponse::json(400,
                                   std::string(R"({"error":")") + e.what() + "\"}");
  } catch (const InvalidArgument& e) {
    return net::HttpResponse::json(400,
                                   std::string(R"({"error":")") + e.what() + "\"}");
  } catch (const NotFound& e) {
    return net::HttpResponse::json(404,
                                   std::string(R"({"error":")") + e.what() + "\"}");
  } catch (const std::exception& e) {
    return net::HttpResponse::json(500,
                                   std::string(R"({"error":")") + e.what() + "\"}");
  }
}

void EdgeNode::fetch_model_from_peer(std::uint16_t peer_port,
                                     const std::string& name) {
  net::ResilientClient::Options options;
  options.metrics = service_.resilience();
  net::ResilientClient peer(peer_port, options);
  net::HttpResponse response = peer.get("/ei_models/" + name);
  if (response.status == 404) {
    throw NotFound("peer has no model named '" + name + "'");
  }
  OPENEI_CHECK(response.status == 200, "peer returned HTTP ", response.status,
               " for model '", name, "'");
  common::Json doc = common::Json::parse(response.body);
  runtime::ModelEntry entry{doc.at("scenario").as_string(),
                            doc.at("algorithm").as_string(),
                            nn::model_from_json(doc.at("model")),
                            doc.at("accuracy").as_number()};
  registry_.put(std::move(entry));
}

std::uint16_t EdgeNode::start_server(std::uint16_t port) {
  return start_server(port, net::HttpServer::Options{});
}

std::uint16_t EdgeNode::start_server(std::uint16_t port,
                                     net::HttpServer::Options options) {
  OPENEI_CHECK(server_ == nullptr, "server already running");
  server_ = std::make_unique<net::HttpServer>(
      port,
      [this](const net::HttpRequest& request) {
        return service_.handle(request);
      },
      std::move(options));
  // /ei_status gains a "serving" block while the server is up.
  service_.set_serving_stats_source(
      [server = server_.get()] { return server->stats(); });
  return server_->port();
}

void EdgeNode::stop_server() {
  if (server_ != nullptr) {
    // Unhook the stats source first: a status request draining through
    // stop() may still read it, and by then the server must still exist.
    service_.set_serving_stats_source(nullptr);
    server_->stop();
    server_.reset();
  }
}

std::uint16_t EdgeNode::port() const {
  OPENEI_CHECK(server_ != nullptr, "server not running");
  return server_->port();
}

net::ServerStats EdgeNode::server_stats() const {
  OPENEI_CHECK(server_ != nullptr, "server not running");
  return server_->stats();
}

}  // namespace openei::core
