#include "core/failover.h"

#include "common/error.h"
#include "common/logging.h"

namespace openei::core {

FailoverClient::FailoverClient(std::vector<std::uint16_t> ports,
                               FailoverOptions options)
    : options_(std::move(options)) {
  OPENEI_CHECK(!ports.empty(), "failover client needs at least one replica");
  OPENEI_CHECK(options_.probe_every >= 1, "probe_every must be >= 1");
  replicas_.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    net::ResilientClient::Options client_options = options_.client;
    client_options.seed = options_.client.seed + i;  // independent jitter
    replicas_.push_back(
        std::make_unique<net::ResilientClient>(ports[i], client_options));
  }
}

const net::ResilientClient& FailoverClient::replica_client(std::size_t i) const {
  OPENEI_CHECK(i < replicas_.size(), "replica index ", i, " out of range");
  return *replicas_[i];
}

void FailoverClient::maybe_fail_back() {
  if (active_ == 0) return;
  if (++requests_since_probe_ < options_.probe_every) return;
  requests_since_probe_ = 0;
  for (std::size_t preferred = 0; preferred < active_; ++preferred) {
    if (replicas_[preferred]->probe(options_.probe_target)) {
      common::log_info("failback: replica ", active_, " -> ", preferred);
      active_ = preferred;
      ++failbacks_;
      if (options_.client.metrics) ++options_.client.metrics->failbacks;
      return;
    }
  }
}

template <typename Call>
net::HttpResponse FailoverClient::with_failover(Call&& call) {
  maybe_fail_back();
  std::string last_error;
  for (std::size_t attempt = 0; attempt < replicas_.size(); ++attempt) {
    std::size_t replica = (active_ + attempt) % replicas_.size();
    try {
      net::HttpResponse response = call(*replicas_[replica]);
      if (replica != active_) {
        common::log_info("failover: replica ", active_, " -> ", replica);
        active_ = replica;
        requests_since_probe_ = 0;
        ++failovers_;
        if (options_.client.metrics) ++options_.client.metrics->failovers;
      }
      return response;
    } catch (const IoError& e) {
      last_error = e.what();
    }
  }
  throw IoError("all " + std::to_string(replicas_.size()) +
                " replicas unreachable; last error: " + last_error);
}

net::HttpResponse FailoverClient::get(const std::string& target) {
  return with_failover([&target](net::ResilientClient& client) {
    return client.get(target);
  });
}

net::HttpResponse FailoverClient::post(const std::string& target,
                                       const std::string& body) {
  return with_failover([&target, &body](net::ResilientClient& client) {
    return client.post(target, body);
  });
}

}  // namespace openei::core
