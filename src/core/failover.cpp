#include "core/failover.h"

#include "common/error.h"
#include "common/logging.h"

namespace openei::core {

FailoverClient::FailoverClient(std::vector<std::uint16_t> ports)
    : ports_(std::move(ports)) {
  OPENEI_CHECK(!ports_.empty(), "failover client needs at least one replica");
}

template <typename Call>
net::HttpResponse FailoverClient::with_failover(Call&& call) {
  std::string last_error;
  for (std::size_t attempt = 0; attempt < ports_.size(); ++attempt) {
    std::size_t replica = (active_ + attempt) % ports_.size();
    try {
      net::HttpResponse response = call(ports_[replica]);
      if (replica != active_) {
        common::log_info("failover: replica ", active_, " -> ", replica);
        active_ = replica;
        ++failovers_;
      }
      return response;
    } catch (const IoError& e) {
      last_error = e.what();
    }
  }
  throw IoError("all " + std::to_string(ports_.size()) +
                " replicas unreachable; last error: " + last_error);
}

net::HttpResponse FailoverClient::get(const std::string& target) {
  return with_failover([&target](std::uint16_t port) {
    net::HttpClient client(port);
    return client.get(target);
  });
}

net::HttpResponse FailoverClient::post(const std::string& target,
                                       const std::string& body) {
  return with_failover([&target, &body](std::uint16_t port) {
    net::HttpClient client(port);
    return client.post(target, body);
  });
}

}  // namespace openei::core
