// openei::EdgeNode — the "deploy and play" facade (paper Sec. III).
//
// Deploying OpenEI on any hardware profile turns it into an intelligent
// edge: the node wires together the data store, the model registry, the
// package manager, the model selector, and libei's RESTful API, optionally
// served over real HTTP on loopback.  This is the type the paper's
// Raspberry Pi walkthrough (Sec. III-A/III-E) maps onto — see
// examples/quickstart.cpp.
#pragma once

#include <memory>
#include <optional>

#include "datastore/timeseries.h"
#include "libei/service.h"
#include "net/http.h"
#include "runtime/inference.h"
#include "runtime/model_registry.h"

namespace openei::core {

struct EdgeNodeConfig {
  hwsim::DeviceProfile device;   // what hardware this node simulates
  hwsim::PackageSpec package;    // which deep-learning package it runs
  std::size_t sensor_capacity = 4096;
  /// libei behaviour: inference coalescing, micro-batching knobs, and
  /// per-request tracing (service.tracing.enabled turns /ei_trace on).
  libei::EiService::Options service = {};
};

class EdgeNode {
 public:
  /// Deploy-and-play: a node is ready as soon as it is constructed.
  explicit EdgeNode(EdgeNodeConfig config);
  ~EdgeNode();
  EdgeNode(const EdgeNode&) = delete;
  EdgeNode& operator=(const EdgeNode&) = delete;

  // --- Models (package manager) ---------------------------------------
  /// Deploys a model under (scenario, algorithm); multiple variants per
  /// pair feed the model selector.
  void deploy_model(const std::string& scenario, const std::string& algorithm,
                    nn::Model model, double accuracy);
  /// Removes a deployed model (and its retained prior version); returns
  /// false when no such model exists.  Same semantics as DELETE /ei_models.
  bool undeploy_model(const std::string& name);
  /// Restores the version the last hot-swap of `name` replaced; returns
  /// false when no prior version is retained.  Same semantics as
  /// DELETE /ei_models/{name}?rollback=1.
  bool rollback_model(const std::string& name);
  runtime::ModelRegistry& registry() { return registry_; }

  // --- Data (edge data sharing) ----------------------------------------
  /// Ingests a sensor reading.
  void ingest(const std::string& sensor_id, double timestamp,
              common::Json payload);
  datastore::SensorStore& store() { return store_; }

  // --- In-process API (same semantics as the REST routes) --------------
  /// Runs the full Sec. III-E flow for an algorithm call without HTTP.
  net::HttpResponse call(const std::string& method, const std::string& target,
                         const std::string& body = "");

  // --- Edge-edge model sharing (Sec. II-C) ------------------------------
  /// Fetches a model from a peer edge node's libei (`GET /ei_models/{name}`
  /// on 127.0.0.1:`peer_port`) and deploys it locally under the peer's
  /// scenario/algorithm.  Rides through transient peer faults with the
  /// node's resilient transport (deadline + retries); throws NotFound when
  /// the peer lacks the model and IoError when the peer stays unreachable.
  void fetch_model_from_peer(std::uint16_t peer_port, const std::string& name);

  // --- RESTful API (libei over HTTP) -----------------------------------
  /// Starts serving on 127.0.0.1 (port 0 = ephemeral); returns bound port.
  /// The Options overload configures the server's read deadline and an
  /// optional deterministic fault-injection plan (tests/chaos benchmarks).
  std::uint16_t start_server(std::uint16_t port = 0);
  std::uint16_t start_server(std::uint16_t port, net::HttpServer::Options options);
  void stop_server();
  bool serving() const { return server_ != nullptr; }
  std::uint16_t port() const;
  /// Serving counters of the running HTTP server (requires serving()).
  net::ServerStats server_stats() const;

  /// The node's shared outbound-transport resilience counters (also exposed
  /// by GET /ei_status under "resilience").  Wire this into any
  /// ResilientClient / FailoverClient acting on the node's behalf.
  const std::shared_ptr<net::ResilienceMetrics>& resilience_metrics() const {
    return service_.resilience();
  }

  /// The libei service, for direct access to its tracer (GET /ei_trace) and
  /// metric families (GET /ei_metrics) from tests, benches, and dashboards.
  libei::EiService& service() { return service_; }

  const hwsim::DeviceProfile& device() const { return config_.device; }
  const hwsim::PackageSpec& package() const { return config_.package; }

 private:
  EdgeNodeConfig config_;
  runtime::ModelRegistry registry_;
  datastore::SensorStore store_;
  libei::EiService service_;
  std::unique_ptr<net::HttpServer> server_;
};

}  // namespace openei::core
