#include "runtime/realtime.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace openei::runtime {

namespace {

struct Pending {
  std::size_t index;  // original arrival order
  MlTask task;
  double remaining_s;
  double started_at = -1.0;
};

/// Picks the next task to run at `now` from arrived pending tasks.
/// Returns pending.size() when nothing has arrived.
std::size_t pick(const std::vector<Pending>& pending, double now,
                 SchedulingPolicy policy) {
  std::size_t best = pending.size();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].task.arrival_s > now + 1e-12) continue;
    if (best == pending.size()) {
      best = i;
      continue;
    }
    if (policy == SchedulingPolicy::kPriorityPreemptive) {
      auto pa = static_cast<int>(pending[i].task.priority);
      auto pb = static_cast<int>(pending[best].task.priority);
      if (pa > pb) {
        best = i;
        continue;
      }
      if (pa < pb) continue;
    }
    // FIFO among equals: earlier arrival (then earlier submission) wins.
    if (pending[i].task.arrival_s < pending[best].task.arrival_s ||
        (pending[i].task.arrival_s == pending[best].task.arrival_s &&
         pending[i].index < pending[best].index)) {
      best = i;
    }
  }
  return best;
}

}  // namespace

std::vector<CompletedTask> simulate_schedule(std::vector<MlTask> tasks,
                                             SchedulingPolicy policy) {
  for (const MlTask& task : tasks) {
    OPENEI_CHECK(task.duration_s > 0.0, "task '", task.name,
                 "' has non-positive duration");
    OPENEI_CHECK(task.arrival_s >= 0.0, "task '", task.name,
                 "' arrives before time zero");
  }

  std::vector<Pending> pending;
  pending.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    pending.push_back(Pending{i, tasks[i], tasks[i].duration_s});
  }

  std::vector<CompletedTask> completed;
  completed.reserve(tasks.size());
  double now = 0.0;

  while (!pending.empty()) {
    std::size_t current = pick(pending, now, policy);
    if (current == pending.size()) {
      // Idle: jump to the next arrival.
      double next_arrival = 1e300;
      for (const Pending& p : pending) {
        next_arrival = std::min(next_arrival, p.task.arrival_s);
      }
      now = next_arrival;
      continue;
    }

    Pending& running = pending[current];
    if (running.started_at < 0.0) running.started_at = now;

    // Run until completion or (preemptive only) the next arrival that could
    // preempt.  FIFO runs to completion.
    double run_until = now + running.remaining_s;
    if (policy == SchedulingPolicy::kPriorityPreemptive) {
      for (const Pending& p : pending) {
        if (p.task.arrival_s > now + 1e-12 && p.task.arrival_s < run_until &&
            static_cast<int>(p.task.priority) >
                static_cast<int>(running.task.priority)) {
          run_until = p.task.arrival_s;
        }
      }
    }

    running.remaining_s -= run_until - now;
    now = run_until;
    if (running.remaining_s <= 1e-12) {
      completed.push_back(
          CompletedTask{running.task, running.started_at, now});
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(current));
    }
  }

  std::sort(completed.begin(), completed.end(),
            [](const CompletedTask& a, const CompletedTask& b) {
              return a.finish_s < b.finish_s;
            });
  return completed;
}

double response_percentile(const std::vector<CompletedTask>& completed,
                           double percentile, TaskPriority priority) {
  OPENEI_CHECK(percentile > 0.0 && percentile <= 100.0, "percentile ", percentile,
               " outside (0, 100]");
  std::vector<double> responses;
  for (const CompletedTask& task : completed) {
    if (task.task.priority == priority) responses.push_back(task.response_s());
  }
  OPENEI_CHECK(!responses.empty(), "no completed tasks at this priority");
  std::sort(responses.begin(), responses.end());
  double rank = (percentile / 100.0) * static_cast<double>(responses.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(rank));
  auto hi = static_cast<std::size_t>(std::ceil(rank));
  double frac = rank - std::floor(rank);
  return responses[lo] * (1.0 - frac) + responses[hi] * frac;
}

}  // namespace openei::runtime
