// Zero-allocation forward arena (paper Sec. IV-B: edge packages win latency
// partly by avoiding per-inference allocation and dispatch overhead).
//
// ForwardArena::plan walks a model once at session construction, sizes every
// forward-pass buffer (layer outputs, im2col patches, int8 staging), and
// compiles the layer graph into a flat list of steps over those buffers.
// Steady-state run()/predict() then performs zero heap allocations: buffers
// are plain grow-only vectors reused across calls, and every step replicates
// the corresponding layer's per-element arithmetic exactly, so arena output
// is bit-identical to Model::forward at any thread count.
//
// Planning returns nullptr for layer types the arena does not understand;
// callers fall back to the Tensor path, which computes the same values.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "nn/model.h"

namespace openei::nn {
class Conv2d;
}  // namespace openei::nn

namespace openei::runtime {

class ForwardArena {
 public:
  /// Plans a zero-alloc executor over `model`'s layers.  The arena captures
  /// pointers into the model's layers, so the model must outlive the arena
  /// and keep its weights fixed (layer addresses are stable across Model
  /// moves — layers are unique_ptr-owned).  Returns nullptr when any layer
  /// is unsupported or the model output is not a flat logit vector.
  static std::unique_ptr<ForwardArena> plan(nn::Model& model);

  ForwardArena(const ForwardArena&) = delete;
  ForwardArena& operator=(const ForwardArena&) = delete;

  /// Grows every buffer to cover `rows` samples.  Calling this up front
  /// makes subsequent run()/predict() calls with <= rows allocation-free.
  void reserve(std::size_t rows);

  /// Forward pass over `rows` samples ([rows * input_elems()] floats,
  /// row-major).  Returns the logits buffer ([rows, classes()]), valid until
  /// the next run/reserve call.
  const float* run(const float* input, std::size_t rows);

  /// Argmax predictions into `out` (size `rows`); matches Model::predict
  /// exactly (first maximum wins).
  void predict(const float* input, std::size_t rows, std::size_t* out);

  std::size_t input_elems() const { return input_elems_; }
  std::size_t classes() const { return output_per_row_; }

 private:
  ForwardArena() = default;

  struct FloatBuf {
    std::size_t per_row = 0;
    std::vector<float> data;
  };
  struct QuantBuf {
    std::size_t per_row = 0;
    std::vector<std::int8_t> data;
  };
  /// One compiled layer step; reads/writes arena buffers by index.
  using StepFn = std::function<void(ForwardArena&, std::size_t rows)>;

  std::size_t new_fbuf(std::size_t per_row);
  std::size_t new_qbuf(std::size_t per_row);
  float* fptr(std::size_t idx) { return fbufs_[idx].data.data(); }
  std::int8_t* qptr(std::size_t idx) { return qbufs_[idx].data.data(); }

  /// Plans layers[i..] sequentially, applying the ReLU-fusion peephole for
  /// GEMM-backed layers (float and quantized).  Updates `sample` (per-sample
  /// shape) and `cur` (current buffer).  Returns false on the first
  /// unsupported layer.
  bool plan_chain(const std::vector<nn::Layer*>& layers, tensor::Shape& sample,
                  std::size_t& cur);
  /// Plans one layer; `next` (may be null) enables the fused-ReLU peephole —
  /// when taken, *fused_next is set and the caller skips `next`.
  std::optional<std::size_t> plan_layer(nn::Layer& layer, tensor::Shape& sample,
                                        std::size_t in_buf, nn::Layer* next,
                                        bool* fused_next);
  /// Shared float-conv planner (Conv2d and both halves of FactoredConv2d).
  /// Prepacks the im2col weight matrix at plan time; `fuse_relu` folds a
  /// following ReLU into the GEMM epilogue (applied before the NCHW scatter,
  /// which is a pure reorder — same values as ReLU after it).
  std::size_t plan_conv(const nn::Conv2d& conv, const tensor::Shape& in_sample,
                        std::size_t in_buf, bool fuse_relu);

  std::vector<FloatBuf> fbufs_;
  std::vector<QuantBuf> qbufs_;
  std::vector<StepFn> steps_;
  std::size_t input_elems_ = 0;
  std::size_t output_per_row_ = 0;
  std::size_t in_buf_ = 0;
  std::size_t out_buf_ = 0;
  std::size_t capacity_rows_ = 0;
};

}  // namespace openei::runtime
