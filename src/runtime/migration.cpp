#include "runtime/migration.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace openei::runtime {

namespace {

double compute_time(const MigratableTask& task, const hwsim::DeviceProfile& device) {
  return task.flops / (device.effective_gflops * 1e9);
}

/// Makespan of a stay/migrate assignment.  Transfers are serialized on the
/// shared link (half-duplex radio); the helper starts a task once its
/// payload has arrived; the local edge computes in parallel.
double evaluate(const std::vector<MigratableTask>& tasks,
                const std::vector<bool>& migrated,
                const hwsim::DeviceProfile& loaded_edge,
                const hwsim::DeviceProfile& helper_edge,
                const hwsim::NetworkLink& link) {
  double local_finish = 0.0;
  double transfer_clock = 0.0;
  double helper_finish = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!migrated[i]) {
      local_finish += compute_time(tasks[i], loaded_edge);
    } else {
      transfer_clock += link.transfer_time_s(tasks[i].payload_bytes);
      // The helper processes tasks in arrival order; it may be busy when
      // the payload lands.
      helper_finish = std::max(helper_finish, transfer_clock) +
                      compute_time(tasks[i], helper_edge);
    }
  }
  return std::max(local_finish, helper_finish);
}

}  // namespace

MigrationPlan plan_migration(const std::vector<MigratableTask>& tasks,
                             const hwsim::DeviceProfile& loaded_edge,
                             const hwsim::DeviceProfile& helper_edge,
                             const hwsim::NetworkLink& link) {
  for (const MigratableTask& task : tasks) {
    OPENEI_CHECK(task.flops > 0.0, "task '", task.name, "' has no compute");
  }

  std::vector<bool> migrated(tasks.size(), false);
  MigrationPlan plan;
  plan.local_only_s = evaluate(tasks, migrated, loaded_edge, helper_edge, link);
  plan.makespan_s = plan.local_only_s;

  // Candidate order: biggest compute relief per transferred byte first.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    double ratio_a = tasks[a].flops /
                     (static_cast<double>(tasks[a].payload_bytes) + 1.0);
    double ratio_b = tasks[b].flops /
                     (static_cast<double>(tasks[b].payload_bytes) + 1.0);
    return ratio_a > ratio_b;
  });

  // Greedy: accept each migration only if it strictly improves the makespan.
  for (std::size_t candidate : order) {
    migrated[candidate] = true;
    double with = evaluate(tasks, migrated, loaded_edge, helper_edge, link);
    if (with + 1e-12 < plan.makespan_s) {
      plan.makespan_s = with;
    } else {
      migrated[candidate] = false;
    }
  }

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    (migrated[i] ? plan.migrate : plan.stay).push_back(i);
  }
  return plan;
}

}  // namespace openei::runtime
