#include "runtime/arena.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/factored_conv.h"
#include "nn/residual.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"
#include "tensor/pack.h"
#include "tensor/quantize.h"

namespace openei::runtime {

std::size_t ForwardArena::new_fbuf(std::size_t per_row) {
  fbufs_.push_back(FloatBuf{per_row, {}});
  return fbufs_.size() - 1;
}

std::size_t ForwardArena::new_qbuf(std::size_t per_row) {
  qbufs_.push_back(QuantBuf{per_row, {}});
  return qbufs_.size() - 1;
}

std::unique_ptr<ForwardArena> ForwardArena::plan(nn::Model& model) {
  std::unique_ptr<ForwardArena> arena(new ForwardArena());
  arena->input_elems_ = model.input_shape().elements();
  arena->in_buf_ = arena->new_fbuf(arena->input_elems_);

  tensor::Shape sample = model.input_shape();
  std::size_t cur = arena->in_buf_;
  std::vector<nn::Layer*> layers;
  layers.reserve(model.layer_count());
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    layers.push_back(&model.layer(i));
  }
  if (!arena->plan_chain(layers, sample, cur)) return nullptr;
  // predict needs [N, classes] logits — reject models with structured output.
  if (sample.rank() != 1) return nullptr;
  arena->out_buf_ = cur;
  arena->output_per_row_ = sample.elements();
  return arena;
}

bool ForwardArena::plan_chain(const std::vector<nn::Layer*>& layers,
                              tensor::Shape& sample, std::size_t& cur) {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    nn::Layer* next = i + 1 < layers.size() ? layers[i + 1] : nullptr;
    bool fused_next = false;
    auto out = plan_layer(*layers[i], sample, cur, next, &fused_next);
    if (!out) return false;
    cur = *out;
    if (fused_next) ++i;  // the ReLU was folded into this layer's epilogue
  }
  return true;
}

std::size_t ForwardArena::plan_conv(const nn::Conv2d& conv,
                                    const tensor::Shape& in_sample,
                                    std::size_t in_buf, bool fuse_relu) {
  const tensor::Conv2dSpec spec = conv.spec();
  std::size_t in_h = in_sample.dim(1);
  std::size_t in_w = in_sample.dim(2);
  std::size_t oh = spec.out_size(in_h);
  std::size_t ow = spec.out_size(in_w);
  std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  std::size_t oc = spec.out_channels;
  std::size_t patch_buf = new_fbuf(oh * ow * patch);
  std::size_t gemm_buf = new_fbuf(oh * ow * oc);
  std::size_t out_buf = new_fbuf(oc * oh * ow);

  // Plan-time prepack of the [oc, patch] weights into the [patch, oc] panel
  // layout the microkernels consume — the same packing conv2d_im2col builds
  // per call, so the two conv routes stay bitwise-identical.
  tensor::PackedMatrix wp = tensor::PackedMatrix::pack_transposed(
      conv.weights().reshaped(tensor::Shape{oc, patch}));

  const nn::Conv2d* cp = &conv;
  steps_.push_back([cp, spec, in_buf, patch_buf, gemm_buf, out_buf, in_h, in_w,
                    oh, ow, oc, fuse_relu, wp = std::move(wp)](
                       ForwardArena& a, std::size_t rows) {
    const float* in = a.fptr(in_buf);
    float* patches = a.fptr(patch_buf);
    float* gemm_out = a.fptr(gemm_buf);
    float* out = a.fptr(out_buf);
    tensor::im2col_into(in, rows, in_h, in_w, spec, patches);
    std::size_t gemm_rows = rows * oh * ow;
    tensor::gemm_packed(patches, gemm_rows, wp, cp->bias().data().data(),
                        fuse_relu, /*accumulate=*/false, gemm_out);
    std::size_t rows_per_image = oh * ow;
    common::parallel_for(
        0, rows,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t b = lo; b < hi; ++b) {
            const float* src = gemm_out + b * rows_per_image * oc;
            float* dst = out + b * oc * rows_per_image;
            for (std::size_t pix = 0; pix < rows_per_image; ++pix) {
              for (std::size_t c = 0; c < oc; ++c) {
                dst[c * rows_per_image + pix] = src[pix * oc + c];
              }
            }
          }
        },
        /*grain=*/1);
  });
  return out_buf;
}

std::optional<std::size_t> ForwardArena::plan_layer(nn::Layer& layer,
                                                    tensor::Shape& sample,
                                                    std::size_t in_buf,
                                                    nn::Layer* next,
                                                    bool* fused_next) {
  // --- dense family ------------------------------------------------------
  if (auto* d = dynamic_cast<nn::Dense*>(&layer)) {
    tensor::Shape out_shape = d->output_shape(sample);
    std::size_t out_f = d->out_features();
    std::size_t out_buf = new_fbuf(out_f);
    bool fuse = next != nullptr && dynamic_cast<nn::Relu*>(next) != nullptr;
    if (fuse) *fused_next = true;
    // Prepack [in, out] weights once at plan time; the step runs the
    // dispatched microkernels with bias (and a following ReLU) fused into
    // the epilogue.
    tensor::PackedMatrix wp = tensor::PackedMatrix::pack(d->weights());
    const nn::Dense* p = d;
    steps_.push_back([p, in_buf, out_buf, fuse, wp = std::move(wp)](
                         ForwardArena& a, std::size_t rows) {
      tensor::gemm_packed(a.fptr(in_buf), rows, wp, p->bias().data().data(),
                          fuse, /*accumulate=*/false, a.fptr(out_buf));
    });
    sample = out_shape;
    return out_buf;
  }

  if (auto* qd = dynamic_cast<nn::QuantizedDense*>(&layer)) {
    tensor::Shape out_shape = qd->output_shape(sample);
    std::size_t staging = new_qbuf(qd->in_features());
    std::size_t out_buf = new_fbuf(qd->out_features());
    bool fuse = next != nullptr && dynamic_cast<nn::Relu*>(next) != nullptr;
    if (fuse) *fused_next = true;
    const nn::QuantizedDense* p = qd;
    steps_.push_back([p, in_buf, staging, out_buf, fuse](ForwardArena& a,
                                                         std::size_t rows) {
      p->forward_into(a.fptr(in_buf), rows, a.qptr(staging), fuse,
                      a.fptr(out_buf));
    });
    sample = out_shape;
    return out_buf;
  }

  if (auto* fd = dynamic_cast<nn::FactoredDense*>(&layer)) {
    tensor::Shape out_shape = fd->output_shape(sample);
    std::size_t r = fd->rank();
    std::size_t out_f = fd->v().shape().dim(1);
    std::size_t mid_buf = new_fbuf(r);
    std::size_t out_buf = new_fbuf(out_f);
    bool fuse = next != nullptr && dynamic_cast<nn::Relu*>(next) != nullptr;
    if (fuse) *fused_next = true;
    // Both low-rank factors prepacked at plan time; bias/ReLU fuse into the
    // second GEMM's epilogue.
    tensor::PackedMatrix up = tensor::PackedMatrix::pack(fd->u());
    tensor::PackedMatrix vp = tensor::PackedMatrix::pack(fd->v());
    const nn::FactoredDense* p = fd;
    steps_.push_back([p, in_buf, mid_buf, out_buf, fuse, up = std::move(up),
                      vp = std::move(vp)](ForwardArena& a, std::size_t rows) {
      float* mid = a.fptr(mid_buf);
      tensor::gemm_packed(a.fptr(in_buf), rows, up, nullptr,
                          /*fuse_relu=*/false, /*accumulate=*/false, mid);
      tensor::gemm_packed(mid, rows, vp, p->bias().data().data(), fuse,
                          /*accumulate=*/false, a.fptr(out_buf));
    });
    sample = out_shape;
    return out_buf;
  }

  // --- convolution family -------------------------------------------------
  if (auto* qc = dynamic_cast<nn::QuantizedConv2d*>(&layer)) {
    tensor::Shape out_shape = qc->output_shape(sample);
    const tensor::Conv2dSpec& spec = qc->spec();
    std::size_t in_h = sample.dim(1);
    std::size_t in_w = sample.dim(2);
    std::size_t oh = spec.out_size(in_h);
    std::size_t ow = spec.out_size(in_w);
    std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
    std::size_t q_in = new_qbuf(spec.in_channels * in_h * in_w);
    std::size_t q_patch = new_qbuf(oh * ow * patch);
    std::size_t gemm_buf = new_fbuf(oh * ow * spec.out_channels);
    std::size_t out_buf = new_fbuf(spec.out_channels * oh * ow);
    bool fuse = next != nullptr && dynamic_cast<nn::Relu*>(next) != nullptr;
    if (fuse) *fused_next = true;
    const nn::QuantizedConv2d* p = qc;
    steps_.push_back([p, in_buf, q_in, q_patch, gemm_buf, out_buf, in_h, in_w,
                      fuse](ForwardArena& a, std::size_t rows) {
      p->forward_into(a.fptr(in_buf), rows, in_h, in_w, a.qptr(q_in),
                      a.qptr(q_patch), a.fptr(gemm_buf), fuse,
                      a.fptr(out_buf));
    });
    sample = out_shape;
    return out_buf;
  }

  if (auto* c = dynamic_cast<nn::Conv2d*>(&layer)) {
    tensor::Shape out_shape = c->output_shape(sample);
    bool fuse = next != nullptr && dynamic_cast<nn::Relu*>(next) != nullptr;
    if (fuse) *fused_next = true;
    std::size_t out_buf = plan_conv(*c, sample, in_buf, fuse);
    sample = out_shape;
    return out_buf;
  }

  if (auto* fc = dynamic_cast<nn::FactoredConv2d*>(&layer)) {
    tensor::Shape out_shape = fc->output_shape(sample);
    tensor::Shape mid_shape = fc->basis().output_shape(sample);
    bool fuse = next != nullptr && dynamic_cast<nn::Relu*>(next) != nullptr;
    if (fuse) *fused_next = true;
    std::size_t mid_buf = plan_conv(fc->basis(), sample, in_buf, false);
    std::size_t out_buf = plan_conv(fc->mixer(), mid_shape, mid_buf, fuse);
    sample = out_shape;
    return out_buf;
  }

  if (auto* dw = dynamic_cast<nn::DepthwiseConv2d*>(&layer)) {
    tensor::Shape out_shape = dw->output_shape(sample);
    const tensor::Conv2dSpec spec = dw->spec();
    std::size_t in_h = sample.dim(1);
    std::size_t in_w = sample.dim(2);
    std::size_t oh = spec.out_size(in_h);
    std::size_t ow = spec.out_size(in_w);
    std::size_t channels = spec.in_channels;
    std::size_t out_buf = new_fbuf(channels * oh * ow);
    const nn::DepthwiseConv2d* p = dw;
    steps_.push_back([p, spec, in_buf, out_buf, in_h, in_w, oh, ow, channels](
                         ForwardArena& a, std::size_t rows) {
      const float* in = a.fptr(in_buf);
      float* out = a.fptr(out_buf);
      const float* w = p->weights().data().data();
      const float* bias = p->bias().data().data();
      common::parallel_for(
          0, rows * channels,
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t plane = lo; plane < hi; ++plane) {
              std::size_t b = plane / channels;
              std::size_t ch = plane % channels;
              const float* iplane = in + (b * channels + ch) * in_h * in_w;
              float* oplane = out + (b * channels + ch) * oh * ow;
              for (std::size_t y = 0; y < oh; ++y) {
                for (std::size_t x = 0; x < ow; ++x) {
                  double acc = bias[ch];
                  for (std::size_t kh = 0; kh < spec.kernel; ++kh) {
                    for (std::size_t kw = 0; kw < spec.kernel; ++kw) {
                      long ih = static_cast<long>(y * spec.stride + kh) -
                                static_cast<long>(spec.padding);
                      long iw = static_cast<long>(x * spec.stride + kw) -
                                static_cast<long>(spec.padding);
                      bool inside = ih >= 0 && iw >= 0 &&
                                    static_cast<std::size_t>(ih) < in_h &&
                                    static_cast<std::size_t>(iw) < in_w;
                      float v = inside
                                    ? iplane[static_cast<std::size_t>(ih) * in_w +
                                             static_cast<std::size_t>(iw)]
                                    : 0.0F;
                      acc += static_cast<double>(v) *
                             w[(ch * spec.kernel + kh) * spec.kernel + kw];
                    }
                  }
                  oplane[y * ow + x] = static_cast<float>(acc);
                }
              }
            }
          },
          /*grain=*/1);
    });
    sample = out_shape;
    return out_buf;
  }

  // --- pooling ------------------------------------------------------------
  if (auto* mp = dynamic_cast<nn::MaxPool2d*>(&layer)) {
    tensor::Shape out_shape = mp->output_shape(sample);
    std::size_t window = mp->window();
    std::size_t channels = sample.dim(0);
    std::size_t h = sample.dim(1);
    std::size_t w = sample.dim(2);
    std::size_t oh = h / window;
    std::size_t ow = w / window;
    std::size_t out_buf = new_fbuf(channels * oh * ow);
    steps_.push_back([in_buf, out_buf, window, channels, h, w, oh, ow](
                         ForwardArena& a, std::size_t rows) {
      const float* in = a.fptr(in_buf);
      float* out = a.fptr(out_buf);
      for (std::size_t b = 0; b < rows; ++b) {
        for (std::size_t ch = 0; ch < channels; ++ch) {
          const float* iplane = in + (b * channels + ch) * h * w;
          float* oplane = out + (b * channels + ch) * oh * ow;
          for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x) {
              float best = iplane[y * window * w + x * window];
              for (std::size_t kh = 0; kh < window; ++kh) {
                for (std::size_t kw = 0; kw < window; ++kw) {
                  float v = iplane[(y * window + kh) * w + x * window + kw];
                  if (v > best) best = v;
                }
              }
              oplane[y * ow + x] = best;
            }
          }
        }
      }
    });
    sample = out_shape;
    return out_buf;
  }

  if (auto* ap = dynamic_cast<nn::AvgPool2d*>(&layer)) {
    tensor::Shape out_shape = ap->output_shape(sample);
    std::size_t window = ap->window();
    std::size_t channels = sample.dim(0);
    std::size_t h = sample.dim(1);
    std::size_t w = sample.dim(2);
    std::size_t oh = h / window;
    std::size_t ow = w / window;
    std::size_t out_buf = new_fbuf(channels * oh * ow);
    steps_.push_back([in_buf, out_buf, window, channels, h, w, oh, ow](
                         ForwardArena& a, std::size_t rows) {
      const float* in = a.fptr(in_buf);
      float* out = a.fptr(out_buf);
      float inv_count = static_cast<float>(window * window);
      for (std::size_t b = 0; b < rows; ++b) {
        for (std::size_t ch = 0; ch < channels; ++ch) {
          const float* iplane = in + (b * channels + ch) * h * w;
          float* oplane = out + (b * channels + ch) * oh * ow;
          for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x) {
              float acc = 0.0F;
              for (std::size_t kh = 0; kh < window; ++kh) {
                for (std::size_t kw = 0; kw < window; ++kw) {
                  acc = acc + iplane[(y * window + kh) * w + x * window + kw];
                }
              }
              acc /= inv_count;
              oplane[y * ow + x] = acc;
            }
          }
        }
      }
    });
    sample = out_shape;
    return out_buf;
  }

  if (auto* gp = dynamic_cast<nn::GlobalAvgPool*>(&layer)) {
    tensor::Shape out_shape = gp->output_shape(sample);
    std::size_t channels = sample.dim(0);
    std::size_t hw = sample.dim(1) * sample.dim(2);
    std::size_t out_buf = new_fbuf(channels);
    steps_.push_back([in_buf, out_buf, channels, hw](ForwardArena& a,
                                                     std::size_t rows) {
      const float* in = a.fptr(in_buf);
      float* out = a.fptr(out_buf);
      for (std::size_t b = 0; b < rows; ++b) {
        for (std::size_t ch = 0; ch < channels; ++ch) {
          const float* iplane = in + (b * channels + ch) * hw;
          double acc = 0.0;
          for (std::size_t i = 0; i < hw; ++i) acc += iplane[i];
          out[b * channels + ch] =
              static_cast<float>(acc / static_cast<double>(hw));
        }
      }
    });
    sample = out_shape;
    return out_buf;
  }

  // --- normalization ------------------------------------------------------
  if (auto* bn = dynamic_cast<nn::BatchNorm*>(&layer)) {
    tensor::Shape out_shape = bn->output_shape(sample);
    std::size_t features = bn->features();
    std::size_t elems = sample.elements();
    std::size_t hw = sample.rank() == 3 ? sample.dim(1) * sample.dim(2) : 1;
    // Precompute inv_std from the running stats with the layer's exact
    // expression; inference statistics are fixed, so once is enough.
    const float* var = bn->running_var().data().data();
    std::vector<float> inv_std(features);
    for (std::size_t f = 0; f < features; ++f) {
      inv_std[f] = 1.0F / std::sqrt(var[f] + bn->epsilon());
    }
    const float* mean = bn->running_mean().data().data();
    const float* gamma = bn->gamma().data().data();
    const float* beta = bn->beta().data().data();
    std::size_t out_buf = new_fbuf(elems);
    steps_.push_back([in_buf, out_buf, features, hw, elems, mean, gamma, beta,
                      inv_std = std::move(inv_std)](ForwardArena& a,
                                                    std::size_t rows) {
      const float* x = a.fptr(in_buf);
      float* o = a.fptr(out_buf);
      common::parallel_for(0, rows * elems, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          std::size_t f = (i / hw) % features;
          float nh = (x[i] - mean[f]) * inv_std[f];
          o[i] = gamma[f] * nh + beta[f];
        }
      });
    });
    sample = out_shape;
    return out_buf;
  }

  // --- structure ----------------------------------------------------------
  if (auto* res = dynamic_cast<nn::ResidualBlock*>(&layer)) {
    tensor::Shape body_shape = sample;
    std::size_t body_buf = in_buf;
    std::vector<nn::Layer*> body;
    body.reserve(res->body().size());
    for (const auto& lp : res->body()) body.push_back(lp.get());
    if (!plan_chain(body, body_shape, body_buf)) return std::nullopt;

    std::size_t shortcut_buf = in_buf;
    if (res->projection() != nullptr) {
      auto* proj = const_cast<nn::Layer*>(res->projection());
      tensor::Shape proj_shape = sample;
      bool dummy = false;
      auto proj_out = plan_layer(*proj, proj_shape, in_buf, nullptr, &dummy);
      if (!proj_out) return std::nullopt;
      if (!(proj_shape == body_shape)) return std::nullopt;
      shortcut_buf = *proj_out;
    }
    std::size_t elems = body_shape.elements();
    std::size_t out_buf = new_fbuf(elems);
    steps_.push_back([body_buf, shortcut_buf, out_buf, elems](ForwardArena& a,
                                                              std::size_t rows) {
      const float* b = a.fptr(body_buf);
      const float* s = a.fptr(shortcut_buf);
      float* o = a.fptr(out_buf);
      common::parallel_for(0, rows * elems, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) o[i] = b[i] + s[i];
      });
    });
    sample = body_shape;
    return out_buf;
  }

  // --- elementwise / shape ------------------------------------------------
  if (dynamic_cast<nn::Relu*>(&layer) != nullptr) {
    std::size_t elems = sample.elements();
    std::size_t out_buf = new_fbuf(elems);
    steps_.push_back([in_buf, out_buf, elems](ForwardArena& a, std::size_t rows) {
      const float* in = a.fptr(in_buf);
      float* o = a.fptr(out_buf);
      common::parallel_for(0, rows * elems, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) o[i] = in[i] > 0.0F ? in[i] : 0.0F;
      });
    });
    return out_buf;
  }

  if (dynamic_cast<nn::Sigmoid*>(&layer) != nullptr) {
    std::size_t elems = sample.elements();
    std::size_t out_buf = new_fbuf(elems);
    steps_.push_back([in_buf, out_buf, elems](ForwardArena& a, std::size_t rows) {
      const float* in = a.fptr(in_buf);
      float* o = a.fptr(out_buf);
      common::parallel_for(0, rows * elems, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          o[i] = 1.0F / (1.0F + std::exp(-in[i]));
        }
      });
    });
    return out_buf;
  }

  if (dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
    std::size_t elems = sample.elements();
    std::size_t out_buf = new_fbuf(elems);
    steps_.push_back([in_buf, out_buf, elems](ForwardArena& a, std::size_t rows) {
      const float* in = a.fptr(in_buf);
      float* o = a.fptr(out_buf);
      common::parallel_for(0, rows * elems, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) o[i] = std::tanh(in[i]);
      });
    });
    return out_buf;
  }

  if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
    sample = layer.output_shape(sample);  // same flat data, new shape
    return in_buf;
  }

  if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
    return in_buf;  // identity at inference
  }

  return std::nullopt;  // unsupported layer: caller falls back to Tensors
}

void ForwardArena::reserve(std::size_t rows) {
  if (rows <= capacity_rows_) return;
  for (auto& buf : fbufs_) {
    if (buf.data.size() < rows * buf.per_row) buf.data.resize(rows * buf.per_row);
  }
  for (auto& buf : qbufs_) {
    if (buf.data.size() < rows * buf.per_row) buf.data.resize(rows * buf.per_row);
  }
  capacity_rows_ = rows;
}

const float* ForwardArena::run(const float* input, std::size_t rows) {
  OPENEI_CHECK(rows > 0, "arena run over zero rows");
  reserve(rows);
  std::copy(input, input + rows * input_elems_, fptr(in_buf_));
  for (auto& step : steps_) step(*this, rows);
  return fptr(out_buf_);
}

void ForwardArena::predict(const float* input, std::size_t rows,
                           std::size_t* out) {
  const float* logits = run(input, rows);
  std::size_t cols = output_per_row_;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = logits + r * cols;
    std::size_t best = 0;
    for (std::size_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = best;
  }
}

}  // namespace openei::runtime
