// Inference and local-training sessions — the execution half of the OpenEI
// package manager (paper Sec. III-B).  A session binds a model to a device
// profile and package; running it produces real predictions from the NN
// engine plus simulated ALEM costs from the hardware model.
#pragma once

#include <memory>
#include <mutex>

#include "common/json.h"
#include "data/dataset.h"
#include "hwsim/cost_model.h"
#include "nn/train.h"
#include "runtime/arena.h"

namespace openei::runtime {

/// Result of a batched inference call.
struct InferenceResult {
  std::vector<std::size_t> predictions;
  /// Simulated per-sample latency/energy on the bound device (batch cost =
  /// per-sample cost x batch size; the simulated edge executes sequentially).
  hwsim::InferenceCost per_sample;
  double batch_latency_s = 0.0;
  double batch_energy_j = 0.0;
  /// Joules actually charged to the device's energy ledger for this
  /// request (EnergyGovernor::charge), prorated per request when a fused
  /// flush charged once for the whole batch.  0 when no governor is wired;
  /// otherwise this is what `sim_energy_mj` trace attributes report, so
  /// traces reconcile exactly against `ei_energy_joules_total`.
  double ledger_energy_j = 0.0;
};

class InferenceSession {
 public:
  /// Throws ResourceExhausted when the model does not fit the device's RAM
  /// under the package — the deployment failure mode the model selector's
  /// memory constraint exists to avoid.
  InferenceSession(nn::Model model, hwsim::PackageSpec package,
                   hwsim::DeviceProfile device);

  /// Runs real inference; costs are simulated for the bound device.
  InferenceResult run(const nn::Tensor& batch);

  /// Same as run() over raw row-major floats ([rows * input_elems]) — the
  /// steady-state serving path: with the arena active, no Tensor is ever
  /// constructed, so a warm request performs zero tensor heap allocations.
  /// Falls back to the Tensor path (bit-identical) when the arena is absent
  /// or contended.
  InferenceResult run_rows(const float* rows_data, std::size_t rows);

  /// Batched inference: fuses independent row-batches into one forward pass
  /// and slices the results back per request.  Every layer computes each
  /// sample independently at inference time, so result i is bit-identical
  /// to run(requests[i]) — fusing trades nothing but latency for
  /// throughput.  All requests must match the model's sample shape.
  std::vector<InferenceResult> predict_batch(
      const std::vector<nn::Tensor>& requests);

  /// Raw logits (used by collaboration/distillation flows).
  nn::Tensor forward(const nn::Tensor& batch);

  const nn::Model& model() const { return model_; }
  const hwsim::PackageSpec& package() const { return package_; }
  const hwsim::DeviceProfile& device() const { return device_; }
  const hwsim::InferenceCost& per_sample_cost() const { return per_sample_; }

  /// True when the session pre-planned a zero-allocation forward arena for
  /// this model (all layer types supported).  Steady-state run/predict_batch
  /// calls then allocate no tensor memory.
  bool arena_active() const { return arena_ != nullptr; }

 private:
  nn::Model model_;
  hwsim::PackageSpec package_;
  hwsim::DeviceProfile device_;
  hwsim::InferenceCost per_sample_;
  // Arena state is behind unique_ptrs so the session stays movable (mutexes
  // are not); concurrent callers that miss the try_lock fall back to the
  // Tensor path, which computes bit-identical values.
  std::unique_ptr<ForwardArena> arena_;
  std::unique_ptr<std::mutex> arena_mutex_;
  std::vector<float> fused_staging_;
  std::vector<std::size_t> pred_staging_;
};

/// On-device transfer learning: retrains the model's final dense head (all
/// other parameters frozen) on locally collected data — the paper's Fig. 3
/// dataflow 3 ("training on the edge locally ... a personalized model").
struct LocalTrainingResult {
  nn::Model model;
  double simulated_latency_s = 0.0;
  double simulated_energy_j = 0.0;
  double final_train_accuracy = 0.0;
};

LocalTrainingResult retrain_head_locally(const nn::Model& model,
                                         const data::Dataset& local_data,
                                         const hwsim::PackageSpec& package,
                                         const hwsim::DeviceProfile& device,
                                         const nn::TrainOptions& options);

/// Converts JSON inference rows ([[...],[...]] or a single flat [...]) to a
/// batch tensor matching `sample_shape`.  Shared by libei's algorithm route
/// and the degrading cloud-edge path (both accept the same wire format).
/// Throws ParseError on shape mismatch or empty input.
nn::Tensor rows_to_batch(const common::Json& input,
                         const tensor::Shape& sample_shape);

/// Allocation-free variant: decodes the same wire format into a grow-only
/// caller buffer (resized only when it must grow) and returns the row
/// count.  libei's hot path pairs this with InferenceSession::run_rows so a
/// warm /ei_algorithms request touches no tensor heap at all.
std::size_t rows_to_floats(const common::Json& input,
                           const tensor::Shape& sample_shape,
                           std::vector<float>& out);

}  // namespace openei::runtime
