// Online frequency/power governor wrapping the hwsim energy ledger.
//
// One governor serves a whole EiService: every simulated inference (direct,
// micro-batched, or streaming) charges its busy-energy here, and the queue
// observers drive the power-state ladder the way a cpufreq governor would —
// step up to boost under backlog, decay back toward idle when drained.  On
// top of the account it enforces the device's power envelope: when the
// rolling watts exceed `power_cap_w` the admission check asks the caller to
// degrade to a cheaper model variant, and past `reject_factor` times the cap
// it sheds load outright (libei turns that into a 503, mirroring the
// memory-pressure admission path).
//
// Thread-safe; all time flows through the injectable clock shared with the
// ledger, so the whole governor is deterministic under test.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

#include "hwsim/power.h"

namespace openei::runtime {

class EnergyGovernor {
 public:
  struct Options {
    /// Rolling-watts budget; 0 inherits the device profile's power_cap_w
    /// (which itself defaults to 0 = account only, never degrade/reject).
    double power_cap_w = 0.0;
    /// Load shedding kicks in at cap * reject_factor.
    double reject_factor = 1.5;
    /// Window for the rolling-watts estimate.
    double rolling_window_s = 1.0;
    /// Queued rows at or above this step the ladder toward boost.
    std::size_t boost_queue_depth = 16;
    /// Nanosecond clock; defaults to wall time.  Tests inject a fake.
    std::function<std::int64_t()> now;
  };

  /// Verdict for a new request against the power envelope.
  enum class Admission { kOk, kDegrade, kReject };

  struct Snapshot {
    hwsim::EnergyLedger::Snapshot ledger;
    double rolling_watts = 0.0;
    double power_cap_w = 0.0;
    std::uint64_t degrades = 0;
    std::uint64_t rejects = 0;
    std::uint64_t boost_entries = 0;
  };

  explicit EnergyGovernor(hwsim::DeviceProfile device)
      : EnergyGovernor(std::move(device), Options{}) {}
  EnergyGovernor(hwsim::DeviceProfile device, Options options);

  /// Charge `sim_busy_seconds` of nominal-clock compute for `rows` samples,
  /// stepping idle -> active first if needed.  Returns the joules charged.
  double charge(double sim_busy_seconds, std::size_t rows = 1);

  /// Queue-pressure observer: depth >= boost_queue_depth climbs one rung
  /// toward boost; any depth wakes an idle device to active.
  void on_queue_depth(std::size_t rows);

  /// Drain observer: one rung down (boost -> active -> idle).
  void on_drained();

  /// Pin the active-state DVFS rung (e.g. from an energy-schedule choice).
  void set_freq_level(std::size_t level);

  /// Check a new request against the rolling-watts envelope.  Always kOk
  /// when no cap is configured.  Records the degrade/reject decision.
  Admission admit();

  /// Rolling draw estimate: baseline wattage of the current state plus busy
  /// joules charged inside the trailing window, amortized over the window.
  double rolling_watts();

  Snapshot snapshot();

  const hwsim::DeviceProfile& device() const { return device_; }

  static const char* to_string(Admission a) {
    switch (a) {
      case Admission::kOk:
        return "ok";
      case Admission::kDegrade:
        return "degrade";
      case Admission::kReject:
        return "reject";
    }
    return "unknown";
  }

 private:
  double rolling_watts_locked(std::int64_t now);
  void prune_locked(std::int64_t now);

  hwsim::DeviceProfile device_;
  Options options_;
  double cap_w_ = 0.0;
  std::function<std::int64_t()> now_ns_;

  std::mutex mu_;
  hwsim::EnergyLedger ledger_;
  std::deque<std::pair<std::int64_t, double>> charges_;  // (t_ns, joules)
  std::uint64_t degrades_ = 0;
  std::uint64_t rejects_ = 0;
  std::uint64_t boost_entries_ = 0;
  std::uint64_t rows_charged_ = 0;
};

}  // namespace openei::runtime
