// Computation migration (paper Sec. IV-C): "the EI running environments
// should be capable of ... allocating computation resources and migrating
// computation loads", and the open problem asks for migration under
// dynamic conditions.
//
// Model: a loaded edge holds a queue of ML tasks; a helper edge is reachable
// over a link.  Migrating a task costs its payload transfer; the planner
// greedily offloads tasks (largest compute-to-payload benefit first) while
// doing so shortens the makespan.  Deterministic, so migration decisions are
// reproducible and testable.
#pragma once

#include <string>
#include <vector>

#include "hwsim/device.h"
#include "hwsim/network.h"

namespace openei::runtime {

/// A unit of offloadable work.
struct MigratableTask {
  std::string name;
  double flops = 0.0;           // compute demand
  std::size_t payload_bytes = 0;  // input that must move if migrated
};

struct MigrationPlan {
  /// Task indices that stay on the loaded edge (in input order).
  std::vector<std::size_t> stay;
  /// Task indices migrated to the helper.
  std::vector<std::size_t> migrate;
  /// Completion time of the slower side (transfer serialized on the link,
  /// then helper computes; both sides run in parallel).
  double makespan_s = 0.0;
  /// Makespan with no migration at all.
  double local_only_s = 0.0;
  double speedup() const {
    return makespan_s > 0.0 ? local_only_s / makespan_s : 0.0;
  }
};

/// Greedy migration planner: repeatedly moves the task with the best
/// benefit/cost ratio while the makespan improves.  Never migrates when the
/// link is too slow to pay off (LoRaWAN-class links yield empty `migrate`).
MigrationPlan plan_migration(const std::vector<MigratableTask>& tasks,
                             const hwsim::DeviceProfile& loaded_edge,
                             const hwsim::DeviceProfile& helper_edge,
                             const hwsim::NetworkLink& link);

}  // namespace openei::runtime
