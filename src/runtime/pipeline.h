// Streaming inference pipeline — the package manager's serving loop over a
// live sensor: frames accumulate in the edge data store; the pipeline
// drains everything that arrived since its last pass, runs one batched
// inference, and accounts simulated completion times on the bound device.
//
// This is the continuous half of the paper's VAPS/CAV scenarios ("the edge
// will be capable of dealing with video frames ... without uploading data
// to the cloud") and exposes the sustainable-rate question: a camera whose
// frame rate exceeds the device's inference rate builds backlog.
#pragma once

#include "datastore/timeseries.h"
#include "runtime/inference.h"

namespace openei::runtime {

class StreamingPipeline {
 public:
  /// Binds a session to one sensor whose record payloads are flat numeric
  /// feature arrays matching the model's input width.
  StreamingPipeline(InferenceSession session, datastore::SensorStore& store,
                    std::string sensor_id);

  struct PassResult {
    /// Records consumed by this pass.
    std::size_t processed = 0;
    std::vector<std::size_t> predictions;  // aligned with consumed records
    /// Simulated device time spent on this pass.
    double batch_latency_s = 0.0;
    /// Per-frame end-to-end latency stats: completion - capture timestamp,
    /// assuming the pass starts at `now` and frames complete in order.
    double mean_frame_latency_s = 0.0;
    double max_frame_latency_s = 0.0;
  };

  /// Processes every record with capture timestamp in (last_processed, now].
  /// Returns an empty result when nothing new arrived.  Throws
  /// InvalidArgument when a payload does not match the model input.
  PassResult process_available(double now);

  /// Timestamp up to which the stream has been consumed.
  double watermark() const { return watermark_; }

  /// Frames/s the bound (device, package, model) sustains — above this
  /// arrival rate backlog grows without bound.
  double sustainable_fps() const;

 private:
  InferenceSession session_;
  datastore::SensorStore& store_;
  std::string sensor_id_;
  double watermark_ = -1e300;
};

}  // namespace openei::runtime
