#include "runtime/session_cache.h"

#include <algorithm>
#include <utility>

#include "hwsim/cost_model.h"

namespace openei::runtime {

MemoryPressureError::MemoryPressureError(const std::string& model,
                                         std::size_t needed_bytes,
                                         std::size_t budget_bytes,
                                         std::size_t resident_bytes)
    : ResourceExhausted(detail::concat(
          "memory pressure: session for '", model, "' needs ", needed_bytes,
          " bytes; budget ", budget_bytes, ", resident ", resident_bytes)),
      model_(model),
      needed_bytes_(needed_bytes),
      budget_bytes_(budget_bytes),
      resident_bytes_(resident_bytes) {}

SessionCache::SessionCache(ModelRegistry& registry, hwsim::PackageSpec package,
                           hwsim::DeviceProfile device, Options options,
                           obs::MetricsRegistry* meter)
    : registry_(registry),
      package_(std::move(package)),
      device_(std::move(device)),
      options_(std::move(options)) {
  budget_ = options_.budget_bytes != 0
                ? options_.budget_bytes
                : device_.model_memory_budget(package_, options_.ram_fraction);
  if (meter != nullptr) {
    hits_counter_ = &meter->counter("ei_session_cache_hits_total");
    misses_counter_ = &meter->counter("ei_session_cache_misses_total");
    evictions_counter_ = &meter->counter("ei_session_cache_evictions_total");
    invalidations_counter_ =
        &meter->counter("ei_session_cache_invalidations_total");
    rejections_counter_ = &meter->counter("ei_admission_rejections_total");
    resident_bytes_gauge_ = &meter->gauge("ei_session_resident_bytes");
    resident_count_gauge_ = &meter->gauge("ei_session_resident_count");
    meter->gauge("ei_session_budget_bytes")
        .set(static_cast<double>(budget_));
  }
}

SessionCache::~SessionCache() { clear(); }

SessionCache::Lease SessionCache::lease_of(Resident& resident,
                                           bool with_batcher) {
  if (with_batcher && resident.batcher == nullptr) {
    resident.batcher = std::make_shared<MicroBatcher>(
        resident.session, options_.batching, options_.batcher_metrics);
  }
  return Lease{resident.entry, resident.session,
               with_batcher ? resident.batcher : nullptr};
}

void SessionCache::retire_locked(std::map<std::string, Resident>::iterator it,
                                 std::vector<Resident>& retired) {
  resident_bytes_ -= it->second.bytes;
  retired.push_back(std::move(it->second));
  resident_.erase(it);
  update_gauges_locked();
}

void SessionCache::evict_for_locked(std::size_t incoming_bytes,
                                    std::vector<Resident>& retired) {
  while (!resident_.empty() && resident_bytes_ + incoming_bytes > budget_) {
    auto coldest = resident_.begin();
    for (auto it = std::next(resident_.begin()); it != resident_.end(); ++it) {
      if (it->second.last_used < coldest->second.last_used) coldest = it;
    }
    ++evictions_;
    if (evictions_counter_ != nullptr) evictions_counter_->increment();
    retire_locked(coldest, retired);
  }
}

void SessionCache::update_gauges_locked() {
  if (resident_bytes_gauge_ != nullptr) {
    resident_bytes_gauge_->set(static_cast<double>(resident_bytes_));
  }
  if (resident_count_gauge_ != nullptr) {
    resident_count_gauge_->set(static_cast<double>(resident_.size()));
  }
}

SessionCache::Lease SessionCache::acquire(const std::string& name,
                                          bool with_batcher) {
  ModelEntryPtr entry = registry_.get(name);  // throws NotFound
  // Retired residents are destroyed *after* the lock is released: a
  // micro-batcher destructor drains its queue (in-flight requests complete
  // against the old model version), which must not run under the cache lock.
  std::vector<Resident> retired;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = resident_.find(name);
    if (it != resident_.end()) {
      if (it->second.entry == entry) {
        ++hits_;
        if (hits_counter_ != nullptr) hits_counter_->increment();
        it->second.last_used = ++tick_;
        return lease_of(it->second, with_batcher);
      }
      // The registry hot-swapped this model since the session was built.
      ++invalidations_;
      if (invalidations_counter_ != nullptr) {
        invalidations_counter_->increment();
      }
      retire_locked(it, retired);
    }
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->increment();
  }
  retired.clear();  // drain stale batcher (if any) before materializing

  // Admission control happens *before* the expensive materialization: the
  // estimate is the same roofline number the session itself computes.
  std::size_t bytes =
      hwsim::estimate_inference(entry->model, package_, device_).memory_bytes;
  if (bytes > budget_) {
    std::size_t resident_now;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++admission_rejections_;
      if (rejections_counter_ != nullptr) rejections_counter_->increment();
      resident_now = resident_bytes_;
    }
    throw MemoryPressureError(name, bytes, budget_, resident_now);
  }

  // Materialize outside the lock (model clone + arena planning are the slow
  // part of a cold miss); concurrent misses for *different* models overlap.
  auto session = std::make_shared<InferenceSession>(entry->model.clone(),
                                                    package_, device_);
  bytes = session->per_sample_cost().memory_bytes;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = resident_.find(name);
    if (it != resident_.end() && it->second.entry == entry) {
      // A concurrent miss won the race; use its session, drop ours.
      it->second.last_used = ++tick_;
      return lease_of(it->second, with_batcher);
    }
    if (it == resident_.end() && registry_.get_if(name) == entry) {
      evict_for_locked(bytes, retired);
      Resident resident{entry, std::move(session), nullptr, bytes, ++tick_};
      auto inserted = resident_.emplace(name, std::move(resident)).first;
      resident_bytes_ += bytes;
      update_gauges_locked();
      return lease_of(inserted->second, with_batcher);
    }
    // Either the model was hot-swapped while we materialized (our snapshot
    // is no longer current) or another version became resident meanwhile.
    // Never overwrite a possibly-newer resident with an older session:
    // serve this request from the pinned snapshot without caching it — the
    // next acquire materializes the fresh version.
  }
  std::shared_ptr<MicroBatcher> transient;
  if (with_batcher) {
    transient = std::make_shared<MicroBatcher>(session, options_.batching,
                                               options_.batcher_metrics);
  }
  return Lease{std::move(entry), std::move(session), std::move(transient)};
}

void SessionCache::clear() {
  std::vector<Resident> retired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = resident_.begin(); it != resident_.end();) {
      auto next = std::next(it);
      retire_locked(it, retired);
      it = next;
    }
  }
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.invalidations = invalidations_;
  out.admission_rejections = admission_rejections_;
  out.resident_sessions = resident_.size();
  out.resident_bytes = resident_bytes_;
  out.budget_bytes = budget_;
  return out;
}

std::vector<std::string> SessionCache::resident_by_recency() const {
  std::vector<std::string> names;
  for (ResidentInfo& info : resident_info()) names.push_back(std::move(info.name));
  return names;
}

std::vector<SessionCache::ResidentInfo> SessionCache::resident_info() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, ResidentInfo>> order;
  order.reserve(resident_.size());
  for (const auto& [name, resident] : resident_) {
    order.emplace_back(resident.last_used,
                       ResidentInfo{name, resident.bytes,
                                    resident.session->arena_active()});
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ResidentInfo> out;
  out.reserve(order.size());
  for (auto& [tick, info] : order) out.push_back(std::move(info));
  return out;
}

}  // namespace openei::runtime
