#include "runtime/energy_governor.h"

#include <utility>

#include "common/clock.h"
#include "common/error.h"

namespace openei::runtime {

EnergyGovernor::EnergyGovernor(hwsim::DeviceProfile device, Options options)
    : device_(std::move(device)),
      options_(std::move(options)),
      now_ns_(options_.now ? options_.now
                           : [] { return common::wall_now_ns(); }),
      ledger_(device_, now_ns_) {
  cap_w_ = options_.power_cap_w > 0.0 ? options_.power_cap_w
                                      : device_.power_cap_w;
  OPENEI_CHECK(options_.reject_factor >= 1.0, "reject_factor ",
               options_.reject_factor, " below 1");
  OPENEI_CHECK(options_.rolling_window_s > 0.0, "rolling window must be > 0");
}

double EnergyGovernor::charge(double sim_busy_seconds, std::size_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ledger_.state() == hwsim::PowerState::kIdle) {
    ledger_.set_state(hwsim::PowerState::kActive);
  }
  double joules = ledger_.charge_busy(sim_busy_seconds);
  std::int64_t now = now_ns_();
  charges_.emplace_back(now, joules);
  rows_charged_ += rows;
  prune_locked(now);
  return joules;
}

void EnergyGovernor::on_queue_depth(std::size_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rows == 0) return;
  switch (ledger_.state()) {
    case hwsim::PowerState::kIdle:
      ledger_.set_state(hwsim::PowerState::kActive);
      break;
    case hwsim::PowerState::kActive:
      if (rows >= options_.boost_queue_depth) {
        ledger_.set_state(hwsim::PowerState::kBoost);
        ++boost_entries_;
      }
      break;
    case hwsim::PowerState::kBoost:
      break;
  }
}

void EnergyGovernor::on_drained() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (ledger_.state()) {
    case hwsim::PowerState::kBoost:
      ledger_.set_state(hwsim::PowerState::kActive);
      break;
    case hwsim::PowerState::kActive:
      ledger_.set_state(hwsim::PowerState::kIdle);
      break;
    case hwsim::PowerState::kIdle:
      break;
  }
}

void EnergyGovernor::set_freq_level(std::size_t level) {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_.set_freq_level(level);
}

EnergyGovernor::Admission EnergyGovernor::admit() {
  if (cap_w_ <= 0.0) return Admission::kOk;
  std::lock_guard<std::mutex> lock(mu_);
  double watts = rolling_watts_locked(now_ns_());
  if (watts > cap_w_ * options_.reject_factor) {
    ++rejects_;
    return Admission::kReject;
  }
  if (watts > cap_w_) {
    ++degrades_;
    return Admission::kDegrade;
  }
  return Admission::kOk;
}

double EnergyGovernor::rolling_watts() {
  std::lock_guard<std::mutex> lock(mu_);
  return rolling_watts_locked(now_ns_());
}

double EnergyGovernor::rolling_watts_locked(std::int64_t now) {
  prune_locked(now);
  double busy_j = 0.0;
  for (const auto& [t, j] : charges_) busy_j += j;
  return ledger_.state_power_w(ledger_.state(), ledger_.freq_level()) +
         busy_j / options_.rolling_window_s;
}

void EnergyGovernor::prune_locked(std::int64_t now) {
  auto horizon =
      now - static_cast<std::int64_t>(options_.rolling_window_s * 1e9);
  while (!charges_.empty() && charges_.front().first < horizon) {
    charges_.pop_front();
  }
}

EnergyGovernor::Snapshot EnergyGovernor::snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.ledger = ledger_.snapshot();
  snap.rolling_watts = rolling_watts_locked(now_ns_());
  snap.power_cap_w = cap_w_;
  snap.degrades = degrades_;
  snap.rejects = rejects_;
  snap.boost_entries = boost_entries_;
  return snap;
}

}  // namespace openei::runtime
