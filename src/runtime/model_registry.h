// Model registry: the package manager's store of deployed models.
//
// Models are registered under (scenario, algorithm) — the same two fields
// libei's URL scheme addresses (paper Fig. 6: /ei_algorithms/{scenario}/
// {algorithm}) — plus free-form variants (e.g. compressed versions) that the
// model selector ranks.
//
// Lifecycle semantics (the memory-governed serving path depends on these):
//   - Readers receive shared_ptr<const ModelEntry> *snapshots*.  No model is
//     ever cloned on the read path, and a snapshot stays valid (weights
//     frozen) for as long as the caller holds it — an in-flight inference
//     pins the version it started with even while a hot-swap replaces it.
//   - put() on an existing name is an atomic hot-swap: the previous version
//     is retained (one level deep) so rollback() can restore it.
//   - Every put/erase/rollback bumps the version counter; session caches,
//     capability-row caches, and micro-batchers invalidate off it (or off
//     snapshot pointer identity, which is equivalent per model).
//
// The read path is lock-free: lookups load an immutable copy-on-write table
// through an atomic shared_ptr, so concurrent /ei_algorithms requests never
// serialize on a registry mutex.  Writers copy the (pointer-sized) table
// under a writer mutex and publish the new table atomically.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/model.h"

namespace openei::runtime {

struct ModelEntry {
  std::string scenario;   // e.g. "safety", "home", "vehicles", "health"
  std::string algorithm;  // e.g. "detection", "power_monitor"
  nn::Model model;
  /// Test accuracy recorded when the model was registered (the A in ALEM).
  double accuracy = 0.0;
};

/// Immutable snapshot of one deployed model version.  Pointer identity is
/// the version identity: two snapshots of the same name compare equal iff
/// they are the same deployment.
using ModelEntryPtr = std::shared_ptr<const ModelEntry>;

/// Thread-safe name-keyed model store.  Keys are model names; scenario and
/// algorithm index lookups used by libei route handlers.
class ModelRegistry {
 public:
  /// Registers (or hot-swaps) a model under its own name.  Replacing an
  /// existing name retains the prior version for rollback(); registering a
  /// fresh name clears any stale prior retained under it.
  void put(ModelEntry entry);

  /// True if a model with this name exists.
  bool contains(const std::string& name) const;

  /// Snapshot of the named model's entry; throws NotFound when absent.
  ModelEntryPtr get(const std::string& name) const;

  /// Snapshot of the named model's entry, or nullptr when absent — the
  /// no-throw hot-path variant session caches use to validate residency.
  ModelEntryPtr get_if(const std::string& name) const;

  /// All models registered for a (scenario, algorithm) pair — the candidate
  /// set the model selector chooses from.  Empty when none.
  std::vector<ModelEntryPtr> find(const std::string& scenario,
                                  const std::string& algorithm) const;

  /// Names of all registered models (sorted).
  std::vector<std::string> names() const;

  std::size_t size() const;

  /// Removes a model (and its retained prior version); returns false when
  /// absent.  In-flight snapshot holders keep the entry alive until they
  /// drain.
  bool erase(const std::string& name);

  /// Restores the version put() replaced: the current entry is dropped and
  /// the retained prior becomes current again (the prior slot empties — a
  /// second rollback of the same name fails).  Returns false when no prior
  /// version is retained under this name.
  bool rollback(const std::string& name);

  /// True when rollback(name) would succeed.
  bool has_prior(const std::string& name) const;

  /// Monotonic change counter: bumped by every put/erase/rollback.  Lets
  /// caches (the session cache, libei's capability rows) detect staleness
  /// cheaply without comparing snapshots.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  struct Table {
    std::map<std::string, ModelEntryPtr> current;
    /// Last replaced version per name (rollback target), one level deep.
    std::map<std::string, ModelEntryPtr> prior;
  };

  std::shared_ptr<const Table> snapshot() const {
    return table_.load(std::memory_order_acquire);
  }

  /// Serializes writers; readers never take it.
  mutable std::mutex write_mutex_;
  std::atomic<std::shared_ptr<const Table>> table_{
      std::make_shared<const Table>()};
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace openei::runtime
