// Model registry: the package manager's store of deployed models.
//
// Models are registered under (scenario, algorithm) — the same two fields
// libei's URL scheme addresses (paper Fig. 6: /ei_algorithms/{scenario}/
// {algorithm}) — plus free-form variants (e.g. compressed versions) that the
// model selector ranks.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "nn/model.h"

namespace openei::runtime {

struct ModelEntry {
  std::string scenario;   // e.g. "safety", "home", "vehicles", "health"
  std::string algorithm;  // e.g. "detection", "power_monitor"
  nn::Model model;
  /// Test accuracy recorded when the model was registered (the A in ALEM).
  double accuracy = 0.0;
};

/// Thread-safe name-keyed model store.  Keys are model names; scenario and
/// algorithm index lookups used by libei route handlers.
class ModelRegistry {
 public:
  /// Registers (or replaces) a model under its own name.
  void put(ModelEntry entry);

  /// True if a model with this name exists.
  bool contains(const std::string& name) const;

  /// Clone of the named model's entry; throws NotFound when absent.
  ModelEntry get(const std::string& name) const;

  /// All models registered for a (scenario, algorithm) pair — the candidate
  /// set the model selector chooses from.  Empty when none.
  std::vector<ModelEntry> find(const std::string& scenario,
                               const std::string& algorithm) const;

  /// Names of all registered models (sorted).
  std::vector<std::string> names() const;

  std::size_t size() const;

  /// Removes a model; returns false when absent.
  bool erase(const std::string& name);

  /// Monotonic change counter: bumped by every put/erase.  Lets caches
  /// (libei's inference-session cache) detect staleness cheaply.
  std::uint64_t version() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, ModelEntry> entries_;
  std::uint64_t version_ = 0;
};

}  // namespace openei::runtime
