#include "runtime/model_registry.h"

#include "common/error.h"

namespace openei::runtime {

namespace {

ModelEntry clone_entry(const ModelEntry& entry) {
  return ModelEntry{entry.scenario, entry.algorithm, entry.model.clone(),
                    entry.accuracy};
}

}  // namespace

void ModelRegistry::put(ModelEntry entry) {
  OPENEI_CHECK(!entry.model.name().empty(), "model needs a name");
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.insert_or_assign(entry.model.name(), std::move(entry));
  ++version_;
}

bool ModelRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

ModelEntry ModelRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) throw NotFound("no model named '" + name + "'");
  return clone_entry(it->second);
}

std::vector<ModelEntry> ModelRegistry::find(const std::string& scenario,
                                            const std::string& algorithm) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ModelEntry> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.scenario == scenario && entry.algorithm == algorithm) {
      out.push_back(clone_entry(entry));
    }
  }
  return out;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool ModelRegistry::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool erased = entries_.erase(name) > 0;
  if (erased) ++version_;
  return erased;
}

std::uint64_t ModelRegistry::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

}  // namespace openei::runtime
