#include "runtime/model_registry.h"

#include "common/error.h"

namespace openei::runtime {

void ModelRegistry::put(ModelEntry entry) {
  OPENEI_CHECK(!entry.model.name().empty(), "model needs a name");
  std::string name = entry.model.name();
  auto snapshot_entry = std::make_shared<const ModelEntry>(std::move(entry));
  std::lock_guard<std::mutex> lock(write_mutex_);
  auto next = std::make_shared<Table>(*snapshot());
  auto it = next->current.find(name);
  if (it != next->current.end()) {
    next->prior[name] = std::move(it->second);  // hot-swap: retain for rollback
    it->second = std::move(snapshot_entry);
  } else {
    next->prior.erase(name);  // fresh install has no prior
    next->current.emplace(name, std::move(snapshot_entry));
  }
  table_.store(std::shared_ptr<const Table>(std::move(next)),
               std::memory_order_release);
  version_.fetch_add(1, std::memory_order_acq_rel);
}

bool ModelRegistry::contains(const std::string& name) const {
  auto table = snapshot();
  return table->current.count(name) > 0;
}

ModelEntryPtr ModelRegistry::get(const std::string& name) const {
  ModelEntryPtr entry = get_if(name);
  if (entry == nullptr) throw NotFound("no model named '" + name + "'");
  return entry;
}

ModelEntryPtr ModelRegistry::get_if(const std::string& name) const {
  auto table = snapshot();
  auto it = table->current.find(name);
  return it == table->current.end() ? nullptr : it->second;
}

std::vector<ModelEntryPtr> ModelRegistry::find(
    const std::string& scenario, const std::string& algorithm) const {
  auto table = snapshot();
  std::vector<ModelEntryPtr> out;
  for (const auto& [name, entry] : table->current) {
    if (entry->scenario == scenario && entry->algorithm == algorithm) {
      out.push_back(entry);
    }
  }
  return out;
}

std::vector<std::string> ModelRegistry::names() const {
  auto table = snapshot();
  std::vector<std::string> out;
  out.reserve(table->current.size());
  for (const auto& [name, entry] : table->current) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const { return snapshot()->current.size(); }

bool ModelRegistry::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  auto table = snapshot();
  if (table->current.count(name) == 0) return false;
  auto next = std::make_shared<Table>(*table);
  next->current.erase(name);
  next->prior.erase(name);
  table_.store(std::shared_ptr<const Table>(std::move(next)),
               std::memory_order_release);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool ModelRegistry::rollback(const std::string& name) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  auto table = snapshot();
  auto it = table->prior.find(name);
  if (it == table->prior.end()) return false;
  auto next = std::make_shared<Table>(*table);
  next->current[name] = it->second;
  next->prior.erase(name);
  table_.store(std::shared_ptr<const Table>(std::move(next)),
               std::memory_order_release);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool ModelRegistry::has_prior(const std::string& name) const {
  return snapshot()->prior.count(name) > 0;
}

}  // namespace openei::runtime
