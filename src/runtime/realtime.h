// Real-time ML module (paper Sec. III-B): "when the module is called, the
// machine learning task will be set to the highest priority to ensure that
// it has as many computing resources as possible."
//
// Modelled as a deterministic single-worker discrete-event simulation: ML
// tasks with arrival times and (simulated) durations are executed either
// FIFO (no real-time module) or priority-preemptive (urgent tasks preempt
// best-effort work immediately).  The E5 bench compares urgent-task tail
// latency under both policies.
#pragma once

#include <string>
#include <vector>

namespace openei::runtime {

enum class TaskPriority { kBestEffort = 0, kUrgent = 1 };

struct MlTask {
  std::string name;
  double arrival_s = 0.0;
  double duration_s = 0.0;  // device-time the task needs
  TaskPriority priority = TaskPriority::kBestEffort;
};

struct CompletedTask {
  MlTask task;
  double start_s = 0.0;   // first moment the task ran
  double finish_s = 0.0;  // completion time
  /// Response time = finish - arrival (what a caller waits).
  double response_s() const { return finish_s - task.arrival_s; }
};

enum class SchedulingPolicy {
  kFifo,                // arrival order, run-to-completion
  kPriorityPreemptive,  // urgent preempts best-effort instantly
};

/// Simulates the task set on one worker; returns completions sorted by
/// finish time.  Deterministic: ties broken by arrival order.
std::vector<CompletedTask> simulate_schedule(std::vector<MlTask> tasks,
                                             SchedulingPolicy policy);

/// p-th percentile (0 < p <= 100) of response times, linear interpolation.
double response_percentile(const std::vector<CompletedTask>& completed,
                           double percentile, TaskPriority priority);

}  // namespace openei::runtime
