// Memory-governed model lifecycle: the session pool between the model
// registry (deployed weights) and the serving path (warm InferenceSessions
// + micro-batchers).
//
// The paper's package manager must "load and execute models under the
// resource constraints of the edge" — Eq. 1 makes memory (M <= M_pro) a
// first-class constraint.  The SessionCache enforces it at runtime:
//
//   - Residency is bounded by a byte budget derived from the device's ALEM
//     memory (DeviceProfile::model_memory_budget) — weights + activation
//     arenas + package runtime per session, the same number the selector's
//     memory constraint reasons about.
//   - Sessions materialize lazily on first use (one model clone + arena
//     plan per deployment version) and are reused zero-copy afterwards.
//   - When admitting a session would exceed the budget, cold sessions are
//     evicted in strict LRU order; a model that cannot fit even into an
//     empty cache is refused with MemoryPressureError (libei answers 503
//     with a JSON memory_pressure body).
//   - Hot-swap safety: a resident session is keyed to its registry snapshot
//     by pointer identity.  When the registry replaces the model (POST
//     /ei_models, rollback, peer fetch), the next acquire retires the stale
//     session — but in-flight requests hold shared ownership, so the old
//     snapshot drains before its memory is really released.  Retired
//     micro-batchers drain their queues before their sessions die.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hwsim/device.h"
#include "hwsim/package.h"
#include "obs/metrics_registry.h"
#include "runtime/batcher.h"
#include "runtime/inference.h"
#include "runtime/model_registry.h"

namespace openei::runtime {

/// Thrown when a session cannot be admitted within the memory budget even
/// with every other resident session evicted.  libei maps this to HTTP 503
/// with the documented {"error":"memory_pressure", ...} JSON body.
class MemoryPressureError : public ResourceExhausted {
 public:
  MemoryPressureError(const std::string& model, std::size_t needed_bytes,
                      std::size_t budget_bytes, std::size_t resident_bytes);

  const std::string& model() const { return model_; }
  std::size_t needed_bytes() const { return needed_bytes_; }
  std::size_t budget_bytes() const { return budget_bytes_; }
  std::size_t resident_bytes() const { return resident_bytes_; }

 private:
  std::string model_;
  std::size_t needed_bytes_;
  std::size_t budget_bytes_;
  std::size_t resident_bytes_;
};

class SessionCache {
 public:
  struct Options {
    /// Resident-session byte budget; 0 derives it from the device profile:
    /// device.model_memory_budget(package, ram_fraction).
    std::size_t budget_bytes = 0;
    double ram_fraction = 0.5;
    /// Per-model micro-batcher knobs (batchers are created lazily, only for
    /// acquire(..., with_batcher=true) callers).
    MicroBatcher::Options batching;
    /// Shared batcher counters (may be null).
    std::shared_ptr<BatcherMetrics> batcher_metrics;
  };

  /// What one request holds while serving: shared ownership of the model
  /// snapshot, its warm session, and (when requested) its batcher.  Holding
  /// a lease pins this deployment version across evictions and hot-swaps.
  struct Lease {
    ModelEntryPtr entry;
    std::shared_ptr<InferenceSession> session;
    std::shared_ptr<MicroBatcher> batcher;  // null unless requested
  };

  /// Lifecycle counters for /ei_status and the property suite.  Snapshot is
  /// internally consistent (taken under the cache lock).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Stale sessions retired because the registry hot-swapped their model.
    std::uint64_t invalidations = 0;
    std::uint64_t admission_rejections = 0;
    std::size_t resident_sessions = 0;
    std::size_t resident_bytes = 0;
    std::size_t budget_bytes = 0;
  };

  /// Borrows the registry (the owning node outlives the cache); copies the
  /// profiles.  `meter` (may be null) receives lifecycle counters/gauges:
  /// ei_session_cache_{hits,misses,evictions,invalidations}_total,
  /// ei_admission_rejections_total, ei_session_resident_bytes,
  /// ei_session_resident_count.
  SessionCache(ModelRegistry& registry, hwsim::PackageSpec package,
               hwsim::DeviceProfile device, Options options,
               obs::MetricsRegistry* meter = nullptr);
  ~SessionCache();
  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  /// Warm hit: shared session for the model's current registry version.
  /// Cold miss: materializes (clone + arena plan) under admission control.
  /// Throws NotFound when the registry lacks the model, MemoryPressureError
  /// when the budget cannot admit it, ResourceExhausted when the model does
  /// not fit the device at all.
  Lease acquire(const std::string& name, bool with_batcher = false);

  /// Retires every resident session (batchers drain their queues first).
  void clear();

  Stats stats() const;
  std::size_t budget_bytes() const { return budget_; }
  /// Resident model names, coldest first — the eviction order.
  std::vector<std::string> resident_by_recency() const;

  /// Per-resident detail for /ei_status, coldest first.
  struct ResidentInfo {
    std::string name;
    std::size_t bytes = 0;
    bool arena_active = false;
  };
  std::vector<ResidentInfo> resident_info() const;

  const hwsim::PackageSpec& package() const { return package_; }
  const hwsim::DeviceProfile& device() const { return device_; }

 private:
  struct Resident {
    ModelEntryPtr entry;  // identity token: stale when != registry snapshot
    std::shared_ptr<InferenceSession> session;
    std::shared_ptr<MicroBatcher> batcher;  // lazily created
    std::size_t bytes = 0;
    std::uint64_t last_used = 0;
  };

  Lease lease_of(Resident& resident, bool with_batcher);
  /// Moves one resident into `retired` and fixes accounting.  Lock held.
  void retire_locked(std::map<std::string, Resident>::iterator it,
                     std::vector<Resident>& retired);
  /// Evicts coldest residents until `incoming_bytes` fits.  Lock held.
  void evict_for_locked(std::size_t incoming_bytes,
                        std::vector<Resident>& retired);
  void update_gauges_locked();

  ModelRegistry& registry_;
  hwsim::PackageSpec package_;
  hwsim::DeviceProfile device_;
  Options options_;
  std::size_t budget_ = 0;

  mutable std::mutex mutex_;
  std::map<std::string, Resident> resident_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t admission_rejections_ = 0;

  // Cached metric series (references are stable for the meter's lifetime);
  // all null when no meter is attached.
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* invalidations_counter_ = nullptr;
  obs::Counter* rejections_counter_ = nullptr;
  obs::Gauge* resident_bytes_gauge_ = nullptr;
  obs::Gauge* resident_count_gauge_ = nullptr;
};

}  // namespace openei::runtime
