// Micro-batching queue in front of an InferenceSession.
//
// Concurrent callers (libei serves each REST request on its own connection
// thread) submit row batches; a dedicated flush thread fuses everything
// queued into one forward pass via InferenceSession::predict_batch and
// completes each caller's future with its slice.  Coalescing policy:
//
//   - a flush fires as soon as >= max_batch_rows are queued,
//   - or when the oldest request has waited max_wait_s,
//   - or, with eager_when_idle (the service default), immediately when the
//     flush thread is idle — a lone request pays no batching latency, and
//     requests arriving while a flush is running pile up and ride the next
//     one (continuous batching).
//
// Fused results are bit-identical to per-request runs (see predict_batch),
// so coalescing is invisible to callers except in throughput.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>

#include "common/drain_gate.h"
#include "obs/trace.h"
#include "runtime/inference.h"

namespace openei::runtime {

class EnergyGovernor;

/// Shared counters for fleet monitoring (reported under /ei_status).  One
/// sink can serve many batchers; all fields are atomics because the flush
/// threads and the metrics reader race freely.
struct BatcherMetrics {
  std::atomic<std::uint64_t> requests{0};       // submitted row batches
  std::atomic<std::uint64_t> flushes{0};        // fused forward passes
  std::atomic<std::uint64_t> fused_requests{0}; // requests that shared a flush
  std::atomic<std::uint64_t> max_fused_rows{0}; // largest fused batch seen
};

class MicroBatcher {
 public:
  struct Options {
    /// Flush as soon as this many rows are queued.
    std::size_t max_batch_rows = 8;
    /// Flush when the oldest queued request has waited this long.
    double max_wait_s = 0.002;
    /// Flush immediately whenever the flush thread is idle (continuous
    /// batching).  Disable to force strict fill-or-timeout batching.
    bool eager_when_idle = true;
    /// Device energy account (may be null).  Each flush charges its fused
    /// simulated busy time once — prorated back into every rider's
    /// InferenceResult::ledger_energy_j — and the queue feeds the governor's
    /// pressure ladder: submit reports depth (boost under backlog), an empty
    /// queue after a flush reports drained (decay toward idle).
    std::shared_ptr<EnergyGovernor> governor;
  };

  /// Shares ownership of the session; `metrics` may be null.
  MicroBatcher(std::shared_ptr<InferenceSession> session, Options options,
               std::shared_ptr<BatcherMetrics> metrics = nullptr);

  /// Drains the queue (every submitted request completes), then stops.
  ~MicroBatcher();
  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues a row batch ([rows, ...sample_shape]); the future completes
  /// with this request's slice of a fused forward pass.  Shape errors are
  /// reported through the future.
  ///
  /// `span` (optional) is the caller's trace span for this request's ride
  /// through the queue: the flush thread stamps queue wait, fused batch
  /// shape, forward time, and peak tensor bytes on it, then finishes it
  /// when the flush completes.  An inert span (tracing off) costs a branch.
  std::future<InferenceResult> submit(nn::Tensor rows, obs::Span span = {});

  const Options& options() const { return options_; }

 private:
  struct Pending {
    nn::Tensor rows;
    std::promise<InferenceResult> promise;
    std::int64_t enqueued_ns;
    obs::Span span;
  };

  void flush_loop();
  /// Pops up to max_batch_rows worth of requests (at least one).
  std::deque<Pending> take_flushable(common::DrainGate::Lock& lock);
  void run_flush(std::deque<Pending> batch);

  std::shared_ptr<InferenceSession> session_;
  Options options_;
  std::shared_ptr<BatcherMetrics> metrics_;

  /// The shared shutdown contract (common/drain_gate.h): its mutex guards
  /// pending_/pending_rows_; close() in the destructor wakes the flush
  /// thread, which drains every accepted request before exiting.
  common::DrainGate gate_;
  std::deque<Pending> pending_;
  std::size_t pending_rows_ = 0;
  std::thread flusher_;
};

}  // namespace openei::runtime
