#include "runtime/pipeline.h"

#include <algorithm>

namespace openei::runtime {

StreamingPipeline::StreamingPipeline(InferenceSession session,
                                     datastore::SensorStore& store,
                                     std::string sensor_id)
    : session_(std::move(session)),
      store_(store),
      sensor_id_(std::move(sensor_id)) {
  OPENEI_CHECK(!sensor_id_.empty(), "pipeline needs a sensor id");
}

StreamingPipeline::PassResult StreamingPipeline::process_available(double now) {
  PassResult result;
  std::vector<datastore::Record> fresh =
      store_.history(sensor_id_, std::nextafter(watermark_, 1e300), now);
  if (fresh.empty()) return result;

  // Assemble the batch from flat numeric payloads.
  std::size_t sample_elems = session_.model().input_shape().elements();
  std::vector<std::size_t> dims{fresh.size()};
  for (std::size_t d : session_.model().input_shape().dims()) dims.push_back(d);
  nn::Tensor batch{tensor::Shape(dims)};
  auto out = batch.data();
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const auto& payload = fresh[i].payload.as_array();
    OPENEI_CHECK(payload.size() == sample_elems, "sensor '", sensor_id_,
                 "' record at t=", fresh[i].timestamp, " has ", payload.size(),
                 " values; model expects ", sample_elems);
    for (std::size_t j = 0; j < sample_elems; ++j) {
      out[i * sample_elems + j] = static_cast<float>(payload[j].as_number());
    }
  }

  InferenceResult inference = session_.run(batch);
  result.processed = fresh.size();
  result.predictions = std::move(inference.predictions);
  result.batch_latency_s = inference.batch_latency_s;

  // Frame i completes at now + (i+1) * per_sample; its end-to-end latency
  // counts from capture.
  double per_sample = inference.per_sample.latency_s;
  double total = 0.0;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    double completion = now + static_cast<double>(i + 1) * per_sample;
    double frame_latency = completion - fresh[i].timestamp;
    total += frame_latency;
    result.max_frame_latency_s =
        std::max(result.max_frame_latency_s, frame_latency);
  }
  result.mean_frame_latency_s = total / static_cast<double>(fresh.size());

  watermark_ = fresh.back().timestamp;
  return result;
}

double StreamingPipeline::sustainable_fps() const {
  double per_sample = session_.per_sample_cost().latency_s;
  return per_sample > 0.0 ? 1.0 / per_sample : 0.0;
}

}  // namespace openei::runtime
