#include "runtime/inference.h"

#include <algorithm>

#include "common/error.h"
#include "nn/dense.h"

namespace openei::runtime {

InferenceSession::InferenceSession(nn::Model model, hwsim::PackageSpec package,
                                   hwsim::DeviceProfile device)
    : model_(std::move(model)),
      package_(std::move(package)),
      device_(std::move(device)) {
  per_sample_ = hwsim::estimate_inference(model_, package_, device_);
  if (per_sample_.memory_bytes > device_.ram_bytes) {
    throw ResourceExhausted(detail::concat(
        "model '", model_.name(), "' needs ", per_sample_.memory_bytes,
        " bytes but device '", device_.name, "' has ", device_.ram_bytes));
  }
  // Pre-plan the zero-alloc forward arena; single-sample buffers are grown
  // here so a steady-state run(1-row batch) never touches the heap.
  arena_ = ForwardArena::plan(model_);
  if (arena_ != nullptr) {
    arena_->reserve(1);
    arena_mutex_ = std::make_unique<std::mutex>();
  }
}

InferenceResult InferenceSession::run_rows(const float* rows_data,
                                           std::size_t rows) {
  OPENEI_CHECK(rows > 0, "run_rows of zero rows");
  InferenceResult result;
  bool done = false;
  if (arena_ != nullptr) {
    std::unique_lock<std::mutex> lock(*arena_mutex_, std::try_to_lock);
    if (lock.owns_lock()) {
      result.predictions.resize(rows);
      arena_->predict(rows_data, rows, result.predictions.data());
      done = true;
    }
  }
  if (!done) {
    // Fallback (no arena, or another thread holds it): stage into a Tensor
    // and run the layer path — bit-identical values, just not alloc-free.
    std::vector<std::size_t> dims{rows};
    for (std::size_t d : model_.input_shape().dims()) dims.push_back(d);
    nn::Tensor batch{tensor::Shape(dims)};
    auto out = batch.data();
    std::copy(rows_data, rows_data + out.size(), out.begin());
    result.predictions = model_.predict(batch);
  }
  result.per_sample = per_sample_;
  auto n = static_cast<double>(rows);
  result.batch_latency_s = per_sample_.latency_s * n;
  result.batch_energy_j = per_sample_.energy_j * n;
  return result;
}

InferenceResult InferenceSession::run(const nn::Tensor& batch) {
  InferenceResult result;
  std::size_t rows = batch.shape().dim(0);
  bool done = false;
  if (arena_ != nullptr && batch.elements() == rows * arena_->input_elems()) {
    std::unique_lock<std::mutex> lock(*arena_mutex_, std::try_to_lock);
    if (lock.owns_lock()) {
      result.predictions.resize(rows);
      arena_->predict(batch.data().data(), rows, result.predictions.data());
      done = true;
    }
  }
  if (!done) result.predictions = model_.predict(batch);
  result.per_sample = per_sample_;
  auto n = static_cast<double>(batch.shape().dim(0));
  result.batch_latency_s = per_sample_.latency_s * n;
  result.batch_energy_j = per_sample_.energy_j * n;
  return result;
}

std::vector<InferenceResult> InferenceSession::predict_batch(
    const std::vector<nn::Tensor>& requests) {
  OPENEI_CHECK(!requests.empty(), "predict_batch of zero requests");
  std::size_t sample_elems = model_.input_shape().elements();
  std::size_t total_rows = 0;
  for (const nn::Tensor& request : requests) {
    OPENEI_CHECK(request.shape().rank() >= 2, "request needs a batch dim");
    OPENEI_CHECK(request.elements() ==
                     request.shape().dim(0) * sample_elems,
                 "request sample shape does not match model input");
    total_rows += request.shape().dim(0);
  }

  // Arena path: stage fused rows into a grow-only scratch vector and run the
  // pre-planned executor — no Tensor construction, so steady-state batched
  // inference stays allocation-free.  Values are bit-identical to the Tensor
  // path (the arena replicates every layer's arithmetic exactly).
  std::vector<std::size_t> fused_predictions;
  bool done = false;
  if (arena_ != nullptr) {
    std::unique_lock<std::mutex> lock(*arena_mutex_, std::try_to_lock);
    if (lock.owns_lock()) {
      if (fused_staging_.size() < total_rows * sample_elems) {
        fused_staging_.resize(total_rows * sample_elems);
      }
      std::size_t offset = 0;
      for (const nn::Tensor& request : requests) {
        auto in = request.data();
        std::copy(in.begin(), in.end(), fused_staging_.begin() + offset);
        offset += in.size();
      }
      if (pred_staging_.size() < total_rows) pred_staging_.resize(total_rows);
      arena_->predict(fused_staging_.data(), total_rows, pred_staging_.data());
      fused_predictions.assign(pred_staging_.begin(),
                               pred_staging_.begin() + total_rows);
      done = true;
    }
  }
  if (!done) {
    std::vector<std::size_t> dims{total_rows};
    for (std::size_t d : model_.input_shape().dims()) dims.push_back(d);
    nn::Tensor fused{tensor::Shape(dims)};
    auto out = fused.data();
    std::size_t offset = 0;
    for (const nn::Tensor& request : requests) {
      auto in = request.data();
      std::copy(in.begin(), in.end(), out.begin() + offset);
      offset += in.size();
    }
    fused_predictions = model_.predict(fused);
  }

  std::vector<InferenceResult> results;
  results.reserve(requests.size());
  std::size_t row = 0;
  for (const nn::Tensor& request : requests) {
    std::size_t rows = request.shape().dim(0);
    InferenceResult slice;
    slice.predictions.assign(fused_predictions.begin() + row,
                             fused_predictions.begin() + row + rows);
    slice.per_sample = per_sample_;
    slice.batch_latency_s = per_sample_.latency_s * static_cast<double>(rows);
    slice.batch_energy_j = per_sample_.energy_j * static_cast<double>(rows);
    results.push_back(std::move(slice));
    row += rows;
  }
  return results;
}

nn::Tensor InferenceSession::forward(const nn::Tensor& batch) {
  return model_.forward(batch, /*training=*/false);
}

LocalTrainingResult retrain_head_locally(const nn::Model& model,
                                         const data::Dataset& local_data,
                                         const hwsim::PackageSpec& package,
                                         const hwsim::DeviceProfile& device,
                                         const nn::TrainOptions& options) {
  OPENEI_CHECK(package.supports_training, "package '", package.name,
               "' cannot train on-device");
  local_data.check();

  LocalTrainingResult result{model.clone(), 0.0, 0.0, 0.0};

  // Freeze everything except the final trainable (dense-like) layer's
  // parameters — transfer learning retrains the head only.
  std::size_t total_params = result.model.parameters().size();
  std::size_t head_params = 0;
  for (std::size_t i = result.model.layer_count(); i-- > 0;) {
    auto& layer = result.model.layer(i);
    std::size_t count = layer.parameters().size();
    if (count > 0) {
      head_params = count;
      break;
    }
  }
  OPENEI_CHECK(head_params > 0, "model has no trainable parameters");

  nn::TrainOptions frozen_options = options;
  frozen_options.frozen_parameters.clear();
  for (std::size_t i = 0; i + head_params < total_params; ++i) {
    frozen_options.frozen_parameters.push_back(i);
  }

  auto history = nn::fit(result.model, local_data, frozen_options);
  result.final_train_accuracy = history.back().train_accuracy;

  hwsim::InferenceCost cost = hwsim::estimate_training(
      result.model, package, device, local_data.size(), options.epochs);
  result.simulated_latency_s = cost.latency_s;
  result.simulated_energy_j = cost.energy_j;
  return result;
}

namespace {

/// Decodes rows into `out` ([rows * sample_elems], already sized); shared
/// by the Tensor and the allocation-free decoders.
void decode_rows(const common::JsonArray& outer, bool nested, std::size_t rows,
                 std::size_t sample_elems, float* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const common::JsonArray& row = nested ? outer[r].as_array() : outer;
    if (row.size() != sample_elems) {
      throw ParseError("input row has " + std::to_string(row.size()) +
                       " values; model expects " + std::to_string(sample_elems));
    }
    for (std::size_t j = 0; j < sample_elems; ++j) {
      out[r * sample_elems + j] = static_cast<float>(row[j].as_number());
    }
  }
}

}  // namespace

nn::Tensor rows_to_batch(const common::Json& input,
                         const tensor::Shape& sample_shape) {
  const common::JsonArray& outer = input.as_array();
  if (outer.empty()) throw ParseError("empty inference input");

  bool nested = outer[0].is_array();
  std::size_t rows = nested ? outer.size() : 1;
  std::size_t sample_elems = sample_shape.elements();

  std::vector<std::size_t> dims{rows};
  for (std::size_t d : sample_shape.dims()) dims.push_back(d);
  nn::Tensor batch{tensor::Shape(dims)};
  decode_rows(outer, nested, rows, sample_elems, batch.data().data());
  return batch;
}

std::size_t rows_to_floats(const common::Json& input,
                           const tensor::Shape& sample_shape,
                           std::vector<float>& out) {
  const common::JsonArray& outer = input.as_array();
  if (outer.empty()) throw ParseError("empty inference input");

  bool nested = outer[0].is_array();
  std::size_t rows = nested ? outer.size() : 1;
  std::size_t sample_elems = sample_shape.elements();
  if (out.size() < rows * sample_elems) out.resize(rows * sample_elems);
  decode_rows(outer, nested, rows, sample_elems, out.data());
  return rows;
}

}  // namespace openei::runtime
