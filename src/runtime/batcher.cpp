#include "runtime/batcher.h"

#include <chrono>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "runtime/energy_governor.h"

namespace openei::runtime {

MicroBatcher::MicroBatcher(std::shared_ptr<InferenceSession> session,
                           Options options,
                           std::shared_ptr<BatcherMetrics> metrics)
    : session_(std::move(session)),
      options_(options),
      metrics_(std::move(metrics)) {
  OPENEI_CHECK(session_ != nullptr, "micro-batcher needs a session");
  OPENEI_CHECK(options_.max_batch_rows > 0, "zero max_batch_rows");
  OPENEI_CHECK(options_.max_wait_s >= 0.0, "negative max_wait_s");
  flusher_ = std::thread([this] { flush_loop(); });
}

MicroBatcher::~MicroBatcher() {
  gate_.close();
  flusher_.join();
}

std::future<InferenceResult> MicroBatcher::submit(nn::Tensor rows,
                                                  obs::Span span) {
  Pending pending{std::move(rows), std::promise<InferenceResult>{},
                  common::wall_now_ns(), std::move(span)};
  std::future<InferenceResult> future = pending.promise.get_future();
  std::size_t row_count =
      pending.rows.shape().rank() >= 1 ? pending.rows.shape().dim(0) : 0;
  std::size_t queued_rows = 0;
  {
    common::DrainGate::Lock lock = gate_.acquire();
    OPENEI_CHECK(!gate_.closed(lock), "submit on a stopping micro-batcher");
    pending_.push_back(std::move(pending));
    pending_rows_ += row_count;
    queued_rows = pending_rows_;
  }
  if (options_.governor) options_.governor->on_queue_depth(queued_rows);
  if (metrics_) metrics_->requests.fetch_add(1, std::memory_order_relaxed);
  gate_.notify_all();
  return future;
}

std::deque<MicroBatcher::Pending> MicroBatcher::take_flushable(
    common::DrainGate::Lock&) {
  std::deque<Pending> batch;
  std::size_t rows = 0;
  // Always take the head request even if it alone exceeds max_batch_rows
  // (requests are never split); stop before overshooting with later ones.
  while (!pending_.empty()) {
    std::size_t next_rows = pending_.front().rows.shape().rank() >= 1
                                ? pending_.front().rows.shape().dim(0)
                                : 0;
    if (!batch.empty() && rows + next_rows > options_.max_batch_rows) break;
    rows += next_rows;
    pending_rows_ -= next_rows;
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
    if (rows >= options_.max_batch_rows) break;
  }
  return batch;
}

void MicroBatcher::flush_loop() {
  common::DrainGate::Lock lock = gate_.acquire();
  for (;;) {
    gate_.await(lock, [this] { return !pending_.empty(); });
    if (pending_.empty()) return;  // closed and drained

    if (!options_.eager_when_idle && !gate_.closed(lock)) {
      // Strict mode: hold for max_wait_s from the oldest enqueue (or a full
      // batch), letting concurrent arrivals pile in.
      auto deadline_reached = [this, &lock] {
        return gate_.closed(lock) ||
               pending_rows_ >= options_.max_batch_rows ||
               (!pending_.empty() &&
                static_cast<double>(common::wall_now_ns() -
                                    pending_.front().enqueued_ns) *
                        1e-9 >=
                    options_.max_wait_s);
      };
      while (!deadline_reached()) {
        double waited_s = static_cast<double>(common::wall_now_ns() -
                                              pending_.front().enqueued_ns) *
                          1e-9;
        gate_.await_for(lock, options_.max_wait_s - waited_s, deadline_reached);
      }
      if (pending_.empty()) continue;
    }

    std::deque<Pending> batch = take_flushable(lock);
    lock.unlock();
    run_flush(std::move(batch));
    lock.lock();
    if (pending_.empty() && options_.governor) options_.governor->on_drained();
  }
}

void MicroBatcher::run_flush(std::deque<Pending> batch) {
  std::vector<nn::Tensor> requests;
  requests.reserve(batch.size());
  std::size_t flush_rows = 0;
  for (Pending& pending : batch) {
    flush_rows += pending.rows.shape().rank() >= 1 ? pending.rows.shape().dim(0)
                                                   : 0;
    requests.push_back(std::move(pending.rows));
  }

  // Queue-wait attribution happens before the forward pass so the span
  // cleanly splits "waited in queue" from "rode a fused forward".
  std::int64_t flush_start_ns = common::wall_now_ns();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i].span.active()) continue;
    batch[i].span.set_attribute(
        "queue_wait_us",
        static_cast<double>(flush_start_ns - batch[i].enqueued_ns) * 1e-3);
    batch[i].span.set_attribute(
        "batch_rows", static_cast<double>(requests[i].shape().dim(0)));
    batch[i].span.set_attribute("flush_rows",
                                static_cast<double>(flush_rows));
    batch[i].span.set_attribute("flush_requests",
                                static_cast<double>(batch.size()));
  }

  std::vector<InferenceResult> results;
  tensor::AllocationStats allocation;
  try {
    tensor::AllocationTrackingScope scope;
    results = session_->predict_batch(requests);
    allocation = scope.stats();
  } catch (...) {
    // A malformed request poisons the whole flush; every caller learns why.
    std::exception_ptr error = std::current_exception();
    for (Pending& pending : batch) pending.promise.set_exception(error);
    return;
  }

  if (options_.governor) {
    // One ledger charge per fused forward pass, prorated back per request by
    // its share of the simulated busy time so the trace attributes sum to
    // exactly what the ledger recorded.
    double total_busy_s = 0.0;
    for (const InferenceResult& result : results) {
      total_busy_s += result.batch_latency_s;
    }
    double joules = options_.governor->charge(total_busy_s, flush_rows);
    for (InferenceResult& result : results) {
      result.ledger_energy_j =
          total_busy_s > 0.0 ? joules * (result.batch_latency_s / total_busy_s)
                             : 0.0;
    }
  }

  double forward_us =
      static_cast<double>(common::wall_now_ns() - flush_start_ns) * 1e-3;
  for (Pending& pending : batch) {
    if (!pending.span.active()) continue;
    pending.span.set_attribute("forward_us", forward_us);
    pending.span.set_attribute(
        "peak_tensor_bytes", static_cast<double>(allocation.peak_live_bytes));
    // Zero peak_tensor_bytes is the arena working as designed, not a broken
    // tracker — the flag lets trace consumers tell the two apart.
    pending.span.set_attribute("arena",
                               session_->arena_active() ? 1.0 : 0.0);
    pending.span.finish();
  }

  if (metrics_) {
    std::size_t rows = 0;
    for (const nn::Tensor& request : requests) rows += request.shape().dim(0);
    metrics_->flushes.fetch_add(1, std::memory_order_relaxed);
    if (batch.size() > 1) {
      metrics_->fused_requests.fetch_add(batch.size(),
                                         std::memory_order_relaxed);
    }
    std::uint64_t seen = metrics_->max_fused_rows.load(std::memory_order_relaxed);
    while (rows > seen && !metrics_->max_fused_rows.compare_exchange_weak(
                              seen, rows, std::memory_order_relaxed)) {
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(results[i]));
  }
}

}  // namespace openei::runtime
