// Parallel compute substrate: a process-wide thread pool and the
// parallel_for primitive every hot kernel (GEMM, conv, batchnorm,
// activations) is written against.
//
// Determinism contract: a parallel_for body receives a contiguous
// [begin, end) sub-range and must write only outputs derived from those
// indices.  Because each output element is produced by exactly one body
// invocation with an unchanged inner accumulation order, results are
// bit-identical for every thread count, including the single-thread
// inline fallback.  Reductions use parallel_chunked_reduce, whose chunk
// boundaries are fixed (independent of the thread count) and whose
// partials are combined serially in chunk order — also bit-identical.
//
// Sizing: OPENEI_THREADS=<n> pins the worker count at first use (0 or
// unset = hardware concurrency); set_thread_count() overrides at runtime.
// With 1 thread there is no pool and every primitive degrades to the
// plain serial loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace openei::common {

/// Fixed-size worker pool executing queued tasks FIFO.  Usually accessed
/// through parallel_for rather than directly.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues a task; it runs on some worker in submission order.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_ = false;
};

/// Current configured parallelism (>= 1): the number of concurrent lanes a
/// parallel_for may use, caller's thread included.
std::size_t thread_count();

/// Reconfigures the global pool: n lanes total (0 = OPENEI_THREADS or
/// hardware concurrency).  Waits for queued work to finish before the old
/// pool is torn down.  Thread-safe, but not against concurrent parallel_for
/// callers racing the swap mid-loop; reconfigure between workloads.
void set_thread_count(std::size_t n);

/// True while executing inside a pool worker (nested parallel_for calls
/// run inline rather than deadlocking on their own pool).
bool on_pool_thread();

/// Parses an OPENEI_THREADS-style value: digits = that many lanes, empty /
/// null / "0" / garbage = `fallback`.  Exposed for tests.
std::size_t parse_thread_env(const char* value, std::size_t fallback);

/// Runs body(begin, end) over [begin, end) split into at most thread_count()
/// contiguous chunks.  Ranges below `grain` elements, single-thread
/// configurations, and nested calls run inline on the caller.  The first
/// exception thrown by any chunk is rethrown on the caller after all chunks
/// finish.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 2048);

/// Deterministic parallel reduction: splits [0, n) into fixed chunks of
/// `chunk` elements (boundaries independent of thread count), computes
/// partial(chunk_index, begin, end) concurrently, then folds
/// combine(chunk_index) serially in ascending chunk order.
void parallel_chunked_reduce(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& partial,
    const std::function<void(std::size_t)>& combine);

}  // namespace openei::common
