// Self-contained JSON value model, parser, and writer.
//
// libei (Sec. III-D of the paper) exposes every resource over a RESTful API;
// responses and algorithm arguments are JSON.  This is a strict recursive-
// descent parser (UTF-8 pass-through, \uXXXX escapes for BMP code points) and
// a deterministic writer (object keys keep insertion order).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace openei::common {

class Json;

using JsonArray = std::vector<Json>;
/// Insertion-ordered object representation: deterministic serialization
/// matters for reproducible experiment logs.
using JsonObject = std::vector<std::pair<std::string, Json>>;

/// A JSON value: null, bool, number (double), string, array, or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : type_(Type::kNumber), number_(value) {}
  Json(std::int64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(std::size_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(JsonArray value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(JsonObject value) : type_(Type::kObject), object_(std::move(value)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw InvalidArgument on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object field lookup; throws NotFound if `key` is absent.
  const Json& at(std::string_view key) const;
  /// Object field lookup; returns nullptr if absent.
  const Json* find(std::string_view key) const;
  /// True if object has `key`.
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  /// Inserts or replaces an object field (keeps insertion order on insert).
  void set(std::string key, Json value);

  /// Array element; throws InvalidArgument when out of range.
  const Json& at(std::size_t index) const;

  /// Serializes to compact JSON text.
  std::string dump() const;
  /// Serializes with 2-space indentation.
  std::string pretty() const;

  /// Parses strict JSON; throws ParseError with position info on failure.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace openei::common
