// 64-byte-aligned allocation for kernel-facing buffers.
//
// The fp32 and int8 SIMD kernels read their operands with 256/512-bit
// vector loads; 64 bytes is one cache line and the widest vector register,
// so buffers allocated through this allocator never split a vector load
// across lines and aligned-load intrinsics are always legal on them.
// Tensor storage and the packed weight panels both use `aligned_vector`.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace openei::common {

inline constexpr std::size_t kKernelAlignment = 64;

template <typename T, std::size_t Alignment = kKernelAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below the type's natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not a power of 2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// std::vector whose buffer starts on a 64-byte boundary.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace openei::common
