// Time abstraction.
//
// Simulated components (hwsim, collab) account time with a virtual clock so
// experiments are deterministic; the HTTP server and schedulers use the wall
// clock.  SimClock is a plain value type advanced explicitly by cost models.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/error.h"

namespace openei::common {

/// Monotonic wall-clock timestamp in nanoseconds.
inline std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Stopwatch over the wall clock for measuring real elapsed time.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(wall_now_ns()) {}
  void reset() { start_ns_ = wall_now_ns(); }
  double elapsed_seconds() const {
    return static_cast<double>(wall_now_ns() - start_ns_) * 1e-9;
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  std::int64_t start_ns_;
};

/// Deterministic virtual clock: simulated latencies advance it explicitly.
class SimClock {
 public:
  double now_seconds() const { return now_s_; }

  /// Advances by `seconds` (must be non-negative).
  void advance(double seconds) {
    OPENEI_CHECK(seconds >= 0.0, "cannot advance clock by ", seconds, "s");
    now_s_ += seconds;
  }

  /// Moves the clock forward to `t` if `t` is later; otherwise no-op.
  void advance_to(double t) {
    if (t > now_s_) now_s_ = t;
  }

 private:
  double now_s_ = 0.0;
};

}  // namespace openei::common
