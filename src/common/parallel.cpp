#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "common/error.h"

namespace openei::common {

namespace {

thread_local bool t_on_pool_thread = false;

struct GlobalPool {
  std::mutex mutex;
  std::shared_ptr<ThreadPool> pool;  // null when lanes == 1
  std::size_t lanes = 0;             // 0 = not yet initialized
};

GlobalPool& global_state() {
  static GlobalPool state;
  return state;
}

std::size_t default_lanes() {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return parse_thread_env(std::getenv("OPENEI_THREADS"), hw);
}

/// Returns the pool for the current configuration (initializing it from
/// OPENEI_THREADS on first use) plus the lane count.  The shared_ptr keeps
/// the pool alive across a concurrent set_thread_count().
std::pair<std::shared_ptr<ThreadPool>, std::size_t> acquire() {
  GlobalPool& state = global_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.lanes == 0) {
    state.lanes = default_lanes();
    if (state.lanes > 1) {
      state.pool = std::make_shared<ThreadPool>(state.lanes - 1);
    }
  }
  return {state.pool, state.lanes};
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  OPENEI_CHECK(workers > 0, "thread pool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_pool_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t thread_count() { return acquire().second; }

void set_thread_count(std::size_t n) {
  std::size_t lanes = n == 0 ? default_lanes() : n;
  std::shared_ptr<ThreadPool> replacement;
  if (lanes > 1) replacement = std::make_shared<ThreadPool>(lanes - 1);
  std::shared_ptr<ThreadPool> retired;
  {
    GlobalPool& state = global_state();
    std::lock_guard<std::mutex> lock(state.mutex);
    retired = std::move(state.pool);
    state.pool = std::move(replacement);
    state.lanes = lanes;
  }
  // retired's destructor joins its workers after they drain the queue.
}

bool on_pool_thread() { return t_on_pool_thread; }

std::size_t parse_thread_env(const char* value, std::size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

namespace {

/// Shared completion state for one parallel_for: counts outstanding chunks
/// and stores the first exception.
struct ForkJoin {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining;
  std::exception_ptr error;

  explicit ForkJoin(std::size_t chunks) : remaining(chunks) {}

  void run_chunk(const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t begin, std::size_t end) {
    std::exception_ptr caught;
    try {
      body(begin, end);
    } catch (...) {
      caught = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (caught && !error) error = caught;
    if (--remaining == 0) done.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [this] { return remaining == 0; });
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (end <= begin) return;
  std::size_t n = end - begin;
  auto [pool, lanes] = acquire();
  if (!pool || lanes <= 1 || n <= grain || on_pool_thread()) {
    body(begin, end);
    return;
  }

  std::size_t chunks = std::min(lanes, (n + grain - 1) / grain);
  std::size_t per_chunk = (n + chunks - 1) / chunks;
  auto state = std::make_shared<ForkJoin>(chunks);
  for (std::size_t c = 1; c < chunks; ++c) {
    std::size_t lo = begin + c * per_chunk;
    std::size_t hi = std::min(end, lo + per_chunk);
    if (lo >= hi) {
      state->run_chunk([](std::size_t, std::size_t) {}, 0, 0);
      continue;
    }
    pool->submit([state, &body, lo, hi] { state->run_chunk(body, lo, hi); });
  }
  // The caller is lane 0: it works instead of blocking idle.
  state->run_chunk(body, begin, std::min(end, begin + per_chunk));
  state->wait();
}

void parallel_chunked_reduce(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& partial,
    const std::function<void(std::size_t)>& combine) {
  OPENEI_CHECK(chunk > 0, "zero reduction chunk");
  if (n == 0) return;
  std::size_t chunks = (n + chunk - 1) / chunk;
  parallel_for(
      0, chunks,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          partial(c, c * chunk, std::min(n, (c + 1) * chunk));
        }
      },
      /*grain=*/1);
  for (std::size_t c = 0; c < chunks; ++c) combine(c);
}

}  // namespace openei::common
