#include "common/strings.h"

#include <cctype>

#include "common/error.h"

namespace openei::common {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (auto& piece : split(text, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool is_unreserved(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == '.' || c == '~';
}

}  // namespace

std::string uri_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= text.size()) throw ParseError("truncated percent escape");
      int hi = hex_digit(text[i + 1]);
      int lo = hex_digit(text[i + 2]);
      if (hi < 0 || lo < 0) throw ParseError("bad percent escape in URI");
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string uri_encode(std::string_view text) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (is_unreserved(c)) {
      out.push_back(c);
    } else {
      auto byte = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(hex[byte >> 4]);
      out.push_back(hex[byte & 0xF]);
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace openei::common
