// Deterministic random-number source.
//
// All randomness in OpenEI (dataset synthesis, weight init, schedulers with
// jitter, RL exploration) flows through Rng with an explicit seed so every
// experiment is reproducible bit-for-bit (DESIGN.md, "Determinism").
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/error.h"

namespace openei::common {

/// Seeded pseudo-random generator with convenience distributions.
/// Copyable: copying captures the full generator state, which lets callers
/// fork reproducible sub-streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    OPENEI_CHECK(lo <= hi, "uniform bounds reversed: ", lo, " > ", hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform float in [lo, hi).
  float uniform_float(float lo = 0.0F, float hi = 1.0F) {
    return static_cast<float>(uniform(lo, hi));
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    OPENEI_CHECK(lo <= hi, "uniform_int bounds reversed: ", lo, " > ", hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian sample.
  double normal(double mean = 0.0, double stddev = 1.0) {
    OPENEI_CHECK(stddev >= 0.0, "negative stddev ", stddev);
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  float normal_float(float mean = 0.0F, float stddev = 1.0F) {
    return static_cast<float>(normal(mean, stddev));
  }

  /// Bernoulli draw.
  bool flip(double p = 0.5) { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// A permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    shuffle(perm);
    return perm;
  }

  /// Fork a child stream whose seed derives from this stream.  The child is
  /// independent of later draws from the parent.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace openei::common
