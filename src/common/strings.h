// Small string utilities shared across modules (HTTP parsing, URI routing,
// model naming).  Kept allocation-light; inputs are passed as string_view.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace openei::common {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on `sep`, dropping empty fields ("/a//b/" -> {"a","b"}).
std::vector<std::string> split_nonempty(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// Percent-decodes a URI component ("%20" -> " ", "+" -> " ").
/// Throws ParseError on a malformed escape.
std::string uri_decode(std::string_view text);

/// Percent-encodes a URI component (conservative: everything but unreserved).
std::string uri_encode(std::string_view text);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace openei::common
