#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace openei::common {

bool Json::as_bool() const {
  OPENEI_CHECK(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Json::as_number() const {
  OPENEI_CHECK(is_number(), "JSON value is not a number");
  return number_;
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Json::as_string() const {
  OPENEI_CHECK(is_string(), "JSON value is not a string");
  return string_;
}

const JsonArray& Json::as_array() const {
  OPENEI_CHECK(is_array(), "JSON value is not an array");
  return array_;
}

JsonArray& Json::as_array() {
  OPENEI_CHECK(is_array(), "JSON value is not an array");
  return array_;
}

const JsonObject& Json::as_object() const {
  OPENEI_CHECK(is_object(), "JSON value is not an object");
  return object_;
}

JsonObject& Json::as_object() {
  OPENEI_CHECK(is_object(), "JSON value is not an object");
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) throw NotFound("JSON object has no key '" + std::string(key) + "'");
  return *value;
}

void Json::set(std::string key, Json value) {
  OPENEI_CHECK(is_object() || is_null(), "set() on non-object JSON value");
  if (is_null()) type_ = Type::kObject;
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const Json& Json::at(std::size_t index) const {
  OPENEI_CHECK(is_array(), "indexing a non-array JSON value");
  OPENEI_CHECK(index < array_.size(), "JSON array index ", index, " out of range ",
               array_.size());
  return array_[index];
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

namespace {

void write_escaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double value) {
  if (std::isnan(value) || std::isinf(value)) {
    // JSON has no NaN/Inf; serialize as null per common lenient convention.
    out += "null";
    return;
  }
  double rounded = std::round(value);
  if (rounded == value && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(rounded));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
  }
}

void indent_to(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: write_number(out, number_); return;
    case Type::kString: write_escaped(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        indent_to(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        indent_to(out, indent, depth + 1);
        write_escaped(out, object_[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        object_[i].second.write(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  write(out, /*indent=*/2, /*depth=*/0);
  return out;
}

namespace {

class Parser {
 public:
  // Nesting bound: the parser is recursive, so hostile inputs like
  // "[[[[..." must hit a ParseError long before the call stack does.
  static constexpr int kMaxDepth = 192;

  explicit Parser(std::string_view text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
  }

  Json parse_value() {
    skip_ws();
    if (depth_ >= kMaxDepth) fail("JSON nesting too deep");
    ++depth_;
    Json value = [&] {
      char c = peek();
      switch (c) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return Json(parse_string());
        case 't': expect("true"); return Json(true);
        case 'f': expect("false"); return Json(false);
        case 'n': expect("null"); return Json(nullptr);
        default: return parse_number();
      }
    }();
    --depth_;
    return value;
  }

  Json parse_object() {
    expect("{");
    JsonObject object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(":");
      object.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = next();
      if (c == '}') return Json(std::move(object));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect("[");
    JsonArray array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') return Json(std::move(array));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect("\"");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs unsupported —
          // sufficient for OpenEI's ASCII-centric metadata).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool any_digit = false;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      any_digit = true;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any_digit = true;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (!any_digit) fail("invalid number");
    std::string token(text_.substr(start, pos_ - start));
    return Json(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace openei::common
