// Minimal leveled logger.
//
// The library logs sparingly (server lifecycle, collaboration rounds); tests
// and benches set the level to `kWarn` to keep output clean.  Thread-safe:
// each message is formatted into one string and written with a single mutex-
// guarded call.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace openei::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log-level control. Defaults to kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {

template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}

}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace openei::common
