// The shared shutdown contract for internal work queues.
//
// Every queue that accepts work from concurrent producers and completes it
// on a worker thread (runtime::MicroBatcher, stream::FrameQueue) needs the
// same three guarantees at teardown:
//
//   1. work accepted before close() is drained, never silently lost,
//   2. work offered after close() is refused, never enqueued,
//   3. no waiter — blocked producer or sleeping consumer — can sleep
//      through close(); destruction cannot deadlock.
//
// DrainGate packages the mutex + condition variable + closed flag that
// implement that contract.  One mutex guards both the owner's queue state
// and the closed flag, so "closed?" and "work available?" are always
// observed together; await()/await_for() fold the closed flag into every
// wait predicate, so a waiter wakes the moment the gate closes.  The
// owner's destructor calls close() and then joins its worker, which drains
// whatever close() found queued.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace openei::common {

class DrainGate {
 public:
  using Lock = std::unique_lock<std::mutex>;

  DrainGate() = default;
  DrainGate(const DrainGate&) = delete;
  DrainGate& operator=(const DrainGate&) = delete;

  /// Locks the gate's mutex — the one lock that guards the owner's queue
  /// state and the closed flag alike.  Const so counter snapshots on const
  /// owners can lock too (the mutex is mutable).
  Lock acquire() const { return Lock(mutex_); }

  /// True once close() ran.  The caller must hold the gate's lock (the
  /// parameter exists to make that requirement impossible to forget).
  bool closed(const Lock&) const { return closed_; }

  /// Unlocked snapshot for monitoring; never use it to gate an enqueue.
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Marks the gate closed and wakes every waiter.  Idempotent: returns
  /// false when the gate was already closed.
  bool close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      closed_ = true;
    }
    cv_.notify_all();
    return true;
  }

  /// Wakes every waiter (call after mutating queue state).
  void notify_all() { cv_.notify_all(); }

  /// Blocks until `ready()` or the gate closes; returns ready() so the
  /// caller distinguishes "work available" from "woken by close".
  template <typename Pred>
  bool await(Lock& lock, Pred ready) {
    cv_.wait(lock, [&] { return closed_ || ready(); });
    return ready();
  }

  /// Timed await: until ready, closed, or `seconds` elapsed (clamped at 0);
  /// returns ready().
  template <typename Pred>
  bool await_for(Lock& lock, double seconds, Pred ready) {
    if (seconds < 0.0) seconds = 0.0;
    cv_.wait_for(lock,
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::duration<double>(seconds)),
                 [&] { return closed_ || ready(); });
    return ready();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool closed_ = false;
};

}  // namespace openei::common
