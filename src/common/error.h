// Error model for OpenEI.
//
// Contract violations and unrecoverable conditions throw openei::Error (or a
// subclass); recoverable "not found / would block" conditions are expressed
// with std::optional at the API level.  Following the C++ Core Guidelines
// (E.2), exceptions signal that a function cannot perform its assigned task.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace openei {

/// Base exception for all OpenEI errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad shape, bad argument...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A named resource (model, sensor, route, file) does not exist.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// Parsing of an external representation (JSON, HTTP, model file) failed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A resource limit of the (simulated) edge device was exceeded.
class ResourceExhausted : public Error {
 public:
  explicit ResourceExhausted(const std::string& what) : Error(what) {}
};

/// An I/O or networking operation failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An I/O operation exceeded its deadline.  Subclass of IoError so generic
/// transport-failure handling (failover, retries) covers it, while callers
/// that care can distinguish "slow" from "broken".
class TimeoutError : public IoError {
 public:
  explicit TimeoutError(const std::string& what) : IoError(what) {}
};

/// A request was rejected locally because the endpoint's circuit breaker is
/// open (the endpoint has been failing; we are not even trying).  Subclass of
/// IoError: to a caller it is just another transport failure, but a fast one.
class CircuitOpenError : public IoError {
 public:
  explicit CircuitOpenError(const std::string& what) : IoError(what) {}
};

namespace detail {

template <typename... Args>
[[nodiscard]] std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace detail

}  // namespace openei

/// OPENEI_CHECK(cond, msg...) throws InvalidArgument when `cond` is false.
/// Used to validate public API preconditions; always active (not NDEBUG-gated)
/// because edge deployments run release builds.
#define OPENEI_CHECK(cond, ...)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::openei::InvalidArgument(::openei::detail::concat(       \
          "check failed: " #cond " — ", __VA_ARGS__));                \
    }                                                                 \
  } while (false)
