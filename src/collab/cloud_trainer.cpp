#include "collab/cloud_trainer.h"

#include "net/http.h"
#include "nn/serialize.h"

namespace openei::collab {

CloudTrainer::CloudTrainer(data::Dataset train, data::Dataset test,
                           hwsim::DeviceProfile cloud_device,
                           hwsim::PackageSpec cloud_package)
    : train_(std::move(train)),
      test_(std::move(test)),
      device_(std::move(cloud_device)),
      package_(std::move(cloud_package)) {
  train_.check();
  test_.check();
  OPENEI_CHECK(package_.supports_training, "cloud package '", package_.name,
               "' cannot train");
}

CloudTrainer::TrainedModel CloudTrainer::train(
    nn::Model model, const nn::TrainOptions& options) const {
  nn::fit(model, train_, options);
  hwsim::InferenceCost cost = hwsim::estimate_training(
      model, package_, device_, train_.size(), options.epochs);
  TrainedModel out{std::move(model), 0.0, cost.latency_s, cost.energy_j};
  out.test_accuracy = nn::evaluate_accuracy(out.model, test_);
  return out;
}

void CloudTrainer::push_to_edge(std::uint16_t edge_port, const nn::Model& model,
                                const std::string& scenario,
                                const std::string& algorithm, double accuracy) {
  net::HttpClient edge(edge_port);
  net::HttpResponse response = edge.post(
      "/ei_models?scenario=" + scenario + "&algorithm=" + algorithm +
          "&accuracy=" + std::to_string(accuracy),
      nn::save_model(model));
  OPENEI_CHECK(response.status == 201, "edge rejected model '", model.name(),
               "' with HTTP ", response.status, ": ", response.body);
}

}  // namespace openei::collab
