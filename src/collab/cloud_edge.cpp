#include "collab/cloud_edge.h"

#include "common/error.h"
#include "common/strings.h"
#include "runtime/inference.h"

namespace openei::collab {

namespace {

std::size_t sample_bytes(const data::Dataset& dataset) {
  return dataset.features.elements() / dataset.size() * sizeof(float);
}

double measure_accuracy(const nn::Model& model, const data::Dataset& test) {
  nn::Model copy = model.clone();
  return nn::evaluate_accuracy(copy, test);
}

}  // namespace

DataflowMetrics dataflow_cloud_inference(const nn::Model& cloud_model,
                                         const data::Dataset& test,
                                         const hwsim::DeviceProfile& cloud,
                                         const hwsim::PackageSpec& cloud_package,
                                         const hwsim::NetworkLink& link) {
  test.check();
  DataflowMetrics metrics;
  metrics.dataflow = "cloud_inference";
  metrics.accuracy = measure_accuracy(cloud_model, test);

  std::size_t up = sample_bytes(test);
  std::size_t down = 16;  // class id + envelope
  hwsim::InferenceCost cloud_cost =
      hwsim::estimate_inference(cloud_model, cloud_package, cloud);

  metrics.latency_per_inference_s =
      link.round_trip_s(up, down) + cloud_cost.latency_s;
  metrics.bytes_per_inference = static_cast<double>(up + down);
  metrics.energy_per_inference_j = link.transfer_energy_j(up + down);
  return metrics;
}

DataflowMetrics dataflow_edge_inference(const nn::Model& cloud_model,
                                        const data::Dataset& test,
                                        const hwsim::DeviceProfile& edge,
                                        const hwsim::PackageSpec& edge_package,
                                        const hwsim::NetworkLink& link) {
  test.check();
  DataflowMetrics metrics;
  metrics.dataflow = "edge_inference";
  metrics.accuracy = measure_accuracy(cloud_model, test);

  std::size_t model_bytes = cloud_model.storage_bytes();
  hwsim::InferenceCost edge_cost =
      hwsim::estimate_inference(cloud_model, edge_package, edge);

  metrics.setup_latency_s = link.transfer_time_s(model_bytes);
  metrics.latency_per_inference_s = edge_cost.latency_s;
  metrics.bytes_per_inference =
      static_cast<double>(model_bytes) / static_cast<double>(test.size());
  metrics.energy_per_inference_j =
      edge_cost.energy_j + link.transfer_energy_j(model_bytes) /
                               static_cast<double>(test.size());
  return metrics;
}

DataflowMetrics dataflow_edge_personalized(const nn::Model& cloud_model,
                                           const data::Dataset& local_train,
                                           const data::Dataset& local_test,
                                           const hwsim::DeviceProfile& edge,
                                           const hwsim::PackageSpec& edge_package,
                                           const hwsim::NetworkLink& link,
                                           const nn::TrainOptions& retrain) {
  local_test.check();
  DataflowMetrics metrics;
  metrics.dataflow = "edge_personalized";

  runtime::LocalTrainingResult trained = runtime::retrain_head_locally(
      cloud_model, local_train, edge_package, edge, retrain);
  metrics.accuracy = measure_accuracy(trained.model, local_test);

  std::size_t model_bytes = cloud_model.storage_bytes();
  hwsim::InferenceCost edge_cost =
      hwsim::estimate_inference(trained.model, edge_package, edge);

  metrics.setup_latency_s =
      link.transfer_time_s(model_bytes) + trained.simulated_latency_s;
  metrics.latency_per_inference_s = edge_cost.latency_s;
  metrics.bytes_per_inference =
      static_cast<double>(model_bytes) / static_cast<double>(local_test.size());
  metrics.energy_per_inference_j =
      edge_cost.energy_j +
      (link.transfer_energy_j(model_bytes) + trained.simulated_energy_j) /
          static_cast<double>(local_test.size());
  return metrics;
}

nn::Model federated_average(const std::vector<nn::Model>& models) {
  OPENEI_CHECK(!models.empty(), "federated_average of zero models");
  nn::Model average = models.front().clone();
  auto avg_params = average.parameters();

  for (std::size_t m = 1; m < models.size(); ++m) {
    nn::Model copy = models[m].clone();  // parameters() needs mutable access
    auto params = copy.parameters();
    OPENEI_CHECK(params.size() == avg_params.size(),
                 "federated models have different architectures");
    for (std::size_t p = 0; p < params.size(); ++p) {
      OPENEI_CHECK(params[p]->shape() == avg_params[p]->shape(),
                   "federated parameter ", p, " shape mismatch");
      *avg_params[p] += *params[p];
    }
  }
  float inv = 1.0F / static_cast<float>(models.size());
  for (nn::Tensor* p : avg_params) *p *= inv;
  return average;
}

FederatedRoundResult federated_round(const nn::Model& global_model,
                                     const std::vector<data::Dataset>& edge_shards,
                                     const std::vector<hwsim::DeviceProfile>& edges,
                                     const hwsim::PackageSpec& edge_package,
                                     const hwsim::NetworkLink& link,
                                     const nn::TrainOptions& retrain) {
  OPENEI_CHECK(!edge_shards.empty() && edge_shards.size() == edges.size(),
               "shard/device count mismatch");

  std::size_t model_bytes = global_model.storage_bytes();
  std::vector<nn::Model> locals;
  locals.reserve(edge_shards.size());
  double slowest = 0.0;

  for (std::size_t i = 0; i < edge_shards.size(); ++i) {
    nn::Model local = global_model.clone();
    nn::fit(local, edge_shards[i], retrain);  // full local fine-tuning
    hwsim::InferenceCost train_cost = hwsim::estimate_training(
        local, edge_package, edges[i], edge_shards[i].size(), retrain.epochs);
    double edge_time = link.transfer_time_s(model_bytes) +  // download
                       train_cost.latency_s +
                       link.transfer_time_s(model_bytes);  // upload
    slowest = std::max(slowest, edge_time);
    locals.push_back(std::move(local));
  }

  FederatedRoundResult result{federated_average(locals),
                              2 * model_bytes * edge_shards.size(), slowest};
  result.global_model.set_name(global_model.name());
  return result;
}

ResilientCloudEdge::ResilientCloudEdge(std::uint16_t cloud_port,
                                       std::string cloud_target_prefix,
                                       nn::Model local_fallback,
                                       const hwsim::PackageSpec& edge_package,
                                       const hwsim::DeviceProfile& edge_device,
                                       net::ResilientClient::Options options)
    : ResilientCloudEdge(cloud_port, std::move(cloud_target_prefix),
                         std::make_shared<runtime::InferenceSession>(
                             std::move(local_fallback), edge_package,
                             edge_device),
                         options) {}

ResilientCloudEdge::ResilientCloudEdge(
    std::uint16_t cloud_port, std::string cloud_target_prefix,
    std::shared_ptr<runtime::InferenceSession> local_fallback,
    net::ResilientClient::Options options)
    : cloud_(cloud_port, options),
      target_prefix_(std::move(cloud_target_prefix)),
      local_(std::move(local_fallback)),
      metrics_(options.metrics) {
  OPENEI_CHECK(local_ != nullptr, "local fallback session must not be null");
  OPENEI_CHECK(!target_prefix_.empty() && target_prefix_.front() == '/',
               "cloud target prefix must be an absolute path");
}

ResilientCloudEdge::ServeOutcome ResilientCloudEdge::classify(
    const std::string& input_rows) {
  obs::Span root;
  if (tracer_ != nullptr) root = tracer_->begin_trace("collab.classify");
  std::string target = target_prefix_ + "?input=" + common::uri_encode(input_rows);
  obs::Span cloud_span = root.child("collab.cloud_attempt");
  try {
    net::HttpResponse response = cloud_.get(target);
    if (cloud_span.active()) {
      cloud_span.set_attribute("status", static_cast<double>(response.status));
      cloud_span.set_attribute("outcome",
                               response.status < 500 ? "served" : "5xx");
    }
    if (response.status == 200) {
      ServeOutcome outcome;
      outcome.served_by = "cloud";
      outcome.status = response.status;
      common::Json doc = common::Json::parse(response.body);
      for (const common::Json& p : doc.at("predictions").as_array()) {
        outcome.predictions.push_back(
            static_cast<std::size_t>(p.as_number()));
      }
      ++cloud_served_;
      if (root.active()) {
        root.set_attribute("served_by", "cloud");
        outcome.trace_id = root.trace_id();
      }
      return outcome;
    }
    // 4xx would repeat locally too (bad input), so surface it; a residual
    // 5xx after the retry budget degrades to the local path below.
    if (response.status < 500) {
      ServeOutcome outcome;
      outcome.served_by = "cloud";
      outcome.status = response.status;
      if (root.active()) {
        root.set_attribute("served_by", "cloud");
        outcome.trace_id = root.trace_id();
      }
      return outcome;
    }
  } catch (const IoError& e) {
    // Timeout, refused/reset connection, or an open circuit breaker:
    // fall through to the local model.
    if (cloud_span.active()) {
      cloud_span.set_attribute("outcome", "transport_error");
      cloud_span.set_attribute("error", std::string(e.what()));
    }
  }
  cloud_span.finish();

  obs::Span fallback_span = root.child("collab.local_fallback");
  common::Json rows = common::Json::parse(input_rows);
  nn::Tensor batch =
      runtime::rows_to_batch(rows, local_->model().input_shape());
  runtime::InferenceResult result = local_->run(batch);
  if (fallback_span.active()) {
    fallback_span.set_attribute("model", local_->model().name());
    fallback_span.set_attribute("rows",
                                static_cast<double>(batch.shape().dim(0)));
    fallback_span.set_attribute("sim_latency_us",
                                result.batch_latency_s * 1e6);
    fallback_span.set_attribute("sim_energy_mj", result.batch_energy_j * 1e3);
  }
  ServeOutcome outcome;
  outcome.served_by = "local_fallback";
  outcome.status = 200;
  outcome.predictions = std::move(result.predictions);
  ++degraded_served_;
  if (metrics_) ++metrics_->degraded_serves;
  if (root.active()) {
    root.set_attribute("served_by", "local_fallback");
    outcome.trace_id = root.trace_id();
  }
  return outcome;
}

}  // namespace openei::collab
