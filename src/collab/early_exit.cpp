#include "collab/early_exit.h"

#include <cmath>

#include "collab/edge_edge.h"
#include "data/metrics.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "tensor/ops.h"

namespace openei::collab {

EarlyExitModel::EarlyExitModel(const nn::Model& model, std::size_t exit_layer,
                               std::size_t classes, common::Rng& rng)
    : model_(model.clone()),
      exit_layer_(exit_layer),
      classes_(classes),
      exit_head_("exit_head", model.shape_after(exit_layer)) {
  OPENEI_CHECK(exit_layer > 0 && exit_layer < model.layer_count(),
               "exit layer must be strictly inside the model");
  std::size_t features = model.shape_after(exit_layer).elements();
  if (model.shape_after(exit_layer).rank() > 1) {
    exit_head_.add(std::make_unique<nn::Flatten>());
  }
  exit_head_.add(std::make_unique<nn::Dense>(features, classes, rng));
}

nn::Tensor EarlyExitModel::exit_logits(const nn::Tensor& prefix_out, bool training) {
  return exit_head_.forward(prefix_out, training);
}

void EarlyExitModel::fit_exit(const data::Dataset& train,
                              const nn::TrainOptions& options) {
  train.check();
  // Precompute the frozen prefix features once, then train the head as a
  // standalone classifier on them.
  nn::Tensor features = model_.forward_prefix(train.features, exit_layer_);
  data::Dataset head_train{features, train.labels, train.classes};
  nn::fit(exit_head_, head_train, options);
}

EarlyExitModel::Result EarlyExitModel::run(const nn::Tensor& batch,
                                           float confidence_threshold) {
  OPENEI_CHECK(confidence_threshold >= 0.0F && confidence_threshold <= 1.0F,
               "confidence threshold outside [0, 1]");
  nn::Tensor prefix_out = model_.forward_prefix(batch, exit_layer_);
  nn::Tensor logits = exit_logits(prefix_out, false);
  nn::Tensor probabilities = tensor::softmax_rows(logits);

  std::size_t n = batch.shape().dim(0);
  Result result;
  result.predictions.resize(n);
  result.exited_locally.resize(n);

  // Escalated samples run the suffix; gather them into one sub-batch.
  std::vector<std::size_t> escalated;
  for (std::size_t i = 0; i < n; ++i) {
    float best = 0.0F;
    std::size_t arg = 0;
    for (std::size_t c = 0; c < classes_; ++c) {
      if (probabilities.at2(i, c) > best) {
        best = probabilities.at2(i, c);
        arg = c;
      }
    }
    if (best >= confidence_threshold) {
      result.predictions[i] = arg;
      result.exited_locally[i] = true;
    } else {
      escalated.push_back(i);
      result.exited_locally[i] = false;
    }
  }

  if (!escalated.empty()) {
    // Build the escalated activation sub-batch.
    std::size_t sample_elems = prefix_out.elements() / n;
    std::vector<std::size_t> dims = prefix_out.shape().dims();
    dims[0] = escalated.size();
    nn::Tensor sub{tensor::Shape(dims)};
    auto src = prefix_out.data();
    auto dst = sub.data();
    for (std::size_t j = 0; j < escalated.size(); ++j) {
      for (std::size_t e = 0; e < sample_elems; ++e) {
        dst[j * sample_elems + e] = src[escalated[j] * sample_elems + e];
      }
    }
    nn::Tensor suffix_logits = model_.forward_suffix(sub, exit_layer_);
    for (std::size_t j = 0; j < escalated.size(); ++j) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < suffix_logits.shape().dim(1); ++c) {
        if (suffix_logits.at2(j, c) > suffix_logits.at2(j, best)) best = c;
      }
      result.predictions[escalated[j]] = best;
    }
  }

  result.local_fraction =
      1.0 - static_cast<double>(escalated.size()) / static_cast<double>(n);
  return result;
}

std::size_t EarlyExitModel::escalation_bytes() const {
  return model_.shape_after(exit_layer_).elements() * sizeof(float);
}

EarlyExitMetrics evaluate_early_exit(EarlyExitModel& model,
                                     const data::Dataset& test,
                                     float confidence_threshold,
                                     const hwsim::PackageSpec& package,
                                     const hwsim::DeviceProfile& front,
                                     const hwsim::DeviceProfile& back,
                                     const hwsim::NetworkLink& link) {
  test.check();
  EarlyExitModel::Result result = model.run(test.features, confidence_threshold);

  EarlyExitMetrics metrics;
  metrics.accuracy = data::accuracy(result.predictions, test.labels);
  metrics.local_fraction = result.local_fraction;

  // Every sample pays the prefix on the front device; escalated samples add
  // the activation transfer plus the suffix on the back device.  (The tiny
  // linear exit head is folded into the prefix's per-op overhead.)
  std::size_t k = model.exit_layer();
  std::size_t depth = model.model().layer_count();
  double prefix_s = stage_latency(model.model(), 0, k, package, front);
  double escalation_s = link.transfer_time_s(model.escalation_bytes()) +
                        stage_latency(model.model(), k, depth, package, back);

  metrics.mean_latency_s =
      prefix_s + (1.0 - metrics.local_fraction) * escalation_s;

  // Baseline: full offload — every sample ships its raw input to the back.
  std::size_t input_bytes =
      test.features.elements() / test.size() * sizeof(float);
  metrics.offload_latency_s =
      link.transfer_time_s(input_bytes) +
      stage_latency(model.model(), 0, depth, package, back);
  metrics.mean_bytes_per_inference =
      (1.0 - metrics.local_fraction) *
      static_cast<double>(model.escalation_bytes());
  return metrics;
}

}  // namespace openei::collab
