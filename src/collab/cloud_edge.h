// Cloud-edge collaboration (paper Sec. II-C/II-D, Fig. 3).
//
// The three dataflows, each producing comparable per-inference metrics:
//   1. cloud inference  — edge uploads raw data, cloud runs the model,
//                         result comes back ("traditional machine
//                         intelligence");
//   2. edge inference   — the cloud-trained model is downloaded once and
//                         runs on the edge ("the current EI dataflow");
//   3. edge personalization — the edge retrains the model head on local
//                         data before inferring ("the future dataflow").
// Plus federated model combination: retrained edge models are uploaded and
// averaged into "a general and global model".
#pragma once

#include <cstdint>
#include <memory>

#include "data/dataset.h"
#include "hwsim/cost_model.h"
#include "hwsim/network.h"
#include "net/resilient_client.h"
#include "nn/train.h"
#include "obs/trace.h"
#include "runtime/inference.h"

namespace openei::collab {

/// Comparable outcome of serving `test` under one dataflow.
struct DataflowMetrics {
  std::string dataflow;
  double accuracy = 0.0;
  /// Mean end-to-end latency per inference (network + compute).
  double latency_per_inference_s = 0.0;
  /// Bytes crossing the edge-cloud link per inference (amortized setup
  /// included).
  double bytes_per_inference = 0.0;
  /// One-time setup latency (model download, local retraining).
  double setup_latency_s = 0.0;
  /// Edge-side energy per inference (radio + compute above idle).
  double energy_per_inference_j = 0.0;
};

/// Dataflow 1: per-sample upload to the cloud, inference there, result back.
DataflowMetrics dataflow_cloud_inference(const nn::Model& cloud_model,
                                         const data::Dataset& test,
                                         const hwsim::DeviceProfile& cloud,
                                         const hwsim::PackageSpec& cloud_package,
                                         const hwsim::NetworkLink& link);

/// Dataflow 2: one model download, then on-edge inference.
DataflowMetrics dataflow_edge_inference(const nn::Model& cloud_model,
                                        const data::Dataset& test,
                                        const hwsim::DeviceProfile& edge,
                                        const hwsim::PackageSpec& edge_package,
                                        const hwsim::NetworkLink& link);

/// Dataflow 3: model download + local head retraining on `local_train`,
/// then on-edge inference on `local_test`.
DataflowMetrics dataflow_edge_personalized(const nn::Model& cloud_model,
                                           const data::Dataset& local_train,
                                           const data::Dataset& local_test,
                                           const hwsim::DeviceProfile& edge,
                                           const hwsim::PackageSpec& edge_package,
                                           const hwsim::NetworkLink& link,
                                           const nn::TrainOptions& retrain);

/// Parameter-averages same-architecture models ("combined into a general
/// and global model").  Throws on architecture mismatch.
nn::Model federated_average(const std::vector<nn::Model>& models);

/// One cloud-edge federated round: every edge retrains a copy of `global_model`
/// on its local shard (full fine-tuning), uploads it, and the cloud averages.
struct FederatedRoundResult {
  nn::Model global_model;
  /// Bytes moved over the link (model down + up per edge).
  std::size_t bytes_transferred = 0;
  /// Wall-clock of the round: slowest edge (download + retrain + upload).
  double round_latency_s = 0.0;
};

FederatedRoundResult federated_round(const nn::Model& global_model,
                                     const std::vector<data::Dataset>& edge_shards,
                                     const std::vector<hwsim::DeviceProfile>& edges,
                                     const hwsim::PackageSpec& edge_package,
                                     const hwsim::NetworkLink& link,
                                     const nn::TrainOptions& retrain);

/// Graceful degradation for the cloud-inference dataflow (Fig. 3 dataflow 1
/// meeting Sec. IV-C availability): requests prefer the cloud replica's
/// richer model over libei, but when the cloud is unreachable — timeout,
/// transport failure, 5xx burst, or an *open circuit breaker* (fail-fast,
/// the link is not even tried) — the edge serves from a local (typically
/// compressed) fallback model instead of surfacing an error.  Every serve
/// reports which path produced it, and the degraded/cloud counters feed the
/// shared resilience sink so /ei_status exposes degraded-mode serving.
class ResilientCloudEdge {
 public:
  /// `cloud_target_prefix` is the cloud's algorithm route, e.g.
  /// "/ei_algorithms/safety/detection"; inference input is appended as the
  /// `input` query parameter.
  ResilientCloudEdge(std::uint16_t cloud_port, std::string cloud_target_prefix,
                     nn::Model local_fallback,
                     const hwsim::PackageSpec& edge_package,
                     const hwsim::DeviceProfile& edge_device,
                     net::ResilientClient::Options options = {});

  /// Shares an already-materialized fallback session — typically a lease
  /// from the node's runtime::SessionCache, so the degraded path reuses the
  /// warm resident session instead of cloning the model into a private one
  /// (and the lifecycle budget keeps governing its memory).
  ResilientCloudEdge(std::uint16_t cloud_port, std::string cloud_target_prefix,
                     std::shared_ptr<runtime::InferenceSession> local_fallback,
                     net::ResilientClient::Options options = {});

  struct ServeOutcome {
    /// "cloud" or "local_fallback".
    std::string served_by;
    std::vector<std::size_t> predictions;
    /// HTTP status of the serving path (local fallback serves 200).
    int status = 200;
    /// Id of the collab.classify trace (0 when tracing is off).
    std::uint64_t trace_id = 0;
  };

  /// Classifies `input_rows` (JSON rows, same wire format as libei's
  /// `input=` parameter).  Never throws on cloud failure — it degrades.
  ServeOutcome classify(const std::string& input_rows);

  /// Attaches a tracer: every classify() emits a collab.classify trace whose
  /// spans record which path served (cloud attempt vs local fallback).  The
  /// tracer must outlive this object; nullptr detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  std::uint64_t cloud_served() const { return cloud_served_; }
  std::uint64_t degraded_served() const { return degraded_served_; }
  net::CircuitState cloud_circuit_state() const {
    return cloud_.circuit_state();
  }
  const net::ResilientClient& cloud_client() const { return cloud_; }

 private:
  net::ResilientClient cloud_;
  std::string target_prefix_;
  std::shared_ptr<runtime::InferenceSession> local_;
  std::shared_ptr<net::ResilienceMetrics> metrics_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t cloud_served_ = 0;
  std::uint64_t degraded_served_ = 0;
};

}  // namespace openei::collab
