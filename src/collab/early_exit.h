// DDNN-style early-exit inference (Teerapittayanon et al. [17], cited in
// paper Sec. II-C as the exemplar of distributed cloud-edge DNNs).
//
// A small exit classifier is attached at an intermediate layer of the main
// model and trained on the frozen prefix's features.  At inference the
// front (edge) device computes the prefix + exit head; samples the exit is
// confident about are answered locally, the rest ship their intermediate
// activation to the back device, which runs the remaining layers.  The
// result: most inferences never leave the edge, and the ones that do get
// the full model's accuracy.
#pragma once

#include "hwsim/cost_model.h"
#include "hwsim/network.h"
#include "nn/train.h"

namespace openei::collab {

/// A model with one local exit at `exit_layer`.
class EarlyExitModel {
 public:
  /// Clones `model` and attaches an untrained linear exit head reading the
  /// flattened activation after layer `exit_layer`.
  EarlyExitModel(const nn::Model& model, std::size_t exit_layer,
                 std::size_t classes, common::Rng& rng);

  /// Trains only the exit head (prefix frozen) on `train`.
  void fit_exit(const data::Dataset& train, const nn::TrainOptions& options);

  /// Per-sample result of confidence-gated inference.
  struct Result {
    std::vector<std::size_t> predictions;
    /// true = answered by the local exit, false = escalated to the suffix.
    std::vector<bool> exited_locally;
    double local_fraction = 0.0;
  };

  /// Runs early-exit inference: exit locally when the exit head's max
  /// softmax probability >= `confidence_threshold`.
  Result run(const nn::Tensor& batch, float confidence_threshold);

  std::size_t exit_layer() const { return exit_layer_; }
  const nn::Model& model() const { return model_; }

  /// Bytes shipped per escalated sample (the intermediate activation).
  std::size_t escalation_bytes() const;

 private:
  nn::Tensor exit_logits(const nn::Tensor& prefix_out, bool training);

  nn::Model model_;
  std::size_t exit_layer_;
  std::size_t classes_;
  nn::Model exit_head_;  // flatten + dense on the prefix activation
};

/// Aggregate economics of an early-exit deployment.
struct EarlyExitMetrics {
  double accuracy = 0.0;
  double local_fraction = 0.0;
  /// Mean per-inference latency: front prefix+exit always, plus transfer +
  /// back suffix for escalated samples.
  double mean_latency_s = 0.0;
  /// All-on-back baseline latency (every sample ships its *input*).
  double offload_latency_s = 0.0;
  double mean_bytes_per_inference = 0.0;
};

EarlyExitMetrics evaluate_early_exit(EarlyExitModel& model,
                                     const data::Dataset& test,
                                     float confidence_threshold,
                                     const hwsim::PackageSpec& package,
                                     const hwsim::DeviceProfile& front,
                                     const hwsim::DeviceProfile& back,
                                     const hwsim::NetworkLink& link);

}  // namespace openei::collab
