// CloudTrainer — the cloud half of the Fig. 3 dataflows as a reusable API:
// "the models are usually trained on the cloud and then downloaded to the
// edge" (Sec. II-C).
//
// Training executes for real on the NN engine; the *cost* of training is
// accounted on the cloud device profile (simulated time/energy), and the
// trained model can be pushed to any live edge node's libei over HTTP.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "hwsim/cost_model.h"
#include "nn/train.h"

namespace openei::collab {

class CloudTrainer {
 public:
  /// `train`/`test` are the cloud's pooled corpus; the device/package pair
  /// is what the data center runs (defaults in cloud_trainer.cpp use the
  /// cloud-gpu profile + full framework).
  CloudTrainer(data::Dataset train, data::Dataset test,
               hwsim::DeviceProfile cloud_device,
               hwsim::PackageSpec cloud_package);

  struct TrainedModel {
    nn::Model model;
    double test_accuracy = 0.0;
    /// Simulated cloud-side cost of the training job.
    double training_latency_s = 0.0;
    double training_energy_j = 0.0;
  };

  /// Trains `model` on the pooled corpus (really) and accounts the cost on
  /// the cloud profile (simulated).
  TrainedModel train(nn::Model model, const nn::TrainOptions& options) const;

  /// Pushes a trained model to a live edge node (POST /ei_models on
  /// 127.0.0.1:`edge_port`) under (scenario, algorithm).  Throws IoError
  /// when the edge is unreachable and Error when it rejects the deployment.
  static void push_to_edge(std::uint16_t edge_port, const nn::Model& model,
                           const std::string& scenario,
                           const std::string& algorithm, double accuracy);

  const data::Dataset& test_set() const { return test_; }

 private:
  data::Dataset train_;
  data::Dataset test_;
  hwsim::DeviceProfile device_;
  hwsim::PackageSpec package_;
};

}  // namespace openei::collab
