// Edge-edge collaboration (paper Sec. II-C):
//   (1) "multiple edges work collaboratively to accomplish a compute-
//       intensive task ... allocated according to the computing power" —
//       power-proportional batch partitioning;
//   (2) DDNN-flavoured split inference [17]: a weak front edge runs the
//       model prefix next to the sensor, ships the (smaller) intermediate
//       activation to a strong edge that runs the suffix.
#pragma once

#include "hwsim/cost_model.h"
#include "hwsim/network.h"
#include "nn/model.h"

namespace openei::collab {

/// Splits `total_items` across workers proportionally to `compute_gflops`;
/// remainders go to the most powerful workers.  Sum of shares ==
/// total_items.
std::vector<std::size_t> partition_by_power(std::size_t total_items,
                                            const std::vector<double>& compute_gflops);

/// A compute-intensive batch job run collaboratively across edges.
struct CollaborativeBatchResult {
  std::vector<std::size_t> allocation;  // items per edge
  double makespan_s = 0.0;              // slowest edge finishes last
  /// Same job on the single fastest edge alone.
  double best_single_s = 0.0;
  double speedup() const {
    return makespan_s > 0.0 ? best_single_s / makespan_s : 0.0;
  }
};

CollaborativeBatchResult collaborative_batch(
    const nn::Model& model, const hwsim::PackageSpec& package,
    const std::vector<hwsim::DeviceProfile>& edges, std::size_t total_items);

/// Split inference between a weak front device and a strong back device.
struct SplitPoint {
  std::size_t layer = 0;  // front runs layers [0, layer)
  double latency_s = 0.0;  // front compute + activation transfer + back compute
  std::size_t transfer_bytes = 0;
};

/// Roofline latency of running layers [begin, end) of `model` on `device`
/// under `package` (per-layer dispatch overhead included).
double stage_latency(const nn::Model& model, std::size_t begin, std::size_t end,
                     const hwsim::PackageSpec& package,
                     const hwsim::DeviceProfile& device);

/// Latency of splitting at layer `k` (0 = everything on back, layer_count =
/// everything on front).
SplitPoint evaluate_split(const nn::Model& model, std::size_t k,
                          const hwsim::PackageSpec& package,
                          const hwsim::DeviceProfile& front,
                          const hwsim::DeviceProfile& back,
                          const hwsim::NetworkLink& link);

/// The latency-optimal split point over all k in [0, layer_count].
SplitPoint best_split(const nn::Model& model, const hwsim::PackageSpec& package,
                      const hwsim::DeviceProfile& front,
                      const hwsim::DeviceProfile& back,
                      const hwsim::NetworkLink& link);

/// Functional check: distributed prefix/suffix execution reproduces local
/// inference exactly (used by tests and the quickstart example).
nn::Tensor split_forward(nn::Model& front_copy, nn::Model& back_copy,
                         std::size_t k, const nn::Tensor& batch);

}  // namespace openei::collab
