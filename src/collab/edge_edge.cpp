#include "collab/edge_edge.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace openei::collab {

std::vector<std::size_t> partition_by_power(
    std::size_t total_items, const std::vector<double>& compute_gflops) {
  OPENEI_CHECK(!compute_gflops.empty(), "no workers to partition across");
  double total_power = 0.0;
  for (double p : compute_gflops) {
    OPENEI_CHECK(p > 0.0, "non-positive compute power");
    total_power += p;
  }

  std::vector<std::size_t> shares(compute_gflops.size(), 0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < compute_gflops.size(); ++i) {
    shares[i] = static_cast<std::size_t>(std::floor(
        static_cast<double>(total_items) * compute_gflops[i] / total_power));
    assigned += shares[i];
  }
  // Distribute the remainder to the most powerful workers first.
  std::vector<std::size_t> order(compute_gflops.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return compute_gflops[a] > compute_gflops[b];
  });
  for (std::size_t i = 0; assigned < total_items; ++i, ++assigned) {
    ++shares[order[i % order.size()]];
  }
  return shares;
}

CollaborativeBatchResult collaborative_batch(
    const nn::Model& model, const hwsim::PackageSpec& package,
    const std::vector<hwsim::DeviceProfile>& edges, std::size_t total_items) {
  OPENEI_CHECK(!edges.empty() && total_items > 0, "empty collaborative job");

  std::vector<double> powers;
  std::vector<double> per_item;
  powers.reserve(edges.size());
  for (const hwsim::DeviceProfile& edge : edges) {
    powers.push_back(edge.effective_gflops);
    per_item.push_back(hwsim::estimate_inference(model, package, edge).latency_s);
  }

  CollaborativeBatchResult result;
  result.allocation = partition_by_power(total_items, powers);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    result.makespan_s =
        std::max(result.makespan_s,
                 per_item[i] * static_cast<double>(result.allocation[i]));
  }
  double best = 1e300;
  for (double t : per_item) best = std::min(best, t);
  result.best_single_s = best * static_cast<double>(total_items);
  return result;
}

double stage_latency(const nn::Model& model, std::size_t begin, std::size_t end,
                     const hwsim::PackageSpec& package,
                     const hwsim::DeviceProfile& device) {
  OPENEI_CHECK(begin <= end && end <= model.layer_count(), "bad stage range");
  double total = 0.0;
  tensor::Shape shape = model.shape_after(begin);
  for (std::size_t i = begin; i < end; ++i) {
    double flops = static_cast<double>(model.layer(i).flops(shape));
    double compute_s = flops / (device.effective_gflops * 1e9);
    total += compute_s * package.kernel_efficiency_factor +
             package.per_op_overhead_s;
    shape = model.layer(i).output_shape(shape);
  }
  return total;
}

SplitPoint evaluate_split(const nn::Model& model, std::size_t k,
                          const hwsim::PackageSpec& package,
                          const hwsim::DeviceProfile& front,
                          const hwsim::DeviceProfile& back,
                          const hwsim::NetworkLink& link) {
  OPENEI_CHECK(k <= model.layer_count(), "split point beyond model depth");

  SplitPoint split;
  split.layer = k;
  split.transfer_bytes =
      k == model.layer_count()
          ? 16  // only the final class id crosses the link
          : model.shape_after(k).elements() * sizeof(float);
  split.latency_s = stage_latency(model, 0, k, package, front) +
                    link.transfer_time_s(split.transfer_bytes) +
                    stage_latency(model, k, model.layer_count(), package, back);
  return split;
}

SplitPoint best_split(const nn::Model& model, const hwsim::PackageSpec& package,
                      const hwsim::DeviceProfile& front,
                      const hwsim::DeviceProfile& back,
                      const hwsim::NetworkLink& link) {
  SplitPoint best;
  bool first = true;
  for (std::size_t k = 0; k <= model.layer_count(); ++k) {
    SplitPoint candidate = evaluate_split(model, k, package, front, back, link);
    if (first || candidate.latency_s < best.latency_s) {
      best = candidate;
      first = false;
    }
  }
  return best;
}

nn::Tensor split_forward(nn::Model& front_copy, nn::Model& back_copy,
                         std::size_t k, const nn::Tensor& batch) {
  nn::Tensor intermediate = front_copy.forward_prefix(batch, k);
  return back_copy.forward_suffix(intermediate, k);
}

}  // namespace openei::collab
