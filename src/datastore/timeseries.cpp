#include "datastore/timeseries.h"

#include <algorithm>

#include "common/error.h"

namespace openei::datastore {

SensorStore::SensorStore(std::size_t capacity_per_sensor)
    : capacity_(capacity_per_sensor) {
  OPENEI_CHECK(capacity_ > 0, "zero sensor capacity");
}

void SensorStore::register_sensor(const std::string& sensor_id) {
  OPENEI_CHECK(!sensor_id.empty(), "empty sensor id");
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.try_emplace(sensor_id);
}

void SensorStore::append(const std::string& sensor_id, Record record) {
  OPENEI_CHECK(!sensor_id.empty(), "empty sensor id");
  std::lock_guard<std::mutex> lock(mutex_);
  auto& ring = rings_[sensor_id];
  if (!ring.empty()) {
    OPENEI_CHECK(record.timestamp >= ring.back().timestamp,
                 "out-of-order append to sensor '", sensor_id, "': ",
                 record.timestamp, " < ", ring.back().timestamp);
  }
  ring.push_back(std::move(record));
  if (ring.size() > capacity_) ring.pop_front();
}

const std::deque<Record>& SensorStore::ring_of(const std::string& sensor_id) const {
  auto it = rings_.find(sensor_id);
  if (it == rings_.end()) {
    throw NotFound("unknown sensor '" + sensor_id + "'");
  }
  return it->second;
}

std::optional<Record> SensorStore::realtime(const std::string& sensor_id,
                                            double timestamp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& ring = ring_of(sensor_id);
  // Earliest record with t >= timestamp (records are time-sorted).
  auto it = std::lower_bound(ring.begin(), ring.end(), timestamp,
                             [](const Record& record, double t) {
                               return record.timestamp < t;
                             });
  if (it == ring.end()) return std::nullopt;
  return *it;
}

std::optional<Record> SensorStore::latest(const std::string& sensor_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& ring = ring_of(sensor_id);
  if (ring.empty()) return std::nullopt;
  return ring.back();
}

std::vector<Record> SensorStore::history(const std::string& sensor_id, double start,
                                         double end) const {
  OPENEI_CHECK(start <= end, "history range reversed: ", start, " > ", end);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& ring = ring_of(sensor_id);
  std::vector<Record> out;
  for (const Record& record : ring) {
    if (record.timestamp >= start && record.timestamp <= end) {
      out.push_back(record);
    }
  }
  return out;
}

SensorStore::Stats SensorStore::stats(const std::string& sensor_id, double start,
                                      double end) const {
  std::vector<Record> records = history(sensor_id, start, end);
  Stats out;
  out.count = records.size();
  if (records.empty()) return out;

  double sum = 0.0;
  out.min = records.front().payload.as_number();
  out.max = out.min;
  for (const Record& record : records) {
    double value = record.payload.as_number();  // throws on non-numeric
    sum += value;
    out.min = std::min(out.min, value);
    out.max = std::max(out.max, value);
  }
  out.mean = sum / static_cast<double>(records.size());
  double span = records.back().timestamp - records.front().timestamp;
  if (records.size() >= 2 && span > 0.0) {
    out.rate_hz = static_cast<double>(records.size() - 1) / span;
  }
  return out;
}

std::vector<std::string> SensorStore::sensors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(rings_.size());
  for (const auto& [id, ring] : rings_) out.push_back(id);
  return out;
}

std::size_t SensorStore::size(const std::string& sensor_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_of(sensor_id).size();
}

}  // namespace openei::datastore
