// Edge data store: per-sensor time-series storage behind libei's
// /ei_data/{realtime|history}/{sensor_id} resources (paper Fig. 6).
//
// "Realtime" queries return the freshest record(s) at or after a timestamp;
// "history" queries return a [start, end] range.  Each sensor keeps a
// bounded ring of records — edge devices cannot store unbounded video.
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"

namespace openei::datastore {

struct Record {
  double timestamp = 0.0;
  common::Json payload;  // sensor reading: scalar, vector, or frame features
};

class SensorStore {
 public:
  /// `capacity_per_sensor` bounds each sensor's ring buffer.
  explicit SensorStore(std::size_t capacity_per_sensor = 4096);

  /// Registers a sensor id; appending to an unregistered sensor auto-
  /// registers it, so this is mainly for declaring sensors up front.
  void register_sensor(const std::string& sensor_id);

  /// Appends a record; timestamps must be non-decreasing per sensor
  /// (out-of-order appends throw InvalidArgument).
  void append(const std::string& sensor_id, Record record);

  /// Most recent record at or after `timestamp` (the Fig. 6 realtime call:
  /// "get the video data from camera1 by timestamp").  For a timestamp in
  /// the past this is the earliest record >= timestamp; nullopt when the
  /// sensor has nothing that recent.
  std::optional<Record> realtime(const std::string& sensor_id,
                                 double timestamp) const;

  /// Latest record regardless of time; nullopt when empty.
  std::optional<Record> latest(const std::string& sensor_id) const;

  /// All records with start <= t <= end, in time order.
  std::vector<Record> history(const std::string& sensor_id, double start,
                              double end) const;

  /// Aggregate statistics over numeric payloads in [start, end] — the edge
  /// data-analysis primitive behind /ei_data/stats (dashboards poll a
  /// summary instead of pulling raw history over the network).
  struct Stats {
    std::size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Records per second across the covered span (0 when count < 2).
    double rate_hz = 0.0;
  };
  /// Throws InvalidArgument when a covered payload is not a number.
  Stats stats(const std::string& sensor_id, double start, double end) const;

  /// Registered sensor ids (sorted).
  std::vector<std::string> sensors() const;

  /// Record count for one sensor; throws NotFound for unknown sensors.
  std::size_t size(const std::string& sensor_id) const;

 private:
  const std::deque<Record>& ring_of(const std::string& sensor_id) const;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, std::deque<Record>> rings_;
};

}  // namespace openei::datastore
