// RAII TCP socket wrappers (loopback-oriented): the transport under libei's
// RESTful API.  No third-party networking — plain POSIX sockets.
#pragma once

#include <cstdint>
#include <string>

namespace openei::net {

/// Owning file-descriptor handle; closes on destruction, move-only.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle();
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept;
  FdHandle& operator=(FdHandle&& other) noexcept;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// A connected TCP stream.
class TcpConnection {
 public:
  explicit TcpConnection(FdHandle fd) : fd_(std::move(fd)) {}

  /// Reads up to `max_bytes`; returns bytes read (0 = peer closed).
  /// Throws IoError on failure.
  std::size_t read_some(char* buffer, std::size_t max_bytes);

  /// Writes the whole buffer; throws IoError on failure.
  void write_all(const char* data, std::size_t size);
  void write_all(const std::string& data) { write_all(data.data(), data.size()); }

  /// Sets a receive timeout so a stuck peer cannot hang a server worker.
  /// A blocked read past the deadline throws TimeoutError.
  void set_read_timeout(double seconds);

  /// Sets a send timeout (a peer that stops draining cannot hang a writer).
  void set_write_timeout(double seconds);

  /// Toggles O_NONBLOCK (the event-loop server runs every connection
  /// non-blocking; a fault-offload worker flips it back).
  void set_nonblocking(bool nonblocking);

  /// Disables Nagle's algorithm so small responses flush immediately.
  void set_nodelay(bool on);

  /// Non-blocking read: >0 bytes read, 0 peer closed, -1 would-block.
  /// Throws IoError on hard failures (reset...).
  std::ptrdiff_t read_nonblocking(char* buffer, std::size_t max_bytes);

  /// Non-blocking write: bytes written (possibly 0), or -1 would-block.
  /// Throws IoError on hard failures (EPIPE, reset...).
  std::ptrdiff_t write_nonblocking(const char* data, std::size_t size);

  /// The raw fd for readiness registration (ownership stays here).
  int native_handle() const { return fd_.get(); }

  bool valid() const { return fd_.valid(); }
  void close();

  /// Hard-closes with an RST (SO_LINGER 0) instead of an orderly FIN — the
  /// peer observes ECONNRESET.  Used by the fault injector to model
  /// mid-stream connection resets.
  void reset();

 private:
  FdHandle fd_;
};

/// Listening socket bound to 127.0.0.1.  Port 0 picks an ephemeral port.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);

  /// The actually bound port (useful with port 0).
  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection; throws IoError when the listener was
  /// shut down.
  TcpConnection accept_connection();

  /// Unblocks pending accept() calls (used for clean server shutdown).
  void shutdown();

  bool valid() const { return fd_.valid(); }

 private:
  FdHandle fd_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`; throws IoError on refusal and TimeoutError
/// when the connection cannot be established within `timeout_s`.  The
/// returned connection inherits `timeout_s` as its read/write timeout.
TcpConnection connect_local(std::uint16_t port, double timeout_s = 5.0);

}  // namespace openei::net
