// Readiness notification for the event-loop server and the bench_serving
// load generator: a thin RAII wrapper over epoll (Linux) with a poll(2)
// fallback elsewhere.
//
// Semantics the callers rely on:
//   - epoll backend registers edge-triggered (EPOLLET): a readable/writable
//     event fires once per state change, so callers MUST drain the fd until
//     EAGAIN before waiting again;
//   - poll backend is level-triggered: the same drain-until-EAGAIN loops are
//     correct there too (they just get harmless extra wakeups);
//   - `error` events fold in HUP/ERR — callers treat them as "read will
//     observe EOF or a hard error, close the connection".
#pragma once

#include <cstddef>
#include <vector>

#if defined(__linux__)
#include <sys/epoll.h>
#else
#include <poll.h>
#include <unordered_map>
#endif

namespace openei::net {

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// True when the backend delivers edge-triggered readiness (epoll).
  static constexpr bool edge_triggered() {
#if defined(__linux__)
    return true;
#else
    return false;
#endif
  }

  /// Registers `fd` for readiness; throws IoError on failure.
  void add(int fd, bool want_read, bool want_write);
  /// Changes the interest set of a registered fd.
  void modify(int fd, bool want_read, bool want_write);
  /// Deregisters a fd (must be called before closing it on the poll backend).
  void remove(int fd);

  /// Waits up to `timeout_ms` (-1 = forever) and fills `events` with ready
  /// fds.  Returns the number of events (0 on timeout).
  std::size_t wait(std::vector<Event>& events, int timeout_ms);

 private:
#if defined(__linux__)
  int epoll_fd_ = -1;
  std::vector<epoll_event> scratch_;
#else
  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;  // fd -> slot in fds_
#endif
};

}  // namespace openei::net
