// Deterministic fault injection for the transport layer.
//
// The paper's Sec. IV-C names "high availability ... failure avoidance" as a
// core edge-OS requirement; this module makes failure a first-class,
// *testable* input instead of something that only happens in production.  A
// FaultPlan is a seeded schedule of per-route fault rules that the in-process
// HttpServer consults once per request.  All randomness flows through
// common::Rng (no wall-clock entropy), so a given (seed, rule set, request
// sequence) reproduces the exact same fault schedule bit-for-bit — the
// property the fault-matrix tests and the faulted benchmarks rely on.
//
// Supported fault classes (what the client observes):
//   kRefuseConnection — server closes without responding (connection refused
//                       / dropped before any byte of the response);
//   kResetMidStream   — RST after the status line is partially written
//                       (ECONNRESET or a truncated head at the client);
//   kTruncateResponse — valid head, body cut short of Content-Length;
//   kSlowRead         — response dribbles out in small chunks with delays
//                       (a slow peer; trips client read deadlines);
//   kInjectDelay      — single added delay before the response (latency
//                       spike; trips overall request deadlines);
//   kErrorBurst       — handler bypassed, a 500/503 is served instead.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"

namespace openei::net {

enum class FaultKind {
  kNone,
  kRefuseConnection,
  kResetMidStream,
  kTruncateResponse,
  kSlowRead,
  kInjectDelay,
  kErrorBurst,
};

/// Human-readable fault-class name ("reset_mid_stream"...).
const char* to_string(FaultKind kind);

/// One scheduled fault.  A rule matches a request when the decoded path
/// starts with `path_prefix` (empty prefix = every route) and the rule's
/// per-rule match counter lies in [from_request, until_request).  A matching
/// rule then fires with `probability` (1.0 = always), drawn from the plan's
/// seeded RNG.
struct FaultRule {
  std::string path_prefix;  // "" matches all routes
  FaultKind kind = FaultKind::kNone;
  double probability = 1.0;
  /// Window over the rule's matched-request counter: the fault applies to
  /// the from-th..(until-1)-th requests that match the prefix.
  std::size_t from_request = 0;
  std::size_t until_request = std::numeric_limits<std::size_t>::max();
  /// Total delay for kSlowRead / kInjectDelay.
  double delay_s = 0.05;
  /// Status served by kErrorBurst (500 or 503).
  int status = 503;
};

/// Thread-safe deterministic fault schedule.  The server calls `next(path)`
/// once per parsed request; the decision advances per-rule counters and the
/// seeded RNG, so sequential request streams see a reproducible schedule.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0) : rng_(seed) {}

  /// Registers a rule; rules are consulted in insertion order and the first
  /// one that fires wins.
  FaultPlan& add(FaultRule rule);

  struct Decision {
    FaultKind kind = FaultKind::kNone;
    double delay_s = 0.0;
    int status = 503;
  };

  /// Decides the fault (if any) for the next request on `path`.
  Decision next(const std::string& path);

  /// Requests inspected so far.
  std::size_t request_count() const;
  /// Requests that had a fault injected.
  std::size_t injected_count() const;

 private:
  mutable std::mutex mutex_;
  common::Rng rng_;
  std::vector<FaultRule> rules_;
  std::vector<std::size_t> matches_;  // per-rule matched-request counters
  std::size_t requests_ = 0;
  std::size_t injected_ = 0;
};

}  // namespace openei::net
