#include "net/resilient_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/clock.h"
#include "common/error.h"

namespace openei::net {

const char* to_string(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed: return "closed";
    case CircuitState::kOpen: return "open";
    case CircuitState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

std::uint64_t ResilienceMetrics::register_breaker(
    std::function<BreakerSnapshot()> provider) {
  std::lock_guard<std::mutex> lock(breakers_mutex_);
  std::uint64_t token = next_breaker_token_++;
  breakers_[token] = std::move(provider);
  return token;
}

void ResilienceMetrics::unregister_breaker(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(breakers_mutex_);
  breakers_.erase(token);
}

std::vector<BreakerSnapshot> ResilienceMetrics::breaker_snapshots() const {
  // Providers are invoked under the registry lock: unregister_breaker (run
  // by a client's destructor) cannot return while a snapshot of that client
  // is still in flight, so the callbacks never touch a dead client.
  std::lock_guard<std::mutex> lock(breakers_mutex_);
  std::vector<BreakerSnapshot> out;
  out.reserve(breakers_.size());
  for (const auto& [token, provider] : breakers_) out.push_back(provider());
  return out;
}

common::Json ResilienceMetrics::to_json() const {
  common::Json out{common::JsonObject{}};
  out.set("attempts", attempts.load());
  out.set("successes", successes.load());
  out.set("retries", retries.load());
  out.set("timeouts", timeouts.load());
  out.set("transport_errors", transport_errors.load());
  out.set("server_errors", server_errors.load());
  out.set("breaker_opens", breaker_opens.load());
  out.set("breaker_rejections", breaker_rejections.load());
  out.set("failovers", failovers.load());
  out.set("failbacks", failbacks.load());
  out.set("degraded_serves", degraded_serves.load());
  out.set("open_breakers", open_breakers.load());
  common::JsonArray breakers;
  for (const BreakerSnapshot& snapshot : breaker_snapshots()) {
    common::Json row{common::JsonObject{}};
    row.set("endpoint", snapshot.endpoint);
    row.set("state", to_string(snapshot.state));
    row.set("consecutive_failures", snapshot.consecutive_failures);
    row.set("last_transition_unix_s", snapshot.last_transition_unix_s);
    breakers.push_back(std::move(row));
  }
  out.set("breakers", common::Json(std::move(breakers)));
  return out;
}

ResilientClient::ResilientClient(std::uint16_t port, Options options)
    : port_(port), options_(std::move(options)), jitter_rng_(options_.seed) {
  OPENEI_CHECK(options_.deadline_s > 0.0, "bad deadline ", options_.deadline_s);
  OPENEI_CHECK(options_.retry.max_attempts >= 1, "need at least one attempt");
  OPENEI_CHECK(options_.breaker.failure_threshold >= 1,
               "breaker threshold must be >= 1");
  if (options_.metrics) {
    breaker_token_ = options_.metrics->register_breaker(
        [this] { return breaker_state(); });
  }
}

ResilientClient::~ResilientClient() {
  // Unregister first: after this returns, the shared sink can no longer
  // snapshot this client.
  if (options_.metrics) {
    options_.metrics->unregister_breaker(breaker_token_);
  }
  // Keep the shared open-breaker gauge honest when a client dies while its
  // breaker is tripped.
  if (options_.metrics && state_ != CircuitState::kClosed) {
    --options_.metrics->open_breakers;
  }
}

HttpResponse ResilientClient::get(const std::string& target) {
  return request("GET", target, "", "");
}

HttpResponse ResilientClient::post(const std::string& target,
                                   const std::string& body,
                                   const std::string& content_type) {
  return request("POST", target, body, content_type);
}

HttpResponse ResilientClient::del(const std::string& target) {
  return request("DELETE", target, "", "");
}

CircuitState ResilientClient::circuit_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

BreakerSnapshot ResilientClient::breaker_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BreakerSnapshot snapshot;
  snapshot.endpoint = "127.0.0.1:" + std::to_string(port_);
  snapshot.state = state_;
  snapshot.consecutive_failures = consecutive_failures_;
  snapshot.last_transition_unix_s =
      static_cast<double>(last_transition_ns_) * 1e-9;
  return snapshot;
}

void ResilientClient::transition_to(CircuitState next) {
  if (state_ == next) return;
  state_ = next;
  last_transition_ns_ = common::wall_now_ns();
}

ResilientClient::Stats ResilientClient::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool ResilientClient::breaker_admits() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == CircuitState::kOpen) {
    if (common::wall_now_ns() < open_until_ns_) return false;
    transition_to(CircuitState::kHalfOpen);  // open window elapsed: one trial
  }
  return true;
}

void ResilientClient::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.successes;
  if (options_.metrics) ++options_.metrics->successes;
  if (state_ != CircuitState::kClosed && options_.metrics) {
    --options_.metrics->open_breakers;
  }
  transition_to(CircuitState::kClosed);
  consecutive_failures_ = 0;
}

void ResilientClient::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.failures;
  ++consecutive_failures_;
  std::int64_t reopen_at =
      common::wall_now_ns() +
      static_cast<std::int64_t>(options_.breaker.open_duration_s * 1e9);
  if (state_ == CircuitState::kHalfOpen) {
    transition_to(CircuitState::kOpen);  // trial failed: back to open
    open_until_ns_ = reopen_at;
  } else if (state_ == CircuitState::kClosed &&
             consecutive_failures_ >= options_.breaker.failure_threshold) {
    transition_to(CircuitState::kOpen);
    open_until_ns_ = reopen_at;
    if (options_.metrics) {
      ++options_.metrics->breaker_opens;
      ++options_.metrics->open_breakers;
    }
  }
}

double ResilientClient::backoff_for(std::size_t attempt) {
  const RetryPolicy& retry = options_.retry;
  double base = retry.initial_backoff_s *
                std::pow(retry.backoff_multiplier, static_cast<double>(attempt));
  base = std::min(base, retry.max_backoff_s);
  std::lock_guard<std::mutex> lock(mutex_);
  double jitter = jitter_rng_.uniform(1.0 - retry.jitter_fraction,
                                      1.0 + retry.jitter_fraction);
  return base * jitter;
}

HttpResponse ResilientClient::attempt_once(const std::string& method,
                                           const std::string& target,
                                           const std::string& body,
                                           const std::string& content_type,
                                           double budget_s) {
  HttpClient client(port_, budget_s);
  if (method == "GET") return client.get(target);
  if (method == "DELETE") return client.del(target);
  return client.post(target, body, content_type);
}

HttpResponse ResilientClient::request(const std::string& method,
                                      const std::string& target,
                                      const std::string& body,
                                      const std::string& content_type) {
  if (!breaker_admits()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.breaker_rejections;
    }
    if (options_.metrics) ++options_.metrics->breaker_rejections;
    throw CircuitOpenError("circuit open for 127.0.0.1:" +
                           std::to_string(port_) + " (" + method + ' ' +
                           target + ")");
  }

  common::Stopwatch elapsed;
  std::string last_error;
  bool last_was_timeout = false;
  for (std::size_t attempt = 0; attempt < options_.retry.max_attempts;
       ++attempt) {
    double remaining = options_.deadline_s - elapsed.elapsed_seconds();
    if (remaining <= 0.0) break;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.attempts;
      if (attempt > 0) ++stats_.retries;
    }
    if (options_.metrics) {
      ++options_.metrics->attempts;
      if (attempt > 0) ++options_.metrics->retries;
    }
    try {
      HttpResponse response =
          attempt_once(method, target, body, content_type, remaining);
      bool server_error = options_.retry_server_errors &&
                          (response.status == 500 || response.status == 503);
      if (!server_error) {
        record_success();
        return response;
      }
      record_failure();
      if (options_.metrics) ++options_.metrics->server_errors;
      last_error = "HTTP " + std::to_string(response.status);
      last_was_timeout = false;
      if (attempt + 1 == options_.retry.max_attempts) {
        return response;  // budget exhausted: surface the 5xx to the caller
      }
    } catch (const TimeoutError& e) {
      record_failure();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.timeouts;
      }
      if (options_.metrics) ++options_.metrics->timeouts;
      last_error = e.what();
      last_was_timeout = true;
    } catch (const IoError& e) {
      record_failure();
      if (options_.metrics) ++options_.metrics->transport_errors;
      last_error = e.what();
      last_was_timeout = false;
    }
    // Backoff only when another attempt will actually run: sleeping after
    // the final failure would hand the caller pure added latency, and the
    // sleep itself never extends past the end-to-end deadline.
    if (attempt + 1 < options_.retry.max_attempts) {
      double sleep_s =
          std::min(backoff_for(attempt),
                   options_.deadline_s - elapsed.elapsed_seconds());
      if (sleep_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      }
    }
  }

  std::string summary = method + ' ' + target + " to 127.0.0.1:" +
                        std::to_string(port_) + " failed after " +
                        std::to_string(options_.retry.max_attempts) +
                        " attempts within " +
                        std::to_string(options_.deadline_s) +
                        "s; last error: " + last_error;
  if (last_was_timeout || elapsed.elapsed_seconds() >= options_.deadline_s) {
    throw TimeoutError(summary);
  }
  throw IoError(summary);
}

bool ResilientClient::probe(const std::string& target) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.attempts;
  }
  if (options_.metrics) ++options_.metrics->attempts;
  try {
    HttpResponse response =
        attempt_once("GET", target, "", "", options_.deadline_s);
    if (options_.retry_server_errors &&
        (response.status == 500 || response.status == 503)) {
      record_failure();
      if (options_.metrics) ++options_.metrics->server_errors;
      return false;
    }
    record_success();
    return true;
  } catch (const TimeoutError&) {
    record_failure();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.timeouts;
    }
    if (options_.metrics) ++options_.metrics->timeouts;
    return false;
  } catch (const IoError&) {
    record_failure();
    if (options_.metrics) ++options_.metrics->transport_errors;
    return false;
  }
}

}  // namespace openei::net
