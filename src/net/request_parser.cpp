#include "net/request_parser.h"

#include "common/error.h"
#include "common/strings.h"

namespace openei::net {

using common::split;
using common::starts_with;
using common::to_lower;
using common::trim;

std::size_t content_length_of(const std::string& head,
                              std::size_t max_body_bytes) {
  std::size_t content_length = 0;
  for (const std::string& line : split(head, '\n')) {
    std::string lower = to_lower(trim(line));
    if (starts_with(lower, "content-length:")) {
      std::string value(trim(lower.substr(15)));
      try {
        content_length = static_cast<std::size_t>(std::stoull(value));
      } catch (const std::logic_error&) {
        throw ParseError("bad Content-Length '" + value + "'");
      }
    }
  }
  if (content_length > max_body_bytes) throw ParseError("HTTP body too large");
  return content_length;
}

bool wants_keep_alive(const HttpRequest& request) {
  std::string connection;
  if (auto it = request.headers.find("connection"); it != request.headers.end()) {
    connection = to_lower(it->second);
  }
  if (request.version == "HTTP/1.0") {
    return connection.find("keep-alive") != std::string::npos;
  }
  return connection.find("close") == std::string::npos;
}

void RequestParser::feed(const char* data, std::size_t size,
                         std::vector<HttpRequest>& out) {
  buffer_.append(data, size);
  while (true) {
    if (state_ == State::kHead) {
      // Resume the terminator scan where the last feed left off; back up 3
      // bytes so a "\r\n\r\n" split across the feed boundary is still found.
      std::size_t from = scan_ > 3 ? scan_ - 3 : 0;
      std::size_t terminator = buffer_.find("\r\n\r\n", from);
      if (terminator == std::string::npos) {
        if (buffer_.size() > limits_.max_head_bytes) {
          throw ParseError("HTTP head too large");
        }
        scan_ = buffer_.size();
        return;
      }
      head_ = buffer_.substr(0, terminator);
      buffer_.erase(0, terminator + 4);
      scan_ = 0;
      content_length_ = content_length_of(head_, limits_.max_body_bytes);
      state_ = State::kBody;
    }
    if (buffer_.size() < content_length_) return;  // body still arriving
    std::string body = buffer_.substr(0, content_length_);
    buffer_.erase(0, content_length_);
    // Assembled head + body go through the exact whole-buffer code path, so
    // fragmentation can never change a parse result.
    out.push_back(parse_request(head_, body));
    head_.clear();
    content_length_ = 0;
    state_ = State::kHead;
  }
}

}  // namespace openei::net
