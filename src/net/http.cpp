// Request/target parsing and the blocking HttpClient.  The server engines
// live in http_server.cpp.
#include "net/http.h"

#include <sstream>

#include "common/clock.h"
#include "common/error.h"
#include "common/strings.h"

namespace openei::net {

using common::split;
using common::starts_with;
using common::to_lower;
using common::trim;
using common::uri_decode;

void parse_target(const std::string& target, std::string& path,
                  std::map<std::string, std::string>& query) {
  std::string raw_path = target;
  std::string raw_query;
  if (auto pos = target.find('?'); pos != std::string::npos) {
    raw_path = target.substr(0, pos);
    raw_query = target.substr(pos + 1);
  }
  path = uri_decode(raw_path);
  query.clear();
  if (raw_query.empty()) return;
  for (const std::string& pair : split(raw_query, '&')) {
    if (pair.empty()) continue;
    auto eq = pair.find('=');
    if (eq == std::string::npos) {
      query[uri_decode(pair)] = "";
    } else {
      query[uri_decode(pair.substr(0, eq))] = uri_decode(pair.substr(eq + 1));
    }
  }
}

HttpRequest parse_request(const std::string& head, const std::string& body) {
  auto lines = split(head, '\n');
  OPENEI_CHECK(!lines.empty(), "empty HTTP head");
  // Request line: METHOD SP TARGET SP VERSION
  std::string request_line(trim(lines[0]));
  auto parts = split(request_line, ' ');
  if (parts.size() != 3) throw ParseError("malformed HTTP request line");
  if (!starts_with(parts[2], "HTTP/1.")) {
    throw ParseError("unsupported HTTP version '" + parts[2] + "'");
  }

  HttpRequest request;
  request.method = parts[0];
  request.version = parts[2];
  parse_target(parts[1], request.path, request.query);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line(trim(lines[i]));
    if (line.empty()) continue;
    auto colon = line.find(':');
    if (colon == std::string::npos) throw ParseError("malformed HTTP header");
    request.headers[to_lower(trim(line.substr(0, colon)))] =
        std::string(trim(line.substr(colon + 1)));
  }
  request.body = body;
  return request;
}

HttpResponse HttpClient::get(const std::string& target) {
  return request("GET", target, "", "");
}

HttpResponse HttpClient::post(const std::string& target, const std::string& body,
                              const std::string& content_type) {
  return request("POST", target, body, content_type);
}

HttpResponse HttpClient::del(const std::string& target) {
  return request("DELETE", target, "", "");
}

HttpResponse HttpClient::request(const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::string& content_type) {
  common::Stopwatch elapsed;
  TcpConnection connection = connect_local(port_, deadline_s_);
  std::ostringstream out;
  out << method << ' ' << target << " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (!body.empty()) {
    out << "Content-Type: " << content_type << "\r\nContent-Length: "
        << body.size() << "\r\n";
  }
  out << "Connection: close\r\n\r\n" << body;
  // The deadline is end-to-end, so the write phase only gets what the
  // connect left over — without this, connect and write each ran against
  // the full budget and a slow peer could stretch one attempt to ~2x the
  // deadline (which is exactly what broke retry sequences' deadline math).
  double write_budget = deadline_s_ - elapsed.elapsed_seconds();
  if (write_budget <= 0.0) {
    throw TimeoutError("HTTP " + method + ' ' + target +
                       " exceeded deadline of " + std::to_string(deadline_s_) +
                       "s during connect");
  }
  connection.set_write_timeout(write_budget);
  connection.write_all(out.str());

  // Read until the peer closes (Connection: close semantics).  The deadline
  // is end-to-end: a peer dribbling one byte per recv cannot stretch the
  // call past it, because the remaining budget shrinks on every read.
  std::string raw;
  char chunk[4096];
  while (true) {
    double remaining = deadline_s_ - elapsed.elapsed_seconds();
    if (remaining <= 0.0) {
      throw TimeoutError("HTTP " + method + ' ' + target +
                         " exceeded deadline of " +
                         std::to_string(deadline_s_) + "s");
    }
    connection.set_read_timeout(remaining);
    std::size_t n = connection.read_some(chunk, sizeof(chunk));
    if (n == 0) break;
    raw.append(chunk, n);
  }
  if (raw.empty()) {
    throw IoError("connection closed before any response byte (" + method +
                  ' ' + target + ")");
  }
  auto header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    throw IoError("truncated HTTP response head (" + method + ' ' + target + ")");
  }
  std::string head = raw.substr(0, header_end);

  HttpResponse response;
  auto lines = split(head, '\n');
  auto status_parts = split(std::string(trim(lines[0])), ' ');
  if (status_parts.size() < 2) throw ParseError("malformed HTTP status line");
  response.status = std::stoi(status_parts[1]);
  std::size_t expected_body = std::string::npos;
  for (const std::string& line : lines) {
    std::string lower = to_lower(trim(line));
    if (starts_with(lower, "content-type:")) {
      response.content_type = std::string(trim(lower.substr(13)));
    } else if (starts_with(lower, "content-length:")) {
      try {
        expected_body = static_cast<std::size_t>(
            std::stoull(std::string(trim(lower.substr(15)))));
      } catch (const std::logic_error&) {
        throw ParseError("bad Content-Length in response");
      }
    }
  }
  response.body = raw.substr(header_end + 4);
  if (expected_body != std::string::npos && response.body.size() < expected_body) {
    throw IoError("truncated HTTP response body: got " +
                  std::to_string(response.body.size()) + " of " +
                  std::to_string(expected_body) + " bytes");
  }
  return response;
}

}  // namespace openei::net
