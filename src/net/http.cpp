#include "net/http.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"

namespace openei::net {

using common::split;
using common::starts_with;
using common::to_lower;
using common::trim;
using common::uri_decode;

void parse_target(const std::string& target, std::string& path,
                  std::map<std::string, std::string>& query) {
  std::string raw_path = target;
  std::string raw_query;
  if (auto pos = target.find('?'); pos != std::string::npos) {
    raw_path = target.substr(0, pos);
    raw_query = target.substr(pos + 1);
  }
  path = uri_decode(raw_path);
  query.clear();
  if (raw_query.empty()) return;
  for (const std::string& pair : split(raw_query, '&')) {
    if (pair.empty()) continue;
    auto eq = pair.find('=');
    if (eq == std::string::npos) {
      query[uri_decode(pair)] = "";
    } else {
      query[uri_decode(pair.substr(0, eq))] = uri_decode(pair.substr(eq + 1));
    }
  }
}

HttpRequest parse_request(const std::string& head, const std::string& body) {
  auto lines = split(head, '\n');
  OPENEI_CHECK(!lines.empty(), "empty HTTP head");
  // Request line: METHOD SP TARGET SP VERSION
  std::string request_line(trim(lines[0]));
  auto parts = split(request_line, ' ');
  if (parts.size() != 3) throw ParseError("malformed HTTP request line");
  if (!starts_with(parts[2], "HTTP/1.")) {
    throw ParseError("unsupported HTTP version '" + parts[2] + "'");
  }

  HttpRequest request;
  request.method = parts[0];
  parse_target(parts[1], request.path, request.query);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line(trim(lines[i]));
    if (line.empty()) continue;
    auto colon = line.find(':');
    if (colon == std::string::npos) throw ParseError("malformed HTTP header");
    request.headers[to_lower(trim(line.substr(0, colon)))] =
        std::string(trim(line.substr(colon + 1)));
  }
  request.body = body;
  return request;
}

namespace {

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << ' ' << reason_for(response.status)
      << "\r\nContent-Type: " << response.content_type
      << "\r\nContent-Length: " << response.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << response.body;
  return out.str();
}

/// Reads one full request (head + Content-Length body) from the connection.
/// Returns false when the peer closed before sending anything.
bool read_request(TcpConnection& connection, std::string& head, std::string& body) {
  std::string buffer;
  char chunk[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    std::size_t n = connection.read_some(chunk, sizeof(chunk));
    if (n == 0) {
      if (buffer.empty()) return false;
      throw ParseError("connection closed mid-headers");
    }
    buffer.append(chunk, n);
    header_end = buffer.find("\r\n\r\n");
    if (buffer.size() > (1U << 20)) throw ParseError("HTTP head too large");
  }

  head = buffer.substr(0, header_end);
  std::string rest = buffer.substr(header_end + 4);

  // Content-Length (case-insensitive scan of the head).  Parsed defensively:
  // a non-numeric or absurdly large value is a 400, never an unhandled
  // exception or a worker stuck waiting for petabytes that will never come.
  std::size_t content_length = 0;
  for (const std::string& line : split(head, '\n')) {
    std::string lower = to_lower(trim(line));
    if (starts_with(lower, "content-length:")) {
      std::string value(trim(lower.substr(15)));
      try {
        content_length = static_cast<std::size_t>(std::stoull(value));
      } catch (const std::logic_error&) {
        throw ParseError("bad Content-Length '" + value + "'");
      }
    }
  }
  if (content_length > (64U << 20)) throw ParseError("HTTP body too large");

  while (rest.size() < content_length) {
    std::size_t n = connection.read_some(chunk, sizeof(chunk));
    if (n == 0) throw ParseError("connection closed mid-body");
    rest.append(chunk, n);
  }
  body = rest.substr(0, content_length);
  return true;
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : HttpServer(port, std::move(handler), Options{}) {}

HttpServer::HttpServer(std::uint16_t port, Handler handler, Options options)
    : listener_(port), handler_(std::move(handler)), options_(std::move(options)) {
  OPENEI_CHECK(handler_ != nullptr, "null HTTP handler");
  OPENEI_CHECK(options_.read_timeout_s > 0.0, "bad server read timeout");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  bool was_running = running_.exchange(false);
  if (!was_running) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain in-flight workers (they are detached; each signals on exit).
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [this] { return active_workers_ == 0; });
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    TcpConnection connection = [&]() -> TcpConnection {
      try {
        return listener_.accept_connection();
      } catch (const IoError&) {
        return TcpConnection(FdHandle{});  // listener shut down
      }
    }();
    if (!connection.valid()) break;
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      ++active_workers_;
    }
    std::thread([this](TcpConnection conn) {
      handle_connection(std::move(conn));
      std::lock_guard<std::mutex> lock(drain_mutex_);
      if (--active_workers_ == 0) drained_.notify_all();
    }, std::move(connection)).detach();
  }
}

void HttpServer::handle_connection(TcpConnection connection) {
  try {
    connection.set_read_timeout(options_.read_timeout_s);
    std::string head;
    std::string body;
    try {
      if (!read_request(connection, head, body)) return;
    } catch (const ParseError& e) {
      // Malformed framing (bad Content-Length, oversized head/body...): the
      // peer may still be listening, so answer 400 before closing.
      connection.write_all(serialize_response(HttpResponse::json(
          400, std::string(R"({"error":")") + e.what() + "\"}")));
      return;
    }

    FaultPlan::Decision decision;
    HttpResponse response;
    try {
      HttpRequest request = parse_request(head, body);
      if (options_.faults) decision = options_.faults->next(request.path);
      if (decision.kind == FaultKind::kRefuseConnection) {
        connection.close();  // dropped before a single response byte
        return;
      }
      if (decision.kind == FaultKind::kErrorBurst) {
        response = HttpResponse::json(
            decision.status, R"({"error":"injected fault: error burst"})");
      } else {
        response = handler_(request);
      }
    } catch (const ParseError& e) {
      response = HttpResponse::json(
          400, std::string(R"({"error":")") + e.what() + "\"}");
    } catch (const NotFound& e) {
      response = HttpResponse::json(
          404, std::string(R"({"error":")") + e.what() + "\"}");
    } catch (const std::exception& e) {
      response = HttpResponse::json(
          500, std::string(R"({"error":")") + e.what() + "\"}");
    }
    write_with_faults(connection, response, decision);
  } catch (const std::exception& e) {
    common::log_warn("http worker error: ", e.what());
  }
}

bool HttpServer::write_with_faults(TcpConnection& connection,
                                   const HttpResponse& response,
                                   const FaultPlan::Decision& decision) {
  std::string wire = serialize_response(response);
  switch (decision.kind) {
    case FaultKind::kResetMidStream: {
      // A few bytes of the status line escape, then a hard RST.
      connection.write_all(wire.data(), std::min<std::size_t>(wire.size(), 9));
      connection.reset();
      return false;
    }
    case FaultKind::kTruncateResponse: {
      std::size_t body_start = wire.size() - response.body.size();
      std::size_t keep = body_start + response.body.size() / 2;
      connection.write_all(wire.data(), keep);
      connection.close();  // Content-Length promises more than was sent
      return false;
    }
    case FaultKind::kSlowRead: {
      // Dribble the response out so the client experiences a slow read.
      constexpr std::size_t kChunk = 16;
      std::size_t chunks = (wire.size() + kChunk - 1) / kChunk;
      auto pause = std::chrono::duration<double>(
          decision.delay_s / static_cast<double>(std::max<std::size_t>(chunks, 1)));
      for (std::size_t offset = 0; offset < wire.size(); offset += kChunk) {
        std::this_thread::sleep_for(pause);
        connection.write_all(wire.data() + offset,
                             std::min(kChunk, wire.size() - offset));
      }
      return true;
    }
    case FaultKind::kInjectDelay:
      std::this_thread::sleep_for(std::chrono::duration<double>(decision.delay_s));
      [[fallthrough]];
    default:
      connection.write_all(wire);
      return true;
  }
}

HttpResponse HttpClient::get(const std::string& target) {
  return request("GET", target, "", "");
}

HttpResponse HttpClient::post(const std::string& target, const std::string& body,
                              const std::string& content_type) {
  return request("POST", target, body, content_type);
}

HttpResponse HttpClient::del(const std::string& target) {
  return request("DELETE", target, "", "");
}

HttpResponse HttpClient::request(const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::string& content_type) {
  common::Stopwatch elapsed;
  TcpConnection connection = connect_local(port_, deadline_s_);
  std::ostringstream out;
  out << method << ' ' << target << " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (!body.empty()) {
    out << "Content-Type: " << content_type << "\r\nContent-Length: "
        << body.size() << "\r\n";
  }
  out << "Connection: close\r\n\r\n" << body;
  // The deadline is end-to-end, so the write phase only gets what the
  // connect left over — without this, connect and write each ran against
  // the full budget and a slow peer could stretch one attempt to ~2x the
  // deadline (which is exactly what broke retry sequences' deadline math).
  double write_budget = deadline_s_ - elapsed.elapsed_seconds();
  if (write_budget <= 0.0) {
    throw TimeoutError("HTTP " + method + ' ' + target +
                       " exceeded deadline of " + std::to_string(deadline_s_) +
                       "s during connect");
  }
  connection.set_write_timeout(write_budget);
  connection.write_all(out.str());

  // Read until the peer closes (Connection: close semantics).  The deadline
  // is end-to-end: a peer dribbling one byte per recv cannot stretch the
  // call past it, because the remaining budget shrinks on every read.
  std::string raw;
  char chunk[4096];
  while (true) {
    double remaining = deadline_s_ - elapsed.elapsed_seconds();
    if (remaining <= 0.0) {
      throw TimeoutError("HTTP " + method + ' ' + target +
                         " exceeded deadline of " +
                         std::to_string(deadline_s_) + "s");
    }
    connection.set_read_timeout(remaining);
    std::size_t n = connection.read_some(chunk, sizeof(chunk));
    if (n == 0) break;
    raw.append(chunk, n);
  }
  if (raw.empty()) {
    throw IoError("connection closed before any response byte (" + method +
                  ' ' + target + ")");
  }
  auto header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    throw IoError("truncated HTTP response head (" + method + ' ' + target + ")");
  }
  std::string head = raw.substr(0, header_end);

  HttpResponse response;
  auto lines = split(head, '\n');
  auto status_parts = split(std::string(trim(lines[0])), ' ');
  if (status_parts.size() < 2) throw ParseError("malformed HTTP status line");
  response.status = std::stoi(status_parts[1]);
  std::size_t expected_body = std::string::npos;
  for (const std::string& line : lines) {
    std::string lower = to_lower(trim(line));
    if (starts_with(lower, "content-type:")) {
      response.content_type = std::string(trim(lower.substr(13)));
    } else if (starts_with(lower, "content-length:")) {
      try {
        expected_body = static_cast<std::size_t>(
            std::stoull(std::string(trim(lower.substr(15)))));
      } catch (const std::logic_error&) {
        throw ParseError("bad Content-Length in response");
      }
    }
  }
  response.body = raw.substr(header_end + 4);
  if (expected_body != std::string::npos && response.body.size() < expected_body) {
    throw IoError("truncated HTTP response body: got " +
                  std::to_string(response.body.size()) + " of " +
                  std::to_string(expected_body) + " bytes");
  }
  return response;
}

}  // namespace openei::net
