#include "net/http.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"

namespace openei::net {

using common::split;
using common::starts_with;
using common::to_lower;
using common::trim;
using common::uri_decode;

void parse_target(const std::string& target, std::string& path,
                  std::map<std::string, std::string>& query) {
  std::string raw_path = target;
  std::string raw_query;
  if (auto pos = target.find('?'); pos != std::string::npos) {
    raw_path = target.substr(0, pos);
    raw_query = target.substr(pos + 1);
  }
  path = uri_decode(raw_path);
  query.clear();
  if (raw_query.empty()) return;
  for (const std::string& pair : split(raw_query, '&')) {
    if (pair.empty()) continue;
    auto eq = pair.find('=');
    if (eq == std::string::npos) {
      query[uri_decode(pair)] = "";
    } else {
      query[uri_decode(pair.substr(0, eq))] = uri_decode(pair.substr(eq + 1));
    }
  }
}

HttpRequest parse_request(const std::string& head, const std::string& body) {
  auto lines = split(head, '\n');
  OPENEI_CHECK(!lines.empty(), "empty HTTP head");
  // Request line: METHOD SP TARGET SP VERSION
  std::string request_line(trim(lines[0]));
  auto parts = split(request_line, ' ');
  if (parts.size() != 3) throw ParseError("malformed HTTP request line");
  if (!starts_with(parts[2], "HTTP/1.")) {
    throw ParseError("unsupported HTTP version '" + parts[2] + "'");
  }

  HttpRequest request;
  request.method = parts[0];
  parse_target(parts[1], request.path, request.query);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line(trim(lines[i]));
    if (line.empty()) continue;
    auto colon = line.find(':');
    if (colon == std::string::npos) throw ParseError("malformed HTTP header");
    request.headers[to_lower(trim(line.substr(0, colon)))] =
        std::string(trim(line.substr(colon + 1)));
  }
  request.body = body;
  return request;
}

namespace {

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << ' ' << reason_for(response.status)
      << "\r\nContent-Type: " << response.content_type
      << "\r\nContent-Length: " << response.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << response.body;
  return out.str();
}

/// Reads one full request (head + Content-Length body) from the connection.
/// Returns false when the peer closed before sending anything.
bool read_request(TcpConnection& connection, std::string& head, std::string& body) {
  std::string buffer;
  char chunk[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    std::size_t n = connection.read_some(chunk, sizeof(chunk));
    if (n == 0) {
      if (buffer.empty()) return false;
      throw ParseError("connection closed mid-headers");
    }
    buffer.append(chunk, n);
    header_end = buffer.find("\r\n\r\n");
    if (buffer.size() > (1U << 20)) throw ParseError("HTTP head too large");
  }

  head = buffer.substr(0, header_end);
  std::string rest = buffer.substr(header_end + 4);

  // Content-Length (case-insensitive scan of the head).
  std::size_t content_length = 0;
  for (const std::string& line : split(head, '\n')) {
    std::string lower = to_lower(trim(line));
    if (starts_with(lower, "content-length:")) {
      content_length = static_cast<std::size_t>(
          std::stoull(std::string(trim(lower.substr(15)))));
    }
  }
  if (content_length > (64U << 20)) throw ParseError("HTTP body too large");

  while (rest.size() < content_length) {
    std::size_t n = connection.read_some(chunk, sizeof(chunk));
    if (n == 0) throw ParseError("connection closed mid-body");
    rest.append(chunk, n);
  }
  body = rest.substr(0, content_length);
  return true;
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : listener_(port), handler_(std::move(handler)) {
  OPENEI_CHECK(handler_ != nullptr, "null HTTP handler");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  bool was_running = running_.exchange(false);
  if (!was_running) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain in-flight workers (they are detached; each signals on exit).
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [this] { return active_workers_ == 0; });
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    TcpConnection connection = [&]() -> TcpConnection {
      try {
        return listener_.accept_connection();
      } catch (const IoError&) {
        return TcpConnection(FdHandle{});  // listener shut down
      }
    }();
    if (!connection.valid()) break;
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      ++active_workers_;
    }
    std::thread([this](TcpConnection conn) {
      handle_connection(std::move(conn));
      std::lock_guard<std::mutex> lock(drain_mutex_);
      if (--active_workers_ == 0) drained_.notify_all();
    }, std::move(connection)).detach();
  }
}

void HttpServer::handle_connection(TcpConnection connection) {
  try {
    connection.set_read_timeout(10.0);
    std::string head;
    std::string body;
    if (!read_request(connection, head, body)) return;

    HttpResponse response;
    try {
      HttpRequest request = parse_request(head, body);
      response = handler_(request);
    } catch (const ParseError& e) {
      response = HttpResponse::json(
          400, std::string(R"({"error":")") + e.what() + "\"}");
    } catch (const NotFound& e) {
      response = HttpResponse::json(
          404, std::string(R"({"error":")") + e.what() + "\"}");
    } catch (const std::exception& e) {
      response = HttpResponse::json(
          500, std::string(R"({"error":")") + e.what() + "\"}");
    }
    connection.write_all(serialize_response(response));
  } catch (const std::exception& e) {
    common::log_warn("http worker error: ", e.what());
  }
}

HttpResponse HttpClient::get(const std::string& target) {
  return request("GET", target, "", "");
}

HttpResponse HttpClient::post(const std::string& target, const std::string& body,
                              const std::string& content_type) {
  return request("POST", target, body, content_type);
}

HttpResponse HttpClient::request(const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::string& content_type) {
  TcpConnection connection = connect_local(port_);
  std::ostringstream out;
  out << method << ' ' << target << " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (!body.empty()) {
    out << "Content-Type: " << content_type << "\r\nContent-Length: "
        << body.size() << "\r\n";
  }
  out << "Connection: close\r\n\r\n" << body;
  connection.write_all(out.str());

  // Read until the peer closes (Connection: close semantics).
  std::string raw;
  char chunk[4096];
  while (true) {
    std::size_t n = connection.read_some(chunk, sizeof(chunk));
    if (n == 0) break;
    raw.append(chunk, n);
  }
  auto header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) throw ParseError("malformed HTTP response");
  std::string head = raw.substr(0, header_end);

  HttpResponse response;
  auto lines = split(head, '\n');
  auto status_parts = split(std::string(trim(lines[0])), ' ');
  if (status_parts.size() < 2) throw ParseError("malformed HTTP status line");
  response.status = std::stoi(status_parts[1]);
  for (const std::string& line : lines) {
    std::string lower = to_lower(trim(line));
    if (starts_with(lower, "content-type:")) {
      response.content_type = std::string(trim(lower.substr(13)));
    }
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace openei::net
