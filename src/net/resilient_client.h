// Resilient HTTP transport: deadlines, a retry budget with exponential
// backoff + deterministic jitter, and a per-endpoint circuit breaker
// (closed -> open -> half-open with probe requests).
//
// This is the client half of the Sec. IV-C availability story: callers get a
// bounded worst-case latency (the deadline), transient faults are absorbed
// (retries), and a persistently failing endpoint is not hammered (the
// breaker fails fast with CircuitOpenError until a probe succeeds).  All
// jitter flows through common::Rng, so a seeded client produces a
// reproducible backoff schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "net/http.h"

namespace openei::net {

/// Retry budget for one logical request.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  std::size_t max_attempts = 3;
  double initial_backoff_s = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 0.5;
  /// Backoff is scaled by a deterministic factor in [1-j, 1+j].
  double jitter_fraction = 0.2;
};

/// Consecutive-failure circuit breaker parameters.
struct CircuitBreakerPolicy {
  /// Consecutive failures that trip the breaker open.
  std::size_t failure_threshold = 3;
  /// How long the breaker stays open before allowing a half-open trial.
  double open_duration_s = 0.25;
};

enum class CircuitState { kClosed, kOpen, kHalfOpen };

const char* to_string(CircuitState state);

/// Point-in-time view of one endpoint's circuit breaker — what /ei_status
/// and /ei_fleet report so fleet failover can be debugged instead of
/// guessed at from aggregate counters.
struct BreakerSnapshot {
  std::string endpoint;  // "127.0.0.1:<port>"
  CircuitState state = CircuitState::kClosed;
  std::size_t consecutive_failures = 0;
  /// Wall-clock seconds of the last state transition; 0 until the breaker
  /// first changes state.
  double last_transition_unix_s = 0.0;
};

/// Shared resilience counters.  Several clients (and a FailoverClient, and a
/// degrading cloud-edge path) can feed one sink, which libei's /ei_status
/// reports so the fleet can observe how the node's transport is coping.
struct ResilienceMetrics {
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> successes{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> transport_errors{0};
  std::atomic<std::uint64_t> server_errors{0};
  std::atomic<std::uint64_t> breaker_opens{0};
  std::atomic<std::uint64_t> breaker_rejections{0};
  std::atomic<std::uint64_t> failovers{0};
  std::atomic<std::uint64_t> failbacks{0};
  std::atomic<std::uint64_t> degraded_serves{0};
  /// Gauge: breakers currently open (or half-open) across attached clients.
  std::atomic<std::int64_t> open_breakers{0};

  /// Per-endpoint breaker visibility: every ResilientClient wired to this
  /// sink registers a snapshot provider on construction and unregisters on
  /// destruction, so to_json() can emit live closed/open/half-open state per
  /// endpoint ("breakers" array) next to the aggregate counters.
  std::uint64_t register_breaker(std::function<BreakerSnapshot()> provider);
  void unregister_breaker(std::uint64_t token);
  std::vector<BreakerSnapshot> breaker_snapshots() const;

  common::Json to_json() const;

 private:
  mutable std::mutex breakers_mutex_;
  std::uint64_t next_breaker_token_ = 1;
  std::map<std::uint64_t, std::function<BreakerSnapshot()>> breakers_;
};

/// HttpClient wrapper adding deadline + retries + circuit breaking for one
/// endpoint (127.0.0.1:port).  Thread-safe.
class ResilientClient {
 public:
  struct Options {
    /// End-to-end budget per logical request, spanning all attempts and
    /// backoff sleeps.  No call blocks longer than this.
    double deadline_s = 2.0;
    RetryPolicy retry{};
    CircuitBreakerPolicy breaker{};
    /// Treat 500/503 responses as failures: they count toward the breaker
    /// and are retried.  Other application statuses (4xx) pass through.
    bool retry_server_errors = true;
    /// Seed for the deterministic backoff jitter.
    std::uint64_t seed = 42;
    /// Optional shared counter sink (e.g. an EdgeNode's resilience metrics).
    std::shared_ptr<ResilienceMetrics> metrics;
  };

  explicit ResilientClient(std::uint16_t port) : ResilientClient(port, Options{}) {}
  ResilientClient(std::uint16_t port, Options options);
  ~ResilientClient();
  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// GET/POST with the full resilience pipeline.  Returns the response
  /// (including 4xx/5xx after the retry budget is exhausted); throws
  /// CircuitOpenError when the breaker rejects the call, TimeoutError when
  /// the deadline expires, IoError when every attempt failed in transport.
  HttpResponse get(const std::string& target);
  HttpResponse post(const std::string& target, const std::string& body,
                    const std::string& content_type = "application/json");
  HttpResponse del(const std::string& target);

  /// Single no-retry attempt that bypasses an open breaker (a half-open
  /// trial).  Returns true when the endpoint answered with a non-5xx status;
  /// updates the breaker either way.  Used by failover clients to
  /// health-probe a recovered replica without waiting out the open window.
  bool probe(const std::string& target);

  CircuitState circuit_state() const;
  /// Full breaker snapshot: state, consecutive failures, last transition.
  BreakerSnapshot breaker_state() const;
  std::uint16_t endpoint_port() const { return port_; }
  const Options& options() const { return options_; }

  /// Per-client counters (the shared sink aggregates across clients).
  struct Stats {
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;
    std::uint64_t breaker_rejections = 0;
  };
  Stats stats() const;

 private:
  HttpResponse request(const std::string& method, const std::string& target,
                       const std::string& body, const std::string& content_type);
  HttpResponse attempt_once(const std::string& method, const std::string& target,
                            const std::string& body,
                            const std::string& content_type, double budget_s);
  /// True when the breaker admits a request right now (may flip open ->
  /// half-open when the open window has elapsed).
  bool breaker_admits();
  void record_success();
  void record_failure();
  double backoff_for(std::size_t attempt);

  std::uint16_t port_;
  Options options_;

  /// Sets state_ and stamps the transition time (caller holds mutex_).
  void transition_to(CircuitState next);

  mutable std::mutex mutex_;
  common::Rng jitter_rng_;
  CircuitState state_ = CircuitState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::int64_t open_until_ns_ = 0;
  std::int64_t last_transition_ns_ = 0;  // 0 = never transitioned
  Stats stats_;
  std::uint64_t breaker_token_ = 0;  // registration in the shared sink
};

}  // namespace openei::net
