#include "net/faults.h"

#include "common/error.h"
#include "common/strings.h"

namespace openei::net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kRefuseConnection: return "refuse_connection";
    case FaultKind::kResetMidStream: return "reset_mid_stream";
    case FaultKind::kTruncateResponse: return "truncate_response";
    case FaultKind::kSlowRead: return "slow_read";
    case FaultKind::kInjectDelay: return "inject_delay";
    case FaultKind::kErrorBurst: return "error_burst";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add(FaultRule rule) {
  OPENEI_CHECK(rule.probability >= 0.0 && rule.probability <= 1.0,
               "fault probability out of [0,1]: ", rule.probability);
  OPENEI_CHECK(rule.delay_s >= 0.0, "negative fault delay ", rule.delay_s);
  OPENEI_CHECK(rule.from_request <= rule.until_request,
               "fault window reversed");
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(std::move(rule));
  matches_.push_back(0);
  return *this;
}

FaultPlan::Decision FaultPlan::next(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++requests_;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (!common::starts_with(path, rule.path_prefix)) continue;
    std::size_t match_index = matches_[i]++;
    if (match_index < rule.from_request || match_index >= rule.until_request) {
      continue;
    }
    // Deterministic draw: always consume one uniform even for p=1 so the
    // schedule does not depend on which rules have certain probabilities.
    if (rng_.uniform() >= rule.probability) continue;
    ++injected_;
    return Decision{rule.kind, rule.delay_s, rule.status};
  }
  return Decision{};
}

std::size_t FaultPlan::request_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

std::size_t FaultPlan::injected_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

}  // namespace openei::net
