// Incremental, pipelining-aware HTTP/1.1 request parser.
//
// The event-loop server feeds whatever bytes a socket read produced —
// requests split at arbitrary boundaries, or several pipelined requests in
// one read — and the parser emits every request that completed.  Framing
// state (head-terminator scan position, pending Content-Length) persists
// across feeds, so a request fragmented into N reads costs one scan of each
// byte, not N rescans of the buffer.
//
// The parse result is bit-identical to the whole-buffer path: once a
// request's head and body are assembled the parser delegates to
// parse_request(), which is the invariant the fragmentation property suite
// in test_properties.cpp pins down.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/http.h"

namespace openei::net {

class RequestParser {
 public:
  struct Limits {
    /// A head that exceeds this without terminating is a ParseError (the
    /// same 1 MiB bound the blocking server enforced).
    std::size_t max_head_bytes = 1U << 20;
    /// Declared Content-Length above this is a ParseError (64 MiB bound).
    std::size_t max_body_bytes = 64U << 20;
  };

  RequestParser() = default;
  explicit RequestParser(Limits limits) : limits_(limits) {}

  /// Consumes `size` bytes and appends every request they completed to
  /// `out` (possibly none, possibly several).  Throws ParseError on
  /// malformed framing or content; the connection is then unrecoverable
  /// (framing is lost) and must be closed after an error response.
  void feed(const char* data, std::size_t size, std::vector<HttpRequest>& out);

  /// True when bytes of an incomplete request are buffered (an EOF now
  /// would cut a request mid-flight).
  bool mid_request() const { return state_ != State::kHead || !buffer_.empty(); }

  /// Bytes currently buffered (diagnostics / backpressure accounting).
  std::size_t buffered_bytes() const { return buffer_.size() + head_.size(); }

 private:
  enum class State { kHead, kBody };

  Limits limits_;
  State state_ = State::kHead;
  std::string buffer_;  // unconsumed input
  std::size_t scan_ = 0;  // resume offset for the "\r\n\r\n" search
  std::string head_;      // completed head while the body accumulates
  std::size_t content_length_ = 0;
};

/// Whether the request asks to keep the connection open after the response:
/// HTTP/1.1 defaults to keep-alive unless "Connection: close"; HTTP/1.0
/// requires an explicit "Connection: keep-alive".
bool wants_keep_alive(const HttpRequest& request);

/// Parses the Content-Length named in `head` (0 when absent).  Throws
/// ParseError on a non-numeric or out-of-range value, or one above
/// `max_body_bytes`.  Shared by the incremental parser and the client.
std::size_t content_length_of(const std::string& head,
                              std::size_t max_body_bytes);

}  // namespace openei::net
