// HTTP/1.1 server and client over the TCP substrate.
//
// Scope: what libei's RESTful API needs — GET/POST/DELETE, headers, query
// strings, Content-Length bodies — plus the serving concerns the "millions
// of users" claim needs to be measurable: keep-alive connection reuse,
// pipelined requests, and a non-blocking event-loop engine.  Strict parsing
// with ParseError on malformed input; the server answers 400 instead of
// crashing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/faults.h"
#include "net/socket.h"

namespace openei::net {

struct HttpRequest {
  std::string method;  // "GET", "POST"...
  std::string path;    // decoded path without query ("/ei_data/realtime/cam1")
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
  std::string version = "HTTP/1.1";  // as sent; drives keep-alive defaults
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse json(int status, const std::string& body) {
    return HttpResponse{status, "application/json", body};
  }
};

/// Parses "GET /path?a=1 HTTP/1.1" request text (headers + body already
/// assembled).  Exposed for tests.
HttpRequest parse_request(const std::string& head, const std::string& body);

/// Splits a raw target into decoded path + query map.  Exposed for routing.
void parse_target(const std::string& target, std::string& path,
                  std::map<std::string, std::string>& query);

/// Monotonic serving counters, snapshotted by HttpServer::stats() (and
/// surfaced as the "serving" block of GET /ei_status when a node wires the
/// server into its libei service).
struct ServerStats {
  std::string engine;  // "event_loop" or "thread_per_connection"
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over the concurrent-connection cap
  std::uint64_t requests_served = 0;       // responses fully queued/written
  std::uint64_t keepalive_reuses = 0;      // requests beyond a conn's first
  std::uint64_t idle_closed = 0;           // keep-alive conns reaped as idle
  std::uint64_t deadline_closed = 0;       // mid-request read deadline hits
  std::uint64_t parse_errors = 0;          // 400s from framing/parse errors
  std::uint64_t open_connections = 0;      // currently open (gauge)
  std::uint64_t peak_connections = 0;      // high-water mark of the gauge
};

/// HTTP server with two interchangeable engines behind one contract
/// (routing, FaultPlan injection, deadlines, 400-on-malformed, graceful
/// drain on stop()):
///
///   - event loop (default): a small fixed pool of non-blocking event-loop
///     threads multiplexes every connection (epoll on Linux, poll
///     elsewhere).  Keep-alive reuse, pipelined parsing out of
///     per-connection buffers, responses serialized straight into
///     per-connection output buffers with EAGAIN backpressure, idle-timeout
///     reaping, and a hard cap on concurrent connections.
///
///   - thread-per-connection (legacy): the original blocking
///     accept-then-spawn model, kept as the measured baseline for
///     bench_serving and for A/B experiments.  One short-lived worker per
///     connection, one request per connection, bounded by
///     max_connection_threads (accepting pauses at the cap so an accept
///     flood queues in the listen backlog instead of exhausting memory).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// Per-request read deadline: once a request's first byte arrives, the
    /// whole request must arrive within this (a slow-dribbling client
    /// cannot pin the connection mid-request past it).
    double read_timeout_s = 10.0;
    /// Keep-alive idle deadline: a connection with no request in flight and
    /// nothing left to write is closed after this (slow-loris reaping).
    /// Only the event-loop engine keeps idle connections at all.
    double idle_timeout_s = 30.0;
    /// Event-loop pool size; 0 = auto (half the hardware threads, 1..4).
    std::size_t event_loop_threads = 0;
    /// Concurrent-connection cap for the event-loop engine: connections
    /// beyond it are answered 503 and closed at accept time.
    std::size_t max_connections = 4096;
    /// Selects the legacy blocking engine (bench baseline / A-B runs).
    bool thread_per_connection = false;
    /// Worker-thread cap for the legacy engine: accepting pauses while this
    /// many connection workers are live, so an accept flood is bounded by
    /// the listen backlog, not by memory.
    std::size_t max_connection_threads = 128;
    /// Optional deterministic fault schedule consulted once per request
    /// (after parsing, before the handler).  Shared so tests/benchmarks can
    /// inspect the plan's counters while the server runs.
    std::shared_ptr<FaultPlan> faults;
  };

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving `handler`.
  /// Exceptions from the handler become 500 responses; ParseError becomes 400;
  /// NotFound becomes 404.
  HttpServer(std::uint16_t port, Handler handler);
  HttpServer(std::uint16_t port, Handler handler, Options options);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const;

  /// Stops accepting, drains in-flight requests (parsed requests finish and
  /// their responses flush; connections idle or mid-request are closed),
  /// and joins every engine thread.  Idempotent.
  void stop();

  /// Snapshot of the serving counters (monotonic except open_connections).
  ServerStats stats() const;

  /// Engine internals (event loop / legacy worker pool); out-of-line so the
  /// header stays free of epoll/poll details.
  class Core;

 private:
  std::unique_ptr<Core> core_;
};

/// Blocking single-request client with an end-to-end deadline: connect,
/// write, and the whole response read must complete within `deadline_s`, so
/// a dead-but-accepting or slow-dribbling peer cannot hang the caller.
/// Throws TimeoutError past the deadline and IoError on transport failures
/// (connection refused/reset, truncated response).
class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port, double deadline_s = 5.0)
      : port_(port), deadline_s_(deadline_s) {}

  /// `target` is a raw path+query, e.g. "/ei_data/realtime/cam1?timestamp=5".
  HttpResponse get(const std::string& target);
  HttpResponse post(const std::string& target, const std::string& body,
                    const std::string& content_type = "application/json");
  HttpResponse del(const std::string& target);

  std::uint16_t port() const { return port_; }
  double deadline_s() const { return deadline_s_; }

 private:
  HttpResponse request(const std::string& method, const std::string& target,
                       const std::string& body, const std::string& content_type);

  std::uint16_t port_;
  double deadline_s_;
};

}  // namespace openei::net
