// Minimal HTTP/1.1 server and client over the TCP substrate.
//
// Scope: what libei's RESTful API needs — GET/POST, headers, query strings,
// Content-Length bodies, connection-per-request.  Strict parsing with
// ParseError on malformed input; the server answers 400 instead of crashing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/faults.h"
#include "net/socket.h"

namespace openei::net {

struct HttpRequest {
  std::string method;  // "GET", "POST"...
  std::string path;    // decoded path without query ("/ei_data/realtime/cam1")
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse json(int status, const std::string& body) {
    return HttpResponse{status, "application/json", body};
  }
};

/// Parses "GET /path?a=1 HTTP/1.1" request text (headers + body already
/// assembled).  Exposed for tests.
HttpRequest parse_request(const std::string& head, const std::string& body);

/// Splits a raw target into decoded path + query map.  Exposed for routing.
void parse_target(const std::string& target, std::string& path,
                  std::map<std::string, std::string>& query);

/// Blocking HTTP server: accept loop on its own thread, one short-lived
/// detached worker per connection (requests are small); stop() drains all
/// in-flight workers before returning.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// Per-recv deadline while reading a request: a stalled or silent client
    /// cannot pin a worker thread past this.
    double read_timeout_s = 10.0;
    /// Optional deterministic fault schedule consulted once per request
    /// (after parsing, before the handler).  Shared so tests/benchmarks can
    /// inspect the plan's counters while the server runs.
    std::shared_ptr<FaultPlan> faults;
  };

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving `handler`.
  /// Exceptions from the handler become 500 responses; ParseError becomes 400;
  /// NotFound becomes 404.
  HttpServer(std::uint16_t port, Handler handler);
  HttpServer(std::uint16_t port, Handler handler, Options options);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Stops accepting and joins all threads (idempotent).
  void stop();

 private:
  void accept_loop();
  void handle_connection(TcpConnection connection);
  /// Writes `response` subject to the fault `decision` (truncation, resets,
  /// slow chunked writes...).  Returns false when the connection was
  /// deliberately killed instead of served.
  bool write_with_faults(TcpConnection& connection, const HttpResponse& response,
                         const FaultPlan::Decision& decision);

  TcpListener listener_;
  Handler handler_;
  Options options_;
  std::atomic<bool> running_{true};
  std::thread accept_thread_;
  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::size_t active_workers_ = 0;  // guarded by drain_mutex_
};

/// Blocking single-request client with an end-to-end deadline: connect,
/// write, and the whole response read must complete within `deadline_s`, so
/// a dead-but-accepting or slow-dribbling peer cannot hang the caller.
/// Throws TimeoutError past the deadline and IoError on transport failures
/// (connection refused/reset, truncated response).
class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port, double deadline_s = 5.0)
      : port_(port), deadline_s_(deadline_s) {}

  /// `target` is a raw path+query, e.g. "/ei_data/realtime/cam1?timestamp=5".
  HttpResponse get(const std::string& target);
  HttpResponse post(const std::string& target, const std::string& body,
                    const std::string& content_type = "application/json");
  HttpResponse del(const std::string& target);

  std::uint16_t port() const { return port_; }
  double deadline_s() const { return deadline_s_; }

 private:
  HttpResponse request(const std::string& method, const std::string& target,
                       const std::string& body, const std::string& content_type);

  std::uint16_t port_;
  double deadline_s_;
};

}  // namespace openei::net
