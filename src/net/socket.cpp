#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/error.h"

namespace openei::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

timeval to_timeval(double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  return tv;
}

}  // namespace

FdHandle::~FdHandle() {
  if (fd_ >= 0) ::close(fd_);
}

FdHandle::FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int FdHandle::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

std::size_t TcpConnection::read_some(char* buffer, std::size_t max_bytes) {
  OPENEI_CHECK(fd_.valid(), "read on closed connection");
  ssize_t n = ::recv(fd_.get(), buffer, max_bytes, 0);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TimeoutError("recv timed out");
    }
    throw_errno("recv failed");
  }
  return static_cast<std::size_t>(n);
}

void TcpConnection::write_all(const char* data, std::size_t size) {
  OPENEI_CHECK(fd_.valid(), "write on closed connection");
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_.get(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TimeoutError("send timed out");
      }
      throw_errno("send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpConnection::set_read_timeout(double seconds) {
  OPENEI_CHECK(fd_.valid() && seconds > 0.0, "bad read timeout");
  timeval tv = to_timeval(seconds);
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO) failed");
  }
}

void TcpConnection::set_write_timeout(double seconds) {
  OPENEI_CHECK(fd_.valid() && seconds > 0.0, "bad write timeout");
  timeval tv = to_timeval(seconds);
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_SNDTIMEO) failed");
  }
}

void TcpConnection::set_nonblocking(bool nonblocking) {
  OPENEI_CHECK(fd_.valid(), "set_nonblocking on closed connection");
  int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL) failed");
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_.get(), F_SETFL, flags) < 0) {
    throw_errno("fcntl(F_SETFL) failed");
  }
}

void TcpConnection::set_nodelay(bool on) {
  OPENEI_CHECK(fd_.valid(), "set_nodelay on closed connection");
  int flag = on ? 1 : 0;
  ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));
}

std::ptrdiff_t TcpConnection::read_nonblocking(char* buffer,
                                               std::size_t max_bytes) {
  OPENEI_CHECK(fd_.valid(), "read on closed connection");
  while (true) {
    ssize_t n = ::recv(fd_.get(), buffer, max_bytes, 0);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EINTR) continue;
    throw_errno("recv failed");
  }
}

std::ptrdiff_t TcpConnection::write_nonblocking(const char* data,
                                                std::size_t size) {
  OPENEI_CHECK(fd_.valid(), "write on closed connection");
  while (true) {
    ssize_t n = ::send(fd_.get(), data, size, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EINTR) continue;
    throw_errno("send failed");
  }
}

void TcpConnection::close() { FdHandle dropped = std::move(fd_); }

void TcpConnection::reset() {
  if (!fd_.valid()) return;
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  close();
}

TcpListener::TcpListener(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket() failed");
  fd_ = FdHandle(fd);

  int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind() failed");
  }
  // A deep backlog: the event-loop server accepts in bursts and the legacy
  // engine deliberately pauses accepting at its worker cap, so connect
  // storms queue here instead of getting SYN-dropped.
  if (::listen(fd, 512) != 0) throw_errno("listen() failed");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
}

TcpConnection TcpListener::accept_connection() {
  OPENEI_CHECK(fd_.valid(), "accept on closed listener");
  int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) throw_errno("accept() failed (listener shut down?)");
  return TcpConnection(FdHandle(client));
}

void TcpListener::shutdown() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

TcpConnection connect_local(std::uint16_t port, double timeout_s) {
  OPENEI_CHECK(timeout_s > 0.0, "bad connect timeout ", timeout_s);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket() failed");
  FdHandle handle(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  // Non-blocking connect + poll so a dead or saturated peer cannot hang the
  // caller past the deadline (a plain connect() has no portable timeout).
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) throw_errno("connect() to 127.0.0.1 failed");
    pollfd waiter{fd, POLLOUT, 0};
    int timeout_ms = static_cast<int>(timeout_s * 1e3);
    int ready = ::poll(&waiter, 1, timeout_ms > 0 ? timeout_ms : 1);
    if (ready == 0) {
      throw TimeoutError("connect() to 127.0.0.1:" + std::to_string(port) +
                         " timed out after " + std::to_string(timeout_s) + "s");
    }
    if (ready < 0) throw_errno("poll() during connect failed");
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      throw IoError(std::string("connect() to 127.0.0.1 failed: ") +
                    std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking with SO_*TIMEO deadlines

  timeval tv = to_timeval(timeout_s);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return TcpConnection(std::move(handle));
}

}  // namespace openei::net
