#include "net/poller.h"

#include <cerrno>
#include <cstring>

#include "common/error.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace openei::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

#if defined(__linux__)

Poller::Poller() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1() failed");
  scratch_.resize(128);
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

namespace {
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t mask = EPOLLET | EPOLLRDHUP;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
}  // namespace

void Poller::add(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = epoll_mask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(ADD) failed");
  }
}

void Poller::modify(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = epoll_mask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(MOD) failed");
  }
}

void Poller::remove(int fd) {
  // Failure is benign here (the fd may already be closed); epoll drops
  // closed fds on its own.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::size_t Poller::wait(std::vector<Event>& events, int timeout_ms) {
  events.clear();
  int n = ::epoll_wait(epoll_fd_, scratch_.data(),
                       static_cast<int>(scratch_.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("epoll_wait() failed");
  }
  events.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const epoll_event& ev = scratch_[i];
    Event out;
    out.fd = ev.data.fd;
    // HUP/RDHUP surface as readable so the drain loop observes the EOF.
    out.readable = (ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0;
    out.writable = (ev.events & EPOLLOUT) != 0;
    out.error = (ev.events & EPOLLERR) != 0;
    events.push_back(out);
  }
  if (static_cast<std::size_t>(n) == scratch_.size()) {
    scratch_.resize(scratch_.size() * 2);  // more fds than slots: grow
  }
  return static_cast<std::size_t>(n);
}

#else  // poll(2) fallback

Poller::Poller() = default;
Poller::~Poller() = default;

namespace {
short poll_mask(bool want_read, bool want_write) {
  short mask = 0;
  if (want_read) mask |= POLLIN;
  if (want_write) mask |= POLLOUT;
  return mask;
}
}  // namespace

void Poller::add(int fd, bool want_read, bool want_write) {
  OPENEI_CHECK(index_.find(fd) == index_.end(), "fd ", fd, " already polled");
  index_[fd] = fds_.size();
  fds_.push_back(pollfd{fd, poll_mask(want_read, want_write), 0});
}

void Poller::modify(int fd, bool want_read, bool want_write) {
  auto it = index_.find(fd);
  OPENEI_CHECK(it != index_.end(), "modify of unregistered fd ", fd);
  fds_[it->second].events = poll_mask(want_read, want_write);
}

void Poller::remove(int fd) {
  auto it = index_.find(fd);
  if (it == index_.end()) return;
  std::size_t slot = it->second;
  index_.erase(it);
  if (slot + 1 != fds_.size()) {
    fds_[slot] = fds_.back();
    index_[fds_[slot].fd] = slot;
  }
  fds_.pop_back();
}

std::size_t Poller::wait(std::vector<Event>& events, int timeout_ms) {
  events.clear();
  int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("poll() failed");
  }
  for (const pollfd& p : fds_) {
    if (p.revents == 0) continue;
    Event out;
    out.fd = p.fd;
    out.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
    out.writable = (p.revents & POLLOUT) != 0;
    out.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
    events.push_back(out);
  }
  return events.size();
}

#endif

}  // namespace openei::net
