// The HttpServer engines.
//
// Event loop (default): a fixed pool of non-blocking loop threads, each
// owning a Poller (epoll/poll) and a shard of the connections.  A blocking
// accept thread round-robins new connections onto loops through a small
// inbox + wake pipe.  Per connection the loop keeps an incremental
// RequestParser (keep-alive + pipelining) and one output buffer that
// responses serialize into directly; writes that hit EAGAIN re-arm the
// poller for writability (backpressure) instead of blocking the loop.
//
// Thread-per-connection (legacy): the original blocking model — one
// short-lived worker per connection, one request per connection — kept as
// the measured baseline for bench_serving, now bounded by a worker cap so
// an accept flood queues in the listen backlog instead of exhausting
// memory.
//
// Both engines share the routing contract: FaultPlan consulted once per
// parsed request, ParseError → 400, NotFound → 404, anything else → 500,
// graceful drain on stop().
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"
#include "net/http.h"
#include "net/poller.h"
#include "net/request_parser.h"

namespace openei::net {

namespace {

constexpr std::size_t kReadChunk = 16384;
/// Per-connection output high-water mark: a peer that pipelines requests
/// without draining responses gets its reads paused, not unbounded memory.
constexpr std::size_t kOutputHighWater = 1U << 20;

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Serializes status line + headers + body straight into `out` — the
/// per-connection output buffer on the event loop — with no intermediate
/// wire string.
void append_response(std::string& out, const HttpResponse& response,
                     bool keep_alive) {
  char number[32];
  out.append("HTTP/1.1 ");
  out.append(number, static_cast<std::size_t>(
                         std::snprintf(number, sizeof(number), "%d ",
                                       response.status)));
  out.append(reason_for(response.status));
  out.append("\r\nContent-Type: ");
  out.append(response.content_type);
  out.append("\r\nContent-Length: ");
  out.append(number, static_cast<std::size_t>(
                         std::snprintf(number, sizeof(number), "%zu",
                                       response.body.size())));
  out.append(keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                        : "\r\nConnection: close\r\n\r\n");
  out.append(response.body);
}

/// Exception-to-status mapping shared by both engines.
HttpResponse run_handler(const HttpServer::Handler& handler,
                         const HttpRequest& request) {
  try {
    return handler(request);
  } catch (const ParseError& e) {
    return HttpResponse::json(400,
                              std::string(R"({"error":")") + e.what() + "\"}");
  } catch (const NotFound& e) {
    return HttpResponse::json(404,
                              std::string(R"({"error":")") + e.what() + "\"}");
  } catch (const std::exception& e) {
    return HttpResponse::json(500,
                              std::string(R"({"error":")") + e.what() + "\"}");
  }
}

/// Shared monotonic counters; snapshotted into ServerStats.
struct StatCounters {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> reuses{0};
  std::atomic<std::uint64_t> idle_closed{0};
  std::atomic<std::uint64_t> deadline_closed{0};
  std::atomic<std::uint64_t> parse_errors{0};
  std::atomic<std::uint64_t> open{0};
  std::atomic<std::uint64_t> peak{0};

  void bump_peak(std::uint64_t current) {
    std::uint64_t prev = peak.load(std::memory_order_relaxed);
    while (current > prev &&
           !peak.compare_exchange_weak(prev, current,
                                       std::memory_order_relaxed)) {
    }
  }

  ServerStats snapshot(const char* engine) const {
    ServerStats out;
    out.engine = engine;
    out.connections_accepted = accepted.load(std::memory_order_relaxed);
    out.connections_rejected = rejected.load(std::memory_order_relaxed);
    out.requests_served = served.load(std::memory_order_relaxed);
    out.keepalive_reuses = reuses.load(std::memory_order_relaxed);
    out.idle_closed = idle_closed.load(std::memory_order_relaxed);
    out.deadline_closed = deadline_closed.load(std::memory_order_relaxed);
    out.parse_errors = parse_errors.load(std::memory_order_relaxed);
    out.open_connections = open.load(std::memory_order_relaxed);
    out.peak_connections = peak.load(std::memory_order_relaxed);
    return out;
  }
};

double now_seconds() {
  return static_cast<double>(common::wall_now_ns()) * 1e-9;
}

/// Blocking write of `response` under a slow fault (dribbled chunks or a
/// single injected delay), then an orderly close.  Used by the legacy engine
/// inline and by the event loop's fault-offload workers.
void write_slow_faulted(TcpConnection& connection, const HttpResponse& response,
                        const FaultPlan::Decision& decision) {
  std::string wire;
  append_response(wire, response, /*keep_alive=*/false);
  if (decision.kind == FaultKind::kSlowRead) {
    constexpr std::size_t kChunk = 16;
    std::size_t chunks = (wire.size() + kChunk - 1) / kChunk;
    auto pause = std::chrono::duration<double>(
        decision.delay_s / static_cast<double>(std::max<std::size_t>(chunks, 1)));
    for (std::size_t offset = 0; offset < wire.size(); offset += kChunk) {
      std::this_thread::sleep_for(pause);
      connection.write_all(wire.data() + offset,
                           std::min(kChunk, wire.size() - offset));
    }
  } else {  // kInjectDelay
    std::this_thread::sleep_for(std::chrono::duration<double>(decision.delay_s));
    connection.write_all(wire);
  }
}

std::size_t auto_loop_threads() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw / 2, 1, 4);
}

}  // namespace

class HttpServer::Core {
 public:
  virtual ~Core() = default;
  virtual std::uint16_t port() const = 0;
  virtual void stop() = 0;
  virtual ServerStats stats() const = 0;
};

// ---------------------------------------------------------------------------
// Event-loop engine
// ---------------------------------------------------------------------------

namespace {

class EventLoopCore final : public HttpServer::Core {
 public:
  EventLoopCore(std::uint16_t port, HttpServer::Handler handler,
                HttpServer::Options options)
      : listener_(port),
        handler_(std::move(handler)),
        options_(std::move(options)) {
    append_response(reject_wire_,
                    HttpResponse::json(
                        503, R"({"error":"server at connection capacity"})"),
                    /*keep_alive=*/false);
    double min_deadline =
        std::min(options_.read_timeout_s, options_.idle_timeout_s);
    tick_ms_ = std::clamp(static_cast<int>(min_deadline * 1e3 / 4.0), 5, 250);
    std::size_t n = options_.event_loop_threads > 0
                        ? options_.event_loop_threads
                        : auto_loop_threads();
    loops_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      loops_.push_back(std::make_unique<Loop>());
      Loop& loop = *loops_.back();
      loop.poller.add(loop.wake_read_fd(), /*want_read=*/true,
                      /*want_write=*/false);
    }
    for (auto& loop : loops_) {
      loop->thread = std::thread([this, loop = loop.get()] { run_loop(*loop); });
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~EventLoopCore() override { stop(); }

  std::uint16_t port() const override { return listener_.port(); }

  ServerStats stats() const override { return stats_.snapshot("event_loop"); }

  void stop() override {
    if (stopped_.exchange(true)) return;
    running_.store(false, std::memory_order_release);
    listener_.shutdown();
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& loop : loops_) loop->wake();
    for (auto& loop : loops_) {
      if (loop->thread.joinable()) loop->thread.join();
    }
    // Fault-offload workers (slow-read dribbles, injected delays) drain last.
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drained_.wait(lock, [this] { return blocking_workers_ == 0; });
  }

 private:
  struct Conn {
    TcpConnection socket;
    RequestParser parser;
    std::string out;             // pending serialized responses
    std::size_t out_off = 0;     // bytes of `out` already written
    bool want_write = false;     // EPOLLOUT armed
    bool read_paused = false;    // output high-water backpressure
    bool close_after_flush = false;
    bool reset_after_flush = false;
    double last_activity_s = 0.0;
    double request_start_s = 0.0;  // 0 = no request mid-flight
    std::uint64_t served = 0;

    Conn(TcpConnection s, double now)
        : socket(std::move(s)), last_activity_s(now) {}
  };

  struct Loop {
    Poller poller;
    std::thread thread;
    std::mutex inbox_mutex;
    std::vector<TcpConnection> inbox;  // fresh connections from accept
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    std::vector<HttpRequest> scratch;  // parsed-request staging
    int wake_fds[2] = {-1, -1};        // self-pipe: [read, write]

    Loop() {
      OPENEI_CHECK(::pipe(wake_fds) == 0, "wake pipe creation failed");
      for (int fd : wake_fds) {
        int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      }
    }
    ~Loop() {
      for (int fd : wake_fds) {
        if (fd >= 0) ::close(fd);
      }
    }
    int wake_read_fd() const { return wake_fds[0]; }
    void wake() {
      char byte = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fds[1], &byte, 1);
    }
    void drain_wake() {
      char sink[64];
      while (::read(wake_fds[0], sink, sizeof(sink)) > 0) {
      }
    }
  };

  void accept_loop() {
    std::size_t next_loop = 0;
    while (running_.load(std::memory_order_acquire)) {
      TcpConnection connection = [&]() -> TcpConnection {
        try {
          return listener_.accept_connection();
        } catch (const IoError&) {
          return TcpConnection(FdHandle{});  // listener shut down
        }
      }();
      if (!connection.valid()) break;
      if (!running_.load(std::memory_order_acquire)) break;
      if (stats_.open.load(std::memory_order_relaxed) >=
          options_.max_connections) {
        stats_.rejected.fetch_add(1, std::memory_order_relaxed);
        try {
          connection.set_write_timeout(0.5);
          connection.write_all(reject_wire_);
          // Lingering close: the client's request bytes are still unread, and
          // closing with data in the receive queue turns the close into an
          // RST that can discard the 503 in flight.  Half-close the write
          // side, drain what the peer sent, then let the destructor send an
          // orderly FIN.
          ::shutdown(connection.native_handle(), SHUT_WR);
          connection.set_read_timeout(0.5);
          char sink[512];
          while (connection.read_some(sink, sizeof(sink)) > 0) {
          }
        } catch (const std::exception&) {
        }
        continue;  // destructor closes
      }
      stats_.accepted.fetch_add(1, std::memory_order_relaxed);
      stats_.bump_peak(stats_.open.fetch_add(1, std::memory_order_relaxed) + 1);
      try {
        connection.set_nonblocking(true);
        connection.set_nodelay(true);
      } catch (const std::exception&) {
        stats_.open.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      Loop& loop = *loops_[next_loop++ % loops_.size()];
      {
        std::lock_guard<std::mutex> lock(loop.inbox_mutex);
        loop.inbox.push_back(std::move(connection));
      }
      loop.wake();
    }
  }

  void drain_inbox(Loop& loop) {
    std::vector<TcpConnection> batch;
    {
      std::lock_guard<std::mutex> lock(loop.inbox_mutex);
      batch.swap(loop.inbox);
    }
    double now = now_seconds();
    for (TcpConnection& socket : batch) {
      int fd = socket.native_handle();
      loop.poller.add(fd, /*want_read=*/true, /*want_write=*/false);
      loop.conns.emplace(fd, std::make_unique<Conn>(std::move(socket), now));
      // A request may already be buffered in the kernel (edge-triggered
      // registration only fires on *new* arrivals), so read eagerly once.
      auto it = loop.conns.find(fd);
      on_readable(loop, *it->second);
    }
  }

  void close_conn(Loop& loop, int fd) {
    auto it = loop.conns.find(fd);
    if (it == loop.conns.end()) return;
    loop.poller.remove(fd);
    loop.conns.erase(it);  // TcpConnection destructor closes the fd
    stats_.open.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Flushes the pending output buffer.  Returns false when the connection
  /// was closed (flush complete + close requested, or a hard write error).
  bool flush(Loop& loop, Conn& conn) {
    int fd = conn.socket.native_handle();
    while (conn.out_off < conn.out.size()) {
      std::ptrdiff_t n;
      try {
        n = conn.socket.write_nonblocking(conn.out.data() + conn.out_off,
                                          conn.out.size() - conn.out_off);
      } catch (const IoError&) {
        close_conn(loop, fd);
        return false;
      }
      if (n < 0) {  // EAGAIN: peer not draining — arm writability, come back
        if (!conn.want_write) {
          conn.want_write = true;
          loop.poller.modify(fd, /*want_read=*/true, /*want_write=*/true);
        }
        return true;
      }
      conn.out_off += static_cast<std::size_t>(n);
    }
    conn.out.clear();
    conn.out_off = 0;
    if (conn.want_write) {
      conn.want_write = false;
      loop.poller.modify(fd, /*want_read=*/true, /*want_write=*/false);
    }
    if (conn.reset_after_flush) {
      conn.socket.reset();
      close_conn(loop, fd);
      return false;
    }
    if (conn.close_after_flush) {
      close_conn(loop, fd);
      return false;
    }
    return true;
  }

  /// Serves one parsed request.  Returns false when the connection was
  /// consumed (closed, reset, or handed to a fault-offload worker).
  bool dispatch(Loop& loop, Conn& conn, const HttpRequest& request) {
    int fd = conn.socket.native_handle();
    FaultPlan::Decision decision;
    if (options_.faults) decision = options_.faults->next(request.path);
    if (decision.kind == FaultKind::kRefuseConnection) {
      close_conn(loop, fd);  // dropped before a single response byte
      return false;
    }
    HttpResponse response =
        decision.kind == FaultKind::kErrorBurst
            ? HttpResponse::json(decision.status,
                                 R"({"error":"injected fault: error burst"})")
            : run_handler(handler_, request);
    switch (decision.kind) {
      case FaultKind::kResetMidStream:
        // A few bytes of the status line escape, then a hard RST.
        conn.out.append("HTTP/1.1 ");
        conn.reset_after_flush = true;
        flush(loop, conn);
        return false;
      case FaultKind::kTruncateResponse: {
        append_response(conn.out, response, /*keep_alive=*/false);
        // Content-Length promises more than is sent: drop half the body.
        conn.out.resize(conn.out.size() -
                        (response.body.size() - response.body.size() / 2));
        conn.close_after_flush = true;
        flush(loop, conn);
        return false;
      }
      case FaultKind::kSlowRead:
      case FaultKind::kInjectDelay:
        // Sleeping on a loop thread would stall every connection it owns;
        // slow faults move to a short-lived blocking worker instead.
        offload_faulted(loop, conn, std::move(response), decision);
        return false;
      default:
        break;
    }
    bool keep_alive = wants_keep_alive(request);
    stats_.served.fetch_add(1, std::memory_order_relaxed);
    if (++conn.served > 1) {
      stats_.reuses.fetch_add(1, std::memory_order_relaxed);
    }
    append_response(conn.out, response, keep_alive);
    if (!keep_alive) conn.close_after_flush = true;
    return true;
  }

  void offload_faulted(Loop& loop, Conn& conn, HttpResponse response,
                       FaultPlan::Decision decision) {
    int fd = conn.socket.native_handle();
    loop.poller.remove(fd);
    TcpConnection socket = std::move(conn.socket);
    std::string pending = conn.out.substr(conn.out_off);
    loop.conns.erase(fd);
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      ++blocking_workers_;
    }
    std::thread([this, socket = std::move(socket),
                 pending = std::move(pending), response = std::move(response),
                 decision]() mutable {
      try {
        socket.set_nonblocking(false);
        socket.set_write_timeout(10.0);
        if (!pending.empty()) socket.write_all(pending);
        write_slow_faulted(socket, response, decision);
        stats_.served.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        common::log_warn("faulted-response worker error: ", e.what());
      }
      stats_.open.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(drain_mutex_);
      if (--blocking_workers_ == 0) drained_.notify_all();
    }).detach();
  }

  void on_readable(Loop& loop, Conn& conn) {
    if (conn.read_paused) return;
    int fd = conn.socket.native_handle();
    char chunk[kReadChunk];
    while (true) {
      std::ptrdiff_t n;
      try {
        n = conn.socket.read_nonblocking(chunk, sizeof(chunk));
      } catch (const IoError&) {
        close_conn(loop, fd);
        return;
      }
      if (n < 0) break;    // EAGAIN: drained
      if (n == 0) {        // peer closed (possibly mid-request)
        close_conn(loop, fd);
        return;
      }
      double now = now_seconds();
      conn.last_activity_s = now;
      if (conn.request_start_s == 0.0) conn.request_start_s = now;
      loop.scratch.clear();
      try {
        conn.parser.feed(chunk, static_cast<std::size_t>(n), loop.scratch);
      } catch (const ParseError& e) {
        // Malformed framing: the peer may still be listening, so answer 400
        // before closing (framing is unrecoverable).
        stats_.parse_errors.fetch_add(1, std::memory_order_relaxed);
        append_response(conn.out,
                        HttpResponse::json(400, std::string(R"({"error":")") +
                                                    e.what() + "\"}"),
                        /*keep_alive=*/false);
        conn.close_after_flush = true;
        flush(loop, conn);
        return;
      }
      for (const HttpRequest& request : loop.scratch) {
        if (!dispatch(loop, conn, request)) return;  // connection consumed
        if (conn.close_after_flush) break;  // drop pipelined-after-close
      }
      if (!conn.parser.mid_request()) conn.request_start_s = 0.0;
      if (conn.out.size() - conn.out_off > kOutputHighWater) {
        // Peer is pipelining without draining: pause reads until the
        // writable path empties the buffer.
        conn.read_paused = true;
        flush(loop, conn);
        return;
      }
    }
    flush(loop, conn);
  }

  void sweep(Loop& loop, double now) {
    for (auto it = loop.conns.begin(); it != loop.conns.end();) {
      Conn& conn = *it->second;
      bool kill = false;
      if (conn.request_start_s != 0.0 &&
          now - conn.request_start_s > options_.read_timeout_s) {
        stats_.deadline_closed.fetch_add(1, std::memory_order_relaxed);
        kill = true;  // slow-loris mid-request: read deadline
      } else if (conn.request_start_s == 0.0 && conn.out_off >= conn.out.size() &&
                 now - conn.last_activity_s > options_.idle_timeout_s) {
        stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
        kill = true;  // idle keep-alive reaping
      }
      if (kill) {
        loop.poller.remove(it->first);
        it = loop.conns.erase(it);
        stats_.open.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }

  void run_loop(Loop& loop) {
    std::vector<Poller::Event> events;
    double drain_deadline = 0.0;
    while (true) {
      bool stopping = !running_.load(std::memory_order_acquire);
      loop.poller.wait(events, stopping ? 5 : tick_ms_);
      drain_inbox(loop);
      for (const Poller::Event& event : events) {
        if (event.fd == loop.wake_read_fd()) {
          loop.drain_wake();
          continue;
        }
        auto it = loop.conns.find(event.fd);
        if (it == loop.conns.end()) continue;
        Conn& conn = *it->second;
        if (event.error) {
          close_conn(loop, event.fd);
          continue;
        }
        if (event.writable && conn.want_write) {
          if (!flush(loop, conn)) continue;
          if (conn.out.empty() && conn.read_paused) {
            conn.read_paused = false;
            on_readable(loop, conn);  // resume: data may have queued meanwhile
            continue;
          }
        }
        if (!stopping && event.readable) on_readable(loop, conn);
      }
      double now = now_seconds();
      sweep(loop, now);
      if (stopping) {
        // Drain: responses already buffered get a short window to flush;
        // idle and mid-request connections close immediately.
        for (auto it = loop.conns.begin(); it != loop.conns.end();) {
          if (it->second->out_off >= it->second->out.size()) {
            loop.poller.remove(it->first);
            it = loop.conns.erase(it);
            stats_.open.fetch_sub(1, std::memory_order_relaxed);
          } else {
            ++it;
          }
        }
        if (drain_deadline == 0.0) drain_deadline = now + 1.0;
        if (loop.conns.empty() || now > drain_deadline) {
          for (auto& [fd, conn] : loop.conns) {
            loop.poller.remove(fd);
            stats_.open.fetch_sub(1, std::memory_order_relaxed);
          }
          loop.conns.clear();
          break;
        }
      }
    }
  }

  TcpListener listener_;
  HttpServer::Handler handler_;
  HttpServer::Options options_;
  StatCounters stats_;
  std::string reject_wire_;
  int tick_ms_ = 50;
  std::atomic<bool> running_{true};
  std::atomic<bool> stopped_{false};
  std::vector<std::unique_ptr<Loop>> loops_;
  std::thread accept_thread_;
  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::size_t blocking_workers_ = 0;  // guarded by drain_mutex_
};

// ---------------------------------------------------------------------------
// Legacy thread-per-connection engine (bench baseline)
// ---------------------------------------------------------------------------

class ThreadPerConnCore final : public HttpServer::Core {
 public:
  ThreadPerConnCore(std::uint16_t port, HttpServer::Handler handler,
                    HttpServer::Options options)
      : listener_(port),
        handler_(std::move(handler)),
        options_(std::move(options)) {
    OPENEI_CHECK(options_.max_connection_threads > 0,
                 "bad max_connection_threads");
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~ThreadPerConnCore() override { stop(); }

  std::uint16_t port() const override { return listener_.port(); }

  ServerStats stats() const override {
    return stats_.snapshot("thread_per_connection");
  }

  void stop() override {
    if (stopped_.exchange(true)) return;
    running_.store(false);
    worker_freed_.notify_all();
    listener_.shutdown();
    if (accept_thread_.joinable()) accept_thread_.join();
    // Drain in-flight workers (they are detached; each signals on exit).
    std::unique_lock<std::mutex> lock(drain_mutex_);
    worker_freed_.wait(lock, [this] { return active_workers_ == 0; });
  }

 private:
  void accept_loop() {
    while (running_.load()) {
      {
        // The cap: accepting pauses while max_connection_threads workers
        // are live, so a connection flood queues in the listen backlog
        // instead of spawning unbounded threads.
        std::unique_lock<std::mutex> lock(drain_mutex_);
        worker_freed_.wait(lock, [this] {
          return active_workers_ < options_.max_connection_threads ||
                 !running_.load();
        });
      }
      if (!running_.load()) break;
      TcpConnection connection = [&]() -> TcpConnection {
        try {
          return listener_.accept_connection();
        } catch (const IoError&) {
          return TcpConnection(FdHandle{});  // listener shut down
        }
      }();
      if (!connection.valid()) break;
      stats_.accepted.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        ++active_workers_;
        stats_.open.fetch_add(1, std::memory_order_relaxed);
        stats_.bump_peak(active_workers_);
      }
      std::thread([this](TcpConnection conn) {
        handle_connection(std::move(conn));
        stats_.open.fetch_sub(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(drain_mutex_);
        --active_workers_;
        worker_freed_.notify_all();
      }, std::move(connection)).detach();
    }
  }

  /// Reads exactly one request through the incremental parser (identical
  /// framing/limits to the event loop).  Returns false when the peer closed
  /// before sending anything.
  bool read_one_request(TcpConnection& connection, HttpRequest& request) {
    RequestParser parser;
    std::vector<HttpRequest> done;
    char chunk[4096];
    while (done.empty()) {
      std::size_t n = connection.read_some(chunk, sizeof(chunk));
      if (n == 0) {
        if (!parser.mid_request()) return false;
        throw ParseError("connection closed mid-request");
      }
      parser.feed(chunk, n, done);
    }
    request = std::move(done.front());
    return true;
  }

  void handle_connection(TcpConnection connection) {
    try {
      connection.set_read_timeout(options_.read_timeout_s);
      HttpRequest request;
      try {
        if (!read_one_request(connection, request)) return;
      } catch (const ParseError& e) {
        // Malformed framing: the peer may still be listening, so answer 400
        // before closing.
        stats_.parse_errors.fetch_add(1, std::memory_order_relaxed);
        std::string wire;
        append_response(wire,
                        HttpResponse::json(400, std::string(R"({"error":")") +
                                                    e.what() + "\"}"),
                        /*keep_alive=*/false);
        connection.write_all(wire);
        return;
      }

      FaultPlan::Decision decision;
      if (options_.faults) decision = options_.faults->next(request.path);
      if (decision.kind == FaultKind::kRefuseConnection) {
        connection.close();  // dropped before a single response byte
        return;
      }
      HttpResponse response =
          decision.kind == FaultKind::kErrorBurst
              ? HttpResponse::json(decision.status,
                                   R"({"error":"injected fault: error burst"})")
              : run_handler(handler_, request);
      write_with_faults(connection, response, decision);
    } catch (const std::exception& e) {
      common::log_warn("http worker error: ", e.what());
    }
  }

  void write_with_faults(TcpConnection& connection,
                         const HttpResponse& response,
                         const FaultPlan::Decision& decision) {
    switch (decision.kind) {
      case FaultKind::kResetMidStream: {
        // A few bytes of the status line escape, then a hard RST.
        connection.write_all("HTTP/1.1 ", 9);
        connection.reset();
        return;
      }
      case FaultKind::kTruncateResponse: {
        std::string wire;
        append_response(wire, response, /*keep_alive=*/false);
        std::size_t keep =
            wire.size() - (response.body.size() - response.body.size() / 2);
        connection.write_all(wire.data(), keep);
        connection.close();  // Content-Length promises more than was sent
        return;
      }
      case FaultKind::kSlowRead:
      case FaultKind::kInjectDelay:
        write_slow_faulted(connection, response, decision);
        stats_.served.fetch_add(1, std::memory_order_relaxed);
        return;
      default: {
        std::string wire;
        append_response(wire, response, /*keep_alive=*/false);
        connection.write_all(wire);
        stats_.served.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  TcpListener listener_;
  HttpServer::Handler handler_;
  HttpServer::Options options_;
  StatCounters stats_;
  std::atomic<bool> running_{true};
  std::atomic<bool> stopped_{false};
  std::thread accept_thread_;
  std::mutex drain_mutex_;
  std::condition_variable worker_freed_;
  std::size_t active_workers_ = 0;  // guarded by drain_mutex_
};

}  // namespace

// ---------------------------------------------------------------------------
// HttpServer facade
// ---------------------------------------------------------------------------

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : HttpServer(port, std::move(handler), Options{}) {}

HttpServer::HttpServer(std::uint16_t port, Handler handler, Options options) {
  OPENEI_CHECK(handler != nullptr, "null HTTP handler");
  OPENEI_CHECK(options.read_timeout_s > 0.0, "bad server read timeout");
  OPENEI_CHECK(options.idle_timeout_s > 0.0, "bad server idle timeout");
  if (options.thread_per_connection) {
    core_ = std::make_unique<ThreadPerConnCore>(port, std::move(handler),
                                                std::move(options));
  } else {
    core_ = std::make_unique<EventLoopCore>(port, std::move(handler),
                                            std::move(options));
  }
}

HttpServer::~HttpServer() { stop(); }

std::uint16_t HttpServer::port() const { return core_->port(); }

void HttpServer::stop() { core_->stop(); }

ServerStats HttpServer::stats() const { return core_->stats(); }

}  // namespace openei::net
