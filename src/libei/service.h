// libei — the RESTful API of paper Sec. III-D / Fig. 6.
//
// Resource scheme (every resource is a URL):
//   GET  /ei_data/realtime/{sensor_id}?timestamp=T
//   GET  /ei_data/history/{sensor_id}?start=S&end=E
//   GET  /ei_algorithms/{scenario}/{algorithm}?input=<json rows>
//          [&objective=latency|accuracy|energy|memory]
//          [&min_accuracy=A][&max_latency_s=L][&max_energy_j=E]
//          [&max_memory_bytes=M]
//          — or &sensor=<id>[&timestamp=T] to pull the input from the store
//   GET  /ei_models                      — deployed model index + registry
//          version counter
//   GET  /ei_models/{name}               — serialized model (edge-edge sharing)
//   POST /ei_models?scenario=S&algorithm=A&accuracy=x  (body: model JSON)
//          — model download from the cloud (Fig. 3 dataflow 2).  POSTing an
//          already-deployed name is an atomic hot-swap: in-flight inference
//          finishes on the old version (its snapshot stays pinned until the
//          last request drains), new requests see the new one
//   DELETE /ei_models/{name}             — undeploy
//   DELETE /ei_models/{name}?rollback=1  — drop the current version and
//          restore the one the last hot-swap replaced (409 when no prior
//          version is retained)
//   POST /ei_stream?scenario=S&algorithm=A — open a streaming inference
//          session (selector picks the model as for /ei_algorithms);
//          &policy=block|latest_wins|drop_oldest, &capacity=N,
//          &deadline_ms=D tune the frame queue
//   POST /ei_stream/{id}/frames          — submit frames (body: JSON rows);
//          per-frame admission verdicts; 429 when backpressure rejected
//          every frame
//   GET  /ei_stream/{id}/results?max=N   — drain delivered results
//   GET  /ei_stream/{id}                 — session stats (queue counters,
//          conservation-law fields)
//   GET  /ei_stream                      — session index
//   DELETE /ei_stream/{id}               — close (drains the worker)
//   GET  /ei_status                      — node health: device profile,
//          package, deployed models, registered sensors, request counters,
//          per-model latency percentiles (p50/p95/p99)
//   GET  /ei_metrics                     — Prometheus text exposition:
//          per-model latency histograms, energy/memory gauges, route
//          counters (scrape me)
//   GET  /ei_trace                       — ids of retained finished traces
//   GET  /ei_trace/{id}                  — one request's span tree with
//          per-stage ALEM attribution (requires Options.tracing.enabled)
//
// An algorithm call runs the full OpenEI flow of Sec. III-E: the model
// selector picks the best deployed variant for this device under the
// caller's ALEM requirements (accuracy-oriented by default, as the paper
// specifies), then the package manager executes the inference through the
// memory-governed session cache (runtime::SessionCache) — warm sessions are
// shared zero-copy, cold ones materialize under the device's memory budget,
// and a request the budget cannot admit is answered 503 with a JSON
// {"error":"memory_pressure",...} body.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "datastore/timeseries.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "runtime/batcher.h"
#include "runtime/energy_governor.h"
#include "runtime/inference.h"
#include "hwsim/device.h"
#include "hwsim/package.h"
#include "net/http.h"
#include "net/resilient_client.h"
#include "runtime/model_registry.h"
#include "runtime/session_cache.h"
#include "selector/capability_db.h"
#include "selector/selecting_algorithm.h"
#include "stream/stream_manager.h"

namespace openei::libei {

class EiService {
 public:
  struct Options {
    /// Coalesce concurrent /ei_algorithms inference through a per-model
    /// micro-batching queue instead of serializing independent forward
    /// passes.  Results are bit-identical either way.
    bool coalesce_inference = true;
    runtime::MicroBatcher::Options batching;
    /// Memory-governed model lifecycle: resident-session byte budget (0 =
    /// derive from the device profile), LRU eviction, admission control.
    /// `lifecycle.batching` is ignored — `batching` above wins.
    runtime::SessionCache::Options lifecycle;
    /// Per-request tracing (GET /ei_trace/{id}).  Off by default: disabled
    /// tracing costs one branch per instrumentation site.  The ALEM metric
    /// histograms behind GET /ei_metrics are always on (a handful of relaxed
    /// atomic ops per request).
    obs::Tracer::Options tracing;
    /// Streaming sessions (POST /ei_stream): concurrent-session cap and
    /// per-session queue/ring defaults (overridable per open via query
    /// parameters).
    stream::StreamManager::Options streaming;
    /// How long a frame POST into a full kBlock stream may wait for space
    /// before answering 429.  HTTP handlers run on event-loop threads, so
    /// backpressure over HTTP is bounded — unbounded blocking is only for
    /// in-process producers.
    double stream_http_max_block_s = 0.2;
    /// Energy governor knobs (rolling window, boost threshold, injectable
    /// clock).  The accounting side is always on — every inference charges
    /// the device ledger and /ei_status grows an "energy" block — but
    /// budget *enforcement* (degrade to a cheaper variant above the cap,
    /// 503 past cap * reject_factor) only engages when `energy.power_cap_w`
    /// or the device profile's power_cap_w is set.
    runtime::EnergyGovernor::Options energy;
  };

  /// Borrows the registry and store (the owning EdgeNode outlives the
  /// service); copies the device/package profiles.
  EiService(runtime::ModelRegistry& registry, datastore::SensorStore& store,
            hwsim::DeviceProfile device, hwsim::PackageSpec package);
  EiService(runtime::ModelRegistry& registry, datastore::SensorStore& store,
            hwsim::DeviceProfile device, hwsim::PackageSpec package,
            Options options);

  /// Routes one request.  Throws NotFound / ParseError for the HTTP server
  /// to translate, or returns a JSON response.
  net::HttpResponse handle(const net::HttpRequest& request);

  const hwsim::DeviceProfile& device() const { return device_; }

  /// Served-request counters (reported by /ei_status for fleet monitoring).
  /// The resilience fields snapshot the node's shared transport counters:
  /// retries/timeouts/breaker state of every outbound client wired to
  /// `resilience()` (peer fetches, failover, degrading cloud-edge serving).
  /// All backing counters are atomics (the HTTP server handles requests on
  /// concurrent connection threads and the micro-batcher flushes on its
  /// own); this struct is a consistent-enough snapshot for monitoring.
  struct Metrics {
    std::uint64_t data_requests = 0;
    std::uint64_t algorithm_requests = 0;
    std::uint64_t model_requests = 0;
    std::uint64_t stream_requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_rejections = 0;
    std::uint64_t degraded_serves = 0;
    std::uint64_t batch_flushes = 0;
    std::uint64_t coalesced_requests = 0;
    std::uint64_t max_fused_rows = 0;
  };
  Metrics metrics() const;

  /// Shared sink for the node's outbound transport resilience counters;
  /// reported in full under "resilience" by GET /ei_status.
  const std::shared_ptr<net::ResilienceMetrics>& resilience() const {
    return resilience_;
  }

  /// Wires an HTTP server's serving counters into GET /ei_status (the
  /// "serving" block: engine, keep-alive reuse, idle/deadline closes...).
  /// The owning node sets this when it starts a server and clears it
  /// (nullptr) before tearing the server down; safe against concurrent
  /// handle() calls.
  void set_serving_stats_source(std::function<net::ServerStats()> source);

  /// The request tracer behind GET /ei_trace/{id} (inert unless
  /// Options.tracing.enabled).
  obs::Tracer& tracer() { return tracer_; }
  /// The ALEM metric families behind GET /ei_metrics.
  obs::MetricsRegistry& meter() { return meter_; }
  /// The memory-governed session pool (cache hit/miss/eviction stats are
  /// reported under "lifecycle" by GET /ei_status and as /ei_metrics
  /// families).
  runtime::SessionCache& lifecycle() { return lifecycle_; }
  /// Live streaming sessions (POST /ei_stream); reported under "streams"
  /// by GET /ei_status.
  stream::StreamManager& streams() { return streams_; }
  /// The device power account + frequency governor every simulated
  /// inference charges (reported under "energy" by GET /ei_status and as
  /// ei_energy_joules_total / ei_power_watts / ei_freq_level metrics).
  runtime::EnergyGovernor& energy_governor() { return *governor_; }

 private:
  net::HttpResponse handle_data(const net::HttpRequest& request,
                                const std::vector<std::string>& segments);
  net::HttpResponse handle_algorithm(const net::HttpRequest& request,
                                     const std::vector<std::string>& segments,
                                     obs::Span& trace_root);
  net::HttpResponse handle_models(const net::HttpRequest& request,
                                  const std::vector<std::string>& segments);
  net::HttpResponse handle_status();
  net::HttpResponse handle_trace(const std::vector<std::string>& segments);
  net::HttpResponse handle_stream(const net::HttpRequest& request,
                                  const std::vector<std::string>& segments);

  /// Parses ALEM requirements/objective from query parameters; defaults to
  /// the paper's accuracy-oriented selection.
  selector::SelectionRequest parse_selection(
      const std::map<std::string, std::string>& query) const;

  /// Resolves the inference input: inline `input` JSON rows or a stored
  /// sensor payload.
  common::Json resolve_input(const net::HttpRequest& request) const;

  /// Capability rows for one (scenario, algorithm) pair, cached off the
  /// registry's version counter: rows are rebuilt only when a deploy/swap/
  /// rollback bumps the version, never per request.
  std::shared_ptr<const selector::CapabilityDatabase> capabilities_for(
      const std::string& scenario, const std::string& algorithm);

  runtime::ModelRegistry& registry_;
  datastore::SensorStore& store_;
  hwsim::DeviceProfile device_;
  hwsim::PackageSpec package_;
  Options options_;

  std::shared_ptr<runtime::BatcherMetrics> batcher_metrics_ =
      std::make_shared<runtime::BatcherMetrics>();

  mutable std::atomic<std::uint64_t> data_requests_{0};
  mutable std::atomic<std::uint64_t> algorithm_requests_{0};
  mutable std::atomic<std::uint64_t> model_requests_{0};
  mutable std::atomic<std::uint64_t> stream_requests_{0};
  mutable std::atomic<std::uint64_t> errors_{0};
  std::shared_ptr<net::ResilienceMetrics> resilience_ =
      std::make_shared<net::ResilienceMetrics>();
  obs::Tracer tracer_;
  obs::MetricsRegistry meter_;
  mutable std::mutex serving_mutex_;
  std::function<net::ServerStats()> serving_source_;  // guarded by serving_mutex_
  /// Declared before lifecycle_/streams_: batcher flush threads and stream
  /// workers charge it, so it must outlive both (members destroy in reverse
  /// order).
  std::shared_ptr<runtime::EnergyGovernor> governor_;
  /// Declared after meter_: the cache wires its counters into it.
  runtime::SessionCache lifecycle_;
  /// Declared after lifecycle_: stream workers acquire through the cache,
  /// so reverse destruction order drains every session before the cache
  /// dies.
  stream::StreamManager streams_;

  struct CapabilitySlice {
    std::uint64_t version = ~0ULL;
    std::shared_ptr<const selector::CapabilityDatabase> db;
  };
  std::mutex capability_mutex_;
  std::map<std::string, CapabilitySlice> capability_cache_;
};

}  // namespace openei::libei
