#include "libei/service.h"

#include <algorithm>
#include <optional>

#include "common/clock.h"
#include "common/strings.h"
#include "hwsim/cost_model.h"
#include "nn/serialize.h"
#include "runtime/inference.h"
#include "selector/capability_db.h"
#include "selector/selecting_algorithm.h"
#include "tensor/pack.h"
#include "tensor/quantize.h"

namespace openei::libei {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using net::HttpRequest;
using net::HttpResponse;

EiService::EiService(runtime::ModelRegistry& registry, datastore::SensorStore& store,
                     hwsim::DeviceProfile device, hwsim::PackageSpec package)
    : EiService(registry, store, std::move(device), std::move(package),
                Options{}) {}

EiService::EiService(runtime::ModelRegistry& registry, datastore::SensorStore& store,
                     hwsim::DeviceProfile device, hwsim::PackageSpec package,
                     Options options)
    : registry_(registry),
      store_(store),
      device_(std::move(device)),
      package_(std::move(package)),
      options_(options),
      tracer_(options.tracing),
      governor_(std::make_shared<runtime::EnergyGovernor>(device_,
                                                          options.energy)),
      lifecycle_(registry_, package_, device_,
                 [&] {
                   // One batching knob: the service-level options win.
                   runtime::SessionCache::Options lifecycle = options.lifecycle;
                   lifecycle.batching = options.batching;
                   lifecycle.batching.governor = governor_;
                   lifecycle.batcher_metrics = batcher_metrics_;
                   return lifecycle;
                 }(),
                 &meter_),
      streams_(lifecycle_,
               [&] {
                 // Stream workers charge the same device ledger.
                 stream::StreamManager::Options streaming = options.streaming;
                 streaming.session.governor = governor_.get();
                 return streaming;
               }(),
               &tracer_, &meter_) {
  // The service-level batching options now carry the governor too, so the
  // "batching" status block and any transient batchers agree with lifecycle.
  options_.batching.governor = governor_;
  // handle_stream builds each session's options from this stored copy (not
  // the manager defaults above), so it must carry the governor as well or
  // HTTP-opened streams would never charge the ledger.
  options_.streaming.session.governor = governor_.get();
  meter_.describe("ei_requests_total", "Requests served, by route and status class");
  meter_.describe("ei_session_cache_hits_total",
                  "Warm inference-session cache hits");
  meter_.describe("ei_session_cache_misses_total",
                  "Session cache misses (lazy materializations)");
  meter_.describe("ei_session_cache_evictions_total",
                  "Sessions evicted (LRU) to stay under the memory budget");
  meter_.describe("ei_session_cache_invalidations_total",
                  "Stale sessions retired after a model hot-swap/rollback");
  meter_.describe("ei_admission_rejections_total",
                  "Requests answered 503 memory_pressure by admission control");
  meter_.describe("ei_session_resident_bytes",
                  "Bytes of resident inference sessions (ALEM memory)");
  meter_.describe("ei_session_resident_count", "Resident inference sessions");
  meter_.describe("ei_session_budget_bytes",
                  "Resident-session byte budget derived from device RAM");
  meter_.describe("ei_model_swaps_total",
                  "Model hot-swaps (POST over an existing name)");
  meter_.describe("ei_model_rollbacks_total",
                  "Rollbacks restoring the prior model version");
  meter_.describe("ei_request_latency_seconds",
                  "Wall-clock /ei_algorithms latency, by model");
  meter_.describe("ei_model_sim_energy_mj_total",
                  "Simulated inference energy spent per model (mJ, hwsim cost model)");
  meter_.describe("ei_model_sim_memory_bytes",
                  "Simulated peak inference memory footprint per model");
  meter_.describe("ei_model_rows_total", "Inference rows served per model");
  meter_.describe("ei_traces_completed_total",
                  "Finished traces committed to the in-memory ring");
  meter_.describe("ei_stream_sessions_active", "Open streaming sessions");
  meter_.describe("ei_stream_frames_admitted_total",
                  "Stream frames admitted into a session queue, by policy");
  meter_.describe("ei_stream_frames_rejected_total",
                  "Stream frames refused at admission (backpressure/closed)");
  meter_.describe("ei_stream_frames_delivered_total",
                  "Stream frames that completed inference");
  meter_.describe("ei_stream_frames_dropped_total",
                  "Stream frames dropped before inference, by reason");
  meter_.describe("ei_isa_level",
                  "Detected SIMD dispatch level per GEMM engine (fp32: "
                  "0=scalar 1=avx2 2=avx512; int8: 0..3 adds vnni)");
  meter_.describe("ei_stream_frame_latency_seconds",
                  "End-to-end streamed-frame latency (admission to delivery)");
  meter_.describe("ei_energy_joules_total",
                  "Cumulative device energy from the hwsim ledger, by power "
                  "state (idle/active/boost)");
  meter_.describe("ei_power_watts",
                  "Rolling device power draw estimated by the energy governor");
  meter_.describe("ei_freq_level",
                  "Current DVFS rung (index into the device freq ladder)");
  meter_.describe("ei_power_state",
                  "Current power state (0=idle 1=active 2=boost)");
  meter_.describe("ei_energy_degrades_total",
                  "Requests degraded to the min-energy variant because the "
                  "rolling watts exceeded the power cap");
  meter_.describe("ei_energy_rejections_total",
                  "Requests answered 503 energy_budget past cap * "
                  "reject_factor");
}

void EiService::set_serving_stats_source(
    std::function<net::ServerStats()> source) {
  std::lock_guard<std::mutex> lock(serving_mutex_);
  serving_source_ = std::move(source);
}

EiService::Metrics EiService::metrics() const {
  return Metrics{data_requests_.load(),
                 algorithm_requests_.load(),
                 model_requests_.load(),
                 stream_requests_.load(),
                 errors_.load(),
                 resilience_->retries.load(),
                 resilience_->timeouts.load(),
                 resilience_->breaker_opens.load(),
                 resilience_->breaker_rejections.load(),
                 resilience_->degraded_serves.load(),
                 batcher_metrics_->flushes.load(),
                 batcher_metrics_->fused_requests.load(),
                 batcher_metrics_->max_fused_rows.load()};
}

std::shared_ptr<const selector::CapabilityDatabase> EiService::capabilities_for(
    const std::string& scenario, const std::string& algorithm) {
  // Version first, candidates second: the cached rows can only be *newer*
  // than their recorded version, so a concurrent deploy at worst triggers
  // one redundant rebuild — never a stale serve past the version bump.
  std::uint64_t version = registry_.version();
  std::string key = scenario + "/" + algorithm;
  {
    std::lock_guard<std::mutex> lock(capability_mutex_);
    auto it = capability_cache_.find(key);
    if (it != capability_cache_.end() && it->second.version == version) {
      return it->second.db;
    }
  }
  auto candidates = registry_.find(scenario, algorithm);
  if (candidates.empty()) return nullptr;  // caller 404s; nothing to cache
  auto db = std::make_shared<selector::CapabilityDatabase>();
  for (const runtime::ModelEntryPtr& entry : candidates) {
    db->add(selector::estimate_capability(entry->model, entry->accuracy,
                                          package_, device_));
  }
  std::lock_guard<std::mutex> lock(capability_mutex_);
  CapabilitySlice& slot = capability_cache_[key];
  slot.version = version;
  slot.db = db;
  return db;
}

HttpResponse EiService::handle(const HttpRequest& request) {
  // Count before dispatch; failures additionally bump the error counter.
  struct ErrorCounter {
    std::atomic<std::uint64_t>& errors;
    bool armed = true;
    ~ErrorCounter() {
      if (armed) ++errors;
    }
  } error_guard{errors_};

  auto segments = common::split_nonempty(request.path, '/');
  if (segments.empty()) {
    throw NotFound("no resource at '" + request.path + "'");
  }
  const std::string& route = segments[0];

  // Root span of this request's trace — inert (no allocation, one branch)
  // unless Options.tracing.enabled.
  obs::Span root = tracer_.begin_trace("ei.request");
  if (root.active()) {
    root.set_attribute("method", request.method);
    root.set_attribute("path", request.path);
  }

  auto serve = [this, &error_guard, &root, &route](HttpResponse response) {
    if (response.status < 400) error_guard.armed = false;
    if (root.active()) {
      root.set_attribute("status", static_cast<double>(response.status));
    }
    meter_
        .counter("ei_requests_total",
                 {{"route", route},
                  {"status", response.status < 400 ? "ok" : "error"}})
        .increment();
    return response;
  };

  if (route == "ei_data") {
    ++data_requests_;
    return serve(handle_data(request, segments));
  }
  if (route == "ei_algorithms") {
    ++algorithm_requests_;
    return serve(handle_algorithm(request, segments, root));
  }
  if (route == "ei_models") {
    ++model_requests_;
    return serve(handle_models(request, segments));
  }
  if (route == "ei_stream") {
    ++stream_requests_;
    return serve(handle_stream(request, segments));
  }
  if (route == "ei_status" && segments.size() == 1 && request.method == "GET") {
    return serve(handle_status());
  }
  if (route == "ei_metrics" && segments.size() == 1 &&
      request.method == "GET") {
    meter_.gauge("ei_traces_completed_total")
        .set(static_cast<double>(tracer_.completed_traces()));
    meter_.gauge("ei_isa_level", {{"engine", "fp32"}})
        .set(static_cast<double>(tensor::fp32_isa_level()));
    meter_.gauge("ei_isa_level", {{"engine", "int8"}})
        .set(static_cast<double>(tensor::int8_isa_level()));
    runtime::EnergyGovernor::Snapshot power = governor_->snapshot();
    meter_.gauge("ei_energy_joules_total", {{"state", "idle"}})
        .set(power.ledger.state_j[0]);
    meter_.gauge("ei_energy_joules_total", {{"state", "active"}})
        .set(power.ledger.state_j[1]);
    meter_.gauge("ei_energy_joules_total", {{"state", "boost"}})
        .set(power.ledger.state_j[2]);
    meter_.gauge("ei_power_watts").set(power.rolling_watts);
    meter_.gauge("ei_freq_level")
        .set(static_cast<double>(power.ledger.freq_level));
    meter_.gauge("ei_power_state")
        .set(static_cast<double>(static_cast<int>(power.ledger.state)));
    return serve(HttpResponse{200, "text/plain; version=0.0.4",
                              meter_.render_prometheus()});
  }
  if (route == "ei_trace" && request.method == "GET") {
    return serve(handle_trace(segments));
  }
  throw NotFound("unknown resource type '" + route + "'");
}

HttpResponse EiService::handle_status() {
  Json out{JsonObject{}};
  out.set("device", device_.name);
  out.set("ram_bytes", device_.ram_bytes);
  out.set("effective_gflops", device_.effective_gflops);
  out.set("package", package_.name);
  out.set("supports_training", package_.supports_training);
  // Detected SIMD dispatch levels for the two GEMM engines — what the
  // kernels actually run on this host, not what the binary was compiled for.
  Json simd{JsonObject{}};
  simd.set("fp32_isa_level", tensor::fp32_isa_level());
  simd.set("fp32_isa", tensor::fp32_isa_name());
  simd.set("int8_isa_level", tensor::int8_isa_level());
  simd.set("int8_isa", tensor::int8_isa_name());
  out.set("simd", std::move(simd));
  JsonArray model_names;
  for (const std::string& name : registry_.names()) {
    model_names.emplace_back(name);
  }
  out.set("models", Json(std::move(model_names)));
  JsonArray sensor_ids;
  for (const std::string& id : store_.sensors()) sensor_ids.emplace_back(id);
  out.set("sensors", Json(std::move(sensor_ids)));
  Metrics snapshot = metrics();
  Json counters{JsonObject{}};
  counters.set("data_requests", snapshot.data_requests);
  counters.set("algorithm_requests", snapshot.algorithm_requests);
  counters.set("model_requests", snapshot.model_requests);
  counters.set("stream_requests", snapshot.stream_requests);
  counters.set("errors", snapshot.errors);
  out.set("requests", std::move(counters));
  out.set("resilience", resilience_->to_json());
  // Serving counters from the HTTP server fronting this service (absent
  // when the service runs in-process only).
  std::function<net::ServerStats()> serving_source;
  {
    std::lock_guard<std::mutex> lock(serving_mutex_);
    serving_source = serving_source_;
  }
  if (serving_source) {
    net::ServerStats stats = serving_source();
    Json serving{JsonObject{}};
    serving.set("engine", stats.engine);
    serving.set("connections_accepted", stats.connections_accepted);
    serving.set("connections_rejected", stats.connections_rejected);
    serving.set("requests_served", stats.requests_served);
    serving.set("keepalive_reuses", stats.keepalive_reuses);
    serving.set("idle_closed", stats.idle_closed);
    serving.set("deadline_closed", stats.deadline_closed);
    serving.set("parse_errors", stats.parse_errors);
    serving.set("open_connections", stats.open_connections);
    serving.set("peak_connections", stats.peak_connections);
    out.set("serving", std::move(serving));
  }
  Json batching{JsonObject{}};
  batching.set("coalescing", options_.coalesce_inference);
  batching.set("max_batch_rows", options_.batching.max_batch_rows);
  batching.set("max_wait_s", options_.batching.max_wait_s);
  batching.set("flushes", snapshot.batch_flushes);
  batching.set("coalesced_requests", snapshot.coalesced_requests);
  batching.set("max_fused_rows", snapshot.max_fused_rows);
  out.set("batching", std::move(batching));
  // Per-model request-latency percentiles from the /ei_metrics histograms —
  // the ALEM latency attribute as actually served, not as simulated.
  Json latency{JsonObject{}};
  for (const auto& [labels, snap] :
       meter_.histogram_snapshots("ei_request_latency_seconds")) {
    std::string model = "unknown";
    for (const auto& [key, value] : labels) {
      if (key == "model") model = value;
    }
    Json percentiles{JsonObject{}};
    percentiles.set("count", snap.count);
    percentiles.set("p50_us", snap.quantile(0.50) * 1e6);
    percentiles.set("p95_us", snap.quantile(0.95) * 1e6);
    percentiles.set("p99_us", snap.quantile(0.99) * 1e6);
    latency.set(model, std::move(percentiles));
  }
  out.set("latency", std::move(latency));
  Json tracing{JsonObject{}};
  tracing.set("enabled", tracer_.enabled());
  tracing.set("completed_traces", tracer_.completed_traces());
  tracing.set("ring_capacity", tracer_.options().ring_capacity);
  out.set("tracing", std::move(tracing));
  // Memory-governed lifecycle: budget, residency (coldest first — the
  // eviction order), and cache counters.  `arena` marks sessions running on
  // the zero-alloc forward arena.
  runtime::SessionCache::Stats cache = lifecycle_.stats();
  Json lifecycle{JsonObject{}};
  lifecycle.set("budget_bytes", cache.budget_bytes);
  lifecycle.set("resident_bytes", cache.resident_bytes);
  lifecycle.set("resident_sessions", cache.resident_sessions);
  lifecycle.set("hits", cache.hits);
  lifecycle.set("misses", cache.misses);
  lifecycle.set("evictions", cache.evictions);
  lifecycle.set("invalidations", cache.invalidations);
  lifecycle.set("admission_rejections", cache.admission_rejections);
  JsonArray residents;
  for (const runtime::SessionCache::ResidentInfo& info :
       lifecycle_.resident_info()) {
    Json row{JsonObject{}};
    row.set("model", info.name);
    row.set("bytes", info.bytes);
    row.set("arena", info.arena_active);
    residents.push_back(std::move(row));
  }
  lifecycle.set("resident", Json(std::move(residents)));
  lifecycle.set("registry_version", registry_.version());
  out.set("lifecycle", std::move(lifecycle));
  // Streaming sessions with their conservation-law counters (produced =
  // admitted + rejected_*; admitted = delivered + dropped_* + depth).
  Json streams{JsonObject{}};
  streams.set("active", streams_.active());
  streams.set("opened_total", streams_.opened_total());
  streams.set("closed_total", streams_.closed_total());
  streams.set("max_sessions", streams_.options().max_sessions);
  JsonArray stream_rows;
  for (const auto& session : streams_.sessions()) {
    stream::SessionStats stats = session->stats();
    Json row{JsonObject{}};
    row.set("id", session->id());
    row.set("model", session->model());
    row.set("policy",
            std::string(stream::to_string(session->options().queue.policy)));
    row.set("produced", stats.queue.produced);
    row.set("admitted", stats.queue.admitted);
    row.set("delivered", stats.queue.delivered);
    row.set("dropped_deadline", stats.queue.dropped_deadline);
    row.set("dropped_policy", stats.queue.dropped_policy);
    row.set("rejected_backpressure", stats.queue.rejected_backpressure);
    row.set("depth", stats.queue.depth);
    row.set("inferred", stats.inferred);
    row.set("results_pending", stats.results_pending);
    stream_rows.push_back(std::move(row));
  }
  streams.set("sessions", Json(std::move(stream_rows)));
  out.set("streams", std::move(streams));
  // Device power account: the cumulative joule ledger (per power state),
  // current governor position on the state/frequency ladder, and the
  // rolling-watts envelope with its degrade/reject decisions.
  runtime::EnergyGovernor::Snapshot power = governor_->snapshot();
  Json energy{JsonObject{}};
  energy.set("state", hwsim::to_string(power.ledger.state));
  energy.set("freq_level", power.ledger.freq_level);
  energy.set("freq_scale",
             governor_->device().freq_levels[power.ledger.freq_level]);
  energy.set("total_joules", power.ledger.total_j);
  Json by_state{JsonObject{}};
  const char* state_names[] = {"idle", "active", "boost"};
  for (int i = 0; i < hwsim::kPowerStateCount; ++i) {
    Json row{JsonObject{}};
    row.set("joules", power.ledger.state_j[static_cast<std::size_t>(i)]);
    row.set("seconds",
            power.ledger.state_seconds[static_cast<std::size_t>(i)]);
    by_state.set(state_names[i], std::move(row));
  }
  energy.set("states", std::move(by_state));
  energy.set("busy_joules", power.ledger.busy_j);
  energy.set("busy_seconds", power.ledger.busy_seconds);
  energy.set("charges", power.ledger.charges);
  energy.set("transitions", power.ledger.transitions);
  energy.set("boost_entries", power.boost_entries);
  energy.set("rolling_watts", power.rolling_watts);
  energy.set("power_cap_w", power.power_cap_w);
  energy.set("degrades", power.degrades);
  energy.set("rejects", power.rejects);
  out.set("energy", std::move(energy));
  return HttpResponse::json(200, out.dump());
}

HttpResponse EiService::handle_trace(const std::vector<std::string>& segments) {
  if (segments.size() == 1) {
    Json out{JsonObject{}};
    out.set("enabled", tracer_.enabled());
    JsonArray ids;
    for (std::uint64_t id : tracer_.recent_trace_ids()) {
      ids.emplace_back(std::to_string(id));  // 64-bit ids stay exact as text
    }
    out.set("traces", Json(std::move(ids)));
    return HttpResponse::json(200, out.dump());
  }
  if (segments.size() != 2) {
    throw ParseError("expected /ei_trace or /ei_trace/{id}");
  }
  std::uint64_t id = 0;
  try {
    id = std::stoull(segments[1]);
  } catch (const std::exception&) {
    throw ParseError("trace id '" + segments[1] + "' is not a number");
  }
  std::optional<obs::TraceRecord> record = tracer_.find(id);
  if (!record.has_value()) {
    throw NotFound(tracer_.enabled()
                       ? "no retained trace with id " + segments[1]
                       : "tracing is disabled on this node");
  }
  return HttpResponse::json(200, record->to_json().dump());
}

namespace {

Json record_to_json(const datastore::Record& record) {
  Json out{JsonObject{}};
  out.set("timestamp", record.timestamp);
  out.set("payload", record.payload);
  return out;
}

double query_double(const std::map<std::string, std::string>& query,
                    const std::string& key, double fallback) {
  auto it = query.find(key);
  if (it == query.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw ParseError("query parameter '" + key + "' is not a number");
  }
}

}  // namespace

HttpResponse EiService::handle_data(const HttpRequest& request,
                                    const std::vector<std::string>& segments) {
  if (request.method != "GET") {
    return HttpResponse::json(405, R"({"error":"ei_data is read-only"})");
  }
  if (segments.size() != 3) {
    throw ParseError("expected /ei_data/{realtime|history}/{sensor_id}");
  }
  const std::string& kind = segments[1];
  const std::string& sensor = segments[2];

  if (kind == "realtime") {
    double timestamp = query_double(request.query, "timestamp", 0.0);
    auto record = store_.realtime(sensor, timestamp);
    if (!record.has_value()) {
      throw NotFound("sensor '" + sensor + "' has no data at or after " +
                     std::to_string(timestamp));
    }
    return HttpResponse::json(200, record_to_json(*record).dump());
  }
  if (kind == "history") {
    double start = query_double(request.query, "start", 0.0);
    double end = query_double(request.query, "end", 1e300);
    JsonArray rows;
    for (const datastore::Record& record : store_.history(sensor, start, end)) {
      rows.push_back(record_to_json(record));
    }
    Json out{JsonObject{}};
    out.set("sensor", sensor);
    out.set("records", Json(std::move(rows)));
    return HttpResponse::json(200, out.dump());
  }
  if (kind == "stats") {
    double start = query_double(request.query, "start", 0.0);
    double end = query_double(request.query, "end", 1e300);
    datastore::SensorStore::Stats stats = store_.stats(sensor, start, end);
    Json out{JsonObject{}};
    out.set("sensor", sensor);
    out.set("count", stats.count);
    out.set("mean", stats.mean);
    out.set("min", stats.min);
    out.set("max", stats.max);
    out.set("rate_hz", stats.rate_hz);
    return HttpResponse::json(200, out.dump());
  }
  throw ParseError("unknown data type '" + kind + "' (realtime|history|stats)");
}

selector::SelectionRequest EiService::parse_selection(
    const std::map<std::string, std::string>& query) const {
  selector::SelectionRequest request;
  request.device_name = device_.name;
  // Paper Sec. III-E: "the default is accuracy oriented".
  request.objective = selector::Objective::kMaxAccuracy;
  if (auto it = query.find("objective"); it != query.end()) {
    if (it->second == "latency") {
      request.objective = selector::Objective::kMinLatency;
    } else if (it->second == "accuracy") {
      request.objective = selector::Objective::kMaxAccuracy;
    } else if (it->second == "energy") {
      request.objective = selector::Objective::kMinEnergy;
    } else if (it->second == "memory") {
      request.objective = selector::Objective::kMinMemory;
    } else {
      throw ParseError("unknown objective '" + it->second + "'");
    }
  }
  request.requirements.min_accuracy = query_double(query, "min_accuracy", 0.0);
  request.requirements.max_latency_s = query_double(query, "max_latency_s", 1e300);
  request.requirements.max_energy_j = query_double(query, "max_energy_j", 1e300);
  request.requirements.max_memory_bytes = static_cast<std::size_t>(
      query_double(query, "max_memory_bytes", 1e18));
  return request;
}

Json EiService::resolve_input(const HttpRequest& request) const {
  if (auto it = request.query.find("input"); it != request.query.end()) {
    return Json::parse(it->second);
  }
  if (!request.body.empty()) {
    return Json::parse(request.body);
  }
  if (auto it = request.query.find("sensor"); it != request.query.end()) {
    double timestamp = query_double(request.query, "timestamp", 0.0);
    auto record = store_.realtime(it->second, timestamp);
    if (!record.has_value()) {
      throw NotFound("sensor '" + it->second + "' has no data for inference");
    }
    return record->payload;
  }
  throw ParseError("algorithm call needs 'input', a body, or 'sensor'");
}

HttpResponse EiService::handle_algorithm(const HttpRequest& request,
                                         const std::vector<std::string>& segments,
                                         obs::Span& trace_root) {
  if (request.method != "GET" && request.method != "POST") {
    return HttpResponse::json(405, R"({"error":"use GET or POST"})");
  }
  if (segments.size() != 3) {
    throw ParseError("expected /ei_algorithms/{scenario}/{algorithm}");
  }
  const std::string& scenario = segments[1];
  const std::string& algorithm = segments[2];
  common::Stopwatch request_timer;

  // Stage 1 (ei.select): capability rows for this (scenario, algorithm) on
  // this device — cached off the registry version, so steady state runs the
  // selecting algorithm (Sec. III-E) over prebuilt rows.
  obs::Span select_span = trace_root.child("ei.select");
  std::shared_ptr<const selector::CapabilityDatabase> db =
      capabilities_for(scenario, algorithm);
  if (db == nullptr) {
    select_span.finish();
    throw NotFound("no model deployed for " + scenario + "/" + algorithm);
  }

  // Energy envelope (governor rolling watts vs. the profile power cap,
  // inert when no cap is configured): above the cap the selection objective
  // flips to min-energy — the request rides the cheapest eligible variant —
  // and past cap * reject_factor the request is shed outright.
  selector::SelectionRequest selection = parse_selection(request.query);
  runtime::EnergyGovernor::Admission admission = governor_->admit();
  if (admission == runtime::EnergyGovernor::Admission::kReject) {
    select_span.finish();
    meter_.counter("ei_energy_rejections_total").increment();
    runtime::EnergyGovernor::Snapshot power = governor_->snapshot();
    Json body{JsonObject{}};
    body.set("error", "energy_budget");
    body.set("rolling_watts", power.rolling_watts);
    body.set("power_cap_w", power.power_cap_w);
    body.set("state", hwsim::to_string(power.ledger.state));
    return HttpResponse::json(503, body.dump());
  }
  bool energy_degraded =
      admission == runtime::EnergyGovernor::Admission::kDegrade;
  if (energy_degraded) {
    meter_.counter("ei_energy_degrades_total").increment();
    selection.objective = selector::Objective::kMinEnergy;
  }
  selector::SelectionStats selection_stats;
  auto chosen = selector::select(*db, selection, &selection_stats);
  if (select_span.active()) {
    select_span.set_attribute("energy_degraded", energy_degraded ? 1.0 : 0.0);
    select_span.set_attribute("candidates",
                              static_cast<double>(selection_stats.evaluated));
    select_span.set_attribute(
        "eligible", static_cast<double>(selection_stats.eligible));
    select_span.set_attribute(
        "constraint_rejections",
        static_cast<double>(selection_stats.rejected_constraints));
    select_span.set_attribute(
        "not_deployable",
        static_cast<double>(selection_stats.rejected_not_deployable));
    select_span.set_attribute("model",
                              chosen.has_value() ? chosen->model_name : "");
  }
  select_span.finish();
  if (!chosen.has_value()) {
    return HttpResponse::json(
        400,
        R"({"error":"no deployed model satisfies the ALEM requirements"})");
  }
  const std::string& model_name = chosen->model_name;

  // The memory-governed session pool: warm hit shares the resident session
  // zero-copy; cold miss materializes under admission control.  A model the
  // budget cannot admit is the documented 503 — thrown errors would reach
  // the generic 500 mapping, so convert here.
  runtime::SessionCache::Lease lease;
  try {
    lease = lifecycle_.acquire(model_name, options_.coalesce_inference);
  } catch (const runtime::MemoryPressureError& pressure) {
    Json body{JsonObject{}};
    body.set("error", "memory_pressure");
    body.set("model", pressure.model());
    body.set("needed_bytes", pressure.needed_bytes());
    body.set("budget_bytes", pressure.budget_bytes());
    body.set("resident_bytes", pressure.resident_bytes());
    return HttpResponse::json(503, body.dump());
  }
  const tensor::Shape& sample_shape = lease.session->model().input_shape();

  // Stage 2 (ei.parse): resolve the input rows.  The direct path decodes
  // into a grow-only thread-local buffer (steady state: zero tensor heap
  // allocations per request); the coalesced path needs a real Tensor to
  // ride the micro-batch queue.
  obs::Span parse_span = trace_root.child("ei.parse");
  static thread_local std::vector<float> row_staging;
  // optional<>: even a default-constructed Tensor counts as a (tracked)
  // tensor allocation, which the direct path's zero-alloc guarantee forbids.
  std::optional<nn::Tensor> batch;
  std::size_t row_count = 0;
  if (options_.coalesce_inference) {
    batch = runtime::rows_to_batch(resolve_input(request), sample_shape);
    row_count = batch->shape().dim(0);
  } else {
    row_count =
        runtime::rows_to_floats(resolve_input(request), sample_shape, row_staging);
  }
  double rows = static_cast<double>(row_count);
  if (parse_span.active()) {
    parse_span.set_attribute("rows", rows);
    parse_span.set_attribute(
        "input_bytes", static_cast<double>(row_count * sample_shape.elements() *
                                           sizeof(float)));
  }
  parse_span.finish();

  // Stage 3 (ei.infer): the forward pass, direct or coalesced.
  obs::Span infer_span = trace_root.child("ei.infer");
  runtime::InferenceResult result;
  tensor::AllocationStats allocation;
  if (options_.coalesce_inference) {
    // Concurrent connection threads funnel into the per-model micro-batch
    // queue; this request's rows ride a fused forward pass (bit-identical
    // to a solo run) instead of serializing behind other requests.  The
    // ei.batch child span finishes on the flush thread with queue-wait vs
    // fused-forward attribution (and peak tensor bytes seen there).
    result = lease.batcher
                 ->submit(std::move(*batch), infer_span.child("ei.batch"))
                 .get();
  } else {
    tensor::AllocationTrackingScope scope;
    result = lease.session->run_rows(row_staging.data(), row_count);
    allocation = scope.stats();
    // Direct path: charge the ledger here (the coalesced path charged once
    // per fused flush on the flush thread); with nothing queued behind a
    // synchronous request, the device decays back toward idle.
    result.ledger_energy_j =
        governor_->charge(result.batch_latency_s, row_count);
    governor_->on_drained();
  }
  // What the device ledger actually accrued for this request (DVFS-adjusted,
  // prorated across a fused flush) — the cost-model estimate is only a
  // fallback for batchers wired without a governor.
  double request_energy_j = result.ledger_energy_j > 0.0
                                ? result.ledger_energy_j
                                : result.batch_energy_j;
  if (infer_span.active()) {
    infer_span.set_attribute("model", model_name);
    infer_span.set_attribute("rows", rows);
    infer_span.set_attribute("coalesced",
                             options_.coalesce_inference ? 1.0 : 0.0);
    // Simulated ALEM attribution from the hwsim cost model.
    infer_span.set_attribute("sim_latency_us", result.batch_latency_s * 1e6);
    infer_span.set_attribute("sim_energy_mj", request_energy_j * 1e3);
    infer_span.set_attribute(
        "sim_memory_bytes",
        static_cast<double>(result.per_sample.memory_bytes));
    if (!options_.coalesce_inference) {
      infer_span.set_attribute(
          "peak_tensor_bytes",
          static_cast<double>(allocation.peak_live_bytes));
      // Zero peak_tensor_bytes means the zero-alloc arena served the forward;
      // the flag lets trace consumers tell that apart from a broken tracker.
      infer_span.set_attribute("arena",
                               lease.session->arena_active() ? 1.0 : 0.0);
    }
  }
  infer_span.finish();

  // Stage 4 (ei.serialize): build the JSON response.
  obs::Span serialize_span = trace_root.child("ei.serialize");
  Json out{JsonObject{}};
  out.set("scenario", scenario);
  out.set("algorithm", algorithm);
  out.set("model", model_name);
  out.set("package", package_.name);
  out.set("device", device_.name);
  out.set("alem", chosen->alem.to_json());
  JsonArray predictions;
  for (std::size_t p : result.predictions) predictions.emplace_back(p);
  out.set("predictions", Json(std::move(predictions)));
  out.set("batch_latency_s", result.batch_latency_s);
  out.set("batch_energy_j", result.batch_energy_j);
  out.set("ledger_energy_j", result.ledger_energy_j);
  if (energy_degraded) out.set("energy_degraded", true);
  if (trace_root.active()) {
    // 64-bit id as a string (JSON numbers are doubles); the caller can
    // follow up with GET /ei_trace/{trace_id}.
    out.set("trace_id", std::to_string(trace_root.trace_id()));
  }
  HttpResponse response = HttpResponse::json(200, out.dump());
  serialize_span.finish();

  // ALEM metric families behind /ei_metrics — always on, tracing or not.
  obs::LabelSet by_model{{"model", model_name}};
  meter_.histogram("ei_request_latency_seconds", by_model)
      .record(request_timer.elapsed_seconds());
  meter_.counter("ei_model_sim_energy_mj_total", by_model)
      .add(result.batch_energy_j * 1e3);
  meter_.counter("ei_model_rows_total", by_model).add(rows);
  meter_.gauge("ei_model_sim_memory_bytes", by_model)
      .set(static_cast<double>(result.per_sample.memory_bytes));
  return response;
}

namespace {

Json stream_session_json(stream::StreamSession& session) {
  stream::SessionStats stats = session.stats();
  Json out{JsonObject{}};
  out.set("stream", session.id());
  out.set("scenario", session.scenario());
  out.set("algorithm", session.algorithm());
  out.set("model", session.model());
  out.set("policy",
          std::string(stream::to_string(session.options().queue.policy)));
  out.set("capacity", session.options().queue.capacity);
  out.set("deadline_ms", session.options().queue.deadline_s * 1e3);
  out.set("closed", session.closed());
  Json queue{JsonObject{}};
  queue.set("produced", stats.queue.produced);
  queue.set("admitted", stats.queue.admitted);
  queue.set("delivered", stats.queue.delivered);
  queue.set("dropped_deadline", stats.queue.dropped_deadline);
  queue.set("dropped_policy", stats.queue.dropped_policy);
  queue.set("dropped_closed", stats.queue.dropped_closed);
  queue.set("rejected_backpressure", stats.queue.rejected_backpressure);
  queue.set("rejected_closed", stats.queue.rejected_closed);
  queue.set("blocked_pushes", stats.queue.blocked_pushes);
  queue.set("depth", stats.queue.depth);
  out.set("queue", std::move(queue));
  out.set("inferred", stats.inferred);
  out.set("infer_failures", stats.infer_failures);
  out.set("results_pending", stats.results_pending);
  out.set("results_polled", stats.results_polled);
  out.set("results_overflow", stats.results_overflow);
  out.set("last_sim_latency_s", stats.last_sim_latency_s);
  return out;
}

const char* outcome_name(stream::PushOutcome outcome) {
  switch (outcome) {
    case stream::PushOutcome::kAdmitted:
      return "admitted";
    case stream::PushOutcome::kRejectedBackpressure:
      return "backpressure";
    case stream::PushOutcome::kRejectedClosed:
      return "closed";
  }
  return "unknown";
}

}  // namespace

HttpResponse EiService::handle_stream(const HttpRequest& request,
                                      const std::vector<std::string>& segments) {
  // POST /ei_stream — open a session.  Model selection runs the same
  // selecting algorithm as /ei_algorithms, once, at open; every streamed
  // frame then rides the chosen model.
  if (request.method == "POST" && segments.size() == 1) {
    auto scenario = request.query.find("scenario");
    auto algorithm = request.query.find("algorithm");
    if (scenario == request.query.end() || algorithm == request.query.end()) {
      throw ParseError("stream open needs scenario and algorithm");
    }
    std::shared_ptr<const selector::CapabilityDatabase> db =
        capabilities_for(scenario->second, algorithm->second);
    if (db == nullptr) {
      throw NotFound("no model deployed for " + scenario->second + "/" +
                     algorithm->second);
    }
    selector::SelectionRequest selection = parse_selection(request.query);
    auto chosen = selector::select(*db, selection, nullptr);
    if (!chosen.has_value()) {
      return HttpResponse::json(
          400,
          R"({"error":"no deployed model satisfies the ALEM requirements"})");
    }

    stream::StreamSession::Options session_options = options_.streaming.session;
    if (auto it = request.query.find("policy"); it != request.query.end()) {
      auto policy = stream::parse_policy(it->second);
      if (!policy.has_value()) {
        throw ParseError("unknown policy '" + it->second +
                         "' (block|latest_wins|drop_oldest)");
      }
      session_options.queue.policy = *policy;
    }
    if (auto it = request.query.find("capacity"); it != request.query.end()) {
      double capacity = query_double(request.query, "capacity", 0.0);
      if (capacity < 1.0) throw ParseError("capacity must be >= 1");
      session_options.queue.capacity = static_cast<std::size_t>(capacity);
    }
    double deadline_ms = query_double(request.query, "deadline_ms",
                                      session_options.queue.deadline_s * 1e3);
    if (deadline_ms < 0.0) throw ParseError("deadline_ms must be >= 0");
    session_options.queue.deadline_s = deadline_ms * 1e-3;

    std::shared_ptr<stream::StreamSession> session;
    try {
      session = streams_.open(scenario->second, algorithm->second,
                              chosen->model_name, std::move(session_options));
    } catch (const runtime::MemoryPressureError& pressure) {
      Json body{JsonObject{}};
      body.set("error", "memory_pressure");
      body.set("model", pressure.model());
      body.set("needed_bytes", pressure.needed_bytes());
      body.set("budget_bytes", pressure.budget_bytes());
      body.set("resident_bytes", pressure.resident_bytes());
      return HttpResponse::json(503, body.dump());
    } catch (const ResourceExhausted&) {
      Json body{JsonObject{}};
      body.set("error", "too_many_streams");
      body.set("max_sessions", streams_.options().max_sessions);
      return HttpResponse::json(503, body.dump());
    }
    Json out{JsonObject{}};
    out.set("stream", session->id());
    out.set("model", session->model());
    out.set("policy",
            std::string(stream::to_string(session->options().queue.policy)));
    out.set("capacity", session->options().queue.capacity);
    out.set("deadline_ms", session->options().queue.deadline_s * 1e3);
    JsonArray shape;
    for (std::size_t d : session->sample_shape().dims()) shape.emplace_back(d);
    out.set("sample_shape", Json(std::move(shape)));
    return HttpResponse::json(201, out.dump());
  }

  // GET /ei_stream — session index.
  if (request.method == "GET" && segments.size() == 1) {
    Json out{JsonObject{}};
    out.set("active", streams_.active());
    out.set("max_sessions", streams_.options().max_sessions);
    JsonArray rows;
    for (const auto& session : streams_.sessions()) {
      rows.push_back(stream_session_json(*session));
    }
    out.set("streams", Json(std::move(rows)));
    return HttpResponse::json(200, out.dump());
  }

  if (segments.size() < 2) {
    throw ParseError("expected /ei_stream or /ei_stream/{id}[/frames|/results]");
  }
  const std::string& id = segments[1];

  // DELETE /ei_stream/{id} — close + drain, reporting the final counters.
  if (request.method == "DELETE" && segments.size() == 2) {
    std::shared_ptr<stream::StreamSession> session = streams_.get(id);
    if (session == nullptr || !streams_.close(id)) {
      throw NotFound("no stream with id '" + id + "'");
    }
    Json out = stream_session_json(*session);
    out.set("closed", true);
    return HttpResponse::json(200, out.dump());
  }

  std::shared_ptr<stream::StreamSession> session = streams_.get(id);
  if (session == nullptr) {
    throw NotFound("no stream with id '" + id + "'");
  }

  // GET /ei_stream/{id} — stats.
  if (request.method == "GET" && segments.size() == 2) {
    return HttpResponse::json(200, stream_session_json(*session).dump());
  }

  // POST /ei_stream/{id}/frames — submit frames (JSON rows, one frame per
  // row).  kBlock waits a bounded stream_http_max_block_s for space (the
  // handler runs on an event-loop thread), then reports backpressure.
  if (request.method == "POST" && segments.size() == 3 &&
      segments[2] == "frames") {
    nn::Tensor batch =
        runtime::rows_to_batch(resolve_input(request), session->sample_shape());
    std::size_t rows = batch.shape().dim(0);
    std::size_t elems = session->sample_shape().elements();
    std::size_t accepted = 0;
    std::size_t backpressure = 0;
    std::size_t closed = 0;
    JsonArray verdicts;
    for (std::size_t i = 0; i < rows; ++i) {
      nn::Tensor frame(session->sample_shape());
      auto src = batch.data();
      std::copy(src.begin() + static_cast<std::ptrdiff_t>(i * elems),
                src.begin() + static_cast<std::ptrdiff_t>((i + 1) * elems),
                frame.data().begin());
      stream::PushResult pushed =
          session->submit(std::move(frame), options_.stream_http_max_block_s);
      Json verdict{JsonObject{}};
      verdict.set("outcome", std::string(outcome_name(pushed.outcome)));
      if (pushed.outcome == stream::PushOutcome::kAdmitted) {
        ++accepted;
        verdict.set("seq", pushed.seq);
        if (pushed.evicted > 0) verdict.set("evicted", pushed.evicted);
      } else if (pushed.outcome == stream::PushOutcome::kRejectedClosed) {
        ++closed;
      } else {
        ++backpressure;
      }
      if (pushed.trace_id != 0) {
        verdict.set("trace_id", std::to_string(pushed.trace_id));
      }
      verdicts.push_back(std::move(verdict));
    }
    Json out{JsonObject{}};
    out.set("stream", session->id());
    out.set("accepted", accepted);
    out.set("rejected_backpressure", backpressure);
    out.set("rejected_closed", closed);
    out.set("frames", Json(std::move(verdicts)));
    int status = 200;
    if (accepted == 0 && closed > 0) {
      status = 409;  // stream already closed
    } else if (accepted == 0 && backpressure > 0) {
      status = 429;  // full queue held the bounded wait the whole time
    }
    return HttpResponse::json(status, out.dump());
  }

  // GET /ei_stream/{id}/results?max=N — drain delivered results.
  if (request.method == "GET" && segments.size() == 3 &&
      segments[2] == "results") {
    double max = query_double(request.query, "max", 1e18);
    if (max < 1.0) throw ParseError("max must be >= 1");
    std::vector<stream::DeliveredResult> results =
        session->poll(static_cast<std::size_t>(max));
    JsonArray rows;
    for (const stream::DeliveredResult& result : results) {
      Json row{JsonObject{}};
      row.set("seq", result.seq);
      row.set("prediction", result.prediction);
      row.set("queue_wait_s", result.queue_wait_s);
      row.set("infer_s", result.infer_s);
      row.set("sim_latency_s", result.sim_latency_s);
      row.set("sim_energy_j", result.sim_energy_j);
      if (result.trace_id != 0) {
        row.set("trace_id", std::to_string(result.trace_id));
      }
      rows.push_back(std::move(row));
    }
    Json out{JsonObject{}};
    out.set("stream", session->id());
    out.set("results", Json(std::move(rows)));
    out.set("pending", session->stats().results_pending);
    return HttpResponse::json(200, out.dump());
  }

  return HttpResponse::json(405, R"({"error":"unsupported ei_stream call"})");
}

HttpResponse EiService::handle_models(const HttpRequest& request,
                                      const std::vector<std::string>& segments) {
  if (request.method == "GET" && segments.size() == 1) {
    JsonArray models;
    for (const std::string& name : registry_.names()) {
      runtime::ModelEntryPtr entry = registry_.get_if(name);
      if (entry == nullptr) continue;  // undeployed between names() and here
      Json row{JsonObject{}};
      row.set("name", name);
      row.set("scenario", entry->scenario);
      row.set("algorithm", entry->algorithm);
      row.set("accuracy", entry->accuracy);
      row.set("params", entry->model.param_count());
      row.set("storage_bytes", entry->model.storage_bytes());
      row.set("int8_fraction", hwsim::model_int8_fraction(entry->model));
      row.set("rollback_available", registry_.has_prior(name));
      models.push_back(std::move(row));
    }
    Json out{JsonObject{}};
    out.set("models", Json(std::move(models)));
    out.set("registry_version", registry_.version());
    return HttpResponse::json(200, out.dump());
  }

  if (request.method == "GET" && segments.size() == 2) {
    runtime::ModelEntryPtr entry = registry_.get(segments[1]);  // throws NotFound
    Json out{JsonObject{}};
    out.set("scenario", entry->scenario);
    out.set("algorithm", entry->algorithm);
    out.set("accuracy", entry->accuracy);
    out.set("model", nn::model_to_json(entry->model));
    return HttpResponse::json(200, out.dump());
  }

  if (request.method == "POST" && segments.size() == 1) {
    auto scenario = request.query.find("scenario");
    auto algorithm = request.query.find("algorithm");
    if (scenario == request.query.end() || algorithm == request.query.end()) {
      throw ParseError("model deployment needs scenario and algorithm");
    }
    nn::Model model = nn::model_from_json(Json::parse(request.body));
    runtime::ModelEntry entry{scenario->second, algorithm->second,
                              std::move(model),
                              query_double(request.query, "accuracy", 0.0)};
    std::string name = entry.model.name();
    bool swapped = registry_.contains(name);
    registry_.put(std::move(entry));
    if (swapped) meter_.counter("ei_model_swaps_total").increment();
    Json out{JsonObject{}};
    out.set("deployed", name);
    out.set("swapped", swapped);
    out.set("registry_version", registry_.version());
    return HttpResponse::json(201, out.dump());
  }

  if (request.method == "DELETE" && segments.size() == 2) {
    const std::string& name = segments[1];
    auto rollback = request.query.find("rollback");
    if (rollback != request.query.end() && rollback->second != "0") {
      // Restore the version the last hot-swap replaced.
      if (!registry_.contains(name)) {
        throw NotFound("no model named '" + name + "'");
      }
      if (!registry_.rollback(name)) {
        return HttpResponse::json(
            409, R"({"error":"no prior version retained for ')" + name +
                     R"('"})");
      }
      meter_.counter("ei_model_rollbacks_total").increment();
      Json out{JsonObject{}};
      out.set("rolled_back", name);
      out.set("registry_version", registry_.version());
      return HttpResponse::json(200, out.dump());
    }
    if (!registry_.erase(name)) {
      throw NotFound("no model named '" + name + "'");
    }
    Json out{JsonObject{}};
    out.set("undeployed", name);
    out.set("registry_version", registry_.version());
    return HttpResponse::json(200, out.dump());
  }

  return HttpResponse::json(405, R"({"error":"unsupported ei_models call"})");
}

}  // namespace openei::libei
