// Named metric families with Prometheus text exposition — what
// GET /ei_metrics serves and what /ei_status's per-model percentiles read.
//
// Three metric kinds, all safe for concurrent recording:
//   - counter: monotonically increasing double (request totals, energy mJ);
//   - gauge:   last-set double (model memory footprint, config knobs);
//   - histogram: log-spaced obs::Histogram (per-model request latency).
//
// Series are keyed by (family name, label set).  Lookup takes the registry
// mutex; the returned reference is stable for the registry's lifetime, so
// hot paths can cache it and record with no lock at all.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace openei::obs {

/// Ordered label set, e.g. {{"model", "detector-q8"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotone double counter (Prometheus counters may be fractional — energy
/// in mJ is).  add() must be non-negative.
class Counter {
 public:
  void add(double delta) {
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void increment() { add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-writer-wins double gauge.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  /// Registers help text for a family (shown as "# HELP" in exposition).
  void describe(const std::string& name, std::string help);

  /// Find-or-create; references remain valid for the registry's lifetime.
  Counter& counter(const std::string& name, const LabelSet& labels = {});
  Gauge& gauge(const std::string& name, const LabelSet& labels = {});
  Histogram& histogram(const std::string& name, const LabelSet& labels = {},
                       double min_bound = 1e-6, double growth = 2.0,
                       std::size_t bucket_count = 25);

  /// Every histogram series of `name` with its labels (for /ei_status's
  /// per-model percentile block).
  std::vector<std::pair<LabelSet, Histogram::Snapshot>> histogram_snapshots(
      const std::string& name) const;

  /// Prometheus text exposition format (text/plain; version=0.0.4):
  /// HELP/TYPE headers, then one line per series; histograms expand to
  /// cumulative _bucket{le=...} lines plus _sum and _count.
  std::string render_prometheus() const;

  /// The same content as structured JSON (round-trip tested; also easier to
  /// consume from tests and dashboards that already speak libei's JSON).
  common::Json to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    /// Keyed by the rendered label string for deterministic exposition.
    std::map<std::string, Series> series;
  };

  Family& family_for(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Renders {a="x",b="y"} (empty string for no labels); escapes per the
/// Prometheus text format.  Exposed for tests.
std::string render_labels(const LabelSet& labels);

}  // namespace openei::obs
