#include "obs/histogram.h"

#include <algorithm>

#include "common/error.h"

namespace openei::obs {

Histogram::Histogram(double min_bound, double growth, std::size_t bucket_count) {
  OPENEI_CHECK(min_bound > 0.0, "histogram min bound must be positive, got ",
               min_bound);
  OPENEI_CHECK(growth > 1.0, "histogram growth must exceed 1, got ", growth);
  OPENEI_CHECK(bucket_count >= 1, "histogram needs at least one bucket");
  upper_bounds_.reserve(bucket_count);
  double bound = min_bound;
  for (std::size_t i = 0; i < bucket_count; ++i) {
    upper_bounds_.push_back(bound);
    bound *= growth;
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bucket_count + 1);
  for (std::size_t i = 0; i <= bucket_count; ++i) buckets_[i].store(0);
}

void Histogram::record(double value) {
  // First bucket whose upper bound is >= value; past the last finite bound
  // the value lands in the +Inf overflow slot.
  std::size_t index = static_cast<std::size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add(value);
}

void Histogram::add(double value) {
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.counts.resize(upper_bounds_.size() + 1);
  for (std::size_t i = 0; i < snap.counts.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::merge_from(const Histogram& other) {
  OPENEI_CHECK(same_layout(other),
               "cannot merge histograms with different bucket layouts");
  Snapshot theirs = other.snapshot();
  for (std::size_t i = 0; i < theirs.counts.size(); ++i) {
    buckets_[i].fetch_add(theirs.counts[i], std::memory_order_relaxed);
  }
  count_.fetch_add(theirs.count, std::memory_order_relaxed);
  add(theirs.sum);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, rounded up).
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::uint64_t next = cumulative + counts[i];
    if (rank <= next) {
      if (i >= upper_bounds.size()) {
        // Overflow bucket: best estimate is its lower bound.
        return upper_bounds.empty() ? 0.0 : upper_bounds.back();
      }
      double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
      double upper = upper_bounds[i];
      double within = counts[i] == 0
                          ? 0.0
                          : static_cast<double>(rank - cumulative) /
                                static_cast<double>(counts[i]);
      return lower + (upper - lower) * within;
    }
    cumulative = next;
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

common::Json Histogram::Snapshot::to_json() const {
  common::Json out{common::JsonObject{}};
  common::JsonArray buckets;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    common::Json row{common::JsonObject{}};
    if (i < upper_bounds.size()) {
      row.set("le", upper_bounds[i]);
    } else {
      row.set("le", "+Inf");
    }
    row.set("count", cumulative);
    buckets.push_back(std::move(row));
  }
  out.set("buckets", common::Json(std::move(buckets)));
  out.set("count", count);
  out.set("sum", sum);
  return out;
}

}  // namespace openei::obs
