// Fixed log-spaced histogram for ALEM observability (the measurement layer
// the paper's Eq. 1 tuple rests on — see DESIGN.md "Observability").
//
// Design constraints, in priority order:
//   - record() must be safe from any thread with no lock (connection
//     workers, batcher flush threads, and the /ei_metrics reader all race);
//   - bucket layout is fixed at construction so two histograms with the
//     same layout merge by plain bucket-wise addition (per-thread shards,
//     fleet roll-ups);
//   - exposition needs cumulative Prometheus-style buckets and cheap
//     quantile estimates, both served from an immutable Snapshot so readers
//     never see a torn view mid-scan.
//
// Buckets are geometric: finite upper bounds min_bound * growth^i for
// i in [0, bucket_count), plus an implicit +Inf overflow bucket.  Values
// <= 0 land in the first bucket (latencies/energies are non-negative;
// zero is a legitimate "too fast to measure" reading).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/json.h"

namespace openei::obs {

class Histogram {
 public:
  /// Latency-oriented default layout: 1 µs .. ~34 s in x2 steps.
  Histogram() : Histogram(1e-6, 2.0, 25) {}

  /// `min_bound` > 0, `growth` > 1, `bucket_count` >= 1.
  Histogram(double min_bound, double growth, std::size_t bucket_count);

  /// Lock-free (relaxed atomics); safe from any thread.
  void record(double value);

  /// Immutable copy of the counters for exposition and quantiles.
  struct Snapshot {
    /// Finite upper bounds, strictly increasing; counts has one extra
    /// trailing slot for the +Inf overflow bucket.
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
    /// owning bucket; the overflow bucket reports its lower bound.  Returns
    /// 0 when empty.
    double quantile(double q) const;

    /// {"buckets":[{"le":b,"count":cumulative}...],"count":n,"sum":s}
    common::Json to_json() const;
  };
  Snapshot snapshot() const;

  /// Adds `other`'s counters into this histogram bucket-wise.  Layouts must
  /// match exactly (same min bound, growth, bucket count).
  void merge_from(const Histogram& other);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  bool same_layout(const Histogram& other) const {
    return upper_bounds_ == other.upper_bounds_;
  }

 private:
  void add(double value);  // CAS accumulate into sum_

  std::vector<double> upper_bounds_;
  /// upper_bounds_.size() + 1 slots; last is the +Inf overflow bucket.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace openei::obs
