// Per-request tracing: the observability layer that attributes the paper's
// ALEM tuple (Eq. 1) to individual requests, models, and pipeline stages
// instead of the coarse aggregate counters /ei_status started with.
//
// Model: a Tracer mints traces; a trace is a tree of spans; a Span is a
// move-only RAII guard that stamps start/end from the wall clock and carries
// string/number attributes (simulated latency/energy/memory from hwsim, peak
// tensor bytes from tensor::AllocationTrackingScope, batch shapes...).
// Finished traces land in a bounded in-memory ring served by
// GET /ei_trace/{id}.
//
// Determinism: trace and span ids derive from a seed and creation ordinals
// via splitmix64 — no wall-clock bits — so a fixed seed plus a fixed request
// order reproduces the exact same ids (timestamps still vary; ids never do).
//
// Disabled mode: a disabled Tracer returns inert Spans that hold no state
// and allocate nothing; every operation on them is a cheap branch.  This is
// what `EiService::Options.tracing.enabled = false` (the default) buys.
//
// Threading: Spans of one trace may live on different threads (a request's
// queue-wait span finishes on the micro-batcher's flush thread).  Span
// records live in per-trace chunked storage that never invalidates slot
// addresses: each guard holds a stable pointer to its own slot, so opening a
// span takes the trace mutex once and everything after — attribute writes,
// the end-time stamp in finish() — is a plain unshared write with no lock
// and no record moves.  Slots are appended in creation order, so the
// committed trace needs no sort; the final hand-off to the ring synchronises
// through the guards' shared_ptr release.  A trace commits to the ring when
// its last Span guard is released; children must therefore not outlive the
// work the root span brackets (they never do: request handlers join all
// futures before returning).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"

namespace openei::obs {

/// One attribute on a span: a number or a string.
struct AttributeValue {
  enum class Kind { kNumber, kString };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string text;

  common::Json to_json() const {
    return kind == Kind::kNumber ? common::Json(number) : common::Json(text);
  }
};

/// Span attributes, in insertion order.
using AttributeVec = std::vector<std::pair<std::string, AttributeValue>>;

/// A finished span, as stored in the trace ring.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  /// Creation order within the trace (root = 1); slots are allocated in this
  /// order, so a committed trace's spans are already creation-ordered.
  std::uint64_t ordinal = 0;
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  AttributeVec attributes;

  double duration_us() const {
    return static_cast<double>(end_ns - start_ns) * 1e-3;
  }
  const AttributeValue* find_attribute(const std::string& key) const;
};

/// A finished trace: spans in creation order, spans[0] is the root.
struct TraceRecord {
  std::uint64_t trace_id = 0;
  std::vector<SpanRecord> spans;

  const SpanRecord& root() const { return spans.front(); }
  const SpanRecord* find_span(const std::string& name) const;
  std::vector<const SpanRecord*> children_of(std::uint64_t span_id) const;

  /// Nested span-tree JSON: {"trace_id":..,"span_count":..,"root":{
  ///   "id","name","start_us" (relative to root start),"duration_us",
  ///   "attributes":{...},"children":[...]}}.
  common::Json to_json() const;
};

class Tracer;

namespace detail {
/// Shared mutable state of one in-flight trace.  Span guards co-own it; the
/// last release commits the finished records to the tracer's ring.  open()
/// is the only locked operation: it appends a slot (stable address) that the
/// owning Span then mutates without synchronisation.
///
/// Slot storage is a ladder of doubling-capacity chunks: a chunk never
/// reallocates once opened, so slot pointers stay valid, and a typical
/// 6-span request trace costs exactly one chunk allocation that commit then
/// moves straight into the ring with zero record copies.
class TraceState {
 public:
  TraceState(Tracer* tracer, std::uint64_t trace_id);
  ~TraceState();

  /// Appends a creation-ordered slot with a deterministic id and a fresh
  /// start timestamp; the returned pointer stays valid for the trace's life.
  SpanRecord* open(std::string_view name, std::uint64_t parent_id);
  /// A recycled (or fresh) attribute buffer from the tracer's pool.
  AttributeVec take_attribute_storage();
  std::uint64_t trace_id() const { return trace_id_; }

  /// 8 * 2^23 ≈ 67M spans before the ladder runs out — far past OOM.
  static constexpr std::size_t kMaxChunks = 24;
  static constexpr std::size_t kFirstChunkCapacity = 8;

 private:
  Tracer* tracer_;
  std::uint64_t trace_id_;
  std::mutex mutex_;
  std::array<std::vector<SpanRecord>, kMaxChunks> chunks_;
  std::size_t chunk_count_ = 0;
  std::uint64_t span_count_ = 0;
};
}  // namespace detail

/// Move-only RAII span guard.  A default-constructed Span is inert: every
/// member function is a no-op branch, which is what instrumented code holds
/// when tracing is disabled.  An active Span exclusively owns its record
/// slot — attribute writes are plain appends, safe from whichever single
/// thread currently holds the guard.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept
      : state_(std::move(other.state_)), slot_(other.slot_) {
    other.state_.reset();
    other.slot_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      state_ = std::move(other.state_);
      slot_ = other.slot_;
      other.state_.reset();
      other.slot_ = nullptr;
    }
    return *this;
  }
  ~Span() { finish(); }

  bool active() const { return state_ != nullptr; }
  std::uint64_t id() const { return state_ ? slot_->id : 0; }
  std::uint64_t trace_id() const { return state_ ? state_->trace_id() : 0; }

  /// Opens a child span under this one (inert if this span is inert).
  Span child(std::string_view name) const;

  void set_attribute(std::string_view key, double value);
  void set_attribute(std::string_view key, std::string value);

  /// Stamps the end time and releases this guard's hold on the trace
  /// (idempotent; the destructor calls it).
  void finish();

 private:
  friend class Tracer;
  Span(std::shared_ptr<detail::TraceState> state, SpanRecord* slot)
      : state_(std::move(state)), slot_(slot) {}

  void append_attribute(std::string_view key, AttributeValue value);

  std::shared_ptr<detail::TraceState> state_;
  SpanRecord* slot_ = nullptr;
};

/// Mints traces and keeps the bounded ring of finished ones.
class Tracer {
 public:
  struct Options {
    bool enabled = false;
    /// Seed for deterministic trace/span ids (never wall-clock derived).
    std::uint64_t seed = 42;
    /// Finished traces retained; older ones are evicted FIFO.
    std::size_t ring_capacity = 128;
  };

  Tracer() : Tracer(Options{}) {}
  explicit Tracer(Options options);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return options_.enabled; }
  const Options& options() const { return options_; }

  /// Starts a trace and returns its root span; inert when disabled.
  Span begin_trace(std::string_view name);

  /// Looks a finished trace up by id.
  std::optional<TraceRecord> find(std::uint64_t trace_id) const;

  /// Ids of retained finished traces, oldest first.
  std::vector<std::uint64_t> recent_trace_ids() const;

  /// Total traces committed since construction (evicted ones included).
  std::uint64_t completed_traces() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  friend class detail::TraceState;
  void commit(TraceRecord record);

  // Buffer recycling: ring eviction donates its span-storage vector and
  // emptied attribute vectors (capacities intact) back to these freelists,
  // so steady-state tracing reuses warm buffers instead of round-tripping
  // malloc — which matters doubly under the thread-per-connection HTTP
  // server, where per-request threads would otherwise free another thread's
  // allocations against a contended arena.  Oversized buffers (a huge trace)
  // are dropped rather than pinned.
  static constexpr std::size_t kSpanPoolCapacity = 16;
  static constexpr std::size_t kAttrPoolCapacity = 64;
  static constexpr std::size_t kMaxRecycledSpanCapacity = 1024;
  static constexpr std::size_t kMaxRecycledAttrCapacity = 64;
  std::vector<SpanRecord> take_span_storage();
  AttributeVec take_attribute_storage();
  void recycle(TraceRecord evicted);

  Options options_;
  std::atomic<std::uint64_t> next_trace_{0};
  std::atomic<std::uint64_t> completed_{0};
  mutable std::mutex ring_mutex_;
  std::deque<TraceRecord> ring_;
  std::mutex pool_mutex_;
  std::vector<std::vector<SpanRecord>> span_pool_;
  std::vector<AttributeVec> attr_pool_;
};

/// splitmix64 — the id mixer (public for determinism tests).
std::uint64_t mix_id(std::uint64_t x);

}  // namespace openei::obs
