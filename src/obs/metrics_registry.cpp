#include "obs/metrics_registry.h"

#include <cstdio>

#include "common/error.h"

namespace openei::obs {

namespace {

std::string format_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string render_labels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

void MetricsRegistry::describe(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mutex_);
  families_[name].help = std::move(help);
}

MetricsRegistry::Family& MetricsRegistry::family_for(const std::string& name,
                                                     Kind kind) {
  Family& family = families_[name];
  if (family.series.empty()) {
    family.kind = kind;
  } else {
    OPENEI_CHECK(family.kind == kind, "metric family '", name,
                 "' already registered with a different kind");
  }
  return family;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_for(name, Kind::kCounter);
  Series& series = family.series[render_labels(labels)];
  if (!series.counter) {
    series.labels = labels;
    series.counter = std::make_unique<Counter>();
  }
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_for(name, Kind::kGauge);
  Series& series = family.series[render_labels(labels)];
  if (!series.gauge) {
    series.labels = labels;
    series.gauge = std::make_unique<Gauge>();
  }
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const LabelSet& labels, double min_bound,
                                      double growth, std::size_t bucket_count) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_for(name, Kind::kHistogram);
  Series& series = family.series[render_labels(labels)];
  if (!series.histogram) {
    series.labels = labels;
    series.histogram =
        std::make_unique<Histogram>(min_bound, growth, bucket_count);
  }
  return *series.histogram;
}

std::vector<std::pair<LabelSet, Histogram::Snapshot>>
MetricsRegistry::histogram_snapshots(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<LabelSet, Histogram::Snapshot>> out;
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kHistogram) return out;
  for (const auto& [key, series] : it->second.series) {
    if (series.histogram) {
      out.emplace_back(series.labels, series.histogram->snapshot());
    }
  }
  return out;
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (family.series.empty()) continue;
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& [label_string, series] : family.series) {
      if (family.kind == Kind::kCounter && series.counter) {
        out += name + label_string + " " +
               format_number(series.counter->value()) + "\n";
      } else if (family.kind == Kind::kGauge && series.gauge) {
        out += name + label_string + " " +
               format_number(series.gauge->value()) + "\n";
      } else if (family.kind == Kind::kHistogram && series.histogram) {
        Histogram::Snapshot snap = series.histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
          cumulative += snap.counts[i];
          LabelSet bucket_labels = series.labels;
          bucket_labels.emplace_back(
              "le", i < snap.upper_bounds.size()
                        ? format_number(snap.upper_bounds[i])
                        : "+Inf");
          out += name + "_bucket" + render_labels(bucket_labels) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_sum" + label_string + " " + format_number(snap.sum) +
               "\n";
        out += name + "_count" + label_string + " " +
               std::to_string(snap.count) + "\n";
      }
    }
  }
  return out;
}

common::Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  common::Json out{common::JsonObject{}};
  for (const auto& [name, family] : families_) {
    if (family.series.empty()) continue;
    common::Json family_json{common::JsonObject{}};
    const char* type = family.kind == Kind::kCounter   ? "counter"
                       : family.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    family_json.set("type", type);
    common::Json series_json{common::JsonObject{}};
    for (const auto& [label_string, series] : family.series) {
      std::string key = label_string.empty() ? "{}" : label_string;
      if (series.counter) {
        series_json.set(key, series.counter->value());
      } else if (series.gauge) {
        series_json.set(key, series.gauge->value());
      } else if (series.histogram) {
        series_json.set(key, series.histogram->snapshot().to_json());
      }
    }
    family_json.set("series", std::move(series_json));
    out.set(name, std::move(family_json));
  }
  return out;
}

}  // namespace openei::obs
