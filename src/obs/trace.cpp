#include "obs/trace.h"

#include <algorithm>
#include <iterator>

#include "common/clock.h"
#include "common/error.h"

namespace openei::obs {

std::uint64_t mix_id(std::uint64_t x) {
  // splitmix64 finalizer: bijective, so distinct inputs stay distinct.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const AttributeValue* SpanRecord::find_attribute(const std::string& key) const {
  for (const auto& [name, value] : attributes) {
    if (name == key) return &value;
  }
  return nullptr;
}

const SpanRecord* TraceRecord::find_span(const std::string& name) const {
  for (const SpanRecord& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::vector<const SpanRecord*> TraceRecord::children_of(
    std::uint64_t span_id) const {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& span : spans) {
    if (span.parent_id == span_id && span.id != span_id) out.push_back(&span);
  }
  return out;
}

namespace {

common::Json span_to_json(const TraceRecord& trace, const SpanRecord& span,
                          std::int64_t trace_start_ns) {
  common::Json out{common::JsonObject{}};
  // Ids are full-width 64-bit values; JSON numbers are doubles (53-bit
  // mantissa), so ids travel as decimal strings to stay exact.
  out.set("id", std::to_string(span.id));
  out.set("name", span.name);
  out.set("start_us",
          static_cast<double>(span.start_ns - trace_start_ns) * 1e-3);
  out.set("duration_us", span.duration_us());
  common::Json attributes{common::JsonObject{}};
  for (const auto& [key, value] : span.attributes) {
    attributes.set(key, value.to_json());
  }
  out.set("attributes", std::move(attributes));
  common::JsonArray children;
  for (const SpanRecord* child : trace.children_of(span.id)) {
    children.push_back(span_to_json(trace, *child, trace_start_ns));
  }
  out.set("children", common::Json(std::move(children)));
  return out;
}

}  // namespace

common::Json TraceRecord::to_json() const {
  common::Json out{common::JsonObject{}};
  out.set("trace_id", std::to_string(trace_id));
  out.set("span_count", spans.size());
  if (!spans.empty()) {
    out.set("root", span_to_json(*this, spans.front(), spans.front().start_ns));
  }
  return out;
}

namespace detail {

TraceState::TraceState(Tracer* tracer, std::uint64_t trace_id)
    : tracer_(tracer), trace_id_(trace_id) {}

TraceState::~TraceState() {
  // Last guard released: the trace is complete.  Slots were appended in
  // creation order, so the records are already ordered.  A single-chunk
  // trace (the common case) moves wholesale into the ring; a ladder that
  // grew concatenates once.
  std::vector<SpanRecord> spans;
  if (chunk_count_ == 1) {
    spans = std::move(chunks_[0]);
  } else {
    spans.reserve(static_cast<std::size_t>(span_count_));
    for (std::size_t c = 0; c < chunk_count_; ++c) {
      std::move(chunks_[c].begin(), chunks_[c].end(),
                std::back_inserter(spans));
    }
  }
  tracer_->commit(TraceRecord{trace_id_, std::move(spans)});
}

SpanRecord* TraceState::open(std::string_view name, std::uint64_t parent_id) {
  SpanRecord* slot;
  std::uint64_t ordinal;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (chunk_count_ == 0) {
      chunks_[0] = tracer_->take_span_storage();
      chunk_count_ = 1;
    } else if (chunks_[chunk_count_ - 1].size() ==
               chunks_[chunk_count_ - 1].capacity()) {
      OPENEI_CHECK(chunk_count_ < kMaxChunks,
                   "trace exceeds the span-storage ladder");
      chunks_[chunk_count_].reserve(kFirstChunkCapacity << chunk_count_);
      ++chunk_count_;
    }
    slot = &chunks_[chunk_count_ - 1].emplace_back();
    ordinal = ++span_count_;
  }
  slot->ordinal = ordinal;
  slot->id = mix_id(trace_id_ + ordinal);
  slot->parent_id = parent_id;
  slot->name = name;
  slot->start_ns = common::wall_now_ns();
  return slot;
}

AttributeVec TraceState::take_attribute_storage() {
  return tracer_->take_attribute_storage();
}

}  // namespace detail

Span Span::child(std::string_view name) const {
  if (!state_) return Span{};
  return Span{state_, state_->open(name, slot_->id)};
}

void Span::append_attribute(std::string_view key, AttributeValue value) {
  auto& attributes = slot_->attributes;
  for (auto& [name, existing] : attributes) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  if (attributes.capacity() == 0) attributes = state_->take_attribute_storage();
  attributes.emplace_back(key, std::move(value));
}

void Span::set_attribute(std::string_view key, double value) {
  if (!state_) return;
  AttributeValue attribute;
  attribute.kind = AttributeValue::Kind::kNumber;
  attribute.number = value;
  append_attribute(key, std::move(attribute));
}

void Span::set_attribute(std::string_view key, std::string value) {
  if (!state_) return;
  AttributeValue attribute;
  attribute.kind = AttributeValue::Kind::kString;
  attribute.text = std::move(value);
  append_attribute(key, std::move(attribute));
}

void Span::finish() {
  if (!state_) return;
  slot_->end_ns = common::wall_now_ns();
  slot_ = nullptr;
  state_.reset();
}

Tracer::Tracer(Options options) : options_(options) {
  OPENEI_CHECK(options_.ring_capacity >= 1, "trace ring needs capacity >= 1");
}

Span Tracer::begin_trace(std::string_view name) {
  if (!options_.enabled) return Span{};
  std::uint64_t ordinal = next_trace_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t trace_id = mix_id(options_.seed ^ mix_id(ordinal));
  if (trace_id == 0) trace_id = 1;  // 0 is the "no parent" sentinel
  auto state = std::make_shared<detail::TraceState>(this, trace_id);
  SpanRecord* root = state->open(name, /*parent_id=*/0);
  return Span{std::move(state), root};
}

void Tracer::commit(TraceRecord record) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  TraceRecord evicted;  // destroyed after the lock is released
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    ring_.push_back(std::move(record));
    if (ring_.size() > options_.ring_capacity) {
      evicted = std::move(ring_.front());
      ring_.pop_front();
    }
  }
  if (!evicted.spans.empty()) recycle(std::move(evicted));
}

std::vector<SpanRecord> Tracer::take_span_storage() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!span_pool_.empty()) {
      std::vector<SpanRecord> recycled = std::move(span_pool_.back());
      span_pool_.pop_back();
      return recycled;
    }
  }
  std::vector<SpanRecord> fresh;
  fresh.reserve(detail::TraceState::kFirstChunkCapacity);
  return fresh;
}

AttributeVec Tracer::take_attribute_storage() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!attr_pool_.empty()) {
      AttributeVec recycled = std::move(attr_pool_.back());
      attr_pool_.pop_back();
      return recycled;
    }
  }
  AttributeVec fresh;
  fresh.reserve(8);
  return fresh;
}

void Tracer::recycle(TraceRecord evicted) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    for (SpanRecord& span : evicted.spans) {
      if (span.attributes.capacity() == 0 ||
          span.attributes.capacity() > kMaxRecycledAttrCapacity) {
        continue;
      }
      if (attr_pool_.size() >= kAttrPoolCapacity) break;
      span.attributes.clear();  // keeps the buffer, frees the contents
      attr_pool_.push_back(std::move(span.attributes));
    }
    if (span_pool_.size() < kSpanPoolCapacity &&
        evicted.spans.capacity() >= detail::TraceState::kFirstChunkCapacity &&
        evicted.spans.capacity() <= kMaxRecycledSpanCapacity) {
      evicted.spans.clear();  // destroys records; harvested buffers survived
      span_pool_.push_back(std::move(evicted.spans));
    }
  }
}

std::optional<TraceRecord> Tracer::find(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  for (const TraceRecord& record : ring_) {
    if (record.trace_id == trace_id) return record;
  }
  return std::nullopt;
}

std::vector<std::uint64_t> Tracer::recent_trace_ids() const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  std::vector<std::uint64_t> ids;
  ids.reserve(ring_.size());
  for (const TraceRecord& record : ring_) ids.push_back(record.trace_id);
  return ids;
}

}  // namespace openei::obs
