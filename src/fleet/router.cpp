#include "fleet/router.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"

namespace openei::fleet {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using net::HttpRequest;
using net::HttpResponse;

Router::Router(std::vector<NodeEndpoint> nodes, RouterOptions options)
    : options_(std::move(options)),
      tracer_(options_.tracing),
      ring_(options_.vnodes_per_node, options_.seed) {
  OPENEI_CHECK(!nodes.empty(), "router needs at least one node");
  OPENEI_CHECK(options_.replication >= 1, "replication must be >= 1");
  OPENEI_CHECK(options_.node_failure_threshold >= 1,
               "node_failure_threshold must be >= 1");
  OPENEI_CHECK(options_.probe_every >= 1, "probe_every must be >= 1");
  meter_.describe("ei_fleet_requests_total",
                  "Requests routed through the fleet router, by outcome");
  meter_.describe("ei_fleet_forwards_total",
                  "Forward attempts per member node, by outcome");
  meter_.describe("ei_fleet_failovers_total",
                  "Requests that needed at least one replica hop");
  meter_.describe("ei_fleet_failbacks_total",
                  "Nodes returned to the ring after a successful probe");
  meter_.describe("ei_fleet_node_down_total",
                  "Nodes removed from the ring after forward failures");
  meter_.describe("ei_fleet_probes_total", "Failback health probes, by result");
  meter_.describe("ei_fleet_replications_total",
                  "Model copies pushed to owners during (re)placement");
  meter_.describe("ei_fleet_nodes", "Member nodes (static)");
  meter_.describe("ei_fleet_up_nodes", "Member nodes currently in the ring");
  meter_.describe("ei_fleet_route_latency_seconds",
                  "End-to-end routed request latency");
  members_.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    OPENEI_CHECK(find_member(nodes[i].id) == nullptr, "duplicate node id '",
                 nodes[i].id, "'");
    Member member;
    member.endpoint = nodes[i];
    net::ResilientClient::Options client_options = options_.client;
    client_options.seed = options_.client.seed + i;  // independent jitter
    client_options.metrics = resilience_;
    member.client = std::make_unique<net::ResilientClient>(
        nodes[i].port, std::move(client_options));
    members_.push_back(std::move(member));
    ring_.add_node(nodes[i].id);
  }
  meter_.gauge("ei_fleet_nodes").set(static_cast<double>(members_.size()));
  meter_.gauge("ei_fleet_up_nodes").set(static_cast<double>(members_.size()));
}

Router::~Router() { stop_server(); }

Router::Member* Router::find_member(const std::string& node_id) {
  for (Member& member : members_) {
    if (member.endpoint.id == node_id) return &member;
  }
  return nullptr;
}

const Router::Member* Router::find_member(const std::string& node_id) const {
  for (const Member& member : members_) {
    if (member.endpoint.id == node_id) return &member;
  }
  return nullptr;
}

std::string Router::routing_key(const HttpRequest& request) {
  // The session key spreads load *within* an owner set (see route()); the
  // placement key must stay scenario/algorithm so requests always land on
  // nodes that hold their models.
  auto segments = common::split_nonempty(request.path, '/');
  if (segments.size() >= 3 && segments[0] == "ei_algorithms") {
    return segments[1] + '/' + segments[2];
  }
  return request.path;
}

std::vector<std::string> Router::owners_of(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.owners(key, options_.replication);
}

bool Router::node_up(const std::string& node_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Member* member = find_member(node_id);
  return member != nullptr && member->up;
}

std::vector<std::string> Router::up_nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.nodes();
}

void Router::note_forward_failure(const std::string& node_id) {
  bool transitioned = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Member* member = find_member(node_id);
    if (member == nullptr || !member->up) return;
    if (++member->consecutive_failures < options_.node_failure_threshold) {
      return;
    }
    member->up = false;
    ring_.remove_node(node_id);
    ++down_count_;
    transitioned = true;
    meter_.gauge("ei_fleet_up_nodes")
        .set(static_cast<double>(ring_.node_count()));
  }
  if (transitioned) {
    common::log_info("fleet: node ", node_id, " marked down");
    meter_.counter("ei_fleet_node_down_total").increment();
    // Keys the dead node owned now resolve to new owner sets; make sure
    // those sets actually hold the models before the next request needs
    // them.
    replicate_tracked_models();
  }
}

void Router::note_forward_success(const std::string& node_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Member* member = find_member(node_id);
  if (member != nullptr) member->consecutive_failures = 0;
}

void Router::mark_down(const std::string& node_id) {
  // Force the threshold in one step (used by tests; the serving path goes
  // through note_forward_failure).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Member* member = find_member(node_id);
    if (member == nullptr || !member->up) return;
    member->consecutive_failures = options_.node_failure_threshold - 1;
  }
  note_forward_failure(node_id);
}

void Router::mark_up(const std::string& node_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Member* member = find_member(node_id);
    if (member == nullptr || member->up) return;
    member->up = true;
    member->consecutive_failures = 0;
    ring_.add_node(node_id);
    --down_count_;
    meter_.gauge("ei_fleet_up_nodes")
        .set(static_cast<double>(ring_.node_count()));
  }
  common::log_info("fleet: node ", node_id, " failed back into the ring");
  meter_.counter("ei_fleet_failbacks_total").increment();
  // The revived node re-enters the ring at its old points, so keys rebalance
  // back to it — and may need their models (a revived replacement process
  // starts empty; an in-process revive still has them, the push then 201s as
  // a harmless hot-swap of the identical model).
  replicate_tracked_models();
}

std::size_t Router::probe_down_nodes() {
  // Snapshot the down set; probing does network I/O and must not hold the
  // state mutex.
  std::vector<std::string> down;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Member& member : members_) {
      if (!member.up) down.push_back(member.endpoint.id);
    }
  }
  std::size_t revived = 0;
  for (const std::string& node_id : down) {
    obs::Span probe_span = tracer_.begin_trace("fleet.probe");
    if (probe_span.active()) probe_span.set_attribute("node", node_id);
    Member* member = find_member(node_id);  // members_ vector never resizes
    bool alive = member->client->probe(options_.probe_target);
    meter_
        .counter("ei_fleet_probes_total",
                 {{"result", alive ? "up" : "down"}})
        .increment();
    if (probe_span.active()) {
      probe_span.set_attribute("alive", alive ? 1.0 : 0.0);
    }
    if (alive) {
      mark_up(node_id);
      ++revived;
    }
  }
  return revived;
}

void Router::maybe_probe() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (down_count_ == 0) return;
    if (++requests_since_probe_ < options_.probe_every) return;
    requests_since_probe_ = 0;
  }
  probe_down_nodes();
}

HttpResponse Router::route(const std::string& method, const std::string& target,
                           const std::string& body) {
  HttpRequest request;
  request.method = method;
  net::parse_target(target, request.path, request.query);
  request.body = body;
  return route(request);
}

HttpResponse Router::route(const HttpRequest& request) {
  common::Stopwatch route_timer;
  maybe_probe();

  // Model management is placement-aware: a deploy through the front door
  // replicates to the key's owner set, and model-addressed calls route by
  // the model's *placement* key (scenario/algorithm), not the URL path.
  auto segments = common::split_nonempty(request.path, '/');
  if (!segments.empty() && segments[0] == "ei_models") {
    if (request.method == "POST" && segments.size() == 1) {
      auto scenario = request.query.find("scenario");
      auto algorithm = request.query.find("algorithm");
      if (scenario == request.query.end() ||
          algorithm == request.query.end()) {
        return HttpResponse::json(
            400, R"({"error":"model deployment needs scenario and algorithm"})");
      }
      double accuracy = 0.0;
      if (auto it = request.query.find("accuracy");
          it != request.query.end()) {
        accuracy = std::stod(it->second);
      }
      std::size_t replicas;
      try {
        replicas = deploy(scenario->second, algorithm->second, request.body,
                          accuracy);
      } catch (const Error& e) {
        return HttpResponse::json(
            400, std::string(R"({"error":")") + e.what() + "\"}");
      }
      Json out{JsonObject{}};
      out.set("deployed", Json::parse(request.body).at("name").as_string());
      out.set("replicas", replicas);
      return HttpResponse::json(201, out.dump());
    }
    if (request.method == "DELETE" && segments.size() == 2) {
      return undeploy(segments[1], request);
    }
  }

  std::string key = routing_key(request);
  if (segments.size() == 2 && segments[0] == "ei_models") {
    // GET /ei_models/{name}: address the model where it was placed.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tracked_.find(segments[1]);
    if (it != tracked_.end()) {
      key = it->second.scenario + '/' + it->second.algorithm;
    }
  }
  obs::Span root = tracer_.begin_trace("fleet.route");
  if (root.active()) {
    root.set_attribute("method", request.method);
    root.set_attribute("path", request.path);
    root.set_attribute("key", key);
  }

  // Reassemble the raw target (path + query) for the forwarded request.
  std::string target = request.path;
  char separator = '?';
  for (const auto& [name, value] : request.query) {
    target += separator + name + '=' + value;
    separator = '&';
  }

  std::vector<std::string> owners;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    owners = ring_.owners(key, options_.replication);
  }
  auto finish = [&](HttpResponse response, const char* outcome) {
    meter_.counter("ei_fleet_requests_total", {{"outcome", outcome}})
        .increment();
    meter_.histogram("ei_fleet_route_latency_seconds")
        .record(route_timer.elapsed_seconds());
    if (root.active()) {
      root.set_attribute("outcome", outcome);
      root.set_attribute("status", static_cast<double>(response.status));
    }
    return response;
  };
  if (owners.empty()) {
    return finish(HttpResponse::json(
                      503, R"({"error":"fleet_unavailable","detail":"no node is up"})"),
                  "no_node");
  }

  // Session spreading: a `session` key rotates which owner is tried first,
  // so independent sessions of one hot key load-balance across its replica
  // set while failover order stays intact.
  std::size_t first = 0;
  if (auto it = request.query.find("session"); it != request.query.end()) {
    first = static_cast<std::size_t>(ring_hash(it->second, options_.seed)) %
            owners.size();
  }

  std::string last_error;
  std::optional<HttpResponse> replica_miss;
  for (std::size_t hop = 0; hop < owners.size(); ++hop) {
    const std::string& node_id = owners[(first + hop) % owners.size()];
    Member* member = find_member(node_id);
    obs::Span forward = root.active() ? root.child("fleet.forward") : obs::Span();
    if (forward.active()) {
      forward.set_attribute("node", node_id);
      forward.set_attribute("port",
                            static_cast<double>(member->endpoint.port));
      forward.set_attribute("hop", static_cast<double>(hop));
    }
    try {
      HttpResponse response =
          request.method == "GET"
              ? member->client->get(target)
              : request.method == "DELETE"
                    ? member->client->del(target)
                    : member->client->post(target, request.body);
      note_forward_success(node_id);
      if (forward.active()) {
        forward.set_attribute("status", static_cast<double>(response.status));
      }
      if (response.status == 404 && hop + 1 < owners.size()) {
        // A healthy owner without the data: after a membership change the
        // owner set shifts before re-replication lands, so a freshly
        // promoted owner can miss while a surviving replica still serves.
        // Try the peers; if every owner misses, the 404 is the answer.
        meter_
            .counter("ei_fleet_forwards_total",
                     {{"node", node_id}, {"outcome", "miss"}})
            .increment();
        replica_miss = std::move(response);
        continue;
      }
      meter_
          .counter("ei_fleet_forwards_total",
                   {{"node", node_id}, {"outcome", "ok"}})
          .increment();
      if (hop > 0) {
        meter_.counter("ei_fleet_failovers_total").increment();
        if (resilience_) ++resilience_->failovers;
      }
      return finish(std::move(response), hop > 0 ? "failover" : "ok");
    } catch (const IoError& e) {
      // Timeout, refused, reset, or an already-open breaker: the node is
      // unreachable as far as this request is concerned.  Count it toward
      // the node's health and try the next replica.
      last_error = e.what();
      meter_
          .counter("ei_fleet_forwards_total",
                   {{"node", node_id}, {"outcome", "error"}})
          .increment();
      if (forward.active()) forward.set_attribute("error", last_error);
      note_forward_failure(node_id);
    }
  }
  if (replica_miss.has_value()) {
    return finish(std::move(*replica_miss), "miss");
  }
  Json body{JsonObject{}};
  body.set("error", "fleet_unavailable");
  body.set("key", key);
  body.set("owners_tried", owners.size());
  body.set("detail", last_error);
  return finish(HttpResponse::json(503, body.dump()), "failed");
}

HttpResponse Router::undeploy(const std::string& name,
                              const HttpRequest& request) {
  // Fan the DELETE out to every owner (rollback=1 restores the prior
  // version everywhere instead).  The model stays tracked on rollback —
  // only a plain undeploy forgets it.
  bool rollback = false;
  if (auto it = request.query.find("rollback"); it != request.query.end()) {
    rollback = it->second != "0";
  }
  std::string key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tracked_.find(name);
    if (it == tracked_.end()) {
      return HttpResponse::json(
          404, R"({"error":"no tracked model named ')" + name + R"('"})");
    }
    key = it->second.scenario + '/' + it->second.algorithm;
  }
  std::string target = "/ei_models/" + name + (rollback ? "?rollback=1" : "");
  HttpResponse last = HttpResponse::json(503, R"({"error":"fleet_unavailable"})");
  bool any_ok = false;
  for (const std::string& node_id : owners_of(key)) {
    Member* member = find_member(node_id);
    try {
      last = member->client->del(target);
      note_forward_success(node_id);
      if (last.status < 400) any_ok = true;
    } catch (const IoError&) {
      note_forward_failure(node_id);
    }
  }
  if (any_ok && !rollback) {
    std::lock_guard<std::mutex> lock(mutex_);
    tracked_.erase(name);
  }
  return last;
}

std::size_t Router::deploy(const std::string& scenario,
                           const std::string& algorithm,
                           const std::string& model_json, double accuracy) {
  // The model's own name keys the tracked table; parse it once up front so a
  // malformed body fails before any node sees it.
  Json doc = Json::parse(model_json);
  std::string name = doc.at("name").as_string();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracked_[name] =
        TrackedModel{scenario, algorithm, model_json, accuracy};
  }
  replicate_tracked_models();
  // Report how many owners hold it now (replicate pushed to the missing).
  std::vector<std::string> owners = owners_of(scenario + '/' + algorithm);
  std::size_t placed = 0;
  for (const std::string& node_id : owners) {
    const Member* member = find_member(node_id);
    try {
      net::HttpClient check(member->endpoint.port, options_.client.deadline_s);
      if (check.get("/ei_models/" + name).status == 200) ++placed;
    } catch (const IoError&) {
    }
  }
  return placed;
}

void Router::replicate_tracked_models() {
  // One sweep at a time; concurrent triggers (two nodes dying at once)
  // queue up and each sees the latest placement.
  std::lock_guard<std::mutex> sweep(replicate_mutex_);
  struct Push {
    std::uint16_t port = 0;
    std::string node_id;
    std::string target;
    const std::string* body = nullptr;  // into tracked snapshot below
  };
  // Snapshot placement + tracked models under the state mutex.
  std::map<std::string, TrackedModel> tracked;
  std::map<std::string, std::vector<std::pair<std::string, std::uint16_t>>>
      owners_by_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracked = tracked_;
    for (const auto& [name, model] : tracked) {
      std::string key = model.scenario + '/' + model.algorithm;
      if (owners_by_key.count(key) > 0) continue;
      std::vector<std::pair<std::string, std::uint16_t>> owners;
      for (const std::string& node_id :
           ring_.owners(key, options_.replication)) {
        owners.emplace_back(node_id, find_member(node_id)->endpoint.port);
      }
      owners_by_key[key] = std::move(owners);
    }
  }
  // Ask each owner what it already holds (one index call per node), then
  // push only the missing models.
  std::map<std::string, std::vector<std::string>> present;  // node -> names
  for (const auto& [key, owners] : owners_by_key) {
    for (const auto& [node_id, port] : owners) {
      if (present.count(node_id) > 0) continue;
      std::vector<std::string> names;
      try {
        net::HttpClient client(port, options_.client.deadline_s);
        Json index = Json::parse(client.get("/ei_models").body);
        for (const Json& row : index.at("models").as_array()) {
          names.push_back(row.at("name").as_string());
        }
      } catch (const std::exception&) {
        // Unreachable or malformed: treat as holding nothing; pushes below
        // will fail fast against the same dead endpoint and be retried by
        // the next sweep.
      }
      present[node_id] = std::move(names);
    }
  }
  for (const auto& [name, model] : tracked) {
    std::string key = model.scenario + '/' + model.algorithm;
    for (const auto& [node_id, port] : owners_by_key[key]) {
      const std::vector<std::string>& held = present[node_id];
      if (std::find(held.begin(), held.end(), name) != held.end()) continue;
      try {
        net::HttpClient client(port, options_.client.deadline_s);
        HttpResponse response = client.post(
            "/ei_models?scenario=" + model.scenario +
                "&algorithm=" + model.algorithm +
                "&accuracy=" + std::to_string(model.accuracy),
            model.model_json);
        if (response.status == 201) {
          meter_
              .counter("ei_fleet_replications_total", {{"node", node_id}})
              .increment();
        }
      } catch (const IoError&) {
        // Dead target: the owner set will change (or the node will come
        // back) and the next sweep repairs it.
      }
    }
  }
}

Json Router::fleet_status() const {
  Json out{JsonObject{}};
  std::lock_guard<std::mutex> lock(mutex_);
  out.set("replication", options_.replication);
  out.set("vnodes_per_node", ring_.vnodes_per_node());
  out.set("up_nodes", ring_.node_count());
  out.set("total_nodes", members_.size());
  std::map<std::string, double> ownership = ring_.ownership();
  JsonArray nodes;
  for (const Member& member : members_) {
    Json row{JsonObject{}};
    row.set("id", member.endpoint.id);
    row.set("port", member.endpoint.port);
    row.set("up", member.up);
    row.set("consecutive_failures", member.consecutive_failures);
    auto share = ownership.find(member.endpoint.id);
    row.set("ring_fraction", share != ownership.end() ? share->second : 0.0);
    net::BreakerSnapshot breaker = member.client->breaker_state();
    Json breaker_row{JsonObject{}};
    breaker_row.set("state", net::to_string(breaker.state));
    breaker_row.set("consecutive_failures", breaker.consecutive_failures);
    breaker_row.set("last_transition_unix_s", breaker.last_transition_unix_s);
    row.set("breaker", std::move(breaker_row));
    nodes.push_back(std::move(row));
  }
  out.set("nodes", Json(std::move(nodes)));
  JsonArray placements;
  for (const auto& [name, model] : tracked_) {
    std::string key = model.scenario + '/' + model.algorithm;
    Json row{JsonObject{}};
    row.set("model", name);
    row.set("key", key);
    JsonArray owners;
    for (const std::string& node_id :
         ring_.owners(key, options_.replication)) {
      owners.emplace_back(node_id);
    }
    row.set("owners", Json(std::move(owners)));
    placements.push_back(std::move(row));
  }
  out.set("placements", Json(std::move(placements)));
  out.set("resilience", resilience_->to_json());
  return out;
}

std::uint16_t Router::start_server(std::uint16_t port) {
  OPENEI_CHECK(server_ == nullptr, "router server already running");
  server_ = std::make_unique<net::HttpServer>(
      port, [this](const HttpRequest& request) {
        if (request.path == "/ei_fleet" && request.method == "GET") {
          return HttpResponse::json(200, fleet_status().dump());
        }
        if (request.path == "/ei_metrics" && request.method == "GET") {
          return HttpResponse{200, "text/plain; version=0.0.4",
                              meter_.render_prometheus()};
        }
        return route(request);
      },
      options_.front_door);
  return server_->port();
}

void Router::stop_server() {
  if (server_ != nullptr) {
    server_->stop();
    server_.reset();
  }
}

std::uint16_t Router::port() const {
  OPENEI_CHECK(server_ != nullptr, "router server not running");
  return server_->port();
}

}  // namespace openei::fleet
