// fleet::Router — the front door of the sharded edge fleet.
//
// The router consistent-hash-maps request keys onto member nodes (a
// HashRing with configurable replication), forwards each request to the
// key's primary through a per-node net::ResilientClient (deadline + retry
// budget + per-endpoint circuit breaker), and fails over to the key's
// replicas when the primary is unreachable — whether a fault plan, an
// explicit Fleet::kill(), or a crashed process took it down.
//
// Health / ring state machine (per node):
//
//          forward fails (IoError after the
//          client's own retry budget)
//   kUp ────────────────────────────────────▶ kDown
//    ▲   node removed from the ring;              │
//    │   tracked models re-replicated to          │  every probe_every
//    │   the keys' new owner sets                 │  routed requests, the
//    │                                            ▼  router probes it
//    └──────────────────────────────────── probe succeeds
//        failback: node re-added, ring rebalanced back, owners
//        missing tracked models receive them again
//
// Placement and routing use the same key, so a request always lands on
// nodes that hold its models:
//   - /ei_algorithms/{scenario}/{algorithm} → key "scenario/algorithm"
//     (all variants of a pair colocate, keeping the model selector whole);
//   - a `session` query parameter spreads requests across the key's owner
//     set (hash(session) picks which owner is tried first) without ever
//     leaving it;
//   - every other path routes by the raw path.
//
// Deployment through the router (deploy() or POST /ei_models on the front
// door) places the model on all owners of its key — that is the replication
// the node-kill bench leans on: with replication ≥ 2 a mid-run kill loses
// no requests, only a failover hop.
//
// Observability: GET /ei_fleet (per-node health + breaker state + ring
// ownership + replica placement), ei_fleet_* counters on GET /ei_metrics,
// and obs:: spans (fleet.route → fleet.forward per hop, fleet.probe) when
// tracing is enabled.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "fleet/hash_ring.h"
#include "net/http.h"
#include "net/resilient_client.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace openei::fleet {

/// One member node as the router sees it: a stable id and a loopback port.
struct NodeEndpoint {
  std::string id;
  std::uint16_t port = 0;
};

struct RouterOptions {
  /// Owners per key (clamped to the member count).  ≥2 gives every key a
  /// failover target; 1 is sharding without redundancy.
  std::size_t replication = 2;
  std::size_t vnodes_per_node = 64;
  /// Ring/point + session-spread hash seed.
  std::uint64_t seed = 42;
  /// Per-node transport.  Defaults favour fast failure detection: the
  /// replica set is the redundancy, not a deep retry budget.
  net::ResilientClient::Options client{
      /*deadline_s=*/2.0,
      net::RetryPolicy{/*max_attempts=*/2, /*initial_backoff_s=*/0.005,
                       /*backoff_multiplier=*/2.0, /*max_backoff_s=*/0.05,
                       /*jitter_fraction=*/0.2},
      net::CircuitBreakerPolicy{},
      /*retry_server_errors=*/true,
      /*seed=*/42,
      /*metrics=*/nullptr};
  /// Consecutive forward failures that mark a node down (1 = a single
  /// exhausted retry budget is enough — the FailoverClient convention).
  std::size_t node_failure_threshold = 1;
  /// While any node is down, probe the down set every this many routed
  /// requests (count-based, so tests are deterministic).  probe_down_nodes()
  /// probes immediately regardless.
  std::size_t probe_every = 8;
  /// Cheap health-check target for failback probes.
  std::string probe_target = "/ei_status";
  /// Router-level tracing (fleet.route/fleet.forward spans).
  obs::Tracer::Options tracing;
  /// Serving options for the HTTP front door (engine choice, deadlines,
  /// connection caps, fault injection) — the router fronts the whole fleet,
  /// so this is where event-loop serving matters most.
  net::HttpServer::Options front_door;
};

class Router {
 public:
  Router(std::vector<NodeEndpoint> nodes, RouterOptions options = {});
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // --- Serving ----------------------------------------------------------
  /// Routes one request by key: forwards to the key's owners in failover
  /// order.  Returns the first reachable owner's response (including 4xx —
  /// application errors would repeat identically on a replica); answers 503
  /// JSON when every owner is unreachable, or when no node is up.
  net::HttpResponse route(const net::HttpRequest& request);
  /// Convenience: builds the HttpRequest from method/target/body.
  net::HttpResponse route(const std::string& method, const std::string& target,
                          const std::string& body = "");

  /// Deploys a model (as serialized JSON) to every owner of its placement
  /// key "scenario/algorithm" and tracks it for re-replication on
  /// rebalance.  Returns the number of owners that accepted it.
  std::size_t deploy(const std::string& scenario, const std::string& algorithm,
                     const std::string& model_json, double accuracy);

  // --- Health -----------------------------------------------------------
  /// Probes every down node right now; a node that answers is failed back
  /// (re-added to the ring, tracked models re-replicated).  Returns the
  /// number of nodes revived.
  std::size_t probe_down_nodes();
  bool node_up(const std::string& node_id) const;
  /// Member ids currently in the ring (up nodes), sorted.
  std::vector<std::string> up_nodes() const;
  /// Owner set a key resolves to right now (failover order).
  std::vector<std::string> owners_of(const std::string& key) const;
  /// The routing key route() would derive for a path+query.
  static std::string routing_key(const net::HttpRequest& request);

  // --- Observability ----------------------------------------------------
  /// The /ei_fleet document: per-node health, breaker state, ring
  /// ownership, replica placements, router counters.
  common::Json fleet_status() const;
  obs::MetricsRegistry& meter() { return meter_; }
  obs::Tracer& tracer() { return tracer_; }
  /// Shared sink aggregating every per-node client's transport counters
  /// (and their per-endpoint breaker snapshots).
  const std::shared_ptr<net::ResilienceMetrics>& resilience() const {
    return resilience_;
  }

  // --- Front door (HTTP) ------------------------------------------------
  /// Serves the router over HTTP: /ei_fleet and /ei_metrics answered
  /// locally, everything else routed to the fleet.  Port 0 = ephemeral.
  std::uint16_t start_server(std::uint16_t port = 0);
  void stop_server();
  std::uint16_t port() const;

 private:
  struct Member {
    NodeEndpoint endpoint;
    std::unique_ptr<net::ResilientClient> client;
    bool up = true;
    std::size_t consecutive_failures = 0;  // guarded by mutex_
  };
  /// A model tracked for (re-)replication, kept as serialized JSON so a
  /// rebalance can push it without fetching from a (possibly dead) owner.
  struct TrackedModel {
    std::string scenario;
    std::string algorithm;
    std::string model_json;
    double accuracy = 0.0;
  };

  Member* find_member(const std::string& node_id);
  const Member* find_member(const std::string& node_id) const;
  /// DELETE /ei_models/{name}[?rollback=1] fanned out to the model's owner
  /// set (undeploy forgets the tracked model; rollback keeps tracking it).
  net::HttpResponse undeploy(const std::string& name,
                             const net::HttpRequest& request);
  /// Records one forward failure; at the threshold the node leaves the ring
  /// and the re-replication it displaced is returned for execution outside
  /// the lock.
  void note_forward_failure(const std::string& node_id);
  void note_forward_success(const std::string& node_id);
  /// Marks a node down/up and rebalances placement.  Caller must NOT hold
  /// mutex_ (re-replication performs HTTP pushes).
  void mark_down(const std::string& node_id);
  void mark_up(const std::string& node_id);
  /// Pushes every tracked model to owners currently missing it.  Takes and
  /// releases mutex_ internally for snapshots; network I/O runs unlocked.
  void replicate_tracked_models();
  /// Count-gated probe trigger on the route path.
  void maybe_probe();

  RouterOptions options_;
  std::shared_ptr<net::ResilienceMetrics> resilience_ =
      std::make_shared<net::ResilienceMetrics>();
  obs::MetricsRegistry meter_;
  obs::Tracer tracer_;

  mutable std::mutex mutex_;  // ring_, members_ health, tracked_, counters
  HashRing ring_;
  std::vector<Member> members_;
  std::map<std::string, TrackedModel> tracked_;  // by model name
  std::size_t down_count_ = 0;
  std::size_t requests_since_probe_ = 0;
  // Serializes re-replication sweeps (they do HTTP I/O outside mutex_).
  std::mutex replicate_mutex_;

  std::unique_ptr<net::HttpServer> server_;
};

}  // namespace openei::fleet
