// Consistent-hash ring — the placement function of the sharded edge fleet
// (paper Fig. 3 dataflows 2/4 at fleet scale).
//
// Each node contributes `vnodes_per_node` virtual points on a 64-bit ring;
// a key is owned by the first `replication` *distinct* nodes found walking
// clockwise from the key's hash.  Properties the fleet router and its tests
// rely on:
//   - Deterministic: points derive from (seed, node id, vnode index) via
//     FNV-1a + splitmix64 — no wall-clock or address entropy, so the same
//     member set always produces the same placement.
//   - Minimal remap: removing a node only remaps keys that listed it among
//     their owners; every other key keeps its exact owner sequence.  Adding
//     it back restores the original placement bit-for-bit.
//   - Balanced: with the default 64 vnodes the per-node keyspace share
//     concentrates around 1/N (the balance test pins the spread).
//
// The ring itself is not synchronized — fleet::Router guards it with its
// state mutex and hands out owner snapshots.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace openei::fleet {

/// 64-bit key/point hash used by the ring (FNV-1a folded through
/// splitmix64).  Exposed so tests and the router's session spreading can
/// hash with the identical function.
std::uint64_t ring_hash(std::string_view text, std::uint64_t seed = 0);

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes_per_node = 64, std::uint64_t seed = 42);

  /// Adds a node's virtual points (idempotent).
  void add_node(const std::string& node_id);
  /// Removes a node's virtual points; returns false when absent.
  bool remove_node(const std::string& node_id);
  bool contains(const std::string& node_id) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t vnode_count() const { return ring_.size(); }
  std::size_t vnodes_per_node() const { return vnodes_per_node_; }

  /// Member node ids, sorted.
  std::vector<std::string> nodes() const;

  /// The first min(replication, node_count) distinct nodes clockwise from
  /// hash(key): owners[0] is the primary, the rest are replicas in failover
  /// order.  Empty when the ring is empty.
  std::vector<std::string> owners(const std::string& key,
                                  std::size_t replication) const;

  /// owners(key, 1)[0]; throws InvalidArgument on an empty ring.
  std::string primary(const std::string& key) const;

  /// Fraction of the 64-bit keyspace each node's arcs cover — what
  /// /ei_fleet reports as ring ownership and the balance test pins.
  std::map<std::string, double> ownership() const;

 private:
  std::size_t vnodes_per_node_;
  std::uint64_t seed_;
  std::map<std::uint64_t, std::string> ring_;  // point -> node id
  std::map<std::string, std::size_t> nodes_;   // id -> points actually placed
};

}  // namespace openei::fleet
