#include "fleet/hash_ring.h"

#include <algorithm>

#include "common/error.h"

namespace openei::fleet {

namespace {

// splitmix64 finalizer — the same mixing the tracer's id generator uses;
// full-avalanche, so consecutive vnode indices land far apart on the ring.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t ring_hash(std::string_view text, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ULL ^ seed;  // FNV offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return mix64(h);
}

HashRing::HashRing(std::size_t vnodes_per_node, std::uint64_t seed)
    : vnodes_per_node_(vnodes_per_node), seed_(seed) {
  OPENEI_CHECK(vnodes_per_node_ >= 1, "ring needs at least one vnode per node");
}

void HashRing::add_node(const std::string& node_id) {
  if (nodes_.count(node_id) > 0) return;
  std::size_t placed = 0;
  for (std::size_t v = 0; v < vnodes_per_node_; ++v) {
    std::uint64_t point =
        ring_hash(node_id + '#' + std::to_string(v), seed_);
    // A 64-bit collision between two nodes' points is astronomically
    // unlikely; first-placed wins so add/remove/add round-trips exactly.
    if (ring_.emplace(point, node_id).second) ++placed;
  }
  nodes_[node_id] = placed;
}

bool HashRing::remove_node(const std::string& node_id) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return false;
  for (auto point = ring_.begin(); point != ring_.end();) {
    if (point->second == node_id) {
      point = ring_.erase(point);
    } else {
      ++point;
    }
  }
  nodes_.erase(it);
  return true;
}

bool HashRing::contains(const std::string& node_id) const {
  return nodes_.count(node_id) > 0;
}

std::vector<std::string> HashRing::nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, placed] : nodes_) out.push_back(id);
  return out;
}

std::vector<std::string> HashRing::owners(const std::string& key,
                                          std::size_t replication) const {
  std::vector<std::string> out;
  if (ring_.empty() || replication == 0) return out;
  std::size_t want = std::min(replication, nodes_.size());
  out.reserve(want);
  std::uint64_t point = ring_hash(key, seed_);
  auto it = ring_.lower_bound(point);
  for (std::size_t hops = 0; hops < ring_.size() && out.size() < want; ++hops) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

std::string HashRing::primary(const std::string& key) const {
  std::vector<std::string> first = owners(key, 1);
  OPENEI_CHECK(!first.empty(), "primary() on an empty ring (key '", key, "')");
  return first.front();
}

std::map<std::string, double> HashRing::ownership() const {
  std::map<std::string, double> out;
  if (ring_.empty()) return out;
  for (const auto& [id, placed] : nodes_) out[id] = 0.0;
  // Each vnode owns the arc (previous point, point]; the first point also
  // owns the wrap-around arc from the last point.
  constexpr double kSpan = 18446744073709551616.0;  // 2^64
  std::uint64_t previous = ring_.rbegin()->first;
  for (const auto& [point, id] : ring_) {
    std::uint64_t arc = point - previous;  // modular: wraps for the first
    out[id] += static_cast<double>(arc) / kSpan;
    previous = point;
  }
  return out;
}

}  // namespace openei::fleet
