#include "fleet/fleet.h"

#include <utility>

#include "common/error.h"
#include "hwsim/package.h"
#include "nn/serialize.h"

namespace openei::fleet {

Fleet::Fleet(FleetOptions options) : options_(std::move(options)) {
  OPENEI_CHECK(options_.nodes >= 1, "fleet needs at least one node");
  std::vector<hwsim::DeviceProfile> profiles = options_.profiles;
  if (profiles.empty()) {
    profiles = {hwsim::raspberry_pi_4(), hwsim::jetson_tx2(),
                hwsim::edge_server(), hwsim::mobile_phone()};
  }
  members_.reserve(options_.nodes);
  std::vector<NodeEndpoint> endpoints;
  endpoints.reserve(options_.nodes);
  for (std::size_t i = 0; i < options_.nodes; ++i) {
    Member member;
    member.id = "node" + std::to_string(i);
    core::EdgeNodeConfig config{profiles[i % profiles.size()],
                                hwsim::openei_package(), 4096,
                                options_.service};
    member.node = std::make_unique<core::EdgeNode>(std::move(config));
    member.faults =
        std::make_shared<net::FaultPlan>(options_.fault_seed + i);
    net::HttpServer::Options server;
    server.faults = member.faults;
    member.port = member.node->start_server(0, server);
    member.alive = true;
    endpoints.push_back(NodeEndpoint{member.id, member.port});
    members_.push_back(std::move(member));
  }
  router_ = std::make_unique<Router>(std::move(endpoints), options_.router);
}

Fleet::~Fleet() {
  // Router first: its front-door server may still be forwarding to members.
  router_.reset();
}

core::EdgeNode& Fleet::node(std::size_t i) {
  OPENEI_CHECK(i < members_.size(), "node index ", i, " out of range");
  return *members_[i].node;
}

const std::string& Fleet::node_id(std::size_t i) const {
  OPENEI_CHECK(i < members_.size(), "node index ", i, " out of range");
  return members_[i].id;
}

std::uint16_t Fleet::port(std::size_t i) const {
  OPENEI_CHECK(i < members_.size(), "node index ", i, " out of range");
  return members_[i].port;
}

const std::shared_ptr<net::FaultPlan>& Fleet::faults(std::size_t i) const {
  OPENEI_CHECK(i < members_.size(), "node index ", i, " out of range");
  return members_[i].faults;
}

std::size_t Fleet::index_of(const std::string& node_id) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].id == node_id) return i;
  }
  throw NotFound("no fleet member named '" + node_id + "'");
}

void Fleet::kill(std::size_t i) {
  OPENEI_CHECK(i < members_.size(), "node index ", i, " out of range");
  if (!members_[i].alive) return;
  members_[i].node->stop_server();
  members_[i].alive = false;
}

void Fleet::revive(std::size_t i) {
  OPENEI_CHECK(i < members_.size(), "node index ", i, " out of range");
  if (members_[i].alive) return;
  net::HttpServer::Options server;
  server.faults = members_[i].faults;
  members_[i].node->start_server(members_[i].port, server);
  members_[i].alive = true;
}

bool Fleet::alive(std::size_t i) const {
  OPENEI_CHECK(i < members_.size(), "node index ", i, " out of range");
  return members_[i].alive;
}

std::size_t Fleet::deploy(const std::string& scenario,
                          const std::string& algorithm, const nn::Model& model,
                          double accuracy) {
  return router_->deploy(scenario, algorithm, nn::model_to_json(model).dump(),
                         accuracy);
}

}  // namespace openei::fleet
