// fleet::Fleet — an in-process fleet of N simulated edge nodes behind a
// fleet::Router.
//
// Each member is a full core::EdgeNode (model registry, session cache,
// libei REST API) served over real loopback HTTP on its own port, with a
// heterogeneous hwsim::DeviceProfile drawn round-robin from the edge-class
// profiles — the paper's "edge server, mobile phone, Raspberry Pi" fleet
// (Sec. II-B) as one process.  kill(i) stops a member's HTTP server
// mid-flight (in-flight requests drain; new connections are refused, which
// is exactly what the router's failover path sees from a crashed node);
// revive(i) rebinds the same port.  Per-member net::FaultPlan hooks let
// tests and benches inject deterministic fault schedules instead of
// killing outright.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/edge_node.h"
#include "fleet/router.h"
#include "net/faults.h"
#include "nn/model.h"

namespace openei::fleet {

struct FleetOptions {
  std::size_t nodes = 4;
  /// Router placement/failover knobs (replication factor, probes...).
  RouterOptions router;
  /// Device profiles assigned round-robin; empty = the built-in
  /// heterogeneous edge set (pi4, jetson, edge server, mobile).
  std::vector<hwsim::DeviceProfile> profiles;
  /// Per-node libei options (tracing, batching, lifecycle budget).
  libei::EiService::Options service;
  /// Seed base for each node's fault plan (node i gets seed + i).
  std::uint64_t fault_seed = 42;
};

class Fleet {
 public:
  explicit Fleet(FleetOptions options = {});
  ~Fleet();
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  std::size_t size() const { return members_.size(); }
  core::EdgeNode& node(std::size_t i);
  const std::string& node_id(std::size_t i) const;
  std::uint16_t port(std::size_t i) const;
  /// The member's deterministic fault schedule (shared with its server).
  const std::shared_ptr<net::FaultPlan>& faults(std::size_t i) const;

  /// Index of the member with this id; throws NotFound on a bad id.
  std::size_t index_of(const std::string& node_id) const;

  /// Stops member i's HTTP server (connection-refused to the fleet).  The
  /// node object — registry, sessions, sensors — stays warm, like a
  /// partitioned-not-wiped edge box.
  void kill(std::size_t i);
  /// Rebinds member i's server on its original port.
  void revive(std::size_t i);
  bool alive(std::size_t i) const;

  /// Deploys a model through the router: serialized once, replicated to the
  /// owners of "scenario/algorithm".  Returns the replica count.
  std::size_t deploy(const std::string& scenario, const std::string& algorithm,
                     const nn::Model& model, double accuracy);

  Router& router() { return *router_; }
  const Router& router() const { return *router_; }

 private:
  struct Member {
    std::unique_ptr<core::EdgeNode> node;
    std::string id;
    std::uint16_t port = 0;
    std::shared_ptr<net::FaultPlan> faults;
    bool alive = false;
  };

  FleetOptions options_;
  std::vector<Member> members_;
  std::unique_ptr<Router> router_;
};

}  // namespace openei::fleet
