#include "selector/energy_schedule.h"

#include <algorithm>

#include "common/error.h"

namespace openei::selector {
namespace {

struct Candidate {
  EnergyScheduleChoice choice;
  bool valid = false;
};

/// Strict deterministic ordering: less energy wins, then lower watts, then
/// lower latency, then lexicographic model name.
bool better_choice(const EnergyScheduleChoice& a,
                   const EnergyScheduleChoice& b) {
  if (a.predicted_energy_per_req_j != b.predicted_energy_per_req_j) {
    return a.predicted_energy_per_req_j < b.predicted_energy_per_req_j;
  }
  if (a.predicted_watts != b.predicted_watts) {
    return a.predicted_watts < b.predicted_watts;
  }
  if (a.predicted_latency_s != b.predicted_latency_s) {
    return a.predicted_latency_s < b.predicted_latency_s;
  }
  return a.model_name < b.model_name;
}

}  // namespace

EnergyScheduleChoice plan_energy_schedule(const CapabilityDatabase& db,
                                          const hwsim::DeviceProfile& device,
                                          const EnergyScheduleRequest& request) {
  OPENEI_CHECK(request.arrival_rate_hz > 0.0, "arrival rate must be > 0; got ",
               request.arrival_rate_hz);
  OPENEI_CHECK(!request.batch_sizes.empty(), "no candidate batch sizes");
  OPENEI_CHECK(!device.freq_levels.empty(), "device '", device.name,
               "' has an empty freq ladder");

  const Requirements& req = request.requirements;
  double lambda = request.arrival_rate_hz;

  // Rung ladder: every active freq level, then boost (if allowed).
  struct Rung {
    std::size_t level;
    double scale;
    bool boost;
  };
  std::vector<Rung> rungs;
  for (std::size_t i = 0; i < device.freq_levels.size(); ++i) {
    rungs.push_back({i, device.freq_levels[i], false});
  }
  if (request.allow_boost) {
    rungs.push_back({device.freq_levels.size() - 1, device.boost_freq_scale,
                     true});
  }

  Candidate best;          // min energy among fully feasible
  Candidate best_effort;   // max capacity fallback when nothing is feasible
  for (const CapabilityEntry& entry : db.on_device(device.name)) {
    if (!entry.deployable) continue;
    double nominal_latency = entry.alem.latency_s;
    if (nominal_latency <= 0.0) continue;
    for (const Rung& rung : rungs) {
      double f = rung.scale;
      for (std::size_t b : request.batch_sizes) {
        if (b == 0) continue;
        EnergyScheduleChoice c;
        c.model_name = entry.model_name;
        c.package_name = entry.package_name;
        c.batch_rows = b;
        c.freq_level = rung.level;
        c.boost = rung.boost;
        c.freq_scale = f;
        // Per-sample service stretches by 1/f; a batch of b serves b samples
        // in b * L / f, so capacity is f / L regardless of b — batching buys
        // fewer flushes (and lower governor churn), not raw throughput.
        double service_s = nominal_latency * static_cast<double>(b) / f;
        c.capacity_hz = f / nominal_latency;
        // Worst case for the first sample in a batch: wait for the other
        // b - 1 arrivals, then the whole stretched service.
        double fill_wait_s = static_cast<double>(b - 1) / lambda;
        c.predicted_latency_s = fill_wait_s + service_s;
        // Cube-law dynamic power * stretched time = E * f^2 per sample.
        c.predicted_energy_per_req_j = entry.alem.energy_j * f * f;
        double utilization =
            std::min(1.0, lambda * nominal_latency / f);
        double dynamic_w =
            (device.active_power_w - device.idle_power_w) * f * f * f;
        c.predicted_watts = device.idle_power_w + utilization * dynamic_w;

        bool meets_load = c.capacity_hz >= lambda;
        bool meets_alem =
            entry.alem.accuracy >= req.min_accuracy &&
            c.predicted_latency_s <= req.max_latency_s &&
            c.predicted_energy_per_req_j <= req.max_energy_j &&
            entry.alem.memory_bytes <= req.max_memory_bytes;
        c.feasible = meets_load && meets_alem;

        if (c.feasible && (!best.valid || better_choice(c, best.choice))) {
          best.choice = c;
          best.valid = true;
        }
        // Fallback ranking: most capacity first so an infeasible epoch picks
        // the plan that drains backlog fastest; ties resolve like the
        // primary ordering for determinism.
        if (!best_effort.valid ||
            c.capacity_hz > best_effort.choice.capacity_hz ||
            (c.capacity_hz == best_effort.choice.capacity_hz &&
             better_choice(c, best_effort.choice))) {
          best_effort.choice = c;
          best_effort.valid = true;
        }
      }
    }
  }

  if (best.valid) return best.choice;
  OPENEI_CHECK(best_effort.valid, "no deployable capability entries on '",
               device.name, "'");
  best_effort.choice.feasible = false;
  return best_effort.choice;
}

}  // namespace openei::selector
