#include "selector/alem.h"

namespace openei::selector {

bool satisfies(const Alem& alem, const Requirements& req, Objective objective) {
  if (objective != Objective::kMaxAccuracy && alem.accuracy < req.min_accuracy) {
    return false;
  }
  if (objective != Objective::kMinLatency && alem.latency_s > req.max_latency_s) {
    return false;
  }
  if (objective != Objective::kMinEnergy && alem.energy_j > req.max_energy_j) {
    return false;
  }
  if (objective != Objective::kMinMemory &&
      alem.memory_bytes > req.max_memory_bytes) {
    return false;
  }
  return true;
}

bool better(const Alem& a, const Alem& b, Objective objective) {
  switch (objective) {
    case Objective::kMinLatency: return a.latency_s < b.latency_s;
    case Objective::kMaxAccuracy: return a.accuracy > b.accuracy;
    case Objective::kMinEnergy: return a.energy_j < b.energy_j;
    case Objective::kMinMemory: return a.memory_bytes < b.memory_bytes;
  }
  return false;
}

}  // namespace openei::selector
