// The Selecting Algorithm (SA) of paper Sec. III-C — the exact solver for
// Equation 1:
//
//   argmin_{m in Models} L   s.t.  A >= A_req, E <= E_pro, M <= M_pro
//
// generalized so any ALEM attribute can be the objective while the other
// three act as constraints.  Selection scans the capability database; the
// deep-RL direction the paper sketches is implemented separately in
// rl_selector.h and validated against this exact solver.
#pragma once

#include <optional>

#include "selector/capability_db.h"

namespace openei::selector {

struct SelectionRequest {
  Requirements requirements;
  Objective objective = Objective::kMinLatency;
  /// Restrict to a target device (usual case: "the specific edge platform").
  /// Empty = whole cube.
  std::string device_name;
};

/// Why each scanned entry was kept or dropped — the per-request attribution
/// the ei.select trace span reports (candidates evaluated, Eq. 1 constraint
/// rejections).
struct SelectionStats {
  std::size_t evaluated = 0;               // entries scanned
  std::size_t eligible = 0;                // survived every filter
  std::size_t rejected_not_deployable = 0; // does not fit the device at all
  std::size_t rejected_device = 0;         // other device's cube slice
  std::size_t rejected_constraints = 0;    // failed an Eq. 1 constraint
};

/// Best feasible combination, or nullopt when no deployable entry satisfies
/// the constraints (the caller then relaxes requirements or offloads).
/// `stats`, when non-null, receives the scan breakdown.
std::optional<CapabilityEntry> select(const CapabilityDatabase& db,
                                      const SelectionRequest& request,
                                      SelectionStats* stats = nullptr);

/// All feasible entries sorted best-first under the objective (for
/// inspection and the Fig. 5 bench).
std::vector<CapabilityEntry> rank(const CapabilityDatabase& db,
                                  const SelectionRequest& request);

/// True when `a` dominates `b` across the whole ALEM tuple: at least as
/// good on every attribute (accuracy higher-or-equal; latency, energy,
/// memory lower-or-equal) and strictly better on one.
bool dominates(const Alem& a, const Alem& b);

/// The Pareto-optimal deployable entries on a device (empty device_name =
/// whole cube): no returned entry is dominated by any deployable entry.
/// Extension beyond Eq. 1's single-objective form — the set a deployment
/// engineer actually inspects when constraints are negotiable.
std::vector<CapabilityEntry> pareto_frontier(const CapabilityDatabase& db,
                                             const std::string& device_name);

}  // namespace openei::selector
