// Reinforcement-learning model selector — the paper's forward-looking note
// ("Deep reinforcement learning will be leveraged to find the optimal
// combination", Sec. III-C), realized as tabular Q-learning.
//
// Formulation: an episodic contextual bandit.  The state is the request
// (objective + discretized constraint levels), actions are capability-
// database entries on the target device, and the reward is the normalized
// objective value with a large penalty for infeasible picks.  With enough
// episodes the greedy policy matches the exact Eq. 1 solver — which the
// tests assert.
#pragma once

#include <map>
#include <optional>

#include "common/rng.h"
#include "selector/selecting_algorithm.h"

namespace openei::selector {

struct QLearningOptions {
  std::size_t episodes = 2000;
  double learning_rate = 0.2;
  double epsilon = 0.2;  // exploration probability (decayed linearly to 0)
  std::uint64_t seed = 7;
};

class QLearningSelector {
 public:
  QLearningSelector(const CapabilityDatabase& db, QLearningOptions options);

  /// Trains the Q table for one request "context" by repeatedly trying
  /// actions and observing rewards.
  void train(const SelectionRequest& request);

  /// Greedy pick for a request; nullopt when every action is infeasible.
  /// Call train() for the same request shape first.
  std::optional<CapabilityEntry> select(const SelectionRequest& request) const;

  /// Reward of an action under a request: objective value normalized to
  /// [0, 1] over the action set, or -1 when infeasible.  Exposed for tests.
  double reward(const CapabilityEntry& entry, const SelectionRequest& request) const;

 private:
  /// Context key: objective + coarse constraint buckets.
  std::string context_key(const SelectionRequest& request) const;
  std::vector<const CapabilityEntry*> actions(const SelectionRequest& request) const;

  const CapabilityDatabase& db_;
  QLearningOptions options_;
  common::Rng rng_;
  // Q[context][action-index-in-db-order]
  std::map<std::string, std::vector<double>> q_;
};

}  // namespace openei::selector
