#include "selector/rl_selector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace openei::selector {

QLearningSelector::QLearningSelector(const CapabilityDatabase& db,
                                     QLearningOptions options)
    : db_(db), options_(options), rng_(options.seed) {
  OPENEI_CHECK(options.episodes > 0, "zero training episodes");
  OPENEI_CHECK(options.learning_rate > 0.0 && options.learning_rate <= 1.0,
               "learning rate outside (0, 1]");
  OPENEI_CHECK(options.epsilon >= 0.0 && options.epsilon <= 1.0,
               "epsilon outside [0, 1]");
}

std::string QLearningSelector::context_key(const SelectionRequest& request) const {
  std::ostringstream key;
  key << static_cast<int>(request.objective) << '|' << request.device_name << '|'
      << request.requirements.min_accuracy << '|'
      << request.requirements.max_latency_s << '|'
      << request.requirements.max_energy_j << '|'
      << request.requirements.max_memory_bytes;
  return key.str();
}

std::vector<const CapabilityEntry*> QLearningSelector::actions(
    const SelectionRequest& request) const {
  std::vector<const CapabilityEntry*> out;
  for (const CapabilityEntry& entry : db_.entries()) {
    if (!request.device_name.empty() && entry.device_name != request.device_name) {
      continue;
    }
    out.push_back(&entry);
  }
  return out;
}

double QLearningSelector::reward(const CapabilityEntry& entry,
                                 const SelectionRequest& request) const {
  if (!entry.deployable ||
      !satisfies(entry.alem, request.requirements, request.objective)) {
    return -1.0;
  }
  // Normalize the objective over the action set so rewards sit in [0, 1].
  auto acts = actions(request);
  double best = -1e300;
  double worst = 1e300;
  auto value = [&request](const CapabilityEntry& e) {
    switch (request.objective) {
      case Objective::kMinLatency: return -e.alem.latency_s;
      case Objective::kMaxAccuracy: return e.alem.accuracy;
      case Objective::kMinEnergy: return -e.alem.energy_j;
      case Objective::kMinMemory:
        return -static_cast<double>(e.alem.memory_bytes);
    }
    return 0.0;
  };
  for (const CapabilityEntry* candidate : acts) {
    best = std::max(best, value(*candidate));
    worst = std::min(worst, value(*candidate));
  }
  if (best - worst < 1e-300) return 1.0;
  return (value(entry) - worst) / (best - worst);
}

void QLearningSelector::train(const SelectionRequest& request) {
  auto acts = actions(request);
  OPENEI_CHECK(!acts.empty(), "no candidate combinations for this device");
  std::string key = context_key(request);
  auto& q = q_[key];
  q.assign(acts.size(), 0.0);

  for (std::size_t episode = 0; episode < options_.episodes; ++episode) {
    double epsilon = options_.epsilon *
                     (1.0 - static_cast<double>(episode) /
                                static_cast<double>(options_.episodes));
    std::size_t action;
    if (rng_.flip(epsilon)) {
      action = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(acts.size()) - 1));
    } else {
      action = static_cast<std::size_t>(
          std::max_element(q.begin(), q.end()) - q.begin());
    }
    double r = reward(*acts[action], request);
    // Single-step episode: Q <- Q + alpha (r - Q).
    q[action] += options_.learning_rate * (r - q[action]);
  }
}

std::optional<CapabilityEntry> QLearningSelector::select(
    const SelectionRequest& request) const {
  auto it = q_.find(context_key(request));
  OPENEI_CHECK(it != q_.end(), "select() before train() for this request");
  auto acts = actions(request);
  OPENEI_CHECK(acts.size() == it->second.size(),
               "capability database changed size under the selector");
  std::size_t best = static_cast<std::size_t>(
      std::max_element(it->second.begin(), it->second.end()) - it->second.begin());
  if (reward(*acts[best], request) < 0.0) return std::nullopt;
  return *acts[best];
}

}  // namespace openei::selector
