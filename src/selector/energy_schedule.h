// Energy-governed online scheduling: pick (model variant, batch size, DVFS
// rung) under a drifting arrival rate so Eq. 1's constraints hold at minimum
// energy per request.
//
// This extends the point-selection of selecting_algorithm.h along the axis
// the sustainability paper (PAPERS.md) argues for: energy as a *scheduling
// input*.  The closed-form model mirrors hwsim's cube-law DVFS semantics
// (hwsim/power.h): at clock fraction f a model's nominal per-sample latency
// L stretches to L/f while its above-idle energy scales to E*f^2, so the
// cheapest feasible plan usually sits at the lowest rung that still clears
// the latency bound and the offered load — and only queue pressure justifies
// boost.  Everything is deterministic: same database + request, same choice.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hwsim/device.h"
#include "selector/alem.h"
#include "selector/capability_db.h"

namespace openei::selector {

struct EnergyScheduleRequest {
  Requirements requirements;
  /// Offered load the plan must sustain (requests/s).
  double arrival_rate_hz = 1.0;
  /// Candidate micro-batch sizes, ascending.
  std::vector<std::size_t> batch_sizes = {1, 2, 4, 8};
  /// Whether the boost rung may be planned (vs. reserved for transients).
  bool allow_boost = true;
};

struct EnergyScheduleChoice {
  std::string model_name;
  std::string package_name;
  std::size_t batch_rows = 1;
  /// Index into device.freq_levels; meaningful when !boost.
  std::size_t freq_level = 0;
  bool boost = false;
  double freq_scale = 1.0;
  /// Worst-case per-request latency: batch fill wait + stretched service.
  double predicted_latency_s = 0.0;
  /// Above-idle joules per request at this rung (E * f^2).
  double predicted_energy_per_req_j = 0.0;
  /// Average draw at the offered load (idle + utilization * dynamic).
  double predicted_watts = 0.0;
  /// Requests/s this configuration can sustain.
  double capacity_hz = 0.0;
  /// False when no configuration meets every constraint at the offered
  /// load; the choice then maximizes capacity so the backlog drains.
  bool feasible = false;
};

/// Evaluates every (deployable entry on `device`) x (freq rung + boost) x
/// (batch size) and returns the minimum-energy feasible configuration,
/// tie-broken by lower watts, then lower latency, then model name.
EnergyScheduleChoice plan_energy_schedule(const CapabilityDatabase& db,
                                          const hwsim::DeviceProfile& device,
                                          const EnergyScheduleRequest& request);

}  // namespace openei::selector
