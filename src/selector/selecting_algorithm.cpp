#include "selector/selecting_algorithm.h"

#include <algorithm>

namespace openei::selector {

namespace {

bool eligible(const CapabilityEntry& entry, const SelectionRequest& request,
              SelectionStats* stats = nullptr) {
  if (stats != nullptr) ++stats->evaluated;
  if (!entry.deployable) {
    if (stats != nullptr) ++stats->rejected_not_deployable;
    return false;
  }
  if (!request.device_name.empty() && entry.device_name != request.device_name) {
    if (stats != nullptr) ++stats->rejected_device;
    return false;
  }
  if (!satisfies(entry.alem, request.requirements, request.objective)) {
    if (stats != nullptr) ++stats->rejected_constraints;
    return false;
  }
  if (stats != nullptr) ++stats->eligible;
  return true;
}

}  // namespace

std::optional<CapabilityEntry> select(const CapabilityDatabase& db,
                                      const SelectionRequest& request,
                                      SelectionStats* stats) {
  if (stats != nullptr) *stats = SelectionStats{};
  const CapabilityEntry* best = nullptr;
  for (const CapabilityEntry& entry : db.entries()) {
    if (!eligible(entry, request, stats)) continue;
    if (best == nullptr || better(entry.alem, best->alem, request.objective)) {
      best = &entry;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::vector<CapabilityEntry> rank(const CapabilityDatabase& db,
                                  const SelectionRequest& request) {
  std::vector<CapabilityEntry> out;
  for (const CapabilityEntry& entry : db.entries()) {
    if (eligible(entry, request)) out.push_back(entry);
  }
  std::stable_sort(out.begin(), out.end(),
                   [&request](const CapabilityEntry& a, const CapabilityEntry& b) {
                     return better(a.alem, b.alem, request.objective);
                   });
  return out;
}

bool dominates(const Alem& a, const Alem& b) {
  bool geq = a.accuracy >= b.accuracy && a.latency_s <= b.latency_s &&
             a.energy_j <= b.energy_j && a.memory_bytes <= b.memory_bytes;
  bool strictly = a.accuracy > b.accuracy || a.latency_s < b.latency_s ||
                  a.energy_j < b.energy_j || a.memory_bytes < b.memory_bytes;
  return geq && strictly;
}

std::vector<CapabilityEntry> pareto_frontier(const CapabilityDatabase& db,
                                             const std::string& device_name) {
  std::vector<const CapabilityEntry*> candidates;
  for (const CapabilityEntry& entry : db.entries()) {
    if (!entry.deployable) continue;
    if (!device_name.empty() && entry.device_name != device_name) continue;
    candidates.push_back(&entry);
  }

  std::vector<CapabilityEntry> frontier;
  for (const CapabilityEntry* candidate : candidates) {
    bool dominated = false;
    for (const CapabilityEntry* other : candidates) {
      if (other != candidate && dominates(other->alem, candidate->alem)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(*candidate);
  }
  return frontier;
}

}  // namespace openei::selector
