// The paper's central formalism: EI capability as the four-element tuple
// ALEM = <Accuracy, Latency, Energy, Memory footprint> (Sec. II-B).
#pragma once

#include <cstddef>
#include <string>

#include "common/json.h"

namespace openei::selector {

struct Alem {
  double accuracy = 0.0;        // task metric in [0, 1] (A)
  double latency_s = 0.0;       // per-inference latency (L)
  double energy_j = 0.0;        // per-inference energy above idle (E)
  std::size_t memory_bytes = 0;  // peak resident footprint (M)

  common::Json to_json() const {
    common::Json out{common::JsonObject{}};
    out.set("accuracy", accuracy);
    out.set("latency_s", latency_s);
    out.set("energy_j", energy_j);
    out.set("memory_bytes", memory_bytes);
    return out;
  }
};

/// The constraint set of Equation 1: A >= A_req, E <= E_pro, M <= M_pro
/// (whichever attribute is the objective has its constraint ignored).
struct Requirements {
  double min_accuracy = 0.0;       // A_req
  double max_latency_s = 1e300;    // L bound when latency is a constraint
  double max_energy_j = 1e300;     // E_pro
  std::size_t max_memory_bytes = SIZE_MAX;  // M_pro
};

/// Which attribute Equation 1 optimizes ("if users pay more attention to
/// Accuracy, the optimization target will be replaced by maximize A...").
enum class Objective { kMinLatency, kMaxAccuracy, kMinEnergy, kMinMemory };

/// True when `alem` satisfies every constraint except the one being
/// optimized.
bool satisfies(const Alem& alem, const Requirements& req, Objective objective);

/// True when `a` beats `b` under the objective (strictly better).
bool better(const Alem& a, const Alem& b, Objective objective);

}  // namespace openei::selector
