// Capability database: the materialized (model x package x device) cube of
// Fig. 5, each cell holding its measured ALEM tuple.  The selecting
// algorithm (Eq. 1) queries this database.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "hwsim/cost_model.h"
#include "selector/alem.h"

namespace openei::selector {

struct CapabilityEntry {
  std::string model_name;
  std::string package_name;
  std::string device_name;
  Alem alem;
  /// False when the combination cannot deploy at all (does not fit RAM, or
  /// the package lacks a capability the model needs).
  bool deployable = true;
  /// Wall-clock single-sample latency measured through a real
  /// InferenceSession (median over ProfileOptions::reps); 0 when the entry
  /// was profiled cost-model-only.  When measured, alem.latency_s holds this
  /// value, so Eq. 1 selection sees real quantized-kernel speedups instead
  /// of roofline guesses.
  double measured_latency_s = 0.0;
};

/// Knobs for profile(): cost-model-only by default; measure_latency runs a
/// real InferenceSession and replaces the ALEM latency with the measured
/// median over `reps` single-sample inferences.
struct ProfileOptions {
  bool measure_latency = false;
  std::size_t reps = 32;
};

/// Profiles one combination: accuracy by really running the model on `test`,
/// latency/energy/memory from the hardware cost model (or measured — see
/// ProfileOptions).  Non-deployable combinations come back with
/// deployable=false and cost-only ALEM.
CapabilityEntry profile(const nn::Model& model, const hwsim::PackageSpec& package,
                        const hwsim::DeviceProfile& device,
                        const data::Dataset& test,
                        const ProfileOptions& options = {});

/// Capability row for an already-deployed model whose accuracy the registry
/// recorded at deployment time: latency/energy/memory from the roofline
/// cost model, no test-set run.  This is what libei caches per
/// (scenario, algorithm) keyed by the registry's version counter — rows are
/// rebuilt only when a deploy/swap/rollback bumps the version, never per
/// request.
CapabilityEntry estimate_capability(const nn::Model& model, double accuracy,
                                    const hwsim::PackageSpec& package,
                                    const hwsim::DeviceProfile& device);

class CapabilityDatabase {
 public:
  void add(CapabilityEntry entry) { entries_.push_back(std::move(entry)); }

  /// Profiles the full cube (every model x package x device).
  static CapabilityDatabase build(const std::vector<nn::Model>& models,
                                  const std::vector<hwsim::PackageSpec>& packages,
                                  const std::vector<hwsim::DeviceProfile>& devices,
                                  const data::Dataset& test);

  const std::vector<CapabilityEntry>& entries() const { return entries_; }

  /// Entries on one device (the slice Eq. 1 selects within).
  std::vector<CapabilityEntry> on_device(const std::string& device_name) const;

  common::Json to_json() const;

  /// Rebuilds a database from to_json() output — profiling the cube is the
  /// expensive step (it runs every model on the test set), so deployments
  /// persist it and reload at boot.
  static CapabilityDatabase from_json(const common::Json& doc);

 private:
  std::vector<CapabilityEntry> entries_;
};

}  // namespace openei::selector
