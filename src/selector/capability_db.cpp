#include "selector/capability_db.h"

#include <algorithm>
#include <chrono>

#include "nn/train.h"
#include "runtime/inference.h"

namespace openei::selector {

namespace {

/// Median wall-clock latency of `reps` single-sample inferences through a
/// real InferenceSession (first sample of `test` as the probe input).  One
/// warmup call grows the session's arena buffers so the measured loop runs
/// at steady state.
double measure_latency_s(const nn::Model& model,
                         const hwsim::PackageSpec& package,
                         const hwsim::DeviceProfile& device,
                         const data::Dataset& test, std::size_t reps) {
  std::vector<std::size_t> dims{1};
  for (std::size_t d : model.input_shape().dims()) dims.push_back(d);
  nn::Tensor sample{tensor::Shape(dims)};
  auto src = test.features.data();
  auto dst = sample.data();
  std::copy(src.begin(), src.begin() + static_cast<long>(dst.size()),
            dst.begin());

  runtime::InferenceSession session(model.clone(), package, device);
  session.run(sample);  // warmup: plans/grows buffers outside the timed loop

  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    session.run(sample);
    auto stop = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(stop - start).count());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

CapabilityEntry estimate_capability(const nn::Model& model, double accuracy,
                                    const hwsim::PackageSpec& package,
                                    const hwsim::DeviceProfile& device) {
  CapabilityEntry entry;
  entry.model_name = model.name();
  entry.package_name = package.name;
  entry.device_name = device.name;
  hwsim::InferenceCost cost = hwsim::estimate_inference(model, package, device);
  entry.alem.accuracy = accuracy;
  entry.alem.latency_s = cost.latency_s;
  entry.alem.energy_j = cost.energy_j;
  entry.alem.memory_bytes = cost.memory_bytes;
  entry.deployable = cost.memory_bytes <= device.ram_bytes;
  return entry;
}

CapabilityEntry profile(const nn::Model& model, const hwsim::PackageSpec& package,
                        const hwsim::DeviceProfile& device,
                        const data::Dataset& test,
                        const ProfileOptions& options) {
  test.check();
  CapabilityEntry entry;
  entry.model_name = model.name();
  entry.package_name = package.name;
  entry.device_name = device.name;

  hwsim::InferenceCost cost = hwsim::estimate_inference(model, package, device);
  entry.alem.latency_s = cost.latency_s;
  entry.alem.energy_j = cost.energy_j;
  entry.alem.memory_bytes = cost.memory_bytes;
  entry.deployable = cost.memory_bytes <= device.ram_bytes;

  nn::Model copy = model.clone();
  entry.alem.accuracy = nn::evaluate_accuracy(copy, test);

  if (options.measure_latency && entry.deployable && options.reps > 0) {
    entry.measured_latency_s =
        measure_latency_s(model, package, device, test, options.reps);
    entry.alem.latency_s = entry.measured_latency_s;
  }
  return entry;
}

CapabilityDatabase CapabilityDatabase::build(
    const std::vector<nn::Model>& models,
    const std::vector<hwsim::PackageSpec>& packages,
    const std::vector<hwsim::DeviceProfile>& devices, const data::Dataset& test) {
  CapabilityDatabase db;
  for (const nn::Model& model : models) {
    // Accuracy is device/package independent; profile it once per model.
    nn::Model copy = model.clone();
    double accuracy = nn::evaluate_accuracy(copy, test);
    for (const hwsim::PackageSpec& package : packages) {
      for (const hwsim::DeviceProfile& device : devices) {
        CapabilityEntry entry;
        entry.model_name = model.name();
        entry.package_name = package.name;
        entry.device_name = device.name;
        hwsim::InferenceCost cost =
            hwsim::estimate_inference(model, package, device);
        entry.alem.accuracy = accuracy;
        entry.alem.latency_s = cost.latency_s;
        entry.alem.energy_j = cost.energy_j;
        entry.alem.memory_bytes = cost.memory_bytes;
        entry.deployable = cost.memory_bytes <= device.ram_bytes;
        db.add(std::move(entry));
      }
    }
  }
  return db;
}

std::vector<CapabilityEntry> CapabilityDatabase::on_device(
    const std::string& device_name) const {
  std::vector<CapabilityEntry> out;
  for (const CapabilityEntry& entry : entries_) {
    if (entry.device_name == device_name) out.push_back(entry);
  }
  return out;
}

common::Json CapabilityDatabase::to_json() const {
  common::JsonArray rows;
  for (const CapabilityEntry& entry : entries_) {
    common::Json row{common::JsonObject{}};
    row.set("model", entry.model_name);
    row.set("package", entry.package_name);
    row.set("device", entry.device_name);
    row.set("alem", entry.alem.to_json());
    row.set("deployable", entry.deployable);
    if (entry.measured_latency_s > 0.0) {
      row.set("measured_latency_s", entry.measured_latency_s);
    }
    rows.push_back(std::move(row));
  }
  return common::Json(std::move(rows));
}

CapabilityDatabase CapabilityDatabase::from_json(const common::Json& doc) {
  CapabilityDatabase db;
  for (const common::Json& row : doc.as_array()) {
    CapabilityEntry entry;
    entry.model_name = row.at("model").as_string();
    entry.package_name = row.at("package").as_string();
    entry.device_name = row.at("device").as_string();
    const common::Json& alem = row.at("alem");
    entry.alem.accuracy = alem.at("accuracy").as_number();
    entry.alem.latency_s = alem.at("latency_s").as_number();
    entry.alem.energy_j = alem.at("energy_j").as_number();
    entry.alem.memory_bytes =
        static_cast<std::size_t>(alem.at("memory_bytes").as_int());
    entry.deployable = row.at("deployable").as_bool();
    if (row.contains("measured_latency_s")) {
      entry.measured_latency_s = row.at("measured_latency_s").as_number();
    }
    db.add(std::move(entry));
  }
  return db;
}

}  // namespace openei::selector
