// Network link simulator: transfer time and radio energy between nodes.
// Backs the cloud-offload comparison of Fig. 1/Sec. I (the "1 GB/s
// autonomous vehicle cannot upload in real time" argument) and the
// collaboration experiments of Fig. 2/3.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace openei::hwsim {

struct NetworkLink {
  std::string name;
  double bandwidth_bps = 1e6;
  double rtt_s = 0.05;
  /// Radio energy per transmitted byte (joules) — dominates edge offload
  /// energy budgets.
  double energy_per_byte_j = 1e-7;
  /// Packet-loss rate in [0, 1).  Lost packets are retransmitted, so loss
  /// shrinks goodput and inflates time/energy by the expected transmission
  /// count 1/(1-loss) — the degraded-link regime the resilient transport
  /// layer has to ride through.  0 (the default) reproduces a clean link.
  double loss_rate = 0.0;

  /// Expected transmissions per packet under the loss rate (>= 1).
  double expected_transmissions() const { return 1.0 / (1.0 - loss_rate); }

  /// One-way transfer latency for a payload (half the RTT + serialization;
  /// bandwidth is in bits/s, payloads in bytes; retransmissions included).
  double transfer_time_s(std::size_t bytes) const {
    return rtt_s / 2.0 + static_cast<double>(bytes) * 8.0 / bandwidth_bps *
                             expected_transmissions();
  }
  /// Round trip carrying `up` bytes out and `down` bytes back.
  double round_trip_s(std::size_t up_bytes, std::size_t down_bytes) const {
    return rtt_s + static_cast<double>(up_bytes + down_bytes) * 8.0 /
                       bandwidth_bps * expected_transmissions();
  }
  double transfer_energy_j(std::size_t bytes) const {
    return static_cast<double>(bytes) * energy_per_byte_j *
           expected_transmissions();
  }

  /// A copy of this link degraded to `loss` packet loss ("wifi" at 20%...).
  NetworkLink with_loss(double loss) const;
};

/// Representative links, ordered by quality.
NetworkLink lorawan();        // IoT long-range, ~27 kbps
NetworkLink cellular_lte();   // ~12 Mbps up, 50 ms RTT
NetworkLink wifi();           // ~100 Mbps, 5 ms RTT
NetworkLink ethernet_lan();   // ~1 Gbps, 1 ms RTT

std::vector<NetworkLink> default_links();

}  // namespace openei::hwsim
