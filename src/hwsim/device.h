// Edge device profiles — the simulated stand-in for the paper's physical
// fleet ("edge server, mobile phone, Raspberry Pi, laptop"; Sec. II-B) and
// the hardware axis of the model-selector cube (Fig. 5).
//
// Each profile is a deterministic roofline-style cost model: compute rate,
// memory bandwidth, RAM capacity, and power draw.  The ALEM tuple of a
// (model, package, device) combination is a pure function of these numbers,
// which preserves the *orderings* (who is faster, where memory runs out)
// that drive OpenEI's selection decisions — see DESIGN.md substitutions.
#pragma once

#include <string>
#include <vector>

namespace openei::hwsim {

struct PackageSpec;

/// Device classes the paper names, ordered roughly by capability.
enum class DeviceClass { kMicrocontroller, kSingleBoard, kMobile, kEdgeServer, kCloud };

struct DeviceProfile {
  std::string name;
  DeviceClass device_class = DeviceClass::kSingleBoard;

  /// Effective sustained compute rate for NN kernels (GFLOP/s).
  double effective_gflops = 1.0;
  /// Sustained memory bandwidth (GB/s).
  double memory_bandwidth_gbps = 1.0;
  /// RAM available to a deployed model + runtime (bytes).
  std::size_t ram_bytes = 256ULL << 20;
  /// Power draw when idle / under NN load (watts).
  double idle_power_w = 1.0;
  double active_power_w = 3.0;

  // --- Power-state ladder (hwsim/power.h) --------------------------------
  /// DVFS rungs available in the active state: clock fractions of nominal,
  /// ascending, last entry 1.0.  Dynamic power scales ~f^3 and latency ~1/f,
  /// so lower rungs trade latency for joules (energy-per-op ~f^2).
  std::vector<double> freq_levels = {0.5, 0.75, 1.0};
  /// Boost clock as a fraction of nominal (> 1): short overclock bursts the
  /// governor engages under queue pressure.
  double boost_freq_scale = 1.2;
  /// Wattage in the boost state; 0 derives it from the cube law at
  /// boost_freq_scale (see boost_power()).
  double boost_power_w = 0.0;
  /// Rolling-watts budget for the energy governor (the profile's thermal /
  /// battery envelope).  0 = unlimited: the ledger still accounts, but the
  /// governor never degrades or rejects on its behalf.
  double power_cap_w = 0.0;

  /// Boost-state draw: explicit boost_power_w, or the cube-law projection
  /// idle + (active - idle) * boost_freq_scale^3 when unset.
  double boost_power() const {
    if (boost_power_w > 0.0) return boost_power_w;
    double s3 = boost_freq_scale * boost_freq_scale * boost_freq_scale;
    return idle_power_w + (active_power_w - idle_power_w) * s3;
  }

  // --- Accelerator traits (paper Sec. IV-D) ------------------------------
  /// Fraction of zero-weight MACs the hardware skips (EIE [56] "exploits
  /// DNN sparsity"): 0 = dense hardware pays full cost, 1 = perfect skip.
  double sparse_mac_skip = 0.0;
  /// Throughput multiplier for int8 models (FPGA/ASIC quantized datapaths;
  /// ESE [59], Biookaghazadeh et al. [60]).  1.0 = no advantage.
  double int8_throughput_multiplier = 1.0;

  /// Energy drawn *above idle* while computing for `seconds` — the paper's
  /// Energy: "the increased power consumption ... when executing the
  /// inference task".
  double inference_energy_j(double seconds) const {
    return (active_power_w - idle_power_w) * seconds;
  }

  /// Byte budget for resident inference sessions (model weights +
  /// activation arenas) on this device: the RAM left after the package's
  /// resident runtime, scaled by `fraction` — the rest is headroom for the
  /// datastore, transport buffers, and the OS.  This is the M_pro of Eq. 1
  /// as a *runtime* limit: the session cache evicts to stay under it.
  std::size_t model_memory_budget(const PackageSpec& package,
                                  double fraction = 0.5) const;

  /// DVFS power capping — the Sec. IV-D open problem: "if the processing
  /// power is limited, we need to know how to calculate the maximum speed
  /// that the hardware reaches."  Dynamic power scales ~f^3 (P = C V^2 f
  /// with V tracking f), so capping active power at `watts` scales the
  /// clock (and the compute rate) by cbrt((cap - idle)/(active - idle)),
  /// clamped to (0, 1].  Throws when the cap is at or below idle draw.
  DeviceProfile with_power_cap(double watts) const;
};

/// The built-in simulated fleet.  Numbers are plausible public figures for
/// each device class; what matters is their relative ordering.
DeviceProfile arduino_class();      // kB-RAM microcontroller (ProtoNN target)
DeviceProfile raspberry_pi_3();
DeviceProfile raspberry_pi_4();
DeviceProfile jetson_tx2();
DeviceProfile mobile_phone();
DeviceProfile edge_server();
DeviceProfile cloud_gpu();

/// Sec. IV-D accelerator profiles (simulated; orderings follow the cited
/// measurements, see DESIGN.md substitutions).
DeviceProfile eie_sparse_accelerator();  // EIE [56]: skips zero MACs, ~W-class
DeviceProfile edge_fpga();               // ESE-style [59]: fast int8 datapath
DeviceProfile edge_gpu();                // discrete edge GPU: raw FLOPs, hungry

/// Every profile above, MCU first — the device axis of Fig. 5.
std::vector<DeviceProfile> default_fleet();

/// Edge-only subset (no cloud).
std::vector<DeviceProfile> edge_fleet();

}  // namespace openei::hwsim
