#include "hwsim/cost_model.h"

#include <algorithm>

#include "common/error.h"
#include "nn/conv.h"
#include "nn/dense.h"

namespace openei::hwsim {

namespace {

/// Fraction of weight-tensor entries that are (near) zero — what an
/// EIE-style sparse engine can skip.  Biases/batchnorm vectors excluded.
double model_zero_fraction(const nn::Model& model) {
  std::size_t zeros = 0;
  std::size_t total = 0;
  auto& mutable_model = const_cast<nn::Model&>(model);
  for (nn::Tensor* p : mutable_model.parameters()) {
    if (p->shape().rank() < 2 || p->elements() < 16) continue;
    zeros += p->count_near_zero();
    total += p->elements();
  }
  return total == 0 ? 0.0 : static_cast<double>(zeros) / static_cast<double>(total);
}

}  // namespace

double model_int8_fraction(const nn::Model& model) {
  std::size_t int8_params = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    auto& layer = const_cast<nn::Layer&>(model.layer(i));
    total += layer.param_count();
    // Quantized layers expose no float parameters; count their int8 weights.
    std::size_t qcount = 0;
    if (const auto* qd = dynamic_cast<const nn::QuantizedDense*>(&model.layer(i))) {
      qcount = qd->weight_count();
    } else if (const auto* qc =
                   dynamic_cast<const nn::QuantizedConv2d*>(&model.layer(i))) {
      qcount = qc->weight_count();
    }
    int8_params += qcount;
    total += qcount;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(int8_params) /
                          static_cast<double>(total);
}

std::size_t peak_activation_bytes(const nn::Model& model) {
  std::size_t peak = model.input_shape().elements();
  std::size_t previous = model.input_shape().elements();
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    std::size_t next = model.shape_after(i + 1).elements();
    peak = std::max(peak, previous + next);
    previous = next;
  }
  return peak * sizeof(float);
}

InferenceCost estimate_inference(const nn::Model& model, const PackageSpec& package,
                                 const DeviceProfile& device) {
  OPENEI_CHECK(device.effective_gflops > 0.0 && device.memory_bandwidth_gbps > 0.0,
               "degenerate device profile '", device.name, "'");

  auto flops = static_cast<double>(model.flops_per_sample());
  double weight_bytes = static_cast<double>(model.storage_bytes());
  double activation_bytes = static_cast<double>(peak_activation_bytes(model));

  // Accelerator traits (Sec. IV-D): sparse engines skip zero MACs and read
  // compressed weights; int8 datapaths raise throughput for quantized layers.
  if (device.sparse_mac_skip > 0.0) {
    double zero_fraction = model_zero_fraction(model);
    double skipped = device.sparse_mac_skip * zero_fraction;
    flops *= 1.0 - skipped;
    weight_bytes *= 1.0 - skipped;
  }
  if (device.int8_throughput_multiplier > 1.0) {
    double int8_fraction = model_int8_fraction(model);
    double speedup =
        1.0 + (device.int8_throughput_multiplier - 1.0) * int8_fraction;
    flops /= speedup;
  }

  double bytes = weight_bytes + activation_bytes;
  double compute_s = flops / (device.effective_gflops * 1e9);
  double traffic_s = bytes / (device.memory_bandwidth_gbps * 1e9);
  double roofline_s = std::max(compute_s, traffic_s);

  InferenceCost cost;
  cost.latency_s = roofline_s * package.kernel_efficiency_factor +
                   package.per_op_overhead_s *
                       static_cast<double>(model.layer_count());
  cost.energy_j = device.inference_energy_j(cost.latency_s);
  cost.memory_bytes = model.storage_bytes() + peak_activation_bytes(model) +
                      package.runtime_memory_bytes;
  return cost;
}

std::vector<LayerCost> profile_layers(const nn::Model& model,
                                      const PackageSpec& package,
                                      const DeviceProfile& device) {
  OPENEI_CHECK(device.effective_gflops > 0.0, "degenerate device profile");
  std::vector<LayerCost> out;
  out.reserve(model.layer_count());
  tensor::Shape shape = model.input_shape();
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    LayerCost cost;
    cost.index = i;
    cost.type = model.layer(i).type();
    cost.flops = model.layer(i).flops(shape);
    shape = model.layer(i).output_shape(shape);
    cost.activation_bytes = shape.elements() * sizeof(float);
    double compute_s =
        static_cast<double>(cost.flops) / (device.effective_gflops * 1e9);
    cost.latency_s = compute_s * package.kernel_efficiency_factor +
                     package.per_op_overhead_s;
    out.push_back(std::move(cost));
  }
  return out;
}

bool fits_in_ram(const nn::Model& model, const PackageSpec& package,
                 const DeviceProfile& device) {
  return estimate_inference(model, package, device).memory_bytes <= device.ram_bytes;
}

InferenceCost estimate_training(const nn::Model& model, const PackageSpec& package,
                                const DeviceProfile& device, std::size_t samples,
                                std::size_t epochs) {
  OPENEI_CHECK(package.supports_training, "package '", package.name,
               "' is inference-only");
  OPENEI_CHECK(samples > 0 && epochs > 0, "empty training job");

  InferenceCost forward = estimate_inference(model, package, device);
  InferenceCost cost;
  // Backward ~= 2x forward; gradient buffers double the weight memory.
  cost.latency_s = forward.latency_s * 3.0 * static_cast<double>(samples) *
                   static_cast<double>(epochs);
  cost.energy_j = device.inference_energy_j(cost.latency_s);
  cost.memory_bytes = forward.memory_bytes + model.storage_bytes();
  return cost;
}

}  // namespace openei::hwsim
