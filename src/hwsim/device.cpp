#include "hwsim/device.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "hwsim/package.h"

namespace openei::hwsim {

std::size_t DeviceProfile::model_memory_budget(const PackageSpec& package,
                                               double fraction) const {
  OPENEI_CHECK(fraction > 0.0 && fraction <= 1.0,
               "budget fraction must be in (0, 1]; got ", fraction);
  std::size_t runtime = std::min(package.runtime_memory_bytes, ram_bytes);
  auto available = static_cast<double>(ram_bytes - runtime) * fraction;
  return static_cast<std::size_t>(available);
}

DeviceProfile DeviceProfile::with_power_cap(double watts) const {
  OPENEI_CHECK(watts > idle_power_w, "power cap ", watts, " W at or below '",
               name, "' idle draw ", idle_power_w, " W");
  if (watts >= active_power_w) return *this;  // cap not binding

  double frequency_fraction = std::cbrt((watts - idle_power_w) /
                                        (active_power_w - idle_power_w));
  frequency_fraction = std::clamp(frequency_fraction, 1e-6, 1.0);

  DeviceProfile capped = *this;
  capped.name = name + "@" + std::to_string(watts) + "W";
  capped.effective_gflops = effective_gflops * frequency_fraction;
  // Memory bandwidth degrades sub-linearly with clock; model it linearly in
  // f as a conservative bound.
  capped.memory_bandwidth_gbps = memory_bandwidth_gbps * frequency_fraction;
  capped.active_power_w = watts;
  return capped;
}

DeviceProfile arduino_class() {
  return DeviceProfile{
      .name = "arduino-class-mcu",
      .device_class = DeviceClass::kMicrocontroller,
      .effective_gflops = 0.00002,  // ~20 kFLOP/s softfloat 8-bit AVR
      .memory_bandwidth_gbps = 0.00001,
      .ram_bytes = 2ULL << 10,  // 2 kB — the ProtoNN headline budget
      .idle_power_w = 0.02,
      .active_power_w = 0.15,
  };
}

DeviceProfile raspberry_pi_3() {
  return DeviceProfile{
      .name = "raspberry-pi-3",
      .device_class = DeviceClass::kSingleBoard,
      .effective_gflops = 1.5,
      .memory_bandwidth_gbps = 2.0,
      .ram_bytes = 1ULL << 30,  // 1 GB
      .idle_power_w = 1.4,
      .active_power_w = 3.7,
  };
}

DeviceProfile raspberry_pi_4() {
  return DeviceProfile{
      .name = "raspberry-pi-4",
      .device_class = DeviceClass::kSingleBoard,
      .effective_gflops = 6.0,
      .memory_bandwidth_gbps = 4.0,
      .ram_bytes = 4ULL << 30,
      .idle_power_w = 2.7,
      .active_power_w = 6.4,
  };
}

DeviceProfile jetson_tx2() {
  return DeviceProfile{
      .name = "jetson-tx2",
      .device_class = DeviceClass::kEdgeServer,
      .effective_gflops = 250.0,  // GPU-accelerated NN kernels
      .memory_bandwidth_gbps = 58.0,
      .ram_bytes = 8ULL << 30,
      .idle_power_w = 5.0,
      .active_power_w = 15.0,
  };
}

DeviceProfile mobile_phone() {
  return DeviceProfile{
      .name = "mobile-phone",
      .device_class = DeviceClass::kMobile,
      .effective_gflops = 20.0,
      .memory_bandwidth_gbps = 15.0,
      .ram_bytes = 6ULL << 30,
      .idle_power_w = 0.8,
      .active_power_w = 4.5,
  };
}

DeviceProfile edge_server() {
  return DeviceProfile{
      .name = "edge-server",
      .device_class = DeviceClass::kEdgeServer,
      .effective_gflops = 500.0,
      .memory_bandwidth_gbps = 80.0,
      .ram_bytes = 64ULL << 30,
      .idle_power_w = 60.0,
      .active_power_w = 180.0,
  };
}

DeviceProfile cloud_gpu() {
  return DeviceProfile{
      .name = "cloud-gpu",
      .device_class = DeviceClass::kCloud,
      .effective_gflops = 15000.0,
      .memory_bandwidth_gbps = 900.0,
      .ram_bytes = 256ULL << 30,
      .idle_power_w = 150.0,
      .active_power_w = 700.0,
  };
}

DeviceProfile eie_sparse_accelerator() {
  return DeviceProfile{
      .name = "eie-sparse-accelerator",
      .device_class = DeviceClass::kEdgeServer,
      .effective_gflops = 100.0,  // dense rate; sparsity skip multiplies it
      .memory_bandwidth_gbps = 25.0,
      .ram_bytes = 2ULL << 30,
      .idle_power_w = 0.3,
      .active_power_w = 1.2,  // EIE's pitch: orders of magnitude per-watt
      .sparse_mac_skip = 0.95,
      .int8_throughput_multiplier = 2.0,
  };
}

DeviceProfile edge_fpga() {
  return DeviceProfile{
      .name = "edge-fpga",
      .device_class = DeviceClass::kEdgeServer,
      .effective_gflops = 80.0,
      .memory_bandwidth_gbps = 20.0,
      .ram_bytes = 4ULL << 30,
      .idle_power_w = 2.0,
      .active_power_w = 10.0,
      .sparse_mac_skip = 0.5,  // load-balance-aware pruning (ESE) exploitable
      .int8_throughput_multiplier = 4.0,
  };
}

DeviceProfile edge_gpu() {
  return DeviceProfile{
      .name = "edge-gpu",
      .device_class = DeviceClass::kEdgeServer,
      .effective_gflops = 900.0,
      .memory_bandwidth_gbps = 200.0,
      .ram_bytes = 8ULL << 30,
      .idle_power_w = 20.0,
      .active_power_w = 120.0,
      // GPUs gain little from unstructured sparsity and modest int8 wins.
      .sparse_mac_skip = 0.0,
      .int8_throughput_multiplier = 1.5,
  };
}

std::vector<DeviceProfile> default_fleet() {
  return {arduino_class(), raspberry_pi_3(), raspberry_pi_4(), mobile_phone(),
          jetson_tx2(),    edge_server(),    cloud_gpu()};
}

std::vector<DeviceProfile> edge_fleet() {
  return {arduino_class(), raspberry_pi_3(), raspberry_pi_4(),
          mobile_phone(),  jetson_tx2(),     edge_server()};
}

}  // namespace openei::hwsim
