#include "hwsim/network.h"

#include "common/error.h"

namespace openei::hwsim {

NetworkLink NetworkLink::with_loss(double loss) const {
  OPENEI_CHECK(loss >= 0.0 && loss < 1.0, "loss rate out of [0,1): ", loss);
  NetworkLink degraded = *this;
  degraded.loss_rate = loss;
  if (loss > 0.0) degraded.name += "+loss";
  return degraded;
}

NetworkLink lorawan() {
  return NetworkLink{
      .name = "lorawan", .bandwidth_bps = 27e3, .rtt_s = 1.0,
      .energy_per_byte_j = 1e-4};
}

NetworkLink cellular_lte() {
  return NetworkLink{
      .name = "cellular-lte", .bandwidth_bps = 12e6, .rtt_s = 0.05,
      .energy_per_byte_j = 4e-7};
}

NetworkLink wifi() {
  return NetworkLink{
      .name = "wifi", .bandwidth_bps = 100e6, .rtt_s = 0.005,
      .energy_per_byte_j = 6e-8};
}

NetworkLink ethernet_lan() {
  return NetworkLink{
      .name = "ethernet-lan", .bandwidth_bps = 1e9, .rtt_s = 0.001,
      .energy_per_byte_j = 1e-8};
}

std::vector<NetworkLink> default_links() {
  return {lorawan(), cellular_lte(), wifi(), ethernet_lan()};
}

}  // namespace openei::hwsim
