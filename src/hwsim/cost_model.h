// Roofline ALEM cost model: maps (model, package, device) to the paper's
// Latency / Energy / Memory-footprint attributes (Accuracy is measured by
// actually running the model — see selector/profiler.h).
#pragma once

#include <string>
#include <vector>

#include "hwsim/device.h"
#include "hwsim/package.h"
#include "nn/model.h"

namespace openei::hwsim {

/// Simulated execution costs of one inference (batch size 1).
struct InferenceCost {
  double latency_s = 0.0;
  double energy_j = 0.0;
  std::size_t memory_bytes = 0;  // weights + peak activations + runtime
};

/// Peak per-sample activation footprint: the largest adjacent input+output
/// pair across layers (a two-buffer executor).
std::size_t peak_activation_bytes(const nn::Model& model);

/// Fraction of the model's parameters living in int8-quantized layers
/// (QuantizedDense / QuantizedConv2d).  Drives the int8-datapath roofline
/// speedup and is surfaced per model by the EI service.
double model_int8_fraction(const nn::Model& model);

/// Roofline inference cost.  Latency = per-op dispatch + max(compute, memory
/// traffic) scaled by package efficiency; energy = device inference power x
/// latency; memory = model storage + activations + package runtime.
InferenceCost estimate_inference(const nn::Model& model, const PackageSpec& package,
                                 const DeviceProfile& device);

/// True when the model + runtime fit the device's RAM — infeasible combos
/// are what the model selector's M <= M_pro constraint excludes.
bool fits_in_ram(const nn::Model& model, const PackageSpec& package,
                 const DeviceProfile& device);

/// Cost of on-device training: `epochs` passes over `samples` samples with
/// forward+backward ~= 3x forward FLOPs.  Throws if the package cannot
/// train.
InferenceCost estimate_training(const nn::Model& model, const PackageSpec& package,
                                const DeviceProfile& device, std::size_t samples,
                                std::size_t epochs);

/// Per-layer latency breakdown (the profiler view: where does the time go?).
/// Layer latency = compute roofline x package efficiency + dispatch
/// overhead; splitting decisions (collab::evaluate_split) and the Fig. 4
/// package comparison both reduce to sums over this table.
struct LayerCost {
  std::size_t index = 0;
  std::string type;
  std::size_t flops = 0;
  std::size_t activation_bytes = 0;  // output activation size
  double latency_s = 0.0;
};

std::vector<LayerCost> profile_layers(const nn::Model& model,
                                      const PackageSpec& package,
                                      const DeviceProfile& device);

}  // namespace openei::hwsim
