#include "hwsim/power.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/clock.h"
#include "common/error.h"

namespace openei::hwsim {

std::string to_string(PowerState state) {
  switch (state) {
    case PowerState::kIdle:
      return "idle";
    case PowerState::kActive:
      return "active";
    case PowerState::kBoost:
      return "boost";
  }
  return "unknown";
}

EnergyLedger::EnergyLedger(DeviceProfile device,
                           std::function<std::int64_t()> now_ns)
    : device_(std::move(device)),
      now_ns_(now_ns ? std::move(now_ns)
                     : [] { return common::wall_now_ns(); }) {
  OPENEI_CHECK(!device_.freq_levels.empty(), "device '", device_.name,
               "' has an empty freq_levels ladder");
  for (double f : device_.freq_levels) {
    OPENEI_CHECK(f > 0.0 && f <= 1.0, "freq level ", f, " outside (0, 1] on '",
                 device_.name, "'");
  }
  OPENEI_CHECK(device_.boost_freq_scale >= 1.0, "boost_freq_scale ",
               device_.boost_freq_scale, " below nominal on '", device_.name,
               "'");
  start_ns_ = now_ns_();
  last_settle_ns_ = start_ns_;
  freq_level_ = device_.freq_levels.size() - 1;  // nominal clock by default
}

double EnergyLedger::freq_scale(PowerState state,
                                std::size_t freq_level) const {
  switch (state) {
    case PowerState::kIdle:
      return 0.0;  // no compute while idle
    case PowerState::kActive: {
      std::size_t level =
          std::min(freq_level, device_.freq_levels.size() - 1);
      return device_.freq_levels[level];
    }
    case PowerState::kBoost:
      return device_.boost_freq_scale;
  }
  return 1.0;
}

double EnergyLedger::state_power_w(PowerState state,
                                   std::size_t freq_level) const {
  switch (state) {
    case PowerState::kIdle:
      return device_.idle_power_w;
    case PowerState::kActive: {
      double f = freq_scale(PowerState::kActive, freq_level);
      return device_.idle_power_w +
             (device_.active_power_w - device_.idle_power_w) * f * f * f;
    }
    case PowerState::kBoost:
      return device_.boost_power();
  }
  return device_.idle_power_w;
}

void EnergyLedger::settle() {
  std::int64_t now = now_ns_();
  // Clamp a non-monotone injected clock to zero elapsed instead of letting a
  // negative dt un-earn joules: the ledger is monotone by contract.
  double dt = std::max<std::int64_t>(0, now - last_settle_ns_) * 1e-9;
  last_settle_ns_ = std::max(now, last_settle_ns_);
  auto idx = static_cast<std::size_t>(state_);
  state_seconds_[idx] += dt;
  state_j_[idx] += dt * state_power_w(state_, freq_level_);
}

void EnergyLedger::set_state(PowerState state) {
  settle();
  if (state == state_) return;
  int from = static_cast<int>(state_);
  int to = static_cast<int>(state);
  OPENEI_CHECK(std::abs(from - to) == 1, "illegal power transition ",
               to_string(state_), " -> ", to_string(state), " on '",
               device_.name, "': governor steps one rung at a time");
  state_ = state;
  ++transitions_;
}

void EnergyLedger::set_freq_level(std::size_t level) {
  settle();  // earlier time accrues at the old rung's wattage
  freq_level_ = std::min(level, device_.freq_levels.size() - 1);
}

double EnergyLedger::charge_busy(double sim_busy_seconds) {
  OPENEI_CHECK(sim_busy_seconds >= 0.0, "negative busy time ",
               sim_busy_seconds);
  OPENEI_CHECK(state_ != PowerState::kIdle,
               "charge_busy while idle on '", device_.name,
               "': the governor must step to active before dispatching work");
  settle();
  double f = freq_scale(state_, freq_level_);
  // Nominal-clock busy time stretches by 1/f; the dynamic draw above idle at
  // fraction f is (P_state - P_idle), so joules = (P_state - P_idle) * t / f.
  // With cube-law power this is (active - idle) * f^2 * t: lower rungs are
  // slower but cheaper, the trade the energy scheduler optimizes.
  double stretched = sim_busy_seconds / f;
  double joules =
      (state_power_w(state_, freq_level_) - device_.idle_power_w) * stretched;
  auto idx = static_cast<std::size_t>(state_);
  state_j_[idx] += joules;
  busy_j_ += joules;
  busy_seconds_ += stretched;
  ++charges_;
  return joules;
}

EnergyLedger::Snapshot EnergyLedger::snapshot() {
  settle();
  Snapshot snap;
  snap.state_j = state_j_;
  snap.state_seconds = state_seconds_;
  for (double j : state_j_) snap.total_j += j;
  snap.busy_j = busy_j_;
  snap.busy_seconds = busy_seconds_;
  snap.charges = charges_;
  snap.transitions = transitions_;
  snap.state = state_;
  snap.freq_level = freq_level_;
  snap.elapsed_seconds = (last_settle_ns_ - start_ns_) * 1e-9;
  return snap;
}

}  // namespace openei::hwsim
