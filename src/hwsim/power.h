// Device power states and the cumulative energy ledger — the Energy axis of
// Eq. 1 promoted from a static per-request estimate to a *stateful* account.
//
// The paper treats Energy as "the increased power consumption ... when
// executing the inference task"; "On the Sustainability of AI Inferences in
// the Edge" (PAPERS.md) argues energy must also be a *scheduling input*.
// That needs device power semantics richer than a single active wattage:
//
//   - three power states (idle / active / boost) with single-step legal
//     transitions, mirroring real governor ladders;
//   - DVFS-style frequency levels: running at fraction f of nominal clock
//     draws dynamic power ~f^3 (P = C V^2 f with V tracking f) and takes
//     1/f times as long, so energy-per-op scales ~f^2 — slower can be
//     cheaper, which is exactly the trade-off the energy-governed selector
//     (selector/energy_schedule.h) optimizes over;
//   - a monotonic cumulative joule ledger with an injectable clock, so the
//     whole account is deterministic under test and conservation laws
//     (total = sum of per-state joules; idle floor) can be pinned exactly.
//
// The ledger accrues *continuously*: wall (or injected) time spent in a
// state costs that state's baseline wattage, and each simulated inference
// additionally charges its busy-energy above idle via `charge_busy`.  Every
// simulated inference, stream frame, and batch flush in the serving stack
// routes through runtime::EnergyGovernor, which owns one of these.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "hwsim/device.h"

namespace openei::hwsim {

/// Governor ladder, ordered by draw.  Transitions must move one step at a
/// time (idle <-> active <-> boost): real cpufreq governors do not jump a
/// core from deep idle straight to boost, and the energy tests pin that.
enum class PowerState : int { kIdle = 0, kActive = 1, kBoost = 2 };

inline constexpr int kPowerStateCount = 3;

std::string to_string(PowerState state);

/// Monotonic cumulative energy account for one simulated device.
///
/// Not thread-safe: runtime::EnergyGovernor serializes access.  All time
/// comes from the injected nanosecond clock, so identical op schedules
/// produce bit-identical ledgers (the EnergyProperty suite relies on this).
class EnergyLedger {
 public:
  struct Snapshot {
    double total_j = 0.0;                         ///< lifetime joules, all states
    std::array<double, kPowerStateCount> state_j{};        ///< joules accrued per state
    std::array<double, kPowerStateCount> state_seconds{};  ///< wall seconds per state
    double busy_j = 0.0;           ///< above-idle joules from charge_busy
    double busy_seconds = 0.0;     ///< frequency-adjusted busy seconds
    std::uint64_t charges = 0;     ///< charge_busy calls
    std::uint64_t transitions = 0; ///< successful set_state calls
    PowerState state = PowerState::kIdle;
    std::size_t freq_level = 0;
    double elapsed_seconds = 0.0;  ///< time since ledger construction
  };

  /// `now_ns` defaults to the wall clock; tests and benches inject a fake.
  explicit EnergyLedger(DeviceProfile device,
                        std::function<std::int64_t()> now_ns = {});

  /// Step to an adjacent state.  Throws common::InvalidArgument on a skip
  /// (idle -> boost or boost -> idle); a same-state call is a no-op that
  /// still settles accrued time.
  void set_state(PowerState state);

  /// Select a DVFS rung (index into the device's freq_levels ladder,
  /// clamped).  Only meaningful in the active state; boost runs at the
  /// device's boost_freq_scale regardless.
  void set_freq_level(std::size_t level);

  /// Charge the above-idle energy of `sim_busy_seconds` of nominal-clock
  /// compute, stretched by the current frequency (busy time / f) and billed
  /// at the current state's dynamic wattage.  Illegal while idle — the
  /// governor must step to active first.  Returns the joules charged so
  /// callers can attribute them to a request trace.
  double charge_busy(double sim_busy_seconds);

  /// Settle elapsed time into the current state's bucket and snapshot.
  /// Monotone: every field is non-decreasing across successive calls.
  Snapshot snapshot();

  /// Baseline wattage of `state` at `freq_level` on this device: the rate
  /// time accrues joules between charges.  Exposed so reference models in
  /// tests can mirror the account exactly.
  double state_power_w(PowerState state, std::size_t freq_level) const;

  /// Effective clock fraction of `state` at `freq_level` (boost may exceed 1).
  double freq_scale(PowerState state, std::size_t freq_level) const;

  PowerState state() const { return state_; }
  std::size_t freq_level() const { return freq_level_; }
  const DeviceProfile& device() const { return device_; }

 private:
  void settle();  // accrue (now - last_settle) into the current state bucket

  DeviceProfile device_;
  std::function<std::int64_t()> now_ns_;
  std::int64_t start_ns_ = 0;
  std::int64_t last_settle_ns_ = 0;
  PowerState state_ = PowerState::kIdle;
  std::size_t freq_level_ = 0;

  std::array<double, kPowerStateCount> state_j_{};
  std::array<double, kPowerStateCount> state_seconds_{};
  double busy_j_ = 0.0;
  double busy_seconds_ = 0.0;
  std::uint64_t charges_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace openei::hwsim
