#include "hwsim/package.h"

namespace openei::hwsim {

PackageSpec full_framework() {
  return PackageSpec{
      .name = "tensorstream-full",
      .kernel_efficiency_factor = 1.0,     // mature, tuned kernels
      .per_op_overhead_s = 250e-6,         // heavyweight graph dispatch
      .runtime_memory_bytes = 600ULL << 20,  // interpreter + deps
      .supports_training = true,
  };
}

PackageSpec lite_framework() {
  return PackageSpec{
      .name = "tensorstream-lite",
      .kernel_efficiency_factor = 1.15,  // fewer fused kernels
      .per_op_overhead_s = 15e-6,
      .runtime_memory_bytes = 6ULL << 20,
      .supports_training = false,
  };
}

PackageSpec openei_package() {
  return PackageSpec{
      .name = "openei-package-manager",
      .kernel_efficiency_factor = 1.05,  // co-optimized with the model zoo
      .per_op_overhead_s = 10e-6,
      .runtime_memory_bytes = 4ULL << 20,
      .supports_training = true,  // local retraining, paper Sec. III-B
  };
}

std::vector<PackageSpec> default_packages() {
  return {full_framework(), lite_framework(), openei_package()};
}

}  // namespace openei::hwsim
