// Deep-learning package profiles — the middle axis of the Fig. 5 selector
// cube ("TensorFlow, PyTorch, MXNet, to name a few") and the subject of the
// paper's Sec. IV-B package comparison (pCAMP [48]: no framework wins on all
// of latency, memory, and energy).
//
// A package multiplies the device roofline latency by an efficiency factor
// and adds per-op dispatch overhead plus a fixed runtime memory footprint.
// Full cloud frameworks have heavy runtimes but mature kernels; lite
// packages trade a leaner runtime for fewer optimizations; the OpenEI
// package manager is lite *and* co-optimized (paper Sec. III-B).
#pragma once

#include <string>
#include <vector>

namespace openei::hwsim {

struct PackageSpec {
  std::string name;
  /// Multiplier on roofline compute time (1.0 = perfect kernels).
  double kernel_efficiency_factor = 1.0;
  /// Fixed dispatch cost added per layer per inference (seconds).
  double per_op_overhead_s = 0.0;
  /// Resident runtime memory (interpreter, kernel registry...).
  std::size_t runtime_memory_bytes = 0;
  /// Whether on-device training is available (paper: OpenEI's package
  /// manager trains locally; TFLite-style packages do not).
  bool supports_training = false;
};

/// Heavyweight cloud framework (TensorFlow-style): best kernels, fat runtime.
PackageSpec full_framework();
/// Mobile/edge inference package (TFLite-style): lean, inference-only.
PackageSpec lite_framework();
/// The OpenEI package manager: lean, trains locally, co-optimized kernels
/// (paper Sec. III-B).
PackageSpec openei_package();

/// All three — the package axis of Fig. 5.
std::vector<PackageSpec> default_packages();

}  // namespace openei::hwsim
