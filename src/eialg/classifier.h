// Common interface for the EI algorithms of paper Sec. IV-A2 — models
// "designed for the resource-constrained edges directly" (Bonsai, ProtoNN,
// FastGRNN).  Unlike nn::Model they are not layer graphs; the interface
// exposes exactly what the E9 bench compares: accuracy, model size, FLOPs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace openei::eialg {

using tensor::Tensor;

class EiClassifier {
 public:
  virtual ~EiClassifier() = default;

  virtual std::string name() const = 0;

  /// Trains on the dataset (must be called before predict).
  virtual void fit(const data::Dataset& train) = 0;

  /// Class predictions for feature rows [N, D].
  virtual std::vector<std::size_t> predict(const Tensor& features) const = 0;

  /// Serialized model footprint in bytes (the headline constraint: ProtoNN
  /// targets "an Arduino UNO with 2kB RAM").
  virtual std::size_t model_size_bytes() const = 0;

  /// FLOPs for one prediction.
  virtual std::size_t flops_per_sample() const = 0;
};

/// Test accuracy of a fitted classifier.
double evaluate(const EiClassifier& classifier, const data::Dataset& test);

}  // namespace openei::eialg
