#include "eialg/protonn.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace openei::eialg {

ProtoNn::ProtoNn(ProtoNnOptions options) : options_(options) {
  OPENEI_CHECK(options.projection_dim > 0, "zero projection dim");
  OPENEI_CHECK(options.prototypes_per_class > 0, "zero prototypes per class");
  OPENEI_CHECK(options.gamma > 0.0F, "non-positive gamma");
}

namespace {

/// Plain multi-dimensional Lloyd k-means for prototype initialization.
std::vector<std::vector<float>> kmeans_rows(const Tensor& rows,
                                            const std::vector<std::size_t>& subset,
                                            std::size_t k, common::Rng& rng) {
  std::size_t dims = rows.shape().dim(1);
  k = std::min(k, subset.size());
  std::vector<std::vector<float>> centroids(k, std::vector<float>(dims));
  // Init with k distinct random members.
  std::vector<std::size_t> pick = subset;
  rng.shuffle(pick);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t d = 0; d < dims; ++d) centroids[j][d] = rows.at2(pick[j], d);
  }

  std::vector<std::size_t> assignment(subset.size(), 0);
  for (int iter = 0; iter < 25; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < subset.size(); ++i) {
      double best = 1e30;
      std::size_t arg = 0;
      for (std::size_t j = 0; j < k; ++j) {
        double dist = 0.0;
        for (std::size_t d = 0; d < dims; ++d) {
          double delta = rows.at2(subset[i], d) - centroids[j][d];
          dist += delta * delta;
        }
        if (dist < best) {
          best = dist;
          arg = j;
        }
      }
      if (assignment[i] != arg) {
        assignment[i] = arg;
        changed = true;
      }
    }
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < subset.size(); ++i) {
      for (std::size_t d = 0; d < dims; ++d) {
        sums[assignment[i]][d] += rows.at2(subset[i], d);
      }
      ++counts[assignment[i]];
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (counts[j] == 0) continue;
      for (std::size_t d = 0; d < dims; ++d) {
        centroids[j][d] =
            static_cast<float>(sums[j][d] / static_cast<double>(counts[j]));
      }
    }
    if (!changed && iter > 0) break;
  }
  return centroids;
}

}  // namespace

void ProtoNn::fit(const data::Dataset& train) {
  train.check();
  OPENEI_CHECK(train.features.shape().rank() == 2,
               "protonn expects flat [N, D] features");
  classes_ = train.classes;
  input_dim_ = train.features.shape().dim(1);

  common::Rng rng(options_.seed);
  float scale = 1.0F / std::sqrt(static_cast<float>(options_.projection_dim));
  projection_ = Tensor::random_uniform(
      tensor::Shape{input_dim_, options_.projection_dim}, rng, -scale, scale);

  Tensor projected = tensor::matmul(train.features, projection_);

  // Per-class k-means prototypes.
  std::vector<std::vector<float>> prototype_rows;
  prototype_labels_.clear();
  for (std::size_t cls = 0; cls < classes_; ++cls) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < train.size(); ++i) {
      if (train.labels[i] == cls) members.push_back(i);
    }
    OPENEI_CHECK(!members.empty(), "class ", cls, " has no training samples");
    auto centroids =
        kmeans_rows(projected, members, options_.prototypes_per_class, rng);
    for (auto& centroid : centroids) {
      prototype_rows.push_back(std::move(centroid));
      prototype_labels_.push_back(cls);
    }
  }
  std::size_t m = prototype_rows.size();
  prototypes_ = Tensor(tensor::Shape{m, options_.projection_dim});
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t d = 0; d < options_.projection_dim; ++d) {
      prototypes_.at2(j, d) = prototype_rows[j][d];
    }
  }

  // SGD refinement of prototype positions on softmax cross-entropy.
  float gamma_sq = options_.gamma * options_.gamma;
  for (std::size_t epoch = 0; epoch < options_.refine_epochs; ++epoch) {
    auto perm = rng.permutation(train.size());
    for (std::size_t idx : perm) {
      // Similarities s_j = exp(-gamma^2 ||p - B_j||^2).
      std::vector<float> sim(m);
      std::vector<float> scores(classes_, 0.0F);
      for (std::size_t j = 0; j < m; ++j) {
        double dist = 0.0;
        for (std::size_t d = 0; d < options_.projection_dim; ++d) {
          double delta = projected.at2(idx, d) - prototypes_.at2(j, d);
          dist += delta * delta;
        }
        sim[j] = std::exp(-gamma_sq * static_cast<float>(dist));
        scores[prototype_labels_[j]] += sim[j];
      }
      // Softmax CE gradient on scores.
      float max_score = *std::max_element(scores.begin(), scores.end());
      double denom = 0.0;
      std::vector<float> probs(classes_);
      for (std::size_t c = 0; c < classes_; ++c) {
        probs[c] = std::exp(scores[c] - max_score);
        denom += probs[c];
      }
      for (std::size_t c = 0; c < classes_; ++c) {
        probs[c] = static_cast<float>(probs[c] / denom);
      }
      // dL/dscore_c = p_c - 1[c == y];  dscore_c/dB_j = 1[label_j == c] *
      // s_j * 2 gamma^2 (p - B_j).
      for (std::size_t j = 0; j < m; ++j) {
        float dscore =
            probs[prototype_labels_[j]] -
            (prototype_labels_[j] == train.labels[idx] ? 1.0F : 0.0F);
        float coeff =
            -options_.learning_rate * dscore * sim[j] * 2.0F * gamma_sq;
        for (std::size_t d = 0; d < options_.projection_dim; ++d) {
          prototypes_.at2(j, d) +=
              coeff * (projected.at2(idx, d) - prototypes_.at2(j, d));
        }
      }
    }
  }
}

Tensor ProtoNn::score(const Tensor& projected) const {
  std::size_t n = projected.shape().dim(0);
  std::size_t m = prototype_labels_.size();
  float gamma_sq = options_.gamma * options_.gamma;
  Tensor scores(tensor::Shape{n, classes_});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      double dist = 0.0;
      for (std::size_t d = 0; d < options_.projection_dim; ++d) {
        double delta = projected.at2(i, d) - prototypes_.at2(j, d);
        dist += delta * delta;
      }
      scores.at2(i, prototype_labels_[j]) +=
          std::exp(-gamma_sq * static_cast<float>(dist));
    }
  }
  return scores;
}

std::vector<std::size_t> ProtoNn::predict(const Tensor& features) const {
  OPENEI_CHECK(!prototype_labels_.empty(), "predict before fit");
  OPENEI_CHECK(features.shape().rank() == 2 &&
                   features.shape().dim(1) == input_dim_,
               "protonn feature width mismatch");
  Tensor scores = score(tensor::matmul(features, projection_));
  std::size_t n = scores.shape().dim(0);
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes_; ++c) {
      if (scores.at2(i, c) > scores.at2(i, best)) best = c;
    }
    out[i] = best;
  }
  return out;
}

std::size_t ProtoNn::model_size_bytes() const {
  // Projection + prototypes + one label byte per prototype.
  return projection_.size_bytes() + prototypes_.size_bytes() +
         prototype_labels_.size();
}

std::size_t ProtoNn::flops_per_sample() const {
  std::size_t projection_flops = 2 * input_dim_ * options_.projection_dim;
  std::size_t similarity_flops =
      prototype_labels_.size() * 3 * options_.projection_dim;
  return projection_flops + similarity_flops;
}

}  // namespace openei::eialg
