// ProtoNN-style prototype classifier (Gupta et al. [41]).
//
// Learns a low-dimensional projection W and a small set of labelled
// prototypes B; prediction scores class c as
//   score_c(x) = sum_j Z_jc * exp(-gamma^2 ||W x - B_j||^2)
// Prototypes are initialized with per-class k-means in the projected space
// and refined by SGD on softmax cross-entropy — compressed, kNN-flavoured
// inference that fits kilobyte budgets.
#pragma once

#include "common/rng.h"
#include "eialg/classifier.h"

namespace openei::eialg {

struct ProtoNnOptions {
  std::size_t projection_dim = 8;
  std::size_t prototypes_per_class = 3;
  float gamma = 1.0F;
  /// SGD refinement passes over the training set (0 = k-means init only).
  std::size_t refine_epochs = 5;
  float learning_rate = 0.1F;
  std::uint64_t seed = 2;
};

class ProtoNn final : public EiClassifier {
 public:
  explicit ProtoNn(ProtoNnOptions options);

  std::string name() const override { return "protonn"; }
  void fit(const data::Dataset& train) override;
  std::vector<std::size_t> predict(const Tensor& features) const override;
  std::size_t model_size_bytes() const override;
  std::size_t flops_per_sample() const override;

  std::size_t prototype_count() const { return prototype_labels_.size(); }

 private:
  /// Scores [N, classes] for projected rows.
  Tensor score(const Tensor& projected) const;

  ProtoNnOptions options_;
  Tensor projection_;  // [D, d]
  Tensor prototypes_;  // [m, d]
  std::vector<std::size_t> prototype_labels_;
  std::size_t classes_ = 0;
  std::size_t input_dim_ = 0;
};

}  // namespace openei::eialg
