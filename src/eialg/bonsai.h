// Bonsai-style projected decision tree (Kumar et al. [40]).
//
// The defining Bonsai ideas kept here: (1) learn in a low-dimensional
// projected space so the model fits in kilobytes, (2) a single shallow tree
// whose path computation is cheap enough for MCU-class devices.  The tree is
// grown greedily by information gain on the projected features (CART-style),
// which keeps training gradient-free and fast on-device.
#pragma once

#include <memory>

#include "common/rng.h"
#include "eialg/classifier.h"

namespace openei::eialg {

struct BonsaiOptions {
  std::size_t projection_dim = 8;
  std::size_t max_depth = 4;
  /// Minimum samples to split a node further.
  std::size_t min_split = 8;
  /// Candidate thresholds examined per feature (quantiles).
  std::size_t threshold_candidates = 8;
  std::uint64_t seed = 1;
};

class BonsaiTree final : public EiClassifier {
 public:
  explicit BonsaiTree(BonsaiOptions options);
  ~BonsaiTree() override;
  BonsaiTree(BonsaiTree&&) noexcept;
  BonsaiTree& operator=(BonsaiTree&&) noexcept;

  std::string name() const override { return "bonsai_tree"; }
  void fit(const data::Dataset& train) override;
  std::vector<std::size_t> predict(const Tensor& features) const override;
  std::size_t model_size_bytes() const override;
  std::size_t flops_per_sample() const override;

  /// Node count of the grown tree (0 before fit).
  std::size_t node_count() const;
  std::size_t depth() const;

 private:
  struct Node;
  Tensor project(const Tensor& features) const;
  std::unique_ptr<Node> grow(const Tensor& projected,
                             const std::vector<std::size_t>& labels,
                             const std::vector<std::size_t>& rows,
                             std::size_t depth_left, common::Rng& rng);

  BonsaiOptions options_;
  Tensor projection_;  // [D, d]
  std::unique_ptr<Node> root_;
  std::size_t classes_ = 0;
  std::size_t input_dim_ = 0;
};

}  // namespace openei::eialg
