#include "eialg/classifier.h"

#include "data/metrics.h"

namespace openei::eialg {

double evaluate(const EiClassifier& classifier, const data::Dataset& test) {
  test.check();
  return data::accuracy(classifier.predict(test.features), test.labels);
}

}  // namespace openei::eialg
