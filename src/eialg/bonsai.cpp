#include "eialg/bonsai.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace openei::eialg {

struct BonsaiTree::Node {
  bool leaf = true;
  std::size_t feature = 0;
  float threshold = 0.0F;
  std::size_t majority = 0;  // leaf prediction
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  std::size_t count() const {
    if (leaf) return 1;
    return 1 + left->count() + right->count();
  }
  std::size_t depth() const {
    if (leaf) return 1;
    return 1 + std::max(left->depth(), right->depth());
  }
};

BonsaiTree::BonsaiTree(BonsaiOptions options) : options_(options) {
  OPENEI_CHECK(options.projection_dim > 0, "zero projection dim");
  OPENEI_CHECK(options.max_depth > 0, "zero tree depth");
  OPENEI_CHECK(options.threshold_candidates > 0, "zero threshold candidates");
}

BonsaiTree::~BonsaiTree() = default;
BonsaiTree::BonsaiTree(BonsaiTree&&) noexcept = default;
BonsaiTree& BonsaiTree::operator=(BonsaiTree&&) noexcept = default;

Tensor BonsaiTree::project(const Tensor& features) const {
  OPENEI_CHECK(projection_.elements() > 0, "predict before fit");
  OPENEI_CHECK(features.shape().rank() == 2 &&
                   features.shape().dim(1) == input_dim_,
               "bonsai feature width mismatch");
  return tensor::matmul(features, projection_);
}

namespace {

double entropy(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

std::unique_ptr<BonsaiTree::Node> BonsaiTree::grow(
    const Tensor& projected, const std::vector<std::size_t>& labels,
    const std::vector<std::size_t>& rows, std::size_t depth_left,
    common::Rng& rng) {
  auto node = std::make_unique<Node>();

  // Majority label of this node's samples.
  std::vector<std::size_t> counts(classes_, 0);
  for (std::size_t row : rows) ++counts[labels[row]];
  node->majority = static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());

  bool pure = counts[node->majority] == rows.size();
  if (depth_left == 0 || rows.size() < options_.min_split || pure) {
    return node;
  }

  // Greedy best split over projected features x quantile thresholds.
  double parent_entropy = entropy(counts, rows.size());
  double best_gain = 1e-9;
  std::size_t best_feature = 0;
  float best_threshold = 0.0F;

  std::size_t dims = projected.shape().dim(1);
  std::vector<float> column(rows.size());
  for (std::size_t f = 0; f < dims; ++f) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      column[i] = projected.at2(rows[i], f);
    }
    std::vector<float> sorted = column;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t t = 0; t < options_.threshold_candidates; ++t) {
      std::size_t idx = ((t + 1) * sorted.size()) / (options_.threshold_candidates + 1);
      if (idx >= sorted.size()) idx = sorted.size() - 1;
      float threshold = sorted[idx];

      std::vector<std::size_t> left_counts(classes_, 0);
      std::vector<std::size_t> right_counts(classes_, 0);
      std::size_t left_total = 0;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (column[i] <= threshold) {
          ++left_counts[labels[rows[i]]];
          ++left_total;
        } else {
          ++right_counts[labels[rows[i]]];
        }
      }
      std::size_t right_total = rows.size() - left_total;
      if (left_total == 0 || right_total == 0) continue;

      double child_entropy =
          (static_cast<double>(left_total) * entropy(left_counts, left_total) +
           static_cast<double>(right_total) * entropy(right_counts, right_total)) /
          static_cast<double>(rows.size());
      double gain = parent_entropy - child_entropy;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = threshold;
      }
    }
  }
  if (best_gain <= 1e-9) return node;  // no useful split found

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t row : rows) {
    if (projected.at2(row, best_feature) <= best_threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }

  node->leaf = false;
  node->feature = best_feature;
  node->threshold = best_threshold;
  node->left = grow(projected, labels, left_rows, depth_left - 1, rng);
  node->right = grow(projected, labels, right_rows, depth_left - 1, rng);
  return node;
}

void BonsaiTree::fit(const data::Dataset& train) {
  train.check();
  OPENEI_CHECK(train.features.shape().rank() == 2,
               "bonsai expects flat [N, D] features");
  classes_ = train.classes;
  input_dim_ = train.features.shape().dim(1);

  // Sparse random projection: each entry is ±1/sqrt(d) with prob 1/3 each,
  // else 0 (Achlioptas) — kept dense in memory, but size accounting uses the
  // nonzero count as Bonsai's sparse-projection storage would.
  common::Rng rng(options_.seed);
  projection_ = Tensor(tensor::Shape{input_dim_, options_.projection_dim});
  float scale = 1.0F / std::sqrt(static_cast<float>(options_.projection_dim));
  for (std::size_t i = 0; i < projection_.elements(); ++i) {
    double u = rng.uniform();
    projection_[i] = u < 1.0 / 3.0 ? scale : (u < 2.0 / 3.0 ? -scale : 0.0F);
  }

  Tensor projected = tensor::matmul(train.features, projection_);
  std::vector<std::size_t> all_rows(train.size());
  for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  root_ = grow(projected, train.labels, all_rows, options_.max_depth, rng);
}

std::vector<std::size_t> BonsaiTree::predict(const Tensor& features) const {
  OPENEI_CHECK(root_ != nullptr, "predict before fit");
  Tensor projected = project(features);
  std::size_t n = projected.shape().dim(0);
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Node* node = root_.get();
    while (!node->leaf) {
      node = projected.at2(i, node->feature) <= node->threshold
                 ? node->left.get()
                 : node->right.get();
    }
    out[i] = node->majority;
  }
  return out;
}

std::size_t BonsaiTree::model_size_bytes() const {
  if (root_ == nullptr) return 0;
  // Sparse projection: ~2/3 of entries are nonzero -> value+index per nnz.
  std::size_t nnz = projection_.elements() - projection_.count_near_zero();
  std::size_t projection_bytes = nnz * (sizeof(float) + sizeof(std::uint16_t));
  // Node: feature id (2B) + threshold (4B) + majority (2B).
  return projection_bytes + root_->count() * 8;
}

std::size_t BonsaiTree::flops_per_sample() const {
  std::size_t projection_flops = 2 * input_dim_ * options_.projection_dim;
  return projection_flops + (root_ ? root_->depth() : 0);
}

std::size_t BonsaiTree::node_count() const {
  return root_ ? root_->count() : 0;
}

std::size_t BonsaiTree::depth() const { return root_ ? root_->depth() : 0; }

}  // namespace openei::eialg
