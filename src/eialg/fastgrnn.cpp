#include "eialg/fastgrnn.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace openei::eialg {

using tensor::Shape;

struct FastGrnn::StepCache {
  Tensor x;  // [N, D] input at this step
  Tensor h_prev;
  Tensor z;  // gate
  Tensor c;  // candidate
};

FastGrnn::FastGrnn(FastGrnnOptions options) : options_(options) {
  OPENEI_CHECK(options.steps > 1 && options.input_dims > 0 && options.hidden > 0,
               "bad FastGRNN geometry");
  OPENEI_CHECK(options.learning_rate > 0.0F, "non-positive learning rate");
}

namespace {

Tensor slice_step(const Tensor& features, std::size_t step, std::size_t steps,
                  std::size_t dims) {
  std::size_t n = features.shape().dim(0);
  Tensor out(Shape{n, dims});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dims; ++d) {
      out.at2(i, d) = features.at2(i, step * dims + d);
    }
  }
  return out;
}

float sigmoid(float v) { return 1.0F / (1.0F + std::exp(-v)); }

}  // namespace

Tensor FastGrnn::run(const Tensor& features, std::vector<StepCache>* caches) const {
  std::size_t n = features.shape().dim(0);
  std::size_t h_dim = options_.hidden;
  Tensor h(Shape{n, h_dim});
  for (std::size_t t = 0; t < options_.steps; ++t) {
    Tensor x = slice_step(features, t, options_.steps, options_.input_dims);
    Tensor pre = tensor::matmul(x, w_) + tensor::matmul(h, u_);  // shared W, U
    Tensor z(Shape{n, h_dim});
    Tensor c(Shape{n, h_dim});
    Tensor h_next(Shape{n, h_dim});
    for (std::size_t i = 0; i < n * h_dim; ++i) {
      std::size_t col = i % h_dim;
      z[i] = sigmoid(pre[i] + b_z_[col]);
      c[i] = std::tanh(pre[i] + b_c_[col]);
      h_next[i] = (options_.zeta * (1.0F - z[i]) + options_.nu) * c[i] + z[i] * h[i];
    }
    if (caches != nullptr) {
      (*caches)[t] = StepCache{std::move(x), h, z, c};
    }
    h = std::move(h_next);
  }
  return h;
}

void FastGrnn::fit(const data::Dataset& train) {
  train.check();
  std::size_t expected = options_.steps * options_.input_dims;
  OPENEI_CHECK(train.features.shape().rank() == 2 &&
                   train.features.shape().dim(1) == expected,
               "FastGRNN expects [N, ", expected, "] flattened sequences");
  classes_ = train.classes;

  common::Rng rng(options_.seed);
  std::size_t h_dim = options_.hidden;
  float in_scale = 1.0F / std::sqrt(static_cast<float>(options_.input_dims));
  float h_scale = 1.0F / std::sqrt(static_cast<float>(h_dim));
  w_ = Tensor::random_uniform(Shape{options_.input_dims, h_dim}, rng, -in_scale,
                              in_scale);
  u_ = Tensor::random_uniform(Shape{h_dim, h_dim}, rng, -h_scale, h_scale);
  b_z_ = Tensor::ones(Shape{h_dim});  // bias gates open: remember by default
  b_c_ = Tensor(Shape{h_dim});
  readout_ = Tensor::random_uniform(Shape{h_dim, classes_}, rng, -h_scale, h_scale);
  readout_bias_ = Tensor(Shape{classes_});

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    auto perm = rng.permutation(train.size());
    for (std::size_t begin = 0; begin < train.size();
         begin += options_.batch_size) {
      std::size_t end = std::min(begin + options_.batch_size, train.size());
      std::vector<std::size_t> idx(perm.begin() + static_cast<std::ptrdiff_t>(begin),
                                   perm.begin() + static_cast<std::ptrdiff_t>(end));
      data::Dataset batch = train.select(idx);
      std::size_t n = batch.size();

      std::vector<StepCache> caches(options_.steps);
      Tensor h_final = run(batch.features, &caches);
      Tensor logits = tensor::add_row_bias(tensor::matmul(h_final, readout_),
                                           readout_bias_);

      // Softmax CE gradient on logits.
      Tensor probs = tensor::softmax_rows(logits);
      Tensor grad_logits = probs;
      for (std::size_t i = 0; i < n; ++i) {
        grad_logits.at2(i, batch.labels[i]) -= 1.0F;
      }
      grad_logits *= 1.0F / static_cast<float>(n);

      // Readout gradients + gradient into h_T.
      Tensor grad_readout =
          tensor::matmul(tensor::transpose(h_final), grad_logits);
      Tensor grad_readout_bias(Shape{classes_});
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < classes_; ++c) {
          grad_readout_bias[c] += grad_logits.at2(i, c);
        }
      }
      Tensor grad_h = tensor::matmul(grad_logits, tensor::transpose(readout_));

      // BPTT through the shared-weight recurrence.
      Tensor grad_w(w_.shape());
      Tensor grad_u(u_.shape());
      Tensor grad_b_z(b_z_.shape());
      Tensor grad_b_c(b_c_.shape());
      std::size_t supervision_begin = options_.steps / 2;
      for (std::size_t t = options_.steps; t-- > 0;) {
        const StepCache& cache = caches[t];

        // EMI-style auxiliary supervision: inject a readout CE gradient at
        // intermediate hidden states h_t (t in [steps/2, last)), so the
        // early-exit readout is trained where it will be queried.
        if (options_.early_exit_supervision > 0.0F && t + 1 < options_.steps &&
            t + 1 >= supervision_begin) {
          const Tensor& h_t = caches[t + 1].h_prev;  // output of step t
          Tensor aux_logits = tensor::add_row_bias(
              tensor::matmul(h_t, readout_), readout_bias_);
          Tensor aux_grad = tensor::softmax_rows(aux_logits);
          for (std::size_t i = 0; i < n; ++i) {
            aux_grad.at2(i, batch.labels[i]) -= 1.0F;
          }
          aux_grad *= options_.early_exit_supervision / static_cast<float>(n);
          grad_readout += tensor::matmul(tensor::transpose(h_t), aux_grad);
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t c = 0; c < classes_; ++c) {
              grad_readout_bias[c] += aux_grad.at2(i, c);
            }
          }
          grad_h += tensor::matmul(aux_grad, tensor::transpose(readout_));
        }
        Tensor grad_pre(Shape{n, h_dim});
        Tensor grad_h_prev(Shape{n, h_dim});
        for (std::size_t i = 0; i < n * h_dim; ++i) {
          std::size_t col = i % h_dim;
          float z = cache.z[i];
          float c = cache.c[i];
          float a = options_.zeta * (1.0F - z) + options_.nu;
          float dh = grad_h[i];
          float dc = dh * a;
          float dz = dh * (-options_.zeta * c + cache.h_prev[i]);
          float dpre_c = dc * (1.0F - c * c);
          float dpre_z = dz * z * (1.0F - z);
          grad_pre[i] = dpre_c + dpre_z;
          grad_b_c[col] += dpre_c;
          grad_b_z[col] += dpre_z;
          grad_h_prev[i] = dh * z;
        }
        grad_w += tensor::matmul(tensor::transpose(cache.x), grad_pre);
        grad_u += tensor::matmul(tensor::transpose(cache.h_prev), grad_pre);
        grad_h = grad_h_prev + tensor::matmul(grad_pre, tensor::transpose(u_));
      }

      float lr = options_.learning_rate;
      w_ -= grad_w * lr;
      u_ -= grad_u * lr;
      b_z_ -= grad_b_z * lr;
      b_c_ -= grad_b_c * lr;
      readout_ -= grad_readout * lr;
      readout_bias_ -= grad_readout_bias * lr;
    }
  }
}

std::vector<std::size_t> FastGrnn::predict(const Tensor& features) const {
  OPENEI_CHECK(classes_ > 0, "predict before fit");
  Tensor h = run(features, nullptr);
  Tensor logits = tensor::add_row_bias(tensor::matmul(h, readout_), readout_bias_);
  std::size_t n = logits.shape().dim(0);
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes_; ++c) {
      if (logits.at2(i, c) > logits.at2(i, best)) best = c;
    }
    out[i] = best;
  }
  return out;
}

FastGrnn::EarlyResult FastGrnn::predict_early(const Tensor& features,
                                              float confidence_threshold,
                                              std::size_t min_steps) const {
  OPENEI_CHECK(classes_ > 0, "predict before fit");
  OPENEI_CHECK(confidence_threshold > 0.0F && confidence_threshold <= 1.0F,
               "confidence threshold outside (0, 1]");
  if (min_steps == 0) min_steps = options_.steps / 2;
  OPENEI_CHECK(min_steps <= options_.steps, "min_steps beyond sequence length");
  std::size_t n = features.shape().dim(0);
  std::size_t h_dim = options_.hidden;

  EarlyResult result;
  result.predictions.assign(n, 0);
  std::vector<bool> done(n, false);
  std::size_t total_steps = 0;

  Tensor h(Shape{n, h_dim});
  for (std::size_t t = 0; t < options_.steps; ++t) {
    // One recurrence step for every still-active sequence (the batch keeps
    // full width; finished rows are simply ignored — the accounting below
    // charges only active rows).
    Tensor x = slice_step(features, t, options_.steps, options_.input_dims);
    Tensor pre = tensor::matmul(x, w_) + tensor::matmul(h, u_);
    for (std::size_t i = 0; i < n * h_dim; ++i) {
      std::size_t col = i % h_dim;
      float z = sigmoid(pre[i] + b_z_[col]);
      float c = std::tanh(pre[i] + b_c_[col]);
      h[i] = (options_.zeta * (1.0F - z) + options_.nu) * c + z * h[i];
    }

    Tensor logits = tensor::add_row_bias(tensor::matmul(h, readout_),
                                         readout_bias_);
    Tensor probabilities = tensor::softmax_rows(logits);
    bool last_step = t + 1 == options_.steps;
    bool may_exit = t + 1 >= min_steps;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      ++total_steps;
      float best = 0.0F;
      std::size_t arg = 0;
      for (std::size_t c = 0; c < classes_; ++c) {
        if (probabilities.at2(i, c) > best) {
          best = probabilities.at2(i, c);
          arg = c;
        }
      }
      if ((may_exit && best >= confidence_threshold) || last_step) {
        result.predictions[i] = arg;
        done[i] = true;
      }
    }
  }
  result.mean_steps_fraction =
      static_cast<double>(total_steps) /
      static_cast<double>(n * options_.steps);
  return result;
}

std::size_t FastGrnn::param_count() const {
  return w_.elements() + u_.elements() + b_z_.elements() + b_c_.elements() +
         readout_.elements() + readout_bias_.elements();
}

std::size_t FastGrnn::model_size_bytes() const {
  return param_count() * sizeof(float);
}

std::size_t FastGrnn::flops_per_sample() const {
  std::size_t per_step = 2 * options_.input_dims * options_.hidden +
                         2 * options_.hidden * options_.hidden +
                         8 * options_.hidden;
  return options_.steps * per_step + 2 * options_.hidden * classes_;
}

}  // namespace openei::eialg
