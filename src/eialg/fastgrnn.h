// Compact gated RNN in the FastGRNN mould (Kusupati et al. [43]).
//
// FastGRNN's core trick: the gate and the candidate share the SAME weight
// matrices (W, U), halving parameters versus a GRU:
//   z_t = sigmoid(W x_t + U h_{t-1} + b_z)
//   c_t = tanh   (W x_t + U h_{t-1} + b_c)
//   h_t = (zeta * (1 - z_t) + nu) .* c_t + z_t .* h_{t-1}
// Classification reads out a dense layer on h_T.  Trained with full BPTT.
#pragma once

#include "common/rng.h"
#include "eialg/classifier.h"

namespace openei::eialg {

struct FastGrnnOptions {
  std::size_t steps = 16;       // sequence length
  std::size_t input_dims = 3;   // features per step
  std::size_t hidden = 16;
  float zeta = 1.0F;            // candidate scale (fixed, per FastGRNN-LSQ)
  float nu = 0.0F;              // candidate offset
  std::size_t epochs = 10;
  std::size_t batch_size = 16;
  float learning_rate = 0.05F;
  std::uint64_t seed = 3;
  /// EMI-style auxiliary supervision weight: when > 0, the readout is also
  /// trained on intermediate hidden states (steps >= steps/2) with this
  /// loss weight, making predict_early()'s intermediate decisions reliable.
  float early_exit_supervision = 0.0F;
};

/// Consumes flattened sequences [N, steps * input_dims] (the layout
/// data::make_sequences produces).
class FastGrnn final : public EiClassifier {
 public:
  explicit FastGrnn(FastGrnnOptions options);

  std::string name() const override { return "fastgrnn"; }
  void fit(const data::Dataset& train) override;
  std::vector<std::size_t> predict(const Tensor& features) const override;
  std::size_t model_size_bytes() const override;
  std::size_t flops_per_sample() const override;

  std::size_t param_count() const;

  /// EMI-RNN-style early exit (Dennis et al. [42], paper Sec. IV-A2):
  /// the readout is applied after every step from `min_steps` on; a sequence
  /// stops as soon as the max softmax probability reaches
  /// `confidence_threshold`, saving the remaining steps' computation ("72x
  /// less computation than an LSTM").  The floor exists because the readout
  /// is trained on late hidden states — very early states are untrustworthy.
  /// min_steps == 0 defaults to steps/2.
  struct EarlyResult {
    std::vector<std::size_t> predictions;
    /// Mean fraction of steps actually computed (1.0 = no early exit).
    double mean_steps_fraction = 1.0;
  };
  EarlyResult predict_early(const Tensor& features, float confidence_threshold,
                            std::size_t min_steps = 0) const;

 private:
  /// Final hidden state [N, H] for a batch of flattened sequences; when
  /// caches are supplied, stores per-step values for BPTT.
  struct StepCache;
  Tensor run(const Tensor& features, std::vector<StepCache>* caches) const;

  FastGrnnOptions options_;
  std::size_t classes_ = 0;
  Tensor w_;        // [D, H] shared input weights
  Tensor u_;        // [H, H] shared recurrent weights
  Tensor b_z_;      // [H]
  Tensor b_c_;      // [H]
  Tensor readout_;  // [H, classes]
  Tensor readout_bias_;  // [classes]
};

}  // namespace openei::eialg
