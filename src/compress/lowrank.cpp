#include "compress/lowrank.h"

#include <algorithm>
#include <cmath>

#include "nn/dense.h"
#include "nn/factored_conv.h"
#include "tensor/linalg.h"

namespace openei::compress {

std::size_t chosen_rank(std::size_t in, std::size_t out,
                        const LowRankOptions& options) {
  std::size_t full = std::min(in, out);
  auto r = static_cast<std::size_t>(std::ceil(
      static_cast<double>(full) * static_cast<double>(options.rank_fraction)));
  return std::clamp<std::size_t>(r, 1, full);
}

CompressedModel lowrank_factorize(const nn::Model& model,
                                  const LowRankOptions& options) {
  OPENEI_CHECK(options.rank_fraction > 0.0F && options.rank_fraction <= 1.0F,
               "rank_fraction outside (0, 1]");
  CompressedModel out{model.clone(), 0, "lowrank_svd"};

  for (std::size_t i = 0; i < out.model.layer_count(); ++i) {
    if (options.factor_convs) {
      if (auto* conv = dynamic_cast<nn::Conv2d*>(&out.model.layer(i))) {
        const auto& spec = conv->spec();
        std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
        std::size_t full = std::min(spec.out_channels, patch);
        if (full >= options.min_dim && spec.kernel > 1) {
          std::size_t rank = chosen_rank(spec.out_channels, patch, options);
          out.model.replace_layer(i, nn::factorize_conv(*conv, rank));
        }
        continue;
      }
    }
    auto* dense = dynamic_cast<nn::Dense*>(&out.model.layer(i));
    if (dense == nullptr) continue;
    std::size_t in = dense->in_features();
    std::size_t cols = dense->out_features();
    if (std::min(in, cols) < options.min_dim) continue;

    std::size_t rank = chosen_rank(in, cols, options);
    tensor::SvdResult svd_result = tensor::svd(dense->weights());

    // U_r = U[:, :r] * sqrt(S_r);  V_r = sqrt(S_r) * V[:, :r]^T.
    nn::Tensor u(tensor::Shape{in, rank});
    nn::Tensor v(tensor::Shape{rank, cols});
    for (std::size_t r = 0; r < rank; ++r) {
      float root = std::sqrt(std::max(svd_result.singular_values[r], 0.0F));
      for (std::size_t row = 0; row < in; ++row) {
        u.at2(row, r) = svd_result.u.at2(row, r) * root;
      }
      for (std::size_t col = 0; col < cols; ++col) {
        v.at2(r, col) = svd_result.v.at2(col, r) * root;
      }
    }
    out.model.replace_layer(i, std::make_unique<nn::FactoredDense>(
                                   std::move(u), std::move(v), dense->bias()));
  }

  out.storage_bytes = out.model.storage_bytes();
  return out;
}

}  // namespace openei::compress
