#include "compress/compressed_model.h"

#include "nn/train.h"

namespace openei::compress {

CompressionReport make_report(const nn::Model& original,
                              const CompressedModel& compressed,
                              const data::Dataset& test) {
  CompressionReport report;
  report.method = compressed.method;
  report.original_params = original.param_count();
  report.original_bytes = original.storage_bytes();
  report.compressed_bytes = compressed.storage_bytes;
  report.compression_ratio =
      compressed.storage_bytes == 0
          ? 0.0
          : static_cast<double>(report.original_bytes) /
                static_cast<double>(compressed.storage_bytes);
  nn::Model original_copy = original.clone();
  nn::Model compressed_copy = compressed.model.clone();
  report.accuracy_before = nn::evaluate_accuracy(original_copy, test);
  report.accuracy_after = nn::evaluate_accuracy(compressed_copy, test);
  report.accuracy_delta = report.accuracy_after - report.accuracy_before;
  report.flops_before = original.flops_per_sample();
  report.flops_after = compressed.model.flops_per_sample();
  return report;
}

}  // namespace openei::compress
