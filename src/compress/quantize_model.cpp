#include "compress/quantize_model.h"

#include "compress/pruning.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "tensor/quantize.h"

namespace openei::compress {

CompressedModel quantize_int8(const nn::Model& model) {
  CompressedModel out{model.clone(), 0, "int8_quantization"};

  std::size_t bytes = 0;
  for (std::size_t i = 0; i < out.model.layer_count(); ++i) {
    if (auto* dense = dynamic_cast<nn::Dense*>(&out.model.layer(i))) {
      auto quantized = nn::QuantizedDense::from_dense(*dense);
      bytes += quantized->storage_bytes();
      out.model.replace_layer(i, std::move(quantized));
      continue;
    }
    nn::Layer& layer = out.model.layer(i);
    // Fake-quantize remaining weight tensors (conv, depthwise, factored):
    // values are snapped to the int8 grid; storage counts 1 byte per weight.
    for (nn::Tensor* p : layer.parameters()) {
      if (is_weight_tensor(*p)) {
        *p = tensor::QuantizedTensor::quantize(*p).dequantize();
        bytes += p->elements() + sizeof(tensor::QuantParams);
      } else {
        bytes += p->elements() * sizeof(float);
      }
    }
  }

  out.storage_bytes = bytes;
  return out;
}

}  // namespace openei::compress
