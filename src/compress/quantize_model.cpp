#include "compress/quantize_model.h"

#include <algorithm>

#include "compress/pruning.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "tensor/quantize.h"

namespace openei::compress {

void MinMaxObserver::observe(const nn::Tensor& t) {
  if (t.elements() == 0) return;
  float lo = t.min();
  float hi = t.max();
  if (!seen_) {
    min_ = lo;
    max_ = hi;
    seen_ = true;
    return;
  }
  min_ = std::min(min_, lo);
  max_ = std::max(max_, hi);
}

tensor::QuantParams MinMaxObserver::params() const {
  OPENEI_CHECK(seen_, "observer has no samples");
  return tensor::QuantParams::choose(min_, max_);
}

CompressedModel quantize_int8(const nn::Model& model) {
  CompressedModel out{model.clone(), 0, "int8_quantization"};

  std::size_t bytes = 0;
  for (std::size_t i = 0; i < out.model.layer_count(); ++i) {
    if (auto* dense = dynamic_cast<nn::Dense*>(&out.model.layer(i))) {
      auto quantized = nn::QuantizedDense::from_dense(*dense);
      bytes += quantized->storage_bytes();
      out.model.replace_layer(i, std::move(quantized));
      continue;
    }
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&out.model.layer(i))) {
      auto quantized = nn::QuantizedConv2d::from_conv(*conv);
      bytes += quantized->storage_bytes();
      out.model.replace_layer(i, std::move(quantized));
      continue;
    }
    nn::Layer& layer = out.model.layer(i);
    // Fake-quantize remaining weight tensors (depthwise, factored, residual
    // bodies): values are snapped to the int8 grid; storage counts 1 byte
    // per weight.
    for (nn::Tensor* p : layer.parameters()) {
      if (is_weight_tensor(*p)) {
        *p = tensor::QuantizedTensor::quantize(*p).dequantize();
        bytes += p->elements() + sizeof(tensor::QuantParams);
      } else {
        bytes += p->elements() * sizeof(float);
      }
    }
  }

  out.storage_bytes = bytes;
  return out;
}

CompressedModel quantize_int8(const nn::Model& model,
                              const nn::Tensor& calibration) {
  CompressedModel out = quantize_int8(model);

  // Record the float activation range entering each layer over the
  // calibration batch (inference mode, so dropout is identity and batchnorm
  // uses running statistics — the same distribution inference sees).
  nn::Model float_model = model.clone();
  std::vector<MinMaxObserver> observers(float_model.layer_count());
  nn::Tensor x = calibration;
  for (std::size_t i = 0; i < float_model.layer_count(); ++i) {
    observers[i].observe(x);
    x = float_model.layer(i).forward(x, /*training=*/false);
  }

  for (std::size_t i = 0; i < out.model.layer_count(); ++i) {
    if (!observers[i].seen()) continue;
    if (auto* qd = dynamic_cast<nn::QuantizedDense*>(&out.model.layer(i))) {
      qd->set_input_params(observers[i].params());
    } else if (auto* qc =
                   dynamic_cast<nn::QuantizedConv2d*>(&out.model.layer(i))) {
      qc->set_input_params(observers[i].params());
    }
  }
  return out;
}

}  // namespace openei::compress
