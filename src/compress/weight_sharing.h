// Weight sharing via k-means clustering (Gong et al. [21], HashedNets-style
// bucketing [22]): every weight in a tensor is replaced by its cluster
// centroid, so storage needs only the codebook plus log2(k)-bit indices —
// "up to 24x compression with only 1% accuracy loss".
#pragma once

#include "compress/compressed_model.h"
#include "common/rng.h"

namespace openei::compress {

struct WeightShareOptions {
  /// Codebook size per weight tensor (power of two keeps indices byte-packed).
  std::size_t clusters = 16;
};

/// Clusters each weight tensor's values into `clusters` centroids and snaps
/// weights to them.  Biases and batchnorm vectors are left dense.
CompressedModel kmeans_share_weights(const nn::Model& model,
                                     const WeightShareOptions& options,
                                     common::Rng& rng);

/// Storage: per weight tensor, k floats + ceil(log2 k) bits per weight;
/// non-weight tensors dense.
std::size_t shared_storage_bytes(const nn::Model& model, std::size_t clusters);

/// Binary-connect quantization (Courbariaux et al. [20]): weights become
/// alpha * sign(w) with one alpha per tensor; storage is 1 bit per weight.
CompressedModel binarize_weights(const nn::Model& model);

}  // namespace openei::compress
