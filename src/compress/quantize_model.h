// Post-training int8 quantization — the optimization TensorFlow Lite /
// QNNPACK apply (paper Sec. IV-B "quantized kernels").  Dense and Conv2d
// layers are replaced by QuantizedDense / QuantizedConv2d (true int8 storage
// + int8 GEMM execution); remaining weight tensors (depthwise, factored,
// residual bodies) are fake-quantized in place, modelling weight-only
// quantization with int8 storage accounting.
#pragma once

#include "compress/compressed_model.h"
#include "tensor/quantize.h"

namespace openei::compress {

/// Running min/max over observed activations; drives post-training
/// calibration (fixed QuantParams per layer boundary instead of per-call
/// dynamic ranges).
class MinMaxObserver {
 public:
  void observe(const nn::Tensor& t);
  bool seen() const { return seen_; }
  /// Parameters covering everything observed so far (zero-extended range).
  tensor::QuantParams params() const;

 private:
  float min_ = 0.0F;
  float max_ = 0.0F;
  bool seen_ = false;
};

/// Quantizes every dense and conv weight tensor to int8.  Activation ranges
/// stay dynamic (chosen per call from each batch's min/max).
CompressedModel quantize_int8(const nn::Model& model);

/// Same, then calibrates: runs the float model over `calibration` batch by
/// layer, records each quantized layer's input range with a MinMaxObserver,
/// and pins the resulting QuantParams so inference uses fixed activation
/// scales (deterministic and cheaper than per-call range scans).
CompressedModel quantize_int8(const nn::Model& model,
                              const nn::Tensor& calibration);

}  // namespace openei::compress
