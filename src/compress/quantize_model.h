// Post-training int8 quantization — the optimization TensorFlow Lite /
// QNNPACK apply (paper Sec. IV-B "quantized kernels").  Dense layers are
// replaced by QuantizedDense (true int8 storage + int8 matmul); conv weights
// are fake-quantized in place (quantize→dequantize), modelling weight-only
// quantization with int8 storage accounting.
#pragma once

#include "compress/compressed_model.h"

namespace openei::compress {

/// Quantizes every dense and conv weight tensor to int8.
CompressedModel quantize_int8(const nn::Model& model);

}  // namespace openei::compress
