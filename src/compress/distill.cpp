#include "compress/distill.h"

#include "tensor/ops.h"

namespace openei::compress {

CompressedModel distill(const nn::Model& teacher, nn::Model student,
                        const data::Dataset& transfer_set,
                        const DistillOptions& options) {
  transfer_set.check();
  OPENEI_CHECK(teacher.input_shape() == student.input_shape(),
               "teacher/student input shapes differ");
  OPENEI_CHECK(teacher.output_shape() == student.output_shape(),
               "teacher/student class counts differ");
  OPENEI_CHECK(teacher.output_shape().rank() == 1,
               "distillation requires classification logits (Table I caveat)");

  // Teacher soft targets at the distillation temperature.
  nn::Model teacher_copy = teacher.clone();
  nn::Tensor logits = teacher_copy.forward(transfer_set.features, false);
  nn::Tensor targets =
      tensor::softmax_rows(logits * (1.0F / options.temperature));

  nn::fit_soft(student, transfer_set.features, targets, options.temperature,
               options.train);

  std::size_t bytes = student.storage_bytes();
  return CompressedModel{std::move(student), bytes, "knowledge_distillation"};
}

}  // namespace openei::compress
