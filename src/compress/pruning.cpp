#include "compress/pruning.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace openei::compress {

bool is_weight_tensor(const nn::Tensor& parameter, std::size_t min_elements) {
  return parameter.shape().rank() >= 2 && parameter.elements() >= min_elements;
}

namespace {

/// Zeroes the `sparsity` fraction of smallest-|w| entries; returns the mask
/// (1 = kept).
nn::Tensor prune_tensor(nn::Tensor& weights, float sparsity) {
  std::size_t n = weights.elements();
  auto drop_count = static_cast<std::size_t>(std::floor(
      static_cast<double>(n) * static_cast<double>(sparsity)));
  nn::Tensor mask = nn::Tensor::ones(weights.shape());
  if (drop_count == 0) return mask;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  auto weight_data = weights.data();
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(drop_count - 1),
                   order.end(), [&](std::size_t a, std::size_t b) {
                     return std::fabs(weight_data[a]) < std::fabs(weight_data[b]);
                   });
  for (std::size_t i = 0; i < drop_count; ++i) {
    weights[order[i]] = 0.0F;
    mask[order[i]] = 0.0F;
  }
  return mask;
}

}  // namespace

CompressedModel magnitude_prune(const nn::Model& model, const PruneOptions& options,
                                const data::Dataset* train) {
  OPENEI_CHECK(options.sparsity >= 0.0F && options.sparsity < 1.0F,
               "sparsity must be in [0, 1)");
  CompressedModel out{model.clone(), 0, "magnitude_prune"};

  std::vector<nn::Tensor*> weight_params;
  std::vector<nn::Tensor> masks;
  for (nn::Tensor* p : out.model.parameters()) {
    if (is_weight_tensor(*p)) {
      weight_params.push_back(p);
      masks.push_back(prune_tensor(*p, options.sparsity));
    }
  }

  if (train != nullptr && options.finetune_epochs > 0) {
    nn::TrainOptions epoch_options = options.train;
    epoch_options.epochs = 1;
    for (std::size_t epoch = 0; epoch < options.finetune_epochs; ++epoch) {
      epoch_options.shuffle_seed = options.train.shuffle_seed + epoch;
      nn::fit(out.model, *train, epoch_options);
      // Re-apply masks: pruned connections stay pruned (Han et al.).
      for (std::size_t i = 0; i < weight_params.size(); ++i) {
        *weight_params[i] *= masks[i];
      }
    }
  }

  out.storage_bytes = pruned_storage_bytes(out.model);
  return out;
}

std::size_t pruned_storage_bytes(const nn::Model& model) {
  std::size_t bytes = 0;
  nn::Model& mutable_model = const_cast<nn::Model&>(model);
  for (nn::Tensor* p : mutable_model.parameters()) {
    if (is_weight_tensor(*p)) {
      std::size_t nonzero = p->elements() - p->count_near_zero();
      bytes += nonzero * (sizeof(float) + sizeof(std::uint16_t));
    } else {
      bytes += p->elements() * sizeof(float);
    }
  }
  return bytes;
}

double weight_sparsity(const nn::Model& model) {
  std::size_t zeros = 0;
  std::size_t total = 0;
  nn::Model& mutable_model = const_cast<nn::Model&>(model);
  for (nn::Tensor* p : mutable_model.parameters()) {
    if (is_weight_tensor(*p)) {
      zeros += p->count_near_zero();
      total += p->elements();
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(zeros) / static_cast<double>(total);
}

}  // namespace openei::compress
