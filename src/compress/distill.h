// Knowledge distillation (teacher-student training; Bucilua/Caruana [29],
// paper Table I "knowledge transfer"): a compact student is trained to
// reproduce the teacher's softened output distribution.  Table I's caveat —
// "only applies to classification tasks with softmax loss" — is enforced:
// the teacher must emit class logits.
#pragma once

#include "compress/compressed_model.h"
#include "nn/train.h"

namespace openei::compress {

struct DistillOptions {
  /// Softmax temperature applied to teacher logits (and student, in the
  /// soft-target loss).  Higher = softer targets, more dark knowledge.
  float temperature = 3.0F;
  nn::TrainOptions train;
};

/// Trains `student` on `transfer_set` features against the teacher's soft
/// targets; returns it with storage = its own dense footprint.  Teacher and
/// student must agree on input shape and class count.
CompressedModel distill(const nn::Model& teacher, nn::Model student,
                        const data::Dataset& transfer_set,
                        const DistillOptions& options);

}  // namespace openei::compress
