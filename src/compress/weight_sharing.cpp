#include "compress/weight_sharing.h"

#include <cmath>

#include "compress/pruning.h"
#include "tensor/linalg.h"

namespace openei::compress {

CompressedModel kmeans_share_weights(const nn::Model& model,
                                     const WeightShareOptions& options,
                                     common::Rng& rng) {
  OPENEI_CHECK(options.clusters >= 2, "need at least 2 clusters");
  CompressedModel out{model.clone(), 0, "kmeans_weight_sharing"};

  for (nn::Tensor* p : out.model.parameters()) {
    if (!is_weight_tensor(*p)) continue;
    std::vector<float> values(p->data().begin(), p->data().end());
    std::size_t k = std::min(options.clusters, values.size());
    auto clustered = tensor::kmeans_1d(values, k, rng);
    for (std::size_t i = 0; i < values.size(); ++i) {
      (*p)[i] = clustered.centroids[clustered.assignment[i]];
    }
  }

  out.storage_bytes = shared_storage_bytes(out.model, options.clusters);
  return out;
}

std::size_t shared_storage_bytes(const nn::Model& model, std::size_t clusters) {
  OPENEI_CHECK(clusters >= 2, "need at least 2 clusters");
  auto bits_per_index = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(clusters))));
  std::size_t bytes = 0;
  nn::Model& mutable_model = const_cast<nn::Model&>(model);
  for (nn::Tensor* p : mutable_model.parameters()) {
    if (is_weight_tensor(*p)) {
      bytes += clusters * sizeof(float);                  // codebook
      bytes += (p->elements() * bits_per_index + 7) / 8;  // packed indices
    } else {
      bytes += p->elements() * sizeof(float);
    }
  }
  return bytes;
}

CompressedModel binarize_weights(const nn::Model& model) {
  CompressedModel out{model.clone(), 0, "binary_weights"};

  std::size_t bytes = 0;
  for (nn::Tensor* p : out.model.parameters()) {
    if (!is_weight_tensor(*p)) {
      bytes += p->elements() * sizeof(float);
      continue;
    }
    // XNOR-Net style scale: alpha = mean |w| preserves the first moment.
    double alpha_acc = 0.0;
    for (float v : p->data()) alpha_acc += std::fabs(v);
    float alpha = static_cast<float>(alpha_acc / static_cast<double>(p->elements()));
    p->apply([alpha](float v) { return v >= 0.0F ? alpha : -alpha; });
    bytes += (p->elements() + 7) / 8 + sizeof(float);  // sign bits + alpha
  }

  out.storage_bytes = bytes;
  return out;
}

}  // namespace openei::compress
