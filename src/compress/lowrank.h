// Low-rank factorization (Denton et al. [25], Sainath [27]; paper Table I
// "low-rank factorization"): each dense layer W [in, out] is SVD-factored and
// truncated to rank r, replacing it with FactoredDense U[in,r] V[r,out].
// The Table-I caveat — "the decomposition operation is computationally
// expensive" — is measured by the bench (factorization time vs inference
// savings).
#pragma once

#include "compress/compressed_model.h"

namespace openei::compress {

struct LowRankOptions {
  /// Target rank as a fraction of min(in, out); clamped to >= 1.
  float rank_fraction = 0.25F;
  /// Dense layers smaller than this are left alone (factoring tiny layers
  /// grows them).
  std::size_t min_dim = 8;
  /// Also factor Conv2d layers into basis+1x1-mixer pairs (Denton et al.
  /// decompose conv layers; "triple the speedups of convolutional layers").
  bool factor_convs = false;
};

/// Factorizes every eligible Dense layer (and, when factor_convs is set,
/// every eligible Conv2d) via truncated SVD.
CompressedModel lowrank_factorize(const nn::Model& model,
                                  const LowRankOptions& options);

/// The rank that `options` selects for a [in, out] dense layer.
std::size_t chosen_rank(std::size_t in, std::size_t out,
                        const LowRankOptions& options);

}  // namespace openei::compress
