// Common result type of the deep-compression transforms (paper Sec. IV-A1,
// Table I) plus the report the Table-I bench prints.
#pragma once

#include <string>

#include "data/dataset.h"
#include "nn/model.h"

namespace openei::compress {

/// A transformed model with the storage footprint its compact encoding would
/// occupy.  `storage_bytes` differs from Model::storage_bytes() when the
/// compact form needs an auxiliary encoding (sparse indices, cluster
/// codebooks, bit-packed signs) that the in-memory float tensors don't show.
struct CompressedModel {
  nn::Model model;
  std::size_t storage_bytes = 0;
  std::string method;
};

/// One Table-I row, quantified: what the method costs and buys.
struct CompressionReport {
  std::string method;
  std::size_t original_params = 0;
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  double compression_ratio = 1.0;  // original_bytes / compressed_bytes
  double accuracy_before = 0.0;
  double accuracy_after = 0.0;
  double accuracy_delta = 0.0;  // after - before (negative = loss)
  std::size_t flops_before = 0;
  std::size_t flops_after = 0;
};

/// Evaluates both models on `test` and assembles the report.
CompressionReport make_report(const nn::Model& original,
                              const CompressedModel& compressed,
                              const data::Dataset& test);

}  // namespace openei::compress
