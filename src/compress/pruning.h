// Magnitude pruning (Han et al. [24], paper Table I "parameter sharing and
// pruning"): zero the smallest-magnitude fraction of each weight tensor, then
// optionally fine-tune with the pruning mask held fixed — the three-step
// learn/prune/retrain pipeline.
#pragma once

#include "compress/compressed_model.h"
#include "nn/train.h"

namespace openei::compress {

struct PruneOptions {
  /// Fraction of weights zeroed per weight tensor, in [0, 1).
  float sparsity = 0.8F;
  /// Fine-tuning epochs with the mask re-applied after every epoch
  /// (0 = prune only — Table I notes pruning *requires* retraining to keep
  /// accuracy; benches show both).
  std::size_t finetune_epochs = 3;
  nn::TrainOptions train;
};

/// Identifies weight tensors eligible for compression: rank >= 2 (biases and
/// batchnorm vectors are rank 1) with at least `min_elements` entries.
bool is_weight_tensor(const nn::Tensor& parameter, std::size_t min_elements = 16);

/// Prunes (and optionally fine-tunes on `train`); pass nullptr to skip
/// fine-tuning regardless of options.
CompressedModel magnitude_prune(const nn::Model& model, const PruneOptions& options,
                                const data::Dataset* train);

/// Storage of a pruned model in a CSR-like encoding: 4 bytes per surviving
/// weight + 2-byte index per survivor + dense storage for non-weight tensors.
std::size_t pruned_storage_bytes(const nn::Model& model);

/// Measured sparsity over the model's weight tensors.
double weight_sparsity(const nn::Model& model);

}  // namespace openei::compress
