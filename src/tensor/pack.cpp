#include "tensor/pack.h"

#include <algorithm>
#include <atomic>
#include <climits>

#include "common/parallel.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define OPENEI_F32_SIMD_DISPATCH 1
#include <immintrin.h>
#else
#define OPENEI_F32_SIMD_DISPATCH 0
#endif

namespace openei::tensor {

namespace {

constexpr std::size_t kNR = kPanelWidth;

/// Below ~64k multiply-adds the fork/join overhead dominates; stay serial
/// (same threshold as the blocked GEMM it replaces and the int8 engine).
constexpr std::size_t kSerialMacs = 1ULL << 16;

/// Test-only clamp on the dispatch level (INT_MAX = uncapped).
std::atomic<int> g_fp32_cap{INT_MAX};

}  // namespace

int fp32_isa_level_detected() {
#if OPENEI_F32_SIMD_DISPATCH
  static const int level = [] {
    if (__builtin_cpu_supports("avx512f")) return 2;
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return 1;
    }
    return 0;
  }();
  return level;
#else
  return 0;
#endif
}

int fp32_isa_level() {
  return std::min(fp32_isa_level_detected(),
                  g_fp32_cap.load(std::memory_order_relaxed));
}

const char* fp32_isa_name(int level) {
  switch (level) {
    case 2:
      return "avx512";
    case 1:
      return "avx2";
    default:
      return "scalar";
  }
}

namespace detail {
int set_fp32_isa_cap(int cap) { return g_fp32_cap.exchange(cap); }
}  // namespace detail

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

void PackedMatrix::repack(const float* b, std::size_t k, std::size_t n) {
  k_ = k;
  n_ = n;
  const std::size_t np = panels();
  data_.resize(np * k * kNR);
  for (std::size_t jp = 0; jp < np; ++jp) {
    float* dst = data_.data() + jp * k * kNR;
    const std::size_t j0 = jp * kNR;
    const std::size_t jn = std::min(kNR, n - j0);
    for (std::size_t p = 0; p < k; ++p) {
      const float* src = b + p * n + j0;
      float* d = dst + p * kNR;
      std::size_t j = 0;
      for (; j < jn; ++j) d[j] = src[j];
      for (; j < kNR; ++j) d[j] = 0.0F;  // padded lanes must stay inert
    }
  }
}

PackedMatrix PackedMatrix::pack(const float* b, std::size_t k, std::size_t n) {
  PackedMatrix out;
  out.repack(b, k, n);
  return out;
}

PackedMatrix PackedMatrix::pack(const Tensor& b) {
  OPENEI_CHECK(b.shape().rank() == 2, "PackedMatrix::pack requires rank 2");
  return pack(b.data().data(), b.shape().dim(0), b.shape().dim(1));
}

PackedMatrix PackedMatrix::pack_transposed(const Tensor& bt) {
  OPENEI_CHECK(bt.shape().rank() == 2,
               "PackedMatrix::pack_transposed requires rank 2");
  const std::size_t n = bt.shape().dim(0);  // packed cols = source rows
  const std::size_t k = bt.shape().dim(1);
  const float* src = bt.data().data();
  PackedMatrix out;
  out.k_ = k;
  out.n_ = n;
  const std::size_t np = out.panels();
  out.data_.assign(np * k * kNR, 0.0F);
  // Stream each source row (contiguous k floats) into its panel column.
  for (std::size_t j = 0; j < n; ++j) {
    const float* row = src + j * k;
    float* col = out.data_.data() + (j / kNR) * k * kNR + (j % kNR);
    for (std::size_t p = 0; p < k; ++p) col[p * kNR] = row[p];
  }
  return out;
}

Tensor PackedMatrix::unpack() const {
  Tensor out(Shape{k_, n_});
  float* dst = out.data().data();
  const std::size_t np = panels();
  for (std::size_t jp = 0; jp < np; ++jp) {
    const float* p_base = panel(jp);
    const std::size_t j0 = jp * kNR;
    const std::size_t jn = std::min(kNR, n_ - j0);
    for (std::size_t p = 0; p < k_; ++p) {
      for (std::size_t j = 0; j < jn; ++j) {
        dst[p * n_ + j0 + j] = p_base[p * kNR + j];
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Microkernels.  Each computes one MR x (16 or 32) C tile: accumulators live
// in registers across the whole k loop, so every C element is one
// ascending-k chain — the determinism unit the thread partition never
// splits.  Epilogues either add the tile into C (accumulate: the gemm
// contract over zero-initialized C) or overwrite with optional fused
// bias/ReLU.  Ragged column tails spill through a local buffer and apply
// the scalar epilogue; ragged row tails use smaller MR instantiations.
// ---------------------------------------------------------------------------

namespace {

template <int MR>
void kern_scalar(const float* a, std::size_t lda, std::size_t k,
                 const float* panel, float* c, std::size_t ldc,
                 const float* bias, std::size_t jn, bool relu,
                 bool accumulate) {
  float acc[MR][kNR] = {};
  for (std::size_t p = 0; p < k; ++p) {
    const float* br = panel + p * kNR;
    for (int i = 0; i < MR; ++i) {
      const float av = a[static_cast<std::size_t>(i) * lda + p];
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] += av * br[j];
    }
  }
  for (int i = 0; i < MR; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (accumulate) {
      for (std::size_t j = 0; j < jn; ++j) crow[j] += acc[i][j];
    } else {
      for (std::size_t j = 0; j < jn; ++j) {
        float v = acc[i][j];
        if (bias != nullptr) v += bias[j];
        if (relu) v = v > 0.0F ? v : 0.0F;
        crow[j] = v;
      }
    }
  }
}

#if OPENEI_F32_SIMD_DISPATCH

template <int MR>
__attribute__((target("avx2,fma"))) void kern_avx2(
    const float* a, std::size_t lda, std::size_t k, const float* panel,
    float* c, std::size_t ldc, const float* bias, std::size_t jn, bool relu,
    bool accumulate) {
  __m256 acc0[MR];
  __m256 acc1[MR];
  for (int i = 0; i < MR; ++i) {
    acc0[i] = _mm256_setzero_ps();
    acc1[i] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < k; ++p) {
    const __m256 b0 = _mm256_load_ps(panel + p * kNR);
    const __m256 b1 = _mm256_load_ps(panel + p * kNR + 8);
    for (int i = 0; i < MR; ++i) {
      const __m256 av = _mm256_set1_ps(a[static_cast<std::size_t>(i) * lda + p]);
      acc0[i] = _mm256_fmadd_ps(av, b0, acc0[i]);
      acc1[i] = _mm256_fmadd_ps(av, b1, acc1[i]);
    }
  }
  if (jn == kNR) {
    const __m256 zero = _mm256_setzero_ps();
    for (int i = 0; i < MR; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      __m256 v0 = acc0[i];
      __m256 v1 = acc1[i];
      if (accumulate) {
        v0 = _mm256_add_ps(_mm256_loadu_ps(crow), v0);
        v1 = _mm256_add_ps(_mm256_loadu_ps(crow + 8), v1);
      } else {
        if (bias != nullptr) {
          v0 = _mm256_add_ps(v0, _mm256_loadu_ps(bias));
          v1 = _mm256_add_ps(v1, _mm256_loadu_ps(bias + 8));
        }
        if (relu) {
          v0 = _mm256_max_ps(v0, zero);
          v1 = _mm256_max_ps(v1, zero);
        }
      }
      _mm256_storeu_ps(crow, v0);
      _mm256_storeu_ps(crow + 8, v1);
    }
  } else {
    alignas(32) float tmp[kNR];
    for (int i = 0; i < MR; ++i) {
      _mm256_store_ps(tmp, acc0[i]);
      _mm256_store_ps(tmp + 8, acc1[i]);
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      if (accumulate) {
        for (std::size_t j = 0; j < jn; ++j) crow[j] += tmp[j];
      } else {
        for (std::size_t j = 0; j < jn; ++j) {
          float v = tmp[j];
          if (bias != nullptr) v += bias[j];
          if (relu) v = v > 0.0F ? v : 0.0F;
          crow[j] = v;
        }
      }
    }
  }
}

/// One full-width panel (16 columns, possibly ragged) in zmm registers.
template <int MR>
__attribute__((target("avx512f"))) void kern_avx512(
    const float* a, std::size_t lda, std::size_t k, const float* panel,
    float* c, std::size_t ldc, const float* bias, std::size_t jn, bool relu,
    bool accumulate) {
  __m512 acc[MR];
  for (int i = 0; i < MR; ++i) acc[i] = _mm512_setzero_ps();
  for (std::size_t p = 0; p < k; ++p) {
    const __m512 bv = _mm512_load_ps(panel + p * kNR);
    for (int i = 0; i < MR; ++i) {
      const __m512 av = _mm512_set1_ps(a[static_cast<std::size_t>(i) * lda + p]);
      acc[i] = _mm512_fmadd_ps(av, bv, acc[i]);
    }
  }
  if (jn == kNR) {
    const __m512 zero = _mm512_setzero_ps();
    for (int i = 0; i < MR; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      __m512 v = acc[i];
      if (accumulate) {
        v = _mm512_add_ps(_mm512_loadu_ps(crow), v);
      } else {
        if (bias != nullptr) v = _mm512_add_ps(v, _mm512_loadu_ps(bias));
        if (relu) v = _mm512_max_ps(v, zero);
      }
      _mm512_storeu_ps(crow, v);
    }
  } else {
    alignas(64) float tmp[kNR];
    for (int i = 0; i < MR; ++i) {
      _mm512_store_ps(tmp, acc[i]);
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      if (accumulate) {
        for (std::size_t j = 0; j < jn; ++j) crow[j] += tmp[j];
      } else {
        for (std::size_t j = 0; j < jn; ++j) {
          float v = tmp[j];
          if (bias != nullptr) v += bias[j];
          if (relu) v = v > 0.0F ? v : 0.0F;
          crow[j] = v;
        }
      }
    }
  }
}

/// Two adjacent full panels (32 columns): MRx2 zmm accumulators amortize the
/// per-k broadcast over twice the FMA work.  Only called when both panels
/// cover 16 real columns, so the epilogue is always the vector form.
template <int MR>
__attribute__((target("avx512f"))) void kern_avx512x2(
    const float* a, std::size_t lda, std::size_t k, const float* panel0,
    const float* panel1, float* c, std::size_t ldc, const float* bias,
    bool relu, bool accumulate) {
  __m512 acc0[MR];
  __m512 acc1[MR];
  for (int i = 0; i < MR; ++i) {
    acc0[i] = _mm512_setzero_ps();
    acc1[i] = _mm512_setzero_ps();
  }
  for (std::size_t p = 0; p < k; ++p) {
    const __m512 b0 = _mm512_load_ps(panel0 + p * kNR);
    const __m512 b1 = _mm512_load_ps(panel1 + p * kNR);
    for (int i = 0; i < MR; ++i) {
      const __m512 av = _mm512_set1_ps(a[static_cast<std::size_t>(i) * lda + p]);
      acc0[i] = _mm512_fmadd_ps(av, b0, acc0[i]);
      acc1[i] = _mm512_fmadd_ps(av, b1, acc1[i]);
    }
  }
  const __m512 zero = _mm512_setzero_ps();
  for (int i = 0; i < MR; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    __m512 v0 = acc0[i];
    __m512 v1 = acc1[i];
    if (accumulate) {
      v0 = _mm512_add_ps(_mm512_loadu_ps(crow), v0);
      v1 = _mm512_add_ps(_mm512_loadu_ps(crow + kNR), v1);
    } else {
      if (bias != nullptr) {
        v0 = _mm512_add_ps(v0, _mm512_loadu_ps(bias));
        v1 = _mm512_add_ps(v1, _mm512_loadu_ps(bias + kNR));
      }
      if (relu) {
        v0 = _mm512_max_ps(v0, zero);
        v1 = _mm512_max_ps(v1, zero);
      }
    }
    _mm512_storeu_ps(crow, v0);
    _mm512_storeu_ps(crow + kNR, v1);
  }
}

#endif  // OPENEI_F32_SIMD_DISPATCH

// ---------------------------------------------------------------------------
// Span runners: one per ISA level, walking rows in MR blocks and columns in
// panels over a [i_begin, i_end) x [jp_begin, jp_end) rectangle.  Row
// blocks are absolute (i0 is always a multiple of MR), so a C tile is
// computed by the same kernel instantiation no matter how the parallel
// partition sliced the space.
// ---------------------------------------------------------------------------

struct GemmArgs {
  const float* a;
  std::size_t lda;  // == k
  std::size_t k;
  std::size_t n;
  const PackedMatrix* b;
  float* c;
  std::size_t ldc;  // == n
  const float* bias;
  bool relu;
  bool accumulate;
};

void run_span_scalar(const GemmArgs& g, std::size_t i_begin, std::size_t i_end,
                     std::size_t jp_begin, std::size_t jp_end) {
  constexpr std::size_t kMR = 4;
  for (std::size_t i0 = i_begin; i0 < i_end; i0 += kMR) {
    const std::size_t mr = std::min(kMR, i_end - i0);
    const float* arow = g.a + i0 * g.lda;
    float* cblock = g.c + i0 * g.ldc;
    for (std::size_t jp = jp_begin; jp < jp_end; ++jp) {
      const std::size_t j0 = jp * kNR;
      const std::size_t jn = std::min(kNR, g.n - j0);
      const float* bp = g.b->panel(jp);
      const float* bj = g.bias != nullptr ? g.bias + j0 : nullptr;
      float* cj = cblock + j0;
      switch (mr) {
        case 4:
          kern_scalar<4>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                         g.accumulate);
          break;
        case 3:
          kern_scalar<3>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                         g.accumulate);
          break;
        case 2:
          kern_scalar<2>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                         g.accumulate);
          break;
        default:
          kern_scalar<1>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                         g.accumulate);
          break;
      }
    }
  }
}

#if OPENEI_F32_SIMD_DISPATCH

void run_span_avx2(const GemmArgs& g, std::size_t i_begin, std::size_t i_end,
                   std::size_t jp_begin, std::size_t jp_end) {
  constexpr std::size_t kMR = 6;
  for (std::size_t i0 = i_begin; i0 < i_end; i0 += kMR) {
    const std::size_t mr = std::min(kMR, i_end - i0);
    const float* arow = g.a + i0 * g.lda;
    float* cblock = g.c + i0 * g.ldc;
    for (std::size_t jp = jp_begin; jp < jp_end; ++jp) {
      const std::size_t j0 = jp * kNR;
      const std::size_t jn = std::min(kNR, g.n - j0);
      const float* bp = g.b->panel(jp);
      const float* bj = g.bias != nullptr ? g.bias + j0 : nullptr;
      float* cj = cblock + j0;
      switch (mr) {
        case 6:
          kern_avx2<6>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                       g.accumulate);
          break;
        case 5:
          kern_avx2<5>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                       g.accumulate);
          break;
        case 4:
          kern_avx2<4>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                       g.accumulate);
          break;
        case 3:
          kern_avx2<3>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                       g.accumulate);
          break;
        case 2:
          kern_avx2<2>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                       g.accumulate);
          break;
        default:
          kern_avx2<1>(arow, g.lda, g.k, bp, cj, g.ldc, bj, jn, g.relu,
                       g.accumulate);
          break;
      }
    }
  }
}

template <int MR>
void run_block_avx512(const GemmArgs& g, std::size_t i0, std::size_t jp_begin,
                      std::size_t jp_end) {
  const float* arow = g.a + i0 * g.lda;
  float* cblock = g.c + i0 * g.ldc;
  std::size_t jp = jp_begin;
  // Panel pairs while both cover 16 real columns; each C element is still a
  // single ascending-k chain, so pairing never changes values.
  for (; jp + 1 < jp_end && (jp + 2) * kNR <= g.n; jp += 2) {
    const std::size_t j0 = jp * kNR;
    kern_avx512x2<MR>(arow, g.lda, g.k, g.b->panel(jp), g.b->panel(jp + 1),
                      cblock + j0, g.ldc,
                      g.bias != nullptr ? g.bias + j0 : nullptr, g.relu,
                      g.accumulate);
  }
  for (; jp < jp_end; ++jp) {
    const std::size_t j0 = jp * kNR;
    const std::size_t jn = std::min(kNR, g.n - j0);
    kern_avx512<MR>(arow, g.lda, g.k, g.b->panel(jp), cblock + j0, g.ldc,
                    g.bias != nullptr ? g.bias + j0 : nullptr, jn, g.relu,
                    g.accumulate);
  }
}

void run_span_avx512(const GemmArgs& g, std::size_t i_begin, std::size_t i_end,
                     std::size_t jp_begin, std::size_t jp_end) {
  constexpr std::size_t kMR = 8;
  for (std::size_t i0 = i_begin; i0 < i_end; i0 += kMR) {
    switch (std::min(kMR, i_end - i0)) {
      case 8:
        run_block_avx512<8>(g, i0, jp_begin, jp_end);
        break;
      case 7:
        run_block_avx512<7>(g, i0, jp_begin, jp_end);
        break;
      case 6:
        run_block_avx512<6>(g, i0, jp_begin, jp_end);
        break;
      case 5:
        run_block_avx512<5>(g, i0, jp_begin, jp_end);
        break;
      case 4:
        run_block_avx512<4>(g, i0, jp_begin, jp_end);
        break;
      case 3:
        run_block_avx512<3>(g, i0, jp_begin, jp_end);
        break;
      case 2:
        run_block_avx512<2>(g, i0, jp_begin, jp_end);
        break;
      default:
        run_block_avx512<1>(g, i0, jp_begin, jp_end);
        break;
    }
  }
}

#endif  // OPENEI_F32_SIMD_DISPATCH

}  // namespace

void gemm_packed(const float* a, std::size_t m, const PackedMatrix& b,
                 const float* bias, bool fuse_relu, bool accumulate,
                 float* c) {
  const std::size_t k = b.rows();
  const std::size_t n = b.cols();
  if (m == 0 || n == 0) return;
  OPENEI_CHECK(!accumulate || (bias == nullptr && !fuse_relu),
               "accumulate mode cannot fuse bias/ReLU");

  const int level = fp32_isa_level();
  const std::size_t mr = level == 2 ? 8 : level == 1 ? 6 : 4;
  const GemmArgs g{a, k, k, n, &b, c, n, bias, fuse_relu, accumulate};

  auto span = [&g, level](std::size_t i_begin, std::size_t i_end,
                          std::size_t jp_begin, std::size_t jp_end) {
#if OPENEI_F32_SIMD_DISPATCH
    if (level == 2) {
      run_span_avx512(g, i_begin, i_end, jp_begin, jp_end);
      return;
    }
    if (level == 1) {
      run_span_avx2(g, i_begin, i_end, jp_begin, jp_end);
      return;
    }
#else
    (void)level;
#endif
    run_span_scalar(g, i_begin, i_end, jp_begin, jp_end);
  };

  const std::size_t np = b.panels();
  if (m * k * n < kSerialMacs) {
    span(0, m, 0, np);
    return;
  }
  // Parallel partition at tile granularity: every job is a whole number of
  // MR row blocks (or whole panels), so a C tile never splits across
  // threads and results are thread-count-invariant within the ISA level.
  const std::size_t row_blocks = (m + mr - 1) / mr;
  if (row_blocks >= np) {
    common::parallel_for(
        0, row_blocks,
        [&](std::size_t lo, std::size_t hi) {
          span(lo * mr, std::min(hi * mr, m), 0, np);
        },
        /*grain=*/std::max<std::size_t>(
            1, kSerialMacs / std::max<std::size_t>(1, mr * k * n)));
  } else {
    common::parallel_for(
        0, np, [&](std::size_t lo, std::size_t hi) { span(0, m, lo, hi); },
        /*grain=*/std::max<std::size_t>(
            1, kSerialMacs / std::max<std::size_t>(1, m * k * kNR)));
  }
}

}  // namespace openei::tensor
