#include "tensor/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "tensor/ops.h"
#include "tensor/pack.h"

namespace openei::tensor {

namespace {

/// k-dimension cache block: one block of B rows (kKc x n floats) stays hot
/// in L2 while the row panel streams over it.
constexpr std::size_t kKc = 256;

/// Serial kernel for C rows [row_begin, row_end): k-blocked, two A rows per
/// sweep so each loaded B row feeds two output rows.  For any fixed C
/// element the adds happen in ascending-k order — the same order as the
/// naive i-k-j loop — so blocking changes nothing bitwise.
void gemm_panel(const float* a, const float* b, float* c, std::size_t row_begin,
                std::size_t row_end, std::size_t k, std::size_t n) {
  for (std::size_t kk = 0; kk < k; kk += kKc) {
    std::size_t k_end = std::min(k, kk + kKc);
    std::size_t i = row_begin;
    for (; i + 1 < row_end; i += 2) {
      float* c0 = c + i * n;
      float* c1 = c0 + n;
      for (std::size_t p = kk; p < k_end; ++p) {
        float a0 = a[i * k + p];
        float a1 = a[(i + 1) * k + p];
        if (a0 == 0.0F && a1 == 0.0F) continue;  // benefits pruned weights
        const float* b_row = b + p * n;
        for (std::size_t j = 0; j < n; ++j) {
          float bj = b_row[j];
          c0[j] += a0 * bj;
          c1[j] += a1 * bj;
        }
      }
    }
    if (i < row_end) {
      float* c0 = c + i * n;
      for (std::size_t p = kk; p < k_end; ++p) {
        float a0 = a[i * k + p];
        if (a0 == 0.0F) continue;
        const float* b_row = b + p * n;
        for (std::size_t j = 0; j < n; ++j) c0[j] += a0 * b_row[j];
      }
    }
  }
}

}  // namespace

void gemm_ref(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n) {
  // Below ~64k multiply-adds the fork/join overhead dominates; stay serial.
  if (m * k * n < 65536 || m < 2) {
    gemm_panel(a, b, c, 0, m, k, n);
    return;
  }
  // Row panels write disjoint C rows, so threads never share an output.
  std::size_t grain = std::max<std::size_t>(1, 65536 / std::max<std::size_t>(1, k * n));
  common::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) { gemm_panel(a, b, c, lo, hi, k, n); },
      grain);
}

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n) {
  if (m == 0 || k == 0 || n == 0) return;
  // Per-call packing into grow-only thread-local scratch: steady-state
  // callers (training loops, ops::matmul) re-use the same buffer, so no
  // allocation after warm-up at a fixed shape.
  thread_local PackedMatrix scratch;
  scratch.repack(b, k, n);
  gemm_packed(a, m, scratch, /*bias=*/nullptr, /*fuse_relu=*/false,
              /*accumulate=*/true, c);
}

namespace {

/// One-sided Jacobi on the columns of `a` (m x n, m >= n not required):
/// rotates column pairs of A while accumulating the same rotations into V
/// until all pairs are orthogonal; then A's columns are U * S.
SvdResult jacobi_svd(const Tensor& input, int max_sweeps, float tolerance) {
  std::size_t m = input.shape().dim(0);
  std::size_t n = input.shape().dim(1);
  Tensor a = input;       // working copy; columns become U*S
  Tensor v(Shape{n, n});  // accumulated right rotations
  for (std::size_t i = 0; i < n; ++i) v.at2(i, i) = 1.0F;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off_diagonal = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Compute the 2x2 Gram entries for columns p, q.
        double app = 0.0;
        double aqq = 0.0;
        double apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          double ap = a.at2(i, p);
          double aq = a.at2(i, q);
          app += ap * ap;
          aqq += aq * aq;
          apq += ap * aq;
        }
        off_diagonal += std::fabs(apq);
        if (std::fabs(apq) < 1e-30) continue;

        // Jacobi rotation zeroing the (p, q) Gram entry.
        double tau = (aqq - app) / (2.0 * apq);
        double t = (tau >= 0.0 ? 1.0 : -1.0) /
                   (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          float ap = a.at2(i, p);
          float aq = a.at2(i, q);
          a.at2(i, p) = static_cast<float>(c * ap - s * aq);
          a.at2(i, q) = static_cast<float>(s * ap + c * aq);
        }
        for (std::size_t i = 0; i < n; ++i) {
          float vp = v.at2(i, p);
          float vq = v.at2(i, q);
          v.at2(i, p) = static_cast<float>(c * vp - s * vq);
          v.at2(i, q) = static_cast<float>(s * vp + c * vq);
        }
      }
    }
    if (off_diagonal < tolerance) break;
  }

  // Extract singular values (column norms) and normalize U's columns.
  std::vector<float> sigma(n);
  Tensor u(Shape{m, n});
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      norm += static_cast<double>(a.at2(i, j)) * a.at2(i, j);
    }
    norm = std::sqrt(norm);
    sigma[j] = static_cast<float>(norm);
    if (norm > 1e-30) {
      for (std::size_t i = 0; i < m; ++i) {
        u.at2(i, j) = static_cast<float>(a.at2(i, j) / norm);
      }
    }
  }

  // Sort by descending singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&sigma](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult result{Tensor(Shape{m, n}), std::vector<float>(n), Tensor(Shape{n, n})};
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t src = order[j];
    result.singular_values[j] = sigma[src];
    for (std::size_t i = 0; i < m; ++i) result.u.at2(i, j) = u.at2(i, src);
    for (std::size_t i = 0; i < n; ++i) result.v.at2(i, j) = v.at2(i, src);
  }
  return result;
}

}  // namespace

SvdResult svd(const Tensor& a, int max_sweeps, float tolerance) {
  OPENEI_CHECK(a.shape().rank() == 2, "svd requires a rank-2 tensor");
  std::size_t m = a.shape().dim(0);
  std::size_t n = a.shape().dim(1);
  if (m >= n) return jacobi_svd(a, max_sweeps, tolerance);
  // For wide matrices, factor the transpose and swap U/V.
  SvdResult t = jacobi_svd(transpose(a), max_sweeps, tolerance);
  return SvdResult{std::move(t.v), std::move(t.singular_values), std::move(t.u)};
}

Tensor svd_reconstruct(const SvdResult& result, std::size_t rank) {
  std::size_t full = result.singular_values.size();
  OPENEI_CHECK(rank > 0 && rank <= full, "svd rank ", rank, " out of range ", full);
  std::size_t m = result.u.shape().dim(0);
  std::size_t n = result.v.shape().dim(0);
  Tensor out(Shape{m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < rank; ++r) {
        acc += static_cast<double>(result.u.at2(i, r)) * result.singular_values[r] *
               result.v.at2(j, r);
      }
      out.at2(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

Kmeans1dResult kmeans_1d(const std::vector<float>& values, std::size_t k,
                         common::Rng& rng, int max_iterations) {
  OPENEI_CHECK(!values.empty(), "kmeans on empty input");
  OPENEI_CHECK(k > 0 && k <= values.size(), "kmeans k=", k, " invalid for ",
               values.size(), " values");

  // Init: k quantiles of the sorted values (deterministic, well spread);
  // jitter duplicates apart with rng so identical quantiles still separate.
  std::vector<float> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<float> centroids(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::size_t idx = (j * (values.size() - 1)) / std::max<std::size_t>(1, k - 1);
    centroids[j] = sorted[idx];
  }
  for (std::size_t j = 1; j < k; ++j) {
    if (centroids[j] <= centroids[j - 1]) {
      centroids[j] = centroids[j - 1] + rng.uniform_float(1e-6F, 1e-5F);
    }
  }

  std::vector<std::size_t> assignment(values.size(), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    // Assign.
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::size_t best = 0;
      float best_dist = std::fabs(values[i] - centroids[0]);
      for (std::size_t j = 1; j < k; ++j) {
        float dist = std::fabs(values[i] - centroids[j]);
        if (dist < best_dist) {
          best_dist = dist;
          best = j;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    // Update.
    std::vector<double> sums(k, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      sums[assignment[i]] += values[i];
      ++counts[assignment[i]];
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (counts[j] > 0) {
        centroids[j] = static_cast<float>(sums[j] / static_cast<double>(counts[j]));
      }
    }
    if (!changed && iter > 0) break;
  }

  // Sort centroids ascending and remap assignments.
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&centroids](std::size_t x, std::size_t y) {
    return centroids[x] < centroids[y];
  });
  std::vector<std::size_t> rank_of(k);
  std::vector<float> sorted_centroids(k);
  for (std::size_t j = 0; j < k; ++j) {
    rank_of[order[j]] = j;
    sorted_centroids[j] = centroids[order[j]];
  }
  for (auto& a : assignment) a = rank_of[a];
  return {std::move(sorted_centroids), std::move(assignment)};
}

}  // namespace openei::tensor
