#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>

namespace openei::tensor {

namespace {
constexpr std::int32_t kQMin = -128;
constexpr std::int32_t kQMax = 127;
}  // namespace

QuantParams QuantParams::choose(float min_v, float max_v) {
  OPENEI_CHECK(min_v <= max_v, "reversed quantization range");
  // The range must include zero so that zero quantizes exactly (standard
  // affine-quantization requirement; keeps padding/ReLU zeros exact).
  min_v = std::min(min_v, 0.0F);
  max_v = std::max(max_v, 0.0F);
  float span = max_v - min_v;
  QuantParams p;
  if (span == 0.0F) {
    p.scale = 1.0F;
    p.zero_point = 0;
    return p;
  }
  p.scale = span / static_cast<float>(kQMax - kQMin);
  float zp = static_cast<float>(kQMin) - min_v / p.scale;
  p.zero_point = static_cast<std::int32_t>(std::lround(zp));
  p.zero_point = std::clamp(p.zero_point, kQMin, kQMax);
  return p;
}

QuantizedTensor::QuantizedTensor(Shape shape, std::vector<std::int8_t> data,
                                 QuantParams params)
    : shape_(std::move(shape)), data_(std::move(data)), params_(params) {
  OPENEI_CHECK(data_.size() == shape_.elements(), "quantized data size mismatch");
}

QuantizedTensor QuantizedTensor::quantize(const Tensor& input) {
  return quantize(input, QuantParams::choose(input.min(), input.max()));
}

QuantizedTensor QuantizedTensor::quantize(const Tensor& input, QuantParams params) {
  std::vector<std::int8_t> data(input.elements());
  auto src = input.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    float q = std::round(src[i] / params.scale) + static_cast<float>(params.zero_point);
    data[i] = static_cast<std::int8_t>(
        std::clamp(static_cast<std::int32_t>(q), kQMin, kQMax));
  }
  return QuantizedTensor(input.shape(), std::move(data), params);
}

Tensor QuantizedTensor::dequantize() const {
  Tensor out(shape_);
  auto dst = out.data();
  for (std::size_t i = 0; i < data_.size(); ++i) {
    dst[i] = params_.scale *
             static_cast<float>(static_cast<std::int32_t>(data_[i]) - params_.zero_point);
  }
  return out;
}

Tensor quantized_matmul(const QuantizedTensor& a, const QuantizedTensor& b) {
  OPENEI_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2,
               "quantized_matmul requires rank-2 tensors");
  std::size_t m = a.shape().dim(0);
  std::size_t k = a.shape().dim(1);
  OPENEI_CHECK(b.shape().dim(0) == k, "quantized_matmul inner dims differ");
  std::size_t n = b.shape().dim(1);

  const auto& a_data = a.data();
  const auto& b_data = b.data();
  std::int32_t a_zp = a.params().zero_point;
  std::int32_t b_zp = b.params().zero_point;
  float out_scale = a.params().scale * b.params().scale;

  Tensor out(Shape{m, n});
  auto o = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        std::int32_t av = static_cast<std::int32_t>(a_data[i * k + p]) - a_zp;
        std::int32_t bv = static_cast<std::int32_t>(b_data[p * n + j]) - b_zp;
        acc += static_cast<std::int64_t>(av) * bv;
      }
      o[i * n + j] = out_scale * static_cast<float>(acc);
    }
  }
  return out;
}

float quantization_step_error(const QuantParams& p) { return p.scale * 0.5F; }

}  // namespace openei::tensor
