#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/parallel.h"

namespace openei::tensor {

namespace {
constexpr std::int32_t kQMin = -128;
constexpr std::int32_t kQMax = 127;
/// Below this many int8 MACs the fork/join overhead dominates; run serial.
constexpr std::size_t kQgemmSerialMacs = 1ULL << 16;
/// int32 accumulation of k products bounded by 128*128 each stays exact for
/// k <= 2^16 (|acc| <= 2^30 < 2^31).  The VNNI kernel's biased-unsigned
/// accumulation is bounded by 255*128*k <= 2.14e9 < 2^31 at the same limit.
constexpr std::size_t kQgemmMaxK = 1ULL << 16;
}  // namespace

QuantParams QuantParams::choose(float min_v, float max_v) {
  OPENEI_CHECK(std::isfinite(min_v) && std::isfinite(max_v),
               "non-finite quantization range");
  OPENEI_CHECK(min_v <= max_v, "reversed quantization range");
  // The range must include zero so that zero quantizes exactly (standard
  // affine-quantization requirement; keeps padding/ReLU zeros exact).
  min_v = std::min(min_v, 0.0F);
  max_v = std::max(max_v, 0.0F);
  float span = max_v - min_v;
  QuantParams p;
  if (span == 0.0F) {
    p.scale = 1.0F;
    p.zero_point = 0;
    return p;
  }
  // Denormal spans can underflow span/255 to zero; floor at the smallest
  // normal float so the scale stays finite and nonzero.
  p.scale = std::max(span / static_cast<float>(kQMax - kQMin),
                     std::numeric_limits<float>::min());
  float zp = static_cast<float>(kQMin) - min_v / p.scale;
  p.zero_point = static_cast<std::int32_t>(std::lround(zp));
  p.zero_point = std::clamp(p.zero_point, kQMin, kQMax);
  return p;
}

// ---------------------------------------------------------------------------
// SIMD dispatch for the two hot loops (bulk quantization, int8 GEMM rows).
//
// The repo builds for generic x86-64 (SSE2); these kernels matter enough —
// they ARE the int8 engine's latency story — that we compile the same C++
// bodies additionally with AVX2/AVX-512 target attributes and pick at
// runtime via __builtin_cpu_supports.  Plain function-pointer-free dispatch
// (no ifunc) so sanitizer runs see ordinary functions.  Every variant does
// exact integer accumulation / identical per-element float arithmetic, so
// results are bit-identical across ISA levels, which keeps the engine's
// bit-reproducibility guarantees independent of the host CPU.
// ---------------------------------------------------------------------------

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define OPENEI_X86_SIMD_DISPATCH 1
#include <immintrin.h>
#else
#define OPENEI_X86_SIMD_DISPATCH 0
#endif

namespace {

/// 0 = baseline, 1 = AVX2, 2 = AVX-512 (F+BW+VL), 3 = AVX-512 VNNI.
/// Cached after first probe.
int simd_level() {
#if OPENEI_X86_SIMD_DISPATCH
  static const int level = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl")) {
      return __builtin_cpu_supports("avx512vnni") ? 3 : 2;
    }
    return __builtin_cpu_supports("avx2") ? 1 : 0;
  }();
  return level;
#else
  return 0;
#endif
}

}  // namespace

int int8_isa_level() { return simd_level(); }

const char* int8_isa_name(int level) {
  switch (level) {
    case 3:
      return "avx512-vnni";
    case 2:
      return "avx512";
    case 1:
      return "avx2";
    default:
      return "scalar";
  }
}

namespace {

__attribute__((always_inline)) inline void quantize_bulk_body(
    const float* src, std::size_t n, const QuantParams p, std::int8_t* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = quantize_one(src[i], p);
}

#if OPENEI_X86_SIMD_DISPATCH
__attribute__((target("avx512f,avx512bw,avx512vl"))) void quantize_bulk_avx512(
    const float* src, std::size_t n, const QuantParams p, std::int8_t* dst) {
  quantize_bulk_body(src, n, p, dst);
}
#endif

}  // namespace

void quantize_to_int8(const float* src, std::size_t n, const QuantParams& p,
                      std::int8_t* dst) {
#if OPENEI_X86_SIMD_DISPATCH
  // AVX2 shows no gain here (the blend-heavy clamp chain stays divps-bound);
  // the masked 512-bit form is ~8x faster than the baseline loop.
  if (simd_level() >= 2) {
    quantize_bulk_avx512(src, n, p, dst);
    return;
  }
#endif
  quantize_bulk_body(src, n, p, dst);
}

QuantizedTensor::QuantizedTensor(Shape shape, std::vector<std::int8_t> data,
                                 QuantParams params)
    : shape_(std::move(shape)), data_(std::move(data)), params_(params) {
  OPENEI_CHECK(data_.size() == shape_.elements(), "quantized data size mismatch");
}

QuantizedTensor QuantizedTensor::quantize(const Tensor& input) {
  return quantize(input, QuantParams::choose(input.min(), input.max()));
}

QuantizedTensor QuantizedTensor::quantize(const Tensor& input, QuantParams params) {
  std::vector<std::int8_t> data(input.elements());
  quantize_to_int8(input.data().data(), data.size(), params, data.data());
  return QuantizedTensor(input.shape(), std::move(data), params);
}

Tensor QuantizedTensor::dequantize() const {
  Tensor out(shape_);
  auto dst = out.data();
  for (std::size_t i = 0; i < data_.size(); ++i) {
    dst[i] = params_.scale *
             static_cast<float>(static_cast<std::int32_t>(data_[i]) - params_.zero_point);
  }
  return out;
}

namespace {

/// Symmetric row scale: maxabs/127 (zero point 0; 1.0 for an all-zero row so
/// the scale stays usable).
float symmetric_scale(const float* row, std::size_t n) {
  float max_abs = 0.0F;
  for (std::size_t i = 0; i < n; ++i) max_abs = std::max(max_abs, std::abs(row[i]));
  if (max_abs == 0.0F) return 1.0F;
  return std::max(max_abs / static_cast<float>(kQMax),
                  std::numeric_limits<float>::min());
}

/// Symmetric quantization restricted to [-127, 127] (the standard trick that
/// keeps -w representable whenever w is).
std::int8_t quantize_symmetric(float v, float scale) {
  float q = std::round(v / scale);
  q = std::clamp(q, -127.0F, 127.0F);
  return static_cast<std::int8_t>(static_cast<std::int32_t>(q));
}

}  // namespace

PackedQuantMatrix PackedQuantMatrix::pack_rows(const Tensor& weights,
                                               bool per_channel) {
  OPENEI_CHECK(weights.shape().rank() == 2, "pack_rows requires a rank-2 tensor");
  std::size_t rows = weights.shape().dim(0);
  std::size_t cols = weights.shape().dim(1);
  const float* src = weights.data().data();

  PackedQuantMatrix packed;
  packed.rows_ = rows;
  packed.cols_ = cols;
  packed.per_channel_ = per_channel;
  packed.data_.resize(rows * cols);
  packed.scales_.resize(rows);

  float tensor_scale = per_channel ? 0.0F : symmetric_scale(src, rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = src + r * cols;
    float scale = per_channel ? symmetric_scale(row, cols) : tensor_scale;
    packed.scales_[r] = scale;
    std::int8_t* dst = packed.data_.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) dst[c] = quantize_symmetric(row[c], scale);
  }
  packed.finalize();
  return packed;
}

PackedQuantMatrix PackedQuantMatrix::pack_transposed(const Tensor& weights,
                                                     bool per_channel) {
  return pack_rows(transpose(weights), per_channel);
}

PackedQuantMatrix PackedQuantMatrix::from_per_tensor(const QuantizedTensor& weights) {
  OPENEI_CHECK(weights.shape().rank() == 2,
               "from_per_tensor requires rank-2 weights");
  std::size_t cols = weights.shape().dim(0);  // [in, out] -> cols = in
  std::size_t rows = weights.shape().dim(1);

  PackedQuantMatrix packed;
  packed.rows_ = rows;
  packed.cols_ = cols;
  packed.per_channel_ = false;
  packed.weight_zero_point_ = weights.params().zero_point;
  packed.scales_.assign(rows, weights.params().scale);
  packed.data_.resize(rows * cols);
  const auto& src = weights.data();
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      packed.data_[r * cols + c] = src[c * rows + r];
    }
  }
  packed.finalize();
  return packed;
}

PackedQuantMatrix::PackedQuantMatrix(std::size_t rows, std::size_t cols,
                                     std::vector<std::int8_t> data,
                                     std::vector<float> scales,
                                     std::int32_t weight_zero_point,
                                     bool per_channel)
    : rows_(rows),
      cols_(cols),
      data_(std::move(data)),
      scales_(std::move(scales)),
      weight_zero_point_(weight_zero_point),
      per_channel_(per_channel) {
  OPENEI_CHECK(data_.size() == rows_ * cols_, "packed weight size mismatch");
  if (scales_.size() == 1 && rows_ > 1) scales_.assign(rows_, scales_[0]);
  OPENEI_CHECK(scales_.size() == rows_, "packed scale count mismatch");
  for (float s : scales_) {
    OPENEI_CHECK(std::isfinite(s) && s > 0.0F, "bad packed weight scale");
  }
  finalize();
}

void PackedQuantMatrix::finalize() {
  row_sums_.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::int32_t sum = 0;
    const std::int8_t* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c];
    row_sums_[r] = sum;
  }
  // Kernel view: pad each row with zeros to a 16-lane boundary so the GEMM
  // inner loop is tail-free.  Zero weights are exact no-ops in the affine
  // sum, so only ragged matrices pay the (tiny) shadow copy.
  kernel_cols_ = (cols_ + 15) / 16 * 16;
  if (kernel_cols_ == cols_) {
    kernel_data_.clear();
  } else {
    kernel_data_.assign(rows_ * kernel_cols_, 0);
    for (std::size_t r = 0; r < rows_; ++r) {
      std::copy(data_.data() + r * cols_, data_.data() + (r + 1) * cols_,
                kernel_data_.data() + r * kernel_cols_);
    }
  }
}

Tensor PackedQuantMatrix::dequantize() const {
  Tensor out(Shape{rows_, cols_});
  auto dst = out.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      dst[r * cols_ + c] =
          scales_[r] * static_cast<float>(
                           static_cast<std::int32_t>(data_[r * cols_ + c]) -
                           weight_zero_point_);
    }
  }
  return out;
}

namespace {

/// Shared epilogue: dequantize the corrected int accumulation, add bias,
/// clamp.  One function so the float-out and int8-out variants (and every
/// caller) apply bit-identical float arithmetic.
inline float requantize_epilogue(std::int64_t corrected, float combined_scale,
                                 const float* bias, std::size_t r,
                                 bool fuse_relu) {
  float v = combined_scale * static_cast<float>(corrected);
  if (bias != nullptr) v += bias[r];
  if (fuse_relu && v < 0.0F) v = 0.0F;
  return v;
}

/// Stack tile sizes for the GEMM inner kernel: activations widen into an
/// int16 tile (pmaddwd-friendly), raw int32 accumulators collect per row
/// tile before the float epilogue runs.
constexpr std::size_t kWidenTile = 4096;  // 8 KB int16 on the stack
constexpr std::size_t kRowTile = 256;     // 1 KB int32 on the stack

/// Accumulates `nrows` length-`chunk` dot products into acc[0..nrows):
/// pre-widened int16 activations x int8 weight rows, int32 accumulation,
/// two rows per pass so the activation loads amortize.  This body is the
/// hot loop of the engine; it is compiled at several ISA levels below.
__attribute__((always_inline)) inline void qgemm_rows_body(
    const std::int16_t* a16, const std::int8_t* w, std::size_t stride,
    std::size_t chunk, std::size_t nrows, std::int32_t* acc) {
  std::size_t r = 0;
  for (; r + 1 < nrows; r += 2) {
    const std::int8_t* w0 = w + r * stride;
    const std::int8_t* w1 = w0 + stride;
    std::int32_t acc0 = 0;
    std::int32_t acc1 = 0;
    for (std::size_t p = 0; p < chunk; ++p) {
      std::int32_t av = a16[p];
      acc0 += av * static_cast<std::int32_t>(w0[p]);
      acc1 += av * static_cast<std::int32_t>(w1[p]);
    }
    acc[r] += acc0;
    acc[r + 1] += acc1;
  }
  if (r < nrows) {
    const std::int8_t* wr = w + r * stride;
    std::int32_t accr = 0;
    for (std::size_t p = 0; p < chunk; ++p) {
      accr += static_cast<std::int32_t>(a16[p]) *
              static_cast<std::int32_t>(wr[p]);
    }
    acc[r] += accr;
  }
}

#if OPENEI_X86_SIMD_DISPATCH
/// Horizontal int32 sum of a 256-bit accumulator.  Integer addition is
/// associative, so the lane-reduction order cannot change the result.
__attribute__((target("avx2"), always_inline)) inline std::int32_t hsum_epi32(
    __m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// One 16-lane step: widen 16 int8 weights, pmaddwd against the pre-widened
/// activations (pairwise int16*int16 -> int32 adds, exact: |a|,|w| <= 128 so
/// a pair sum is <= 2^15), accumulate.
__attribute__((target("avx2"), always_inline)) inline __m256i madd16(
    __m256i sum, const std::int16_t* a16, const std::int8_t* w) {
  const __m256i av =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a16));
  const __m256i wv = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w)));
  return _mm256_add_epi32(sum, _mm256_madd_epi16(av, wv));
}

__attribute__((target("avx2"))) void qgemm_rows_avx2(
    const std::int16_t* a16, const std::int8_t* w, std::size_t stride,
    std::size_t chunk, std::size_t nrows, std::int32_t* acc) {
  std::size_t r = 0;
  for (; r + 1 < nrows; r += 2) {
    const std::int8_t* w0 = w + r * stride;
    const std::int8_t* w1 = w0 + stride;
    // Two accumulator chains per row break the vpaddd dependency chain.
    __m256i s0a = _mm256_setzero_si256();
    __m256i s0b = _mm256_setzero_si256();
    __m256i s1a = _mm256_setzero_si256();
    __m256i s1b = _mm256_setzero_si256();
    std::size_t p = 0;
    for (; p + 32 <= chunk; p += 32) {
      s0a = madd16(s0a, a16 + p, w0 + p);
      s0b = madd16(s0b, a16 + p + 16, w0 + p + 16);
      s1a = madd16(s1a, a16 + p, w1 + p);
      s1b = madd16(s1b, a16 + p + 16, w1 + p + 16);
    }
    for (; p + 16 <= chunk; p += 16) {
      s0a = madd16(s0a, a16 + p, w0 + p);
      s1a = madd16(s1a, a16 + p, w1 + p);
    }
    std::int32_t t0 = hsum_epi32(_mm256_add_epi32(s0a, s0b));
    std::int32_t t1 = hsum_epi32(_mm256_add_epi32(s1a, s1b));
    for (; p < chunk; ++p) {  // unused when the caller pads chunk to 16
      t0 += static_cast<std::int32_t>(a16[p]) * w0[p];
      t1 += static_cast<std::int32_t>(a16[p]) * w1[p];
    }
    acc[r] += t0;
    acc[r + 1] += t1;
  }
  if (r < nrows) {
    const std::int8_t* wr = w + r * stride;
    __m256i sa = _mm256_setzero_si256();
    __m256i sb = _mm256_setzero_si256();
    std::size_t p = 0;
    for (; p + 32 <= chunk; p += 32) {
      sa = madd16(sa, a16 + p, wr + p);
      sb = madd16(sb, a16 + p + 16, wr + p + 16);
    }
    for (; p + 16 <= chunk; p += 16) sa = madd16(sa, a16 + p, wr + p);
    std::int32_t t = hsum_epi32(_mm256_add_epi32(sa, sb));
    for (; p < chunk; ++p) t += static_cast<std::int32_t>(a16[p]) * wr[p];
    acc[r] += t;
  }
}

/// 32-lane pmaddwd step, the 512-bit analog of madd16.
__attribute__((target("avx512f,avx512bw,avx512vl"),
               always_inline)) inline __m512i madd32(__m512i sum,
                                                     const std::int16_t* a16,
                                                     const std::int8_t* w) {
  const __m512i av =
      _mm512_loadu_si512(reinterpret_cast<const void*>(a16));
  const __m512i wv = _mm512_cvtepi8_epi16(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w)));
  return _mm512_add_epi32(sum, _mm512_madd_epi16(av, wv));
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void qgemm_rows_avx512(
    const std::int16_t* a16, const std::int8_t* w, std::size_t stride,
    std::size_t chunk, std::size_t nrows, std::int32_t* acc) {
  std::size_t r = 0;
  for (; r + 1 < nrows; r += 2) {
    const std::int8_t* w0 = w + r * stride;
    const std::int8_t* w1 = w0 + stride;
    __m512i s0a = _mm512_setzero_si512();
    __m512i s0b = _mm512_setzero_si512();
    __m512i s1a = _mm512_setzero_si512();
    __m512i s1b = _mm512_setzero_si512();
    std::size_t p = 0;
    for (; p + 64 <= chunk; p += 64) {
      s0a = madd32(s0a, a16 + p, w0 + p);
      s0b = madd32(s0b, a16 + p + 32, w0 + p + 32);
      s1a = madd32(s1a, a16 + p, w1 + p);
      s1b = madd32(s1b, a16 + p + 32, w1 + p + 32);
    }
    for (; p + 32 <= chunk; p += 32) {
      s0a = madd32(s0a, a16 + p, w0 + p);
      s1a = madd32(s1a, a16 + p, w1 + p);
    }
    std::int32_t t0 = _mm512_reduce_add_epi32(_mm512_add_epi32(s0a, s0b));
    std::int32_t t1 = _mm512_reduce_add_epi32(_mm512_add_epi32(s1a, s1b));
    if (p + 16 <= chunk) {  // padded chunks are multiples of 16: one 256-bit
      t0 += hsum_epi32(madd16(_mm256_setzero_si256(), a16 + p, w0 + p));
      t1 += hsum_epi32(madd16(_mm256_setzero_si256(), a16 + p, w1 + p));
      p += 16;
    }
    for (; p < chunk; ++p) {
      t0 += static_cast<std::int32_t>(a16[p]) * w0[p];
      t1 += static_cast<std::int32_t>(a16[p]) * w1[p];
    }
    acc[r] += t0;
    acc[r + 1] += t1;
  }
  if (r < nrows) {
    const std::int8_t* wr = w + r * stride;
    __m512i sa = _mm512_setzero_si512();
    __m512i sb = _mm512_setzero_si512();
    std::size_t p = 0;
    for (; p + 64 <= chunk; p += 64) {
      sa = madd32(sa, a16 + p, wr + p);
      sb = madd32(sb, a16 + p + 32, wr + p + 32);
    }
    for (; p + 32 <= chunk; p += 32) sa = madd32(sa, a16 + p, wr + p);
    std::int32_t t = _mm512_reduce_add_epi32(_mm512_add_epi32(sa, sb));
    if (p + 16 <= chunk) {
      t += hsum_epi32(madd16(_mm256_setzero_si256(), a16 + p, wr + p));
      p += 16;
    }
    for (; p < chunk; ++p) t += static_cast<std::int32_t>(a16[p]) * wr[p];
    acc[r] += t;
  }
}

/// One vpdpbusd step: 64 unsigned-activation x signed-weight byte products
/// accumulated into 16 int32 lanes in a single instruction.  Each lane sums
/// 4 products bounded by 255*128, so the lane arithmetic is exact.
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"),
               always_inline)) inline __m512i dp64(__m512i sum,
                                                   const std::uint8_t* a,
                                                   const std::int8_t* w) {
  return _mm512_dpbusd_epi32(
      sum, _mm512_loadu_si512(reinterpret_cast<const void*>(a)),
      _mm512_loadu_si512(reinterpret_cast<const void*>(w)));
}

/// VNNI kernel: activations are pre-offset to unsigned (a + 128), so
/// acc[r] accumulates sum((a+128) * w); the caller removes the constant
/// 128 * row_sums[r] in the (exact, integer) epilogue correction.  Handles
/// any chunk via a masked final step; masked-off lanes contribute zero.
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
qgemm_rows_vnni(const std::uint8_t* au8, const std::int8_t* w,
                std::size_t stride, std::size_t chunk, std::size_t nrows,
                std::int32_t* acc) {
  std::size_t r = 0;
  for (; r + 1 < nrows; r += 2) {
    const std::int8_t* w0 = w + r * stride;
    const std::int8_t* w1 = w0 + stride;
    __m512i s0a = _mm512_setzero_si512();
    __m512i s0b = _mm512_setzero_si512();
    __m512i s1a = _mm512_setzero_si512();
    __m512i s1b = _mm512_setzero_si512();
    std::size_t p = 0;
    for (; p + 128 <= chunk; p += 128) {
      s0a = dp64(s0a, au8 + p, w0 + p);
      s0b = dp64(s0b, au8 + p + 64, w0 + p + 64);
      s1a = dp64(s1a, au8 + p, w1 + p);
      s1b = dp64(s1b, au8 + p + 64, w1 + p + 64);
    }
    for (; p + 64 <= chunk; p += 64) {
      s0a = dp64(s0a, au8 + p, w0 + p);
      s1a = dp64(s1a, au8 + p, w1 + p);
    }
    if (p < chunk) {
      const __mmask64 mask = (1ULL << (chunk - p)) - 1;
      const __m512i av = _mm512_maskz_loadu_epi8(mask, au8 + p);
      s0b = _mm512_dpbusd_epi32(s0b, av,
                                _mm512_maskz_loadu_epi8(mask, w0 + p));
      s1b = _mm512_dpbusd_epi32(s1b, av,
                                _mm512_maskz_loadu_epi8(mask, w1 + p));
    }
    acc[r] += _mm512_reduce_add_epi32(_mm512_add_epi32(s0a, s0b));
    acc[r + 1] += _mm512_reduce_add_epi32(_mm512_add_epi32(s1a, s1b));
  }
  if (r < nrows) {
    const std::int8_t* wr = w + r * stride;
    __m512i sa = _mm512_setzero_si512();
    __m512i sb = _mm512_setzero_si512();
    std::size_t p = 0;
    for (; p + 128 <= chunk; p += 128) {
      sa = dp64(sa, au8 + p, wr + p);
      sb = dp64(sb, au8 + p + 64, wr + p + 64);
    }
    for (; p + 64 <= chunk; p += 64) sa = dp64(sa, au8 + p, wr + p);
    if (p < chunk) {
      const __mmask64 mask = (1ULL << (chunk - p)) - 1;
      sb = _mm512_dpbusd_epi32(sb, _mm512_maskz_loadu_epi8(mask, au8 + p),
                               _mm512_maskz_loadu_epi8(mask, wr + p));
    }
    acc[r] += _mm512_reduce_add_epi32(_mm512_add_epi32(sa, sb));
  }
}

/// i-blocked VNNI kernel for batched GEMMs (m >= 16): `at4` stages 16 rows
/// of A in 4-byte-interleaved layout — dword p4 of lane ii holds bytes
/// a[i0+ii, 4*p4 .. 4*p4+3] biased to unsigned — so every vpdpbusd lane
/// accumulates a *different output row of A* against a broadcast weight
/// dword.  After the k loop the 16 lanes ARE out[i0..i0+16, r]: zero
/// horizontal reductions, the structural cost of the per-i kernels above.
/// `acc` is [nrows][16] int32; `first_chunk` seeds it.
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
qgemm_tile16_vnni(const std::uint8_t* at4, std::size_t chunk,
                  const std::int8_t* w, std::size_t wstride,
                  std::size_t nrows, bool first_chunk, std::int32_t* acc) {
  const std::size_t q = chunk / 4;  // callers pad chunk to a multiple of 16
  std::size_t r = 0;
  for (; r + 1 < nrows; r += 2) {
    const std::int8_t* w0 = w + r * wstride;
    const std::int8_t* w1 = w0 + wstride;
    __m512i s0 = first_chunk
                     ? _mm512_setzero_si512()
                     : _mm512_loadu_si512(acc + r * 16);
    __m512i s1 = first_chunk
                     ? _mm512_setzero_si512()
                     : _mm512_loadu_si512(acc + (r + 1) * 16);
    for (std::size_t p4 = 0; p4 < q; ++p4) {
      const __m512i av = _mm512_loadu_si512(at4 + p4 * 64);
      std::int32_t wd0;
      std::int32_t wd1;
      std::memcpy(&wd0, w0 + 4 * p4, 4);
      std::memcpy(&wd1, w1 + 4 * p4, 4);
      s0 = _mm512_dpbusd_epi32(s0, av, _mm512_set1_epi32(wd0));
      s1 = _mm512_dpbusd_epi32(s1, av, _mm512_set1_epi32(wd1));
    }
    _mm512_storeu_si512(acc + r * 16, s0);
    _mm512_storeu_si512(acc + (r + 1) * 16, s1);
  }
  if (r < nrows) {
    const std::int8_t* wr = w + r * wstride;
    __m512i s = first_chunk
                    ? _mm512_setzero_si512()
                    : _mm512_loadu_si512(acc + r * 16);
    for (std::size_t p4 = 0; p4 < q; ++p4) {
      std::int32_t wd4;
      std::memcpy(&wd4, wr + 4 * p4, 4);
      s = _mm512_dpbusd_epi32(s, _mm512_loadu_si512(at4 + p4 * 64),
                              _mm512_set1_epi32(wd4));
    }
    _mm512_storeu_si512(acc + r * 16, s);
  }
}

/// Stages one 4x16 group of the interleaved VNNI tile straight from the
/// transposed [k, m] activation layout: rows p..p+3 each contribute 16
/// contiguous bytes (columns i0..i0+15), byte-transposed so dword lane ii
/// holds bytes a[i0+ii, p..p+3], XOR 0x80 biased to unsigned.  Pure SSE2 —
/// baseline on x86-64, so no target attribute / dispatch needed.
inline void transpose4x16_bias(const std::int8_t* r0, const std::int8_t* r1,
                               const std::int8_t* r2, const std::int8_t* r3,
                               std::uint8_t* dst) {
  const __m128i sign = _mm_set1_epi8(static_cast<char>(0x80));
  const __m128i v0 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0)), sign);
  const __m128i v1 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1)), sign);
  const __m128i v2 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2)), sign);
  const __m128i v3 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3)), sign);
  // Two unpack levels build the byte transpose: after epi8 interleave,
  // 16-bit units are (r0[i], r1[i]) / (r2[i], r3[i]) pairs; interleaving
  // those yields dwords r0[i],r1[i],r2[i],r3[i] in column order.
  const __m128i t0 = _mm_unpacklo_epi8(v0, v1);
  const __m128i t1 = _mm_unpackhi_epi8(v0, v1);
  const __m128i t2 = _mm_unpacklo_epi8(v2, v3);
  const __m128i t3 = _mm_unpackhi_epi8(v2, v3);
  __m128i* d = reinterpret_cast<__m128i*>(dst);
  _mm_storeu_si128(d + 0, _mm_unpacklo_epi16(t0, t2));
  _mm_storeu_si128(d + 1, _mm_unpackhi_epi16(t0, t2));
  _mm_storeu_si128(d + 2, _mm_unpacklo_epi16(t1, t3));
  _mm_storeu_si128(d + 3, _mm_unpackhi_epi16(t1, t3));
}
#endif

void qgemm_rows(const std::int16_t* a16, const std::int8_t* w,
                std::size_t stride, std::size_t chunk, std::size_t nrows,
                std::int32_t* acc) {
#if OPENEI_X86_SIMD_DISPATCH
  int level = simd_level();
  // 512-bit lanes need enough reduction length to amortize the wider
  // reduce; short rows stay on the 256-bit kernel.
  if (level >= 2 && chunk >= 64) {
    qgemm_rows_avx512(a16, w, stride, chunk, nrows, acc);
    return;
  }
  if (level >= 1 && chunk >= 16) {
    qgemm_rows_avx2(a16, w, stride, chunk, nrows, acc);
    return;
  }
#endif
  qgemm_rows_body(a16, w, stride, chunk, nrows, acc);
}

/// Core int8 GEMM: int32 dot products over packed rows, zero-point
/// corrections via precomputed row sums, then `emit(i, r, value)` per output
/// element.  Parallel partitions only split (i, r) space; each element's
/// integer accumulation is exact, so results are bit-identical at any
/// thread count (and at any SIMD dispatch level).
template <typename Emit>
void qgemm_impl(const std::int8_t* a, std::size_t m, std::size_t k,
                const QuantParams& a_params, const PackedQuantMatrix& w,
                const float* bias, bool fuse_relu, const Emit& emit) {
  OPENEI_CHECK(k == w.cols(), "qgemm inner dims differ: ", k, " vs ", w.cols());
  OPENEI_CHECK(k <= kQgemmMaxK, "qgemm k ", k, " exceeds int32-exact bound");
  // The kernel view is zero-padded to 16-lane rows; matching zero-padded
  // activations contribute nothing, so all correction terms keep real k.
  const std::int8_t* wd = w.kernel_data();
  const std::size_t k_pad = w.kernel_cols();
  const float* ws = w.scales().data();
  const std::int32_t* row_sums = w.row_sums().data();
  const std::size_t rows = w.rows();
  const auto a_zp = static_cast<std::int64_t>(a_params.zero_point);
  const auto w_zp = static_cast<std::int64_t>(w.weight_zero_point());
  const std::int64_t zp_cross = a_zp * w_zp * static_cast<std::int64_t>(k);
#if OPENEI_X86_SIMD_DISPATCH
  // The VNNI kernel consumes activations offset to unsigned (a + 128); its
  // raw accumulation therefore carries an extra 128 * row_sums[r], removed
  // below via acc_zp.  Integer arithmetic throughout, so still exact.
  const bool use_vnni = simd_level() >= 3;
#else
  constexpr bool use_vnni = false;
#endif
  const std::int64_t acc_zp = a_zp + (use_vnni ? 128 : 0);

  auto row_block = [&](std::size_t i, std::size_t r0, std::size_t r1) {
    const std::int8_t* arow = a + i * k;
    std::int64_t a_sum = 0;
    if (w_zp != 0) {
      for (std::size_t p = 0; p < k; ++p) a_sum += arow[p];
    }
    std::int16_t a16[kWidenTile];
#if OPENEI_X86_SIMD_DISPATCH
    std::uint8_t au8[kWidenTile];
#endif
    std::int32_t acc[kRowTile];
    for (std::size_t rt = r0; rt < r1; rt += kRowTile) {
      const std::size_t nrows = std::min(kRowTile, r1 - rt);
      std::fill(acc, acc + nrows, 0);
      // Tile k so the staged activations stay in the stack buffer; the
      // integer accumulators carry across chunks, so the sum is exact.
      // Activations beyond real k stage to (offset) zero, mirroring the
      // weight pad.
      for (std::size_t p0 = 0; p0 < k_pad; p0 += kWidenTile) {
        const std::size_t chunk = std::min(kWidenTile, k_pad - p0);
        const std::size_t real = p0 < k ? std::min(chunk, k - p0) : 0;
#if OPENEI_X86_SIMD_DISPATCH
        if (use_vnni) {
          // Two's-complement +128 is XOR 0x80: int8 -> biased uint8.
          for (std::size_t p = 0; p < real; ++p) {
            au8[p] = static_cast<std::uint8_t>(arow[p0 + p]) ^ 0x80U;
          }
          for (std::size_t p = real; p < chunk; ++p) au8[p] = 0x80U;
          qgemm_rows_vnni(au8, wd + rt * k_pad + p0, k_pad, chunk, nrows,
                          acc);
          continue;
        }
#endif
        for (std::size_t p = 0; p < real; ++p) a16[p] = arow[p0 + p];
        for (std::size_t p = real; p < chunk; ++p) a16[p] = 0;
        qgemm_rows(a16, wd + rt * k_pad + p0, k_pad, chunk, nrows, acc);
      }
      for (std::size_t j = 0; j < nrows; ++j) {
        const std::size_t r = rt + j;
        std::int64_t corrected =
            static_cast<std::int64_t>(acc[j]) -
            acc_zp * static_cast<std::int64_t>(row_sums[r]) - w_zp * a_sum +
            zp_cross;
        emit(i, r,
             requantize_epilogue(corrected, a_params.scale * ws[r], bias, r,
                                 fuse_relu));
      }
    }
  };

#if OPENEI_X86_SIMD_DISPATCH
  if (use_vnni && m >= 16) {
    // Batched path: 16-row tiles of A through the lane-parallel kernel.
    // kPackTile bounds the staged tile (16 * 1024 = 16 KB on the stack).
    constexpr std::size_t kPackTile = 1024;
    auto tile_block = [&](std::size_t i0, std::size_t ni) {
      std::int64_t a_sums[16] = {};
      if (w_zp != 0) {
        for (std::size_t ii = 0; ii < ni; ++ii) {
          const std::int8_t* arow = a + (i0 + ii) * k;
          for (std::size_t p = 0; p < k; ++p) a_sums[ii] += arow[p];
        }
      }
      std::uint8_t at4[16 * kPackTile];
      std::int32_t acc[kRowTile * 16];
      for (std::size_t rt = 0; rt < rows; rt += kRowTile) {
        const std::size_t nrows = std::min(kRowTile, rows - rt);
        bool first = true;
        for (std::size_t p0 = 0; p0 < k_pad; p0 += kPackTile) {
          const std::size_t chunk = std::min(kPackTile, k_pad - p0);
          // Stage the interleaved activation tile: whole dwords XOR the
          // +128 bias in one op, ragged tails byte-wise, unused lanes at
          // biased zero (their outputs are never emitted).
          if (ni < 16) std::memset(at4, 0x80, 16 * chunk);
          for (std::size_t ii = 0; ii < ni; ++ii) {
            const std::int8_t* arow = a + (i0 + ii) * k;
            const std::size_t real = p0 < k ? std::min(chunk, k - p0) : 0;
            std::size_t p = 0;
            for (; p + 4 <= real; p += 4) {
              std::uint32_t v;
              std::memcpy(&v, arow + p0 + p, 4);
              v ^= 0x80808080U;
              std::memcpy(at4 + (p / 4) * 64 + ii * 4, &v, 4);
            }
            for (; p < chunk; ++p) {
              at4[(p / 4) * 64 + ii * 4 + (p % 4)] =
                  p < real ? static_cast<std::uint8_t>(arow[p0 + p]) ^ 0x80U
                           : 0x80U;
            }
          }
          qgemm_tile16_vnni(at4, chunk, wd + rt * k_pad + p0, k_pad, nrows,
                            first, acc);
          first = false;
        }
        if (first) std::fill(acc, acc + nrows * 16, 0);  // k == 0 guard
        for (std::size_t j = 0; j < nrows; ++j) {
          const std::size_t r = rt + j;
          const float combined_scale = a_params.scale * ws[r];
          for (std::size_t ii = 0; ii < ni; ++ii) {
            std::int64_t corrected =
                static_cast<std::int64_t>(acc[j * 16 + ii]) -
                acc_zp * static_cast<std::int64_t>(row_sums[r]) -
                w_zp * a_sums[ii] + zp_cross;
            emit(i0 + ii, r,
                 requantize_epilogue(corrected, combined_scale, bias, r,
                                     fuse_relu));
          }
        }
      }
    };
    const std::size_t tiles = (m + 15) / 16;
    common::parallel_for(
        0, tiles,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t t = lo; t < hi; ++t) {
            tile_block(t * 16, std::min<std::size_t>(16, m - t * 16));
          }
        },
        /*grain=*/std::max<std::size_t>(
            1, kQgemmSerialMacs / std::max<std::size_t>(1, 16 * k * rows)));
    return;
  }
#endif
  if (m * rows * k < kQgemmSerialMacs) {
    for (std::size_t i = 0; i < m; ++i) row_block(i, 0, rows);
    return;
  }
  if (m == 1) {
    // Single-sample inference: split the packed weight rows across the pool.
    common::parallel_for(
        0, rows, [&](std::size_t lo, std::size_t hi) { row_block(0, lo, hi); },
        /*grain=*/std::max<std::size_t>(
            1, kQgemmSerialMacs / std::max<std::size_t>(1, k)));
    return;
  }
  common::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) row_block(i, 0, rows);
      },
      /*grain=*/std::max<std::size_t>(
          1, kQgemmSerialMacs / std::max<std::size_t>(1, k * rows)));
}

/// Transposed-activation twin of qgemm_impl: `at` is [k, m], so activation
/// column p is contiguous over samples.  The batched VNNI tile stages its
/// 4-byte-interleaved lanes with contiguous 16-byte loads + an in-register
/// byte transpose (no strided gather at all); the per-sample fallback
/// gathers one column with stride m.  Same integer accumulation and the
/// same float epilogue as qgemm_impl, so results are bit-identical to
/// qgemm on the untransposed matrix.
template <typename Emit>
void qgemm_t_impl(const std::int8_t* at, std::size_t m, std::size_t k,
                  const QuantParams& a_params, const PackedQuantMatrix& w,
                  const float* bias, bool fuse_relu, const Emit& emit) {
  OPENEI_CHECK(k == w.cols(), "qgemm_t inner dims differ: ", k, " vs ",
               w.cols());
  OPENEI_CHECK(k <= kQgemmMaxK, "qgemm_t k ", k, " exceeds int32-exact bound");
  const std::int8_t* wd = w.kernel_data();
  const std::size_t k_pad = w.kernel_cols();
  const float* ws = w.scales().data();
  const std::int32_t* row_sums = w.row_sums().data();
  const std::size_t rows = w.rows();
  const auto a_zp = static_cast<std::int64_t>(a_params.zero_point);
  const auto w_zp = static_cast<std::int64_t>(w.weight_zero_point());
  const std::int64_t zp_cross = a_zp * w_zp * static_cast<std::int64_t>(k);
#if OPENEI_X86_SIMD_DISPATCH
  const bool use_vnni = simd_level() >= 3;
#else
  constexpr bool use_vnni = false;
#endif
  const std::int64_t acc_zp = a_zp + (use_vnni ? 128 : 0);

  // Per-sample fallback: gather activation column i (stride m) into the
  // staging buffer, then reuse the per-i kernels unchanged.
  auto row_block = [&](std::size_t i, std::size_t r0, std::size_t r1) {
    std::int64_t a_sum = 0;
    if (w_zp != 0) {
      for (std::size_t p = 0; p < k; ++p) a_sum += at[p * m + i];
    }
    std::int16_t a16[kWidenTile];
#if OPENEI_X86_SIMD_DISPATCH
    std::uint8_t au8[kWidenTile];
#endif
    std::int32_t acc[kRowTile];
    for (std::size_t rt = r0; rt < r1; rt += kRowTile) {
      const std::size_t nrows = std::min(kRowTile, r1 - rt);
      std::fill(acc, acc + nrows, 0);
      for (std::size_t p0 = 0; p0 < k_pad; p0 += kWidenTile) {
        const std::size_t chunk = std::min(kWidenTile, k_pad - p0);
        const std::size_t real = p0 < k ? std::min(chunk, k - p0) : 0;
#if OPENEI_X86_SIMD_DISPATCH
        if (use_vnni) {
          for (std::size_t p = 0; p < real; ++p) {
            au8[p] = static_cast<std::uint8_t>(at[(p0 + p) * m + i]) ^ 0x80U;
          }
          for (std::size_t p = real; p < chunk; ++p) au8[p] = 0x80U;
          qgemm_rows_vnni(au8, wd + rt * k_pad + p0, k_pad, chunk, nrows,
                          acc);
          continue;
        }
#endif
        for (std::size_t p = 0; p < real; ++p) a16[p] = at[(p0 + p) * m + i];
        for (std::size_t p = real; p < chunk; ++p) a16[p] = 0;
        qgemm_rows(a16, wd + rt * k_pad + p0, k_pad, chunk, nrows, acc);
      }
      for (std::size_t j = 0; j < nrows; ++j) {
        const std::size_t r = rt + j;
        std::int64_t corrected =
            static_cast<std::int64_t>(acc[j]) -
            acc_zp * static_cast<std::int64_t>(row_sums[r]) - w_zp * a_sum +
            zp_cross;
        emit(i, r,
             requantize_epilogue(corrected, a_params.scale * ws[r], bias, r,
                                 fuse_relu));
      }
    }
  };

#if OPENEI_X86_SIMD_DISPATCH
  if (use_vnni && m >= 16) {
    constexpr std::size_t kPackTile = 1024;
    auto tile_block = [&](std::size_t i0, std::size_t ni) {
      std::int64_t a_sums[16] = {};
      if (w_zp != 0) {
        for (std::size_t p = 0; p < k; ++p) {
          const std::int8_t* arow = at + p * m + i0;
          for (std::size_t ii = 0; ii < ni; ++ii) a_sums[ii] += arow[ii];
        }
      }
      std::uint8_t at4[16 * kPackTile];
      std::int32_t acc[kRowTile * 16];
      for (std::size_t rt = 0; rt < rows; rt += kRowTile) {
        const std::size_t nrows = std::min(kRowTile, rows - rt);
        bool first = true;
        for (std::size_t p0 = 0; p0 < k_pad; p0 += kPackTile) {
          const std::size_t chunk = std::min(kPackTile, k_pad - p0);
          // Stage groups of 4 activation rows into the interleaved tile.
          // Full 16-lane groups use the SSE byte transpose (contiguous
          // loads from the [k, m] layout); k-boundary and ragged-width
          // groups fall back to the scalar fill with biased-zero padding.
          for (std::size_t p = 0; p < chunk; p += 4) {
            const std::size_t gp = p0 + p;
            std::uint8_t* dst = at4 + (p / 4) * 64;
            if (ni == 16 && gp + 4 <= k) {
              const std::int8_t* base = at + gp * m + i0;
              transpose4x16_bias(base, base + m, base + 2 * m, base + 3 * m,
                                 dst);
            } else {
              for (std::size_t j = 0; j < 4; ++j) {
                const std::size_t gpj = gp + j;
                for (std::size_t ii = 0; ii < 16; ++ii) {
                  dst[ii * 4 + j] =
                      (gpj < k && ii < ni)
                          ? static_cast<std::uint8_t>(at[gpj * m + i0 + ii]) ^
                                0x80U
                          : 0x80U;
                }
              }
            }
          }
          qgemm_tile16_vnni(at4, chunk, wd + rt * k_pad + p0, k_pad, nrows,
                            first, acc);
          first = false;
        }
        if (first) std::fill(acc, acc + nrows * 16, 0);  // k == 0 guard
        for (std::size_t j = 0; j < nrows; ++j) {
          const std::size_t r = rt + j;
          const float combined_scale = a_params.scale * ws[r];
          for (std::size_t ii = 0; ii < ni; ++ii) {
            std::int64_t corrected =
                static_cast<std::int64_t>(acc[j * 16 + ii]) -
                acc_zp * static_cast<std::int64_t>(row_sums[r]) -
                w_zp * a_sums[ii] + zp_cross;
            emit(i0 + ii, r,
                 requantize_epilogue(corrected, combined_scale, bias, r,
                                     fuse_relu));
          }
        }
      }
    };
    const std::size_t tiles = (m + 15) / 16;
    common::parallel_for(
        0, tiles,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t t = lo; t < hi; ++t) {
            tile_block(t * 16, std::min<std::size_t>(16, m - t * 16));
          }
        },
        /*grain=*/std::max<std::size_t>(
            1, kQgemmSerialMacs / std::max<std::size_t>(1, 16 * k * rows)));
    return;
  }
#endif
  if (m * rows * k < kQgemmSerialMacs) {
    for (std::size_t i = 0; i < m; ++i) row_block(i, 0, rows);
    return;
  }
  if (m == 1) {
    common::parallel_for(
        0, rows, [&](std::size_t lo, std::size_t hi) { row_block(0, lo, hi); },
        /*grain=*/std::max<std::size_t>(
            1, kQgemmSerialMacs / std::max<std::size_t>(1, k)));
    return;
  }
  common::parallel_for(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) row_block(i, 0, rows);
      },
      /*grain=*/std::max<std::size_t>(
          1, kQgemmSerialMacs / std::max<std::size_t>(1, k * rows)));
}

}  // namespace

void qgemm(const std::int8_t* a, std::size_t m, std::size_t k,
           const QuantParams& a_params, const PackedQuantMatrix& w,
           const float* bias, bool fuse_relu, float* out) {
  const std::size_t rows = w.rows();
  qgemm_impl(a, m, k, a_params, w, bias, fuse_relu,
             [&](std::size_t i, std::size_t r, float v) {
               out[i * rows + r] = v;
             });
}

void qgemm(const std::int8_t* a, std::size_t m, std::size_t k,
           const QuantParams& a_params, const PackedQuantMatrix& w,
           const float* bias, bool fuse_relu, const QuantParams& out_params,
           std::int8_t* out) {
  const std::size_t rows = w.rows();
  qgemm_impl(a, m, k, a_params, w, bias, fuse_relu,
             [&](std::size_t i, std::size_t r, float v) {
               out[i * rows + r] = quantize_one(v, out_params);
             });
}

void qgemm_t(const std::int8_t* at, std::size_t m, std::size_t k,
             const QuantParams& a_params, const PackedQuantMatrix& w,
             const float* bias, bool fuse_relu, float* out) {
  const std::size_t rows = w.rows();
  qgemm_t_impl(at, m, k, a_params, w, bias, fuse_relu,
               [&](std::size_t i, std::size_t r, float v) {
                 out[i * rows + r] = v;
               });
}

void im2col_q8(const std::int8_t* input, std::size_t n, std::size_t in_h,
               std::size_t in_w, const Conv2dSpec& spec, std::int8_t pad_value,
               std::int8_t* out) {
  std::size_t out_h = spec.out_size(in_h);
  std::size_t out_w = spec.out_size(in_w);
  std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  std::size_t image_elems = spec.in_channels * in_h * in_w;

  // Valid output-column range per kernel column: iw = ow*stride + kw -
  // padding must land in [0, in_w).  The range depends only on kw, so the
  // divisions hoist out of every per-pixel loop below.
  std::vector<long> kw_shift(spec.kernel);
  std::vector<std::size_t> kw_lo(spec.kernel);
  std::vector<std::size_t> kw_hi(spec.kernel);
  for (std::size_t kw = 0; kw < spec.kernel; ++kw) {
    long shift = static_cast<long>(kw) - static_cast<long>(spec.padding);
    std::size_t lo =
        shift < 0
            ? (static_cast<std::size_t>(-shift) + spec.stride - 1) / spec.stride
            : 0;
    long limit = static_cast<long>(in_w) - 1 - shift;
    std::size_t hi =
        limit < 0
            ? 0
            : std::min(out_w, static_cast<std::size_t>(limit) / spec.stride + 1);
    kw_shift[kw] = shift;
    kw_lo[kw] = std::min(lo, out_w);
    kw_hi[kw] = std::max(hi, kw_lo[kw]);
  }

  // Same slab decomposition as the float im2col: each (image, output row)
  // pair fills a disjoint block of patch rows.
  common::parallel_for(
      0, n * out_h,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t slab = lo; slab < hi; ++slab) {
          std::size_t b = slab / out_h;
          std::size_t oh = slab % out_h;
          const std::int8_t* image = input + b * image_elems;
          std::int8_t* slab_out = out + slab * out_w * patch;
          // Loop order puts ow innermost with all bounds hoisted: for a fixed
          // (ic, kh, kw) the input positions are contiguous (stride
          // `spec.stride`) and the output positions are a fixed-stride column
          // (stride `patch`), so the hot loop is a branch-free strided copy
          // and padding collapses to prefix/suffix fills.
          for (std::size_t ic = 0; ic < spec.in_channels; ++ic) {
            const std::int8_t* plane = image + ic * in_h * in_w;
            for (std::size_t kh = 0; kh < spec.kernel; ++kh) {
              long ih = static_cast<long>(oh * spec.stride + kh) -
                        static_cast<long>(spec.padding);
              std::int8_t* base =
                  slab_out + (ic * spec.kernel + kh) * spec.kernel;
              if (ih < 0 || static_cast<std::size_t>(ih) >= in_h) {
                for (std::size_t kw = 0; kw < spec.kernel; ++kw) {
                  std::int8_t* dst = base + kw;
                  for (std::size_t ow = 0; ow < out_w; ++ow) {
                    dst[ow * patch] = pad_value;
                  }
                }
                continue;
              }
              const std::int8_t* irow =
                  plane + static_cast<std::size_t>(ih) * in_w;
              for (std::size_t kw = 0; kw < spec.kernel; ++kw) {
                std::int8_t* dst = base + kw;
                const long shift = kw_shift[kw];
                const std::size_t ow_lo = kw_lo[kw];
                const std::size_t ow_hi = kw_hi[kw];
                for (std::size_t ow = 0; ow < ow_lo; ++ow) {
                  dst[ow * patch] = pad_value;
                }
                const std::size_t span = ow_hi - ow_lo;
                if (span != 0) {
                  const std::int8_t* src = irow + ow_lo * spec.stride + shift;
                  std::int8_t* d = dst + ow_lo * patch;
                  for (std::size_t t = 0; t < span; ++t) {
                    d[t * patch] = src[t * spec.stride];
                  }
                }
                for (std::size_t ow = ow_hi; ow < out_w; ++ow) {
                  dst[ow * patch] = pad_value;
                }
              }
            }
          }
        }
      },
      /*grain=*/std::max<std::size_t>(
          1, 4096 / std::max<std::size_t>(1, out_w * patch)));
}

void im2col_q8t(const std::int8_t* input, std::size_t n, std::size_t in_h,
                std::size_t in_w, const Conv2dSpec& spec,
                std::int8_t pad_value, std::int8_t* out) {
  const std::size_t out_h = spec.out_size(in_h);
  const std::size_t out_w = spec.out_size(in_w);
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  const std::size_t image_elems = spec.in_channels * in_h * in_w;
  const std::size_t m = n * out_h * out_w;
  const auto fill = static_cast<unsigned char>(pad_value);

  // In the [patch, m] layout each (patch row, image, output row) triple is
  // one contiguous out_w-byte run: padding becomes memset and — at stride
  // 1, the common conv case — the interior becomes a straight memcpy from
  // the input row.  That is the whole point of the transposed layout; the
  // [m, patch] form can only scatter strided single bytes here.
  common::parallel_for(
      0, patch,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = lo; p < hi; ++p) {
          const std::size_t ic = p / (spec.kernel * spec.kernel);
          const std::size_t kh = (p / spec.kernel) % spec.kernel;
          const std::size_t kw = p % spec.kernel;
          // Valid output-column range: iw = ow*stride + kw - padding must
          // land in [0, in_w).
          const long shift =
              static_cast<long>(kw) - static_cast<long>(spec.padding);
          std::size_t ow_lo =
              shift < 0 ? (static_cast<std::size_t>(-shift) + spec.stride - 1) /
                              spec.stride
                        : 0;
          ow_lo = std::min(ow_lo, out_w);
          const long limit = static_cast<long>(in_w) - 1 - shift;
          const std::size_t ow_hi = std::max(
              ow_lo,
              limit < 0 ? 0
                        : std::min(out_w, static_cast<std::size_t>(limit) /
                                              spec.stride +
                                          1));
          std::int8_t* prow = out + p * m;
          for (std::size_t b = 0; b < n; ++b) {
            const std::int8_t* plane =
                input + b * image_elems + ic * in_h * in_w;
            for (std::size_t oh = 0; oh < out_h; ++oh) {
              std::int8_t* dst = prow + (b * out_h + oh) * out_w;
              const long ih = static_cast<long>(oh * spec.stride + kh) -
                              static_cast<long>(spec.padding);
              if (ih < 0 || static_cast<std::size_t>(ih) >= in_h) {
                std::memset(dst, fill, out_w);
                continue;
              }
              const std::int8_t* irow =
                  plane + static_cast<std::size_t>(ih) * in_w;
              if (ow_lo > 0) std::memset(dst, fill, ow_lo);
              const std::size_t span = ow_hi - ow_lo;
              if (span != 0) {
                const std::int8_t* src = irow + ow_lo * spec.stride + shift;
                if (spec.stride == 1) {
                  std::memcpy(dst + ow_lo, src, span);
                } else {
                  for (std::size_t t = 0; t < span; ++t) {
                    dst[ow_lo + t] = src[t * spec.stride];
                  }
                }
              }
              if (ow_hi < out_w) {
                std::memset(dst + ow_hi, fill, out_w - ow_hi);
              }
            }
          }
        }
      },
      /*grain=*/std::max<std::size_t>(1, 4096 / std::max<std::size_t>(1, m)));
}

Tensor quantized_matmul(const QuantizedTensor& a, const QuantizedTensor& b) {
  OPENEI_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2,
               "quantized_matmul requires rank-2 tensors");
  std::size_t m = a.shape().dim(0);
  std::size_t k = a.shape().dim(1);
  OPENEI_CHECK(b.shape().dim(0) == k, "quantized_matmul inner dims differ");
  std::size_t n = b.shape().dim(1);

  const auto& a_data = a.data();
  const auto& b_data = b.data();
  std::int32_t a_zp = a.params().zero_point;
  std::int32_t b_zp = b.params().zero_point;
  float out_scale = a.params().scale * b.params().scale;

  Tensor out(Shape{m, n});
  auto o = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        std::int32_t av = static_cast<std::int32_t>(a_data[i * k + p]) - a_zp;
        std::int32_t bv = static_cast<std::int32_t>(b_data[p * n + j]) - b_zp;
        acc += static_cast<std::int64_t>(av) * bv;
      }
      o[i * n + j] = out_scale * static_cast<float>(acc);
    }
  }
  return out;
}

float quantization_step_error(const QuantParams& p) { return p.scale * 0.5F; }

}  // namespace openei::tensor
